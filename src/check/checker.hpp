#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "telemetry/json.hpp"

#include "check/harness.hpp"
#include "check/scenario_gen.hpp"

namespace arpsec::check {

/// Version tag of the failure repro format.
inline constexpr const char* kArtifactFormat = "arpsec.check-artifact.v1";

struct CheckOptions {
    std::uint64_t first_seed = 1;
    std::size_t seeds = 20;
    /// Worker threads for the seed fan-out. The report is byte-identical
    /// for every job count (exp::map_indexed collects in index order).
    std::size_t jobs = 1;
    GenOptions gen;
    /// Self-test mode: register the fault-injected scheme and point the
    /// generator's scheme pool at it. The checker must find and shrink the
    /// planted bug.
    bool plant_bug = false;
    bool shrink = true;
    std::size_t shrink_max_runs = 200;
};

/// What one seed produced. On failure, `minimal` holds the shrunk
/// scenario and `violations` its violations; on success `minimal` is the
/// generated scenario itself.
struct SeedResult {
    std::uint64_t seed = 0;
    std::string scheme;
    bool failed = false;
    std::string error;  // non-empty when the harness itself threw
    std::size_t original_events = 0;
    RunOutcome outcome;  // of the full (unshrunk) scenario
    CheckScenario minimal;
    std::vector<Violation> violations;
    std::size_t shrink_runs = 0;

    /// The arpsec.check-artifact.v1 repro document (seed + minimal event
    /// schedule + violations) that arpsec-check --replay re-executes.
    [[nodiscard]] telemetry::Json artifact() const;
};

struct CheckReport {
    CheckOptions options;
    std::vector<SeedResult> results;  // in seed order, independent of jobs

    [[nodiscard]] std::size_t failures() const;
    /// Deterministic human-readable report (no timestamps, no job count).
    [[nodiscard]] std::string text() const;
};

/// Generates `seeds` scenarios, runs each through the harness on a
/// deterministic parallel fan-out, and shrinks every failure.
[[nodiscard]] CheckReport run_check(const CheckOptions& options);

struct ReplayOutcome {
    CheckScenario scenario;
    RunOutcome outcome;
};

/// Re-executes a recorded artifact exactly. Fails on malformed input or an
/// unknown format tag. `planted` must match the run that recorded the
/// artifact so the scheme name resolves.
[[nodiscard]] common::Expected<ReplayOutcome> replay_artifact(const std::string& json_text,
                                                              bool planted);

}  // namespace arpsec::check

#include "check/scenario_gen.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace arpsec::check {

using common::Duration;
using common::Rng;

ScenarioGen::ScenarioGen(GenOptions options) : options_(std::move(options)) {
    if (options_.schemes.empty()) {
        throw std::invalid_argument("ScenarioGen: scheme pool must not be empty");
    }
    if (options_.min_hosts < 2 || options_.max_hosts < options_.min_hosts) {
        throw std::invalid_argument("ScenarioGen: bad host bounds");
    }
    if (options_.min_events < 1 || options_.max_events < options_.min_events) {
        throw std::invalid_argument("ScenarioGen: bad event bounds");
    }
}

CheckScenario ScenarioGen::generate(std::uint64_t seed) const {
    const Rng root(seed);
    Rng topo = root.fork(kTopologyStream);
    Rng sched = root.fork(kScheduleStream);

    CheckScenario s;
    s.seed = seed;
    s.scheme = options_.schemes[topo.next_below(options_.schemes.size())];
    s.host_count = static_cast<std::size_t>(
        topo.next_in(static_cast<std::int64_t>(options_.min_hosts),
                     static_cast<std::int64_t>(options_.max_hosts)));
    s.dhcp = topo.chance(options_.dhcp_probability);
    s.protected_hosts = s.host_count;
    if (topo.chance(options_.partial_probability)) {
        s.protected_hosts = static_cast<std::size_t>(
            topo.next_in(1, static_cast<std::int64_t>(s.host_count)));
    }
    if (topo.chance(options_.lossy_probability)) {
        s.link_loss = topo.next_double() * options_.max_loss;
    }
    // DHCP handshakes need a longer runway before the schedule starts.
    s.settle = s.dhcp ? Duration::seconds(4) : Duration::seconds(3);
    s.grace = Duration::seconds(2);

    const std::size_t count = static_cast<std::size_t>(
        sched.next_in(static_cast<std::int64_t>(options_.min_events),
                      static_cast<std::int64_t>(options_.max_events)));
    Duration at = Duration::zero();
    for (std::size_t i = 0; i < count; ++i) {
        at += sched.next_duration(Duration::millis(10), Duration::millis(400));
        InjectedEvent e;
        e.at = at;
        const std::uint64_t shape = sched.next_below(10);
        if (shape < 3) {
            e.kind = InjectKind::kForgedReply;
        } else if (shape < 4) {
            e.kind = InjectKind::kForgedRequest;
        } else if (shape < 5) {
            e.kind = InjectKind::kGratuitousRequest;
        } else if (shape < 6) {
            e.kind = InjectKind::kGratuitousReply;
        } else if (shape < 7) {
            e.kind = InjectKind::kReplayLegit;
        } else {
            e.kind = InjectKind::kBenignTraffic;
        }
        e.target = sched.next_below(s.host_count);
        // The spoofed station must differ from the victim so the forged
        // claim contradicts ground truth; index host_count is the gateway.
        e.spoofed = sched.next_below(s.host_count + 1);
        if (e.spoofed == e.target) e.spoofed = s.host_count;
        e.claim_attacker_mac = sched.chance(0.8);
        e.consistent_l2 = sched.chance(0.7);
        e.aux = sched.next_u64();
        s.events.push_back(e);
    }
    return s;
}

}  // namespace arpsec::check

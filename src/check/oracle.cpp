#include "check/oracle.hpp"

#include <sstream>

namespace arpsec::check {

telemetry::Json Violation::to_json() const {
    telemetry::Json j = telemetry::Json::object();
    j["oracle"] = oracle;
    j["detail"] = detail;
    j["at_ns"] = at.nanos();
    j["event_index"] =
        event_index == kNoEvent ? static_cast<std::int64_t>(-1)
                                : static_cast<std::int64_t>(event_index);
    return j;
}

bool CheckContext::in_scope(std::size_t station) const {
    if (traits == nullptr) return true;
    // Vantage strings: "host", "host (cooperative)", "host+server",
    // "switch", "monitor". Everything that is not host-resident sees the
    // whole fabric.
    if (traits->vantage.rfind("host", 0) != 0) return true;
    return station == host_count /*gateway*/ || station < protected_hosts;
}

namespace {

std::string station_name(const CheckContext& ctx, std::size_t idx) {
    if (idx == ctx.host_count) return "gateway";
    return "host" + std::to_string(idx);
}

class ConservationOracle final : public Oracle {
public:
    [[nodiscard]] const char* name() const override { return "sim-conservation"; }

    void check(const CheckContext& ctx, std::vector<Violation>& out) const override {
        const sim::TrafficCounters& c = ctx.net->counters();
        if (c.conserved()) return;
        std::ostringstream os;
        os << "frames=" << c.frames << " != delivered=" << c.delivered_frames
           << " + dropped=" << c.dropped_frames << " + in_flight=" << c.in_flight_frames;
        out.push_back({name(), os.str(), ctx.net->now(), ctx.last_event});
    }
};

class TelemetryOracle final : public Oracle {
public:
    [[nodiscard]] const char* name() const override { return "telemetry-consistency"; }

    void check(const CheckContext& ctx, std::vector<Violation>& out) const override {
        const auto fail = [&](const std::string& detail) {
            out.push_back({name(), detail, ctx.net->now(), ctx.last_event});
        };
        const auto expect_counter = [&](const char* metric, std::uint64_t truth) {
            const telemetry::Counter* c = ctx.metrics->find_counter(metric);
            const std::uint64_t got = c != nullptr ? c->value() : 0;
            if (got != truth) {
                std::ostringstream os;
                os << metric << "=" << got << " but the sim counted " << truth;
                fail(os.str());
            }
        };
        const sim::TrafficCounters& c = ctx.net->counters();
        expect_counter("sim.net.frames", c.frames);
        expect_counter("sim.net.dropped_frames", c.dropped_frames);
        expect_counter("sim.net.arp_frames", c.arp_frames);
        expect_counter("sim.net.ipv4_frames", c.ipv4_frames);
        expect_counter("sim.sched.events_executed", ctx.net->scheduler().executed());

        // The alert sink's metric export must agree with the sink itself:
        // total == count(), and the per-kind / per-scheme breakdowns must
        // sum back to the total.
        telemetry::MetricsRegistry fresh;
        ctx.alerts->export_metrics(fresh);
        const telemetry::Counter* total = fresh.find_counter("detect.alerts.total");
        const std::uint64_t exported = total != nullptr ? total->value() : 0;
        if (exported != ctx.alerts->count()) {
            std::ostringstream os;
            os << "detect.alerts.total=" << exported << " but the sink holds "
               << ctx.alerts->count() << " alerts";
            fail(os.str());
        }
        std::uint64_t kind_sum = 0;
        std::uint64_t scheme_sum = 0;
        for (const telemetry::MetricSample& s : fresh.samples()) {
            if (s.kind != telemetry::MetricSample::Kind::kCounter) continue;
            if (s.name.rfind("detect.alerts.kind.", 0) == 0) {
                kind_sum += static_cast<std::uint64_t>(s.value);
            } else if (s.name.rfind("detect.alerts.scheme.", 0) == 0) {
                scheme_sum += static_cast<std::uint64_t>(s.value);
            }
        }
        if (kind_sum != ctx.alerts->count()) {
            std::ostringstream os;
            os << "per-kind alert counters sum to " << kind_sum << ", expected "
               << ctx.alerts->count();
            fail(os.str());
        }
        if (scheme_sum != ctx.alerts->count()) {
            std::ostringstream os;
            os << "per-scheme alert counters sum to " << scheme_sum << ", expected "
               << ctx.alerts->count();
            fail(os.str());
        }
    }
};

class PreventionOracle final : public Oracle {
public:
    [[nodiscard]] const char* name() const override { return "prevention-no-poison"; }

    void check(const CheckContext& ctx, std::vector<Violation>& out) const override {
        if (!ctx.traits->prevents_poisoning) return;
        // Best-effort preventers (Antidote) verify via a probe exchange the
        // attacker can starve (loss, CAM interference from replays); only
        // authoritative preventers promise the hard invariant.
        if (ctx.traits->best_effort) return;
        for (const PoisonObservation& p : *ctx.new_poisons) {
            // Only correct->wrong overwrites of directory bindings are
            // guaranteed: first-contact poisoning of an unknown binding is
            // outside what overwrite-guarding schemes (Anticap) promise,
            // and non-directory IPs are invisible to table-driven schemes
            // (static entries, DAI-static) under DHCP addressing.
            if (!p.overwrite || !p.directory_ip) continue;
            if (!ctx.in_scope(p.station)) continue;
            std::ostringstream os;
            os << station_name(ctx, p.station) << " cached " << p.ip.to_string() << " -> "
               << p.mac.to_string() << " over the correct binding of "
               << station_name(ctx, p.owner) << " despite prevention";
            out.push_back({name(), os.str(), p.at, ctx.last_event});
        }
    }
};

class DetectionOracle final : public Oracle {
public:
    [[nodiscard]] const char* name() const override { return "detection-silent-poison"; }

    void check(const CheckContext& ctx, std::vector<Violation>& out) const override {
        if (!ctx.final_check) return;  // alerts may lag the poisoning
        if (!ctx.traits->detects) return;
        // A DHCP-snooping scheme has no bindings to defend on a static LAN.
        if (ctx.traits->depends_on_dhcp && !ctx.scenario->dhcp) return;
        // A switch scheme that does not do ARP inspection (port security)
        // only sees L2 anomalies — a forgery sent from the attacker's own
        // port with its own source MAC is invisible to it by design.
        if (ctx.traits->vantage == "switch" && !ctx.traits->prevents_poisoning) return;
        // Best-effort detectors (gossip digests, probe timeouts treated as
        // rebinds) cannot promise an alert for every observable poisoning.
        if (ctx.traits->best_effort) return;
        if (ctx.alerts->count() > 0) return;
        for (const PoisonObservation& p : *ctx.all_poisons) {
            // Only demand an alert for poisonings the scheme had both the
            // vantage and the prior knowledge to recognize: a successful
            // overwrite of a directory binding that was legitimately
            // announced on the wire.
            if (!p.overwrite || !p.directory_ip || !p.announced) continue;
            if (!ctx.in_scope(p.station)) continue;
            std::ostringstream os;
            os << station_name(ctx, p.station) << " was silently poisoned ("
               << p.ip.to_string() << " -> " << p.mac.to_string() << " at "
               << p.at.to_string() << ") and no alert fired by the end of the run";
            out.push_back({name(), os.str(), ctx.net->now(), ctx.last_event});
            return;  // one silent-poison finding per run is enough
        }
    }
};

}  // namespace

std::vector<std::unique_ptr<Oracle>> default_oracles() {
    std::vector<std::unique_ptr<Oracle>> v;
    v.push_back(std::make_unique<ConservationOracle>());
    v.push_back(std::make_unique<TelemetryOracle>());
    v.push_back(std::make_unique<PreventionOracle>());
    v.push_back(std::make_unique<DetectionOracle>());
    return v;
}

}  // namespace arpsec::check

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "telemetry/json.hpp"

namespace arpsec::check {

/// One adversarial (or stimulus) event the checker injects into a run.
/// Every kind is a pure function of the event fields plus the deterministic
/// topology, so a schedule replays bit-for-bit and events can be deleted
/// independently during shrinking.
enum class InjectKind {
    kForgedReply,        // unsolicited reply: "spoofed IP is at claimed MAC"
    kForgedRequest,      // forged request poisoning via the sender fields
    kGratuitousRequest,  // gratuitous announcement, request form
    kGratuitousReply,    // gratuitous announcement, reply form
    kReplayLegit,        // re-inject a captured legitimate ARP frame verbatim
    kBenignTraffic,      // a station sends one UDP datagram (stimulates ARP)
};

[[nodiscard]] std::string to_string(InjectKind k);
[[nodiscard]] std::optional<InjectKind> inject_kind_from_string(const std::string& s);

/// Station index convention: 0..host_count-1 are hosts, host_count is the
/// gateway.
struct InjectedEvent {
    common::Duration at;  // offset from the end of the settle phase
    InjectKind kind = InjectKind::kForgedReply;
    std::size_t target = 0;   // victim station (forged*) / sender (benign)
    std::size_t spoofed = 0;  // station whose IP the forgery claims
    bool claim_attacker_mac = true;  // false: garbage blackhole MAC
    bool consistent_l2 = true;       // frame src equals the claimed sender MAC
    std::uint64_t aux = 0;           // replay frame / benign peer selector

    [[nodiscard]] telemetry::Json to_json() const;
    static std::optional<InjectedEvent> from_json(const telemetry::Json& j);
};

/// A complete randomized scenario: topology knobs plus the injected event
/// schedule. Serializes into the arpsec.check-artifact.v1 repro format and
/// parses back exactly, so a recorded failure replays deterministically.
struct CheckScenario {
    std::uint64_t seed = 1;
    std::string scheme = "none";
    std::size_t host_count = 4;
    bool dhcp = false;
    /// Partial deployment: only the first `protected_hosts` hosts (plus the
    /// gateway) receive protect_host().
    std::size_t protected_hosts = 4;
    double link_loss = 0.0;
    common::Duration settle = common::Duration::seconds(3);
    common::Duration grace = common::Duration::seconds(2);
    std::vector<InjectedEvent> events;

    [[nodiscard]] telemetry::Json to_json() const;
    static std::optional<CheckScenario> from_json(const telemetry::Json& j);

    /// FNV-1a over the canonical serialization: the seed-stability golden
    /// tests pin this so refactors cannot silently invalidate recorded
    /// repro artifacts.
    [[nodiscard]] std::uint64_t digest() const;
};

}  // namespace arpsec::check

#include "check/checker.hpp"

#include <sstream>

#include "exp/executor.hpp"

#include "check/planted.hpp"
#include "check/shrinker.hpp"

namespace arpsec::check {

using telemetry::Json;

Json SeedResult::artifact() const {
    Json j = Json::object();
    j["format"] = std::string(kArtifactFormat);
    j["seed"] = static_cast<std::int64_t>(seed);
    j["scheme"] = scheme;
    j["original_events"] = static_cast<std::int64_t>(original_events);
    j["shrink_runs"] = static_cast<std::int64_t>(shrink_runs);
    j["scenario"] = minimal.to_json();
    Json vs = Json::array();
    for (const Violation& v : violations) vs.push_back(v.to_json());
    j["violations"] = std::move(vs);
    return j;
}

std::size_t CheckReport::failures() const {
    std::size_t n = 0;
    for (const SeedResult& r : results) {
        if (r.failed) ++n;
    }
    return n;
}

std::string CheckReport::text() const {
    std::ostringstream os;
    os << "arpsec-check: seeds [" << options.first_seed << ", "
       << options.first_seed + options.seeds << ")";
    if (options.plant_bug) os << " plant-bug";
    os << "\n";
    for (const SeedResult& r : results) {
        os << "seed " << r.seed << " scheme=" << r.scheme;
        if (!r.error.empty()) {
            os << " ERROR " << r.error << "\n";
            continue;
        }
        os << " events=" << r.original_events << " frames=" << r.outcome.frames
           << " alerts=" << r.outcome.alerts << " poisons=" << r.outcome.poisons;
        if (!r.failed) {
            os << " ok\n";
            continue;
        }
        os << " FAIL";
        if (r.minimal.events.size() != r.original_events) {
            os << " shrunk " << r.original_events << " -> " << r.minimal.events.size()
               << " events (" << r.shrink_runs << " runs)";
        }
        os << "\n";
        for (const Violation& v : r.violations) {
            os << "  [" << v.oracle << "] " << v.detail << "\n";
        }
    }
    os << "failures: " << failures() << "/" << results.size() << "\n";
    return os.str();
}

CheckReport run_check(const CheckOptions& options) {
    CheckOptions opts = options;
    detect::Registry registry;
    if (opts.plant_bug) opts.gen.schemes = {plant_bug(registry)};

    const ScenarioGen gen(opts.gen);
    const auto oracles = default_oracles();
    const Harness harness(registry, oracles);

    // Each index is self-contained (own Network built from its seed), so
    // the fan-out is deterministic for any job count and the collected
    // vector is in seed order regardless of scheduling.
    auto outcomes = exp::map_indexed<SeedResult>(
        opts.seeds, opts.jobs, [&](std::size_t i) {
            const std::uint64_t seed = opts.first_seed + i;
            SeedResult r;
            r.seed = seed;
            const CheckScenario scenario = gen.generate(seed);
            r.scheme = scenario.scheme;
            r.original_events = scenario.events.size();
            r.minimal = scenario;
            r.outcome = harness.run(scenario);
            r.violations = r.outcome.violations;
            r.failed = !r.outcome.passed();
            if (r.failed && opts.shrink && !scenario.events.empty()) {
                const Shrinker shrinker(harness, {opts.shrink_max_runs});
                ShrinkResult s = shrinker.shrink(scenario, r.violations.front().oracle);
                r.minimal = std::move(s.minimal);
                r.violations = std::move(s.violations);
                r.shrink_runs = s.runs;
            }
            return r;
        });

    CheckReport report;
    report.options = opts;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].failed) {
            SeedResult r;
            r.seed = opts.first_seed + i;
            r.failed = true;
            r.error = outcomes[i].error;
            report.results.push_back(std::move(r));
        } else {
            report.results.push_back(std::move(outcomes[i].value));
        }
    }
    return report;
}

common::Expected<ReplayOutcome> replay_artifact(const std::string& json_text, bool planted) {
    const auto parsed = Json::parse(json_text);
    if (!parsed) {
        return common::Expected<ReplayOutcome>::failure("artifact: malformed JSON");
    }
    if (!parsed->is_object()) {
        return common::Expected<ReplayOutcome>::failure("artifact: not a JSON object");
    }
    const Json* format = parsed->find("format");
    if (format == nullptr || !format->is_string() || format->as_string() != kArtifactFormat) {
        return common::Expected<ReplayOutcome>::failure(
            std::string("artifact: expected format ") + kArtifactFormat);
    }
    const Json* scenario_json = parsed->find("scenario");
    if (scenario_json == nullptr) {
        return common::Expected<ReplayOutcome>::failure("artifact: missing scenario");
    }
    auto scenario = CheckScenario::from_json(*scenario_json);
    if (!scenario) {
        return common::Expected<ReplayOutcome>::failure("artifact: bad scenario");
    }

    detect::Registry registry;
    if (planted) plant_bug(registry);
    if (!registry.contains(scenario->scheme)) {
        return common::Expected<ReplayOutcome>::failure(
            "artifact: unknown scheme '" + scenario->scheme +
            "' (planted-bug artifacts need --planted)");
    }
    const auto oracles = default_oracles();
    const Harness harness(registry, oracles);
    ReplayOutcome out;
    out.scenario = *scenario;
    out.outcome = harness.run(*scenario);
    return common::Expected<ReplayOutcome>(std::move(out));
}

}  // namespace arpsec::check

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "detect/alert.hpp"
#include "detect/scheme.hpp"
#include "sim/network.hpp"
#include "telemetry/metrics.hpp"
#include "wire/ipv4_address.hpp"
#include "wire/mac_address.hpp"

#include "check/scenario.hpp"

namespace arpsec::check {

/// One invariant violation an oracle found. `event_index` is the index of
/// the most recently injected schedule event when the violation was
/// observed (kNoEvent during settle / baseline checks) — informational
/// only; the shrinker attributes blame by re-running subsets.
struct Violation {
    static constexpr std::size_t kNoEvent = static_cast<std::size_t>(-1);

    std::string oracle;
    std::string detail;
    common::SimTime at;
    std::size_t event_index = kNoEvent;

    [[nodiscard]] telemetry::Json to_json() const;
};

/// A cache transition to a MAC that contradicts ground truth, observed by
/// the harness when diffing station caches between event steps.
struct PoisonObservation {
    std::size_t station = 0;  // whose cache changed (host idx, or host_count = gateway)
    std::size_t owner = 0;    // station that truly owns `ip`
    wire::Ipv4Address ip;
    wire::MacAddress mac;  // the wrong MAC now cached
    common::SimTime at;
    bool overwrite = false;     // a previously-correct binding was replaced
    bool directory_ip = false;  // `ip` was in the directory handed to the scheme
    bool announced = false;     // the true binding was observable at the mirror port
};

/// Read-only view of one run the oracles judge. `new_poisons` holds only
/// the observations from the current step (so per-step oracles do not
/// re-report), `all_poisons` accumulates over the whole run (for the
/// end-of-run detection oracle).
struct CheckContext {
    const CheckScenario* scenario = nullptr;
    const detect::SchemeTraits* traits = nullptr;
    sim::Network* net = nullptr;
    const detect::AlertSink* alerts = nullptr;
    telemetry::MetricsRegistry* metrics = nullptr;
    std::size_t host_count = 0;
    std::size_t protected_hosts = 0;  // the gateway is always protected
    const std::vector<PoisonObservation>* new_poisons = nullptr;
    const std::vector<PoisonObservation>* all_poisons = nullptr;
    bool final_check = false;
    std::size_t last_event = Violation::kNoEvent;

    /// Whether the scheme's vantage point covers `station`. Switch- and
    /// monitor-based schemes see the whole fabric; host-based schemes only
    /// cover the stations they were deployed on (the protected prefix plus
    /// the gateway).
    [[nodiscard]] bool in_scope(std::size_t station) const;
};

/// A cross-cutting invariant, checked after every event step and once more
/// after the post-schedule grace period (final_check == true).
class Oracle {
public:
    virtual ~Oracle() = default;
    [[nodiscard]] virtual const char* name() const = 0;
    virtual void check(const CheckContext& ctx, std::vector<Violation>& out) const = 0;
};

/// The standard oracle set:
///  - sim-conservation: frames placed on the wire == delivered + dropped
///    + in flight, at every step.
///  - telemetry-consistency: the metrics registry agrees with the
///    authoritative sim counters and the alert sink.
///  - prevention-no-poison: a prevention scheme never lets a protected
///    station's correct directory binding be overwritten with a wrong MAC.
///  - detection-silent-poison: a detection scheme that could see a
///    successful poisoning (vantage + prior knowledge) raises at least one
///    alert by the end of the run.
[[nodiscard]] std::vector<std::unique_ptr<Oracle>> default_oracles();

}  // namespace arpsec::check

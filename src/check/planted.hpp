#pragma once

#include <memory>
#include <string>

#include "detect/alert.hpp"
#include "detect/registry.hpp"
#include "detect/scheme.hpp"

namespace arpsec::check {

/// Fault-injection decorator for checker self-tests: behaves exactly like
/// the wrapped scheme, but one class of its alerts is silently discarded —
/// the shape of a real regression where a refactor drops an alert path.
/// The checker must find a schedule whose only alert would have been of
/// the suppressed kind and shrink it to a minimal repro.
class SuppressAlertScheme final : public detect::Scheme {
public:
    SuppressAlertScheme(std::unique_ptr<detect::Scheme> inner, detect::AlertKind suppressed);

    [[nodiscard]] detect::SchemeTraits traits() const override;
    void deploy(const detect::DeploymentContext& ctx) override;
    void protect_host(host::Host& host) override;
    void configure_switch(l2::Switch& fabric) override;
    void attach_monitor(detect::MonitorNode& monitor) override;

private:
    std::unique_ptr<detect::Scheme> inner_;
    detect::AlertKind suppressed_;
    /// Interposed sink: forwards everything except the suppressed kind.
    std::unique_ptr<detect::AlertSink> filter_;
};

/// Name under which plant_bug() registers the planted scheme.
inline constexpr const char* kPlantedSchemeName = "planted-arpwatch-silent";

/// Registers an arpwatch variant whose IP->MAC-change alert path is
/// suppressed (the one alert arpwatch raises for a classic poisoning).
/// Returns the registered name.
std::string plant_bug(detect::Registry& registry);

}  // namespace arpsec::check

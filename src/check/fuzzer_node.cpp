#include "check/fuzzer_node.hpp"

#include "sim/network.hpp"
#include "wire/dhcp_message.hpp"
#include "wire/ipv4_packet.hpp"
#include "wire/tcp_segment.hpp"
#include "wire/udp_datagram.hpp"

namespace arpsec::check {

using common::Duration;
using wire::Bytes;
using wire::EthernetFrame;
using wire::Ipv4Address;
using wire::MacAddress;

FuzzerNode::FuzzerNode(std::string name, std::uint64_t seed, MacAddress target)
    : FuzzerNode(std::move(name), seed, Options{.target = target}) {}

FuzzerNode::FuzzerNode(std::string name, std::uint64_t seed, Options options)
    : sim::Node(std::move(name)), rng_(seed), options_(options) {}

EthernetFrame FuzzerNode::generate_frame(common::Rng& rng, const Options& options) {
    EthernetFrame f;
    // Mix of broadcast and unicast-to-target, ARP and IPv4.
    f.dst = rng.chance(0.5) ? MacAddress::broadcast() : options.target;
    f.src = MacAddress::local(rng.next_u64() & 0xFFFFFFFFFFULL);
    f.ether_type = rng.chance(0.5) ? wire::EtherType::kArp : wire::EtherType::kIpv4;
    const std::size_t len = rng.next_below(200);
    f.payload.resize(len);
    for (auto& b : f.payload) b = static_cast<std::uint8_t>(rng.next_u64());
    // Often wrap the random bytes in a valid IPv4 header so the upper-layer
    // parsers (UDP, TCP, DHCP) see attacker-controlled payloads too.
    if (f.ether_type == wire::EtherType::kIpv4 && rng.chance(0.6)) {
        wire::Ipv4Packet p;
        p.src = Ipv4Address{static_cast<std::uint32_t>(rng.next_u64())};
        p.dst = rng.chance(0.5) ? options.target_ip : Ipv4Address::broadcast();
        switch (rng.next_below(4)) {
            case 0: {
                // Random protocol number, raw payload.
                p.protocol = static_cast<wire::IpProto>(rng.next_below(20));
                p.payload = f.payload;
                break;
            }
            case 1: {
                // UDP datagram aimed at the DHCP ports: the server and
                // client state machines must survive garbage options.
                wire::UdpDatagram u;
                const bool to_server = rng.chance(0.5);
                u.src_port = to_server ? wire::DhcpMessage::kClientPort
                                       : wire::DhcpMessage::kServerPort;
                u.dst_port = to_server ? wire::DhcpMessage::kServerPort
                                       : wire::DhcpMessage::kClientPort;
                u.payload = f.payload;
                if (rng.chance(0.5)) {
                    // Structurally valid DHCP header with random fields, so
                    // the option walker runs instead of rejecting at parse.
                    wire::DhcpMessage d;
                    d.op = static_cast<std::uint8_t>(rng.next_below(4));
                    d.xid = static_cast<std::uint32_t>(rng.next_u64());
                    d.message_type =
                        static_cast<wire::DhcpMessageType>(rng.next_below(10));
                    d.chaddr = MacAddress::local(rng.next_u64() & 0xFFFFFFFFFFULL);
                    d.yiaddr = Ipv4Address{static_cast<std::uint32_t>(rng.next_u64())};
                    u.payload = d.serialize();
                    // Truncate or corrupt the tail half of the time.
                    if (rng.chance(0.5) && !u.payload.empty()) {
                        u.payload.resize(rng.next_below(u.payload.size()) + 1);
                    }
                }
                p.protocol = wire::IpProto::kUdp;
                p.payload = u.serialize();
                break;
            }
            case 2: {
                // TCP segment with random ports, sequence space, and flag
                // soup (SYN|RST|FIN combinations included).
                wire::TcpSegment t;
                t.src_port = static_cast<std::uint16_t>(rng.next_u64());
                t.dst_port = rng.chance(0.5)
                                 ? static_cast<std::uint16_t>(80)
                                 : static_cast<std::uint16_t>(rng.next_u64());
                t.seq = static_cast<std::uint32_t>(rng.next_u64());
                t.ack = static_cast<std::uint32_t>(rng.next_u64());
                t.flags = static_cast<std::uint8_t>(rng.next_below(32));
                t.payload = f.payload;
                p.protocol = wire::IpProto::kTcp;
                p.payload = t.serialize();
                break;
            }
            default: {
                // Truncated transport header: a valid IPv4 envelope whose
                // payload is too short for the declared protocol.
                p.protocol = rng.chance(0.5) ? wire::IpProto::kTcp : wire::IpProto::kUdp;
                p.payload.assign(rng.next_below(8), 0);
                for (auto& b : p.payload) b = static_cast<std::uint8_t>(rng.next_u64());
                break;
            }
        }
        f.payload = p.serialize();
    }
    return f;
}

void FuzzerNode::tick() {
    if (sent_ >= options_.max_frames) return;
    ++sent_;
    send(0, generate_frame(rng_, options_));
    network().scheduler().schedule_after(options_.period, [this] { tick(); });
}

}  // namespace arpsec::check

#include "check/planted.hpp"

#include <utility>

namespace arpsec::check {

SuppressAlertScheme::SuppressAlertScheme(std::unique_ptr<detect::Scheme> inner,
                                         detect::AlertKind suppressed)
    : inner_(std::move(inner)), suppressed_(suppressed) {}

detect::SchemeTraits SuppressAlertScheme::traits() const {
    // Identical traits: the bug is invisible to introspection, like a real
    // regression — only the checker's oracles can expose it.
    return inner_->traits();
}

void SuppressAlertScheme::deploy(const detect::DeploymentContext& ctx) {
    filter_ = std::make_unique<detect::AlertSink>();
    filter_->on_alert = [real = ctx.alerts, suppressed = suppressed_](const detect::Alert& a) {
        if (a.kind != suppressed && real != nullptr) {
            detect::Alert copy = a;
            real->report(std::move(copy));
        }
    };
    detect::DeploymentContext patched = ctx;
    patched.alerts = filter_.get();
    inner_->deploy(patched);
}

void SuppressAlertScheme::protect_host(host::Host& host) { inner_->protect_host(host); }
void SuppressAlertScheme::configure_switch(l2::Switch& fabric) {
    inner_->configure_switch(fabric);
}
void SuppressAlertScheme::attach_monitor(detect::MonitorNode& monitor) {
    inner_->attach_monitor(monitor);
}

std::string plant_bug(detect::Registry& registry) {
    if (!registry.contains(kPlantedSchemeName)) {
        auto added = registry.add({kPlantedSchemeName, [] {
                                       return std::make_unique<SuppressAlertScheme>(
                                           detect::make_scheme("arpwatch"),
                                           detect::AlertKind::kIpMacChange);
                                   }});
        (void)added;
    }
    return kPlantedSchemeName;
}

}  // namespace arpsec::check

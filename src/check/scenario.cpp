#include "check/scenario.hpp"

namespace arpsec::check {

using telemetry::Json;

std::string to_string(InjectKind k) {
    switch (k) {
        case InjectKind::kForgedReply: return "forged-reply";
        case InjectKind::kForgedRequest: return "forged-request";
        case InjectKind::kGratuitousRequest: return "gratuitous-request";
        case InjectKind::kGratuitousReply: return "gratuitous-reply";
        case InjectKind::kReplayLegit: return "replay-legit";
        case InjectKind::kBenignTraffic: return "benign-traffic";
    }
    return "?";
}

std::optional<InjectKind> inject_kind_from_string(const std::string& s) {
    for (const auto k :
         {InjectKind::kForgedReply, InjectKind::kForgedRequest, InjectKind::kGratuitousRequest,
          InjectKind::kGratuitousReply, InjectKind::kReplayLegit, InjectKind::kBenignTraffic}) {
        if (to_string(k) == s) return k;
    }
    return std::nullopt;
}

Json InjectedEvent::to_json() const {
    Json j = Json::object();
    j["at_ns"] = at.count();
    j["kind"] = to_string(kind);
    j["target"] = static_cast<std::int64_t>(target);
    j["spoofed"] = static_cast<std::int64_t>(spoofed);
    j["claim_attacker_mac"] = claim_attacker_mac;
    j["consistent_l2"] = consistent_l2;
    j["aux"] = static_cast<std::int64_t>(aux);
    return j;
}

std::optional<InjectedEvent> InjectedEvent::from_json(const Json& j) {
    if (!j.is_object()) return std::nullopt;
    const Json* at = j.find("at_ns");
    const Json* kind = j.find("kind");
    if (at == nullptr || !at->is_int() || kind == nullptr || !kind->is_string()) {
        return std::nullopt;
    }
    const auto parsed_kind = inject_kind_from_string(kind->as_string());
    if (!parsed_kind) return std::nullopt;
    InjectedEvent e;
    e.at = common::Duration{at->as_int()};
    e.kind = *parsed_kind;
    const auto read_size = [&j](const char* key, std::size_t& out) {
        if (const Json* v = j.find(key); v != nullptr && v->is_int()) {
            out = static_cast<std::size_t>(v->as_int());
        }
    };
    read_size("target", e.target);
    read_size("spoofed", e.spoofed);
    if (const Json* v = j.find("claim_attacker_mac"); v != nullptr && v->is_bool()) {
        e.claim_attacker_mac = v->as_bool();
    }
    if (const Json* v = j.find("consistent_l2"); v != nullptr && v->is_bool()) {
        e.consistent_l2 = v->as_bool();
    }
    if (const Json* v = j.find("aux"); v != nullptr && v->is_int()) {
        e.aux = static_cast<std::uint64_t>(v->as_int());
    }
    return e;
}

Json CheckScenario::to_json() const {
    Json j = Json::object();
    j["seed"] = static_cast<std::int64_t>(seed);
    j["scheme"] = scheme;
    j["host_count"] = static_cast<std::int64_t>(host_count);
    j["dhcp"] = dhcp;
    j["protected_hosts"] = static_cast<std::int64_t>(protected_hosts);
    j["link_loss"] = link_loss;
    j["settle_ns"] = settle.count();
    j["grace_ns"] = grace.count();
    Json evs = Json::array();
    for (const auto& e : events) evs.push_back(e.to_json());
    j["events"] = std::move(evs);
    return j;
}

std::optional<CheckScenario> CheckScenario::from_json(const Json& j) {
    if (!j.is_object()) return std::nullopt;
    CheckScenario s;
    const Json* scheme = j.find("scheme");
    const Json* hosts = j.find("host_count");
    const Json* events = j.find("events");
    if (scheme == nullptr || !scheme->is_string() || hosts == nullptr || !hosts->is_int() ||
        events == nullptr || !events->is_array()) {
        return std::nullopt;
    }
    s.scheme = scheme->as_string();
    s.host_count = static_cast<std::size_t>(hosts->as_int());
    s.protected_hosts = s.host_count;
    if (const Json* v = j.find("seed"); v != nullptr && v->is_int()) {
        s.seed = static_cast<std::uint64_t>(v->as_int());
    }
    if (const Json* v = j.find("dhcp"); v != nullptr && v->is_bool()) s.dhcp = v->as_bool();
    if (const Json* v = j.find("protected_hosts"); v != nullptr && v->is_int()) {
        s.protected_hosts = static_cast<std::size_t>(v->as_int());
    }
    if (const Json* v = j.find("link_loss"); v != nullptr && v->is_number()) {
        s.link_loss = v->as_double();
    }
    if (const Json* v = j.find("settle_ns"); v != nullptr && v->is_int()) {
        s.settle = common::Duration{v->as_int()};
    }
    if (const Json* v = j.find("grace_ns"); v != nullptr && v->is_int()) {
        s.grace = common::Duration{v->as_int()};
    }
    for (const Json& ej : events->as_array()) {
        auto e = InjectedEvent::from_json(ej);
        if (!e) return std::nullopt;
        s.events.push_back(*e);
    }
    return s;
}

std::uint64_t CheckScenario::digest() const {
    const std::string text = to_json().dump();
    std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
    for (const char c : text) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

}  // namespace arpsec::check

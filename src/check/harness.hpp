#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/time.hpp"
#include "detect/registry.hpp"

#include "check/oracle.hpp"
#include "check/scenario.hpp"

namespace arpsec::check {

/// Observer of the monitor's mirror-port frame stream, with ground truth.
/// The replay subsystem renders scenarios to labeled pcaps through this
/// hook; `attacker_origin` is true when the delivered frame byte-matches a
/// transmission the attacker injected shortly before the mirror copy
/// arrived (i.e. the frame is a poisoning attempt, not background traffic).
class FrameRecorder {
public:
    virtual ~FrameRecorder() = default;
    virtual void on_monitor_frame(common::SimTime at, bool attacker_origin,
                                  std::span<const std::uint8_t> raw) = 0;
};

/// The (IP, MAC) ground-truth bindings of the LAN a scenario builds:
/// the gateway plus — for statically addressed scenarios — every host.
/// Under DHCP only the gateway binding is known ahead of the run.
[[nodiscard]] std::vector<detect::HostRecord> lan_directory(const CheckScenario& scenario);

/// What one checked run produced.
struct RunOutcome {
    std::vector<Violation> violations;
    std::size_t alerts = 0;
    std::size_t poisons = 0;  // distinct wrong-MAC cache transitions observed
    std::uint64_t frames = 0;
    std::uint64_t events_executed = 0;

    [[nodiscard]] bool passed() const { return violations.empty(); }
};

/// Builds the small LAN a CheckScenario describes (switch + gateway/DHCP
/// server + hosts + attacker + mirror-port monitor), deploys the scheme
/// under test, injects the event schedule, and evaluates the oracle set at
/// every event boundary plus once after the grace period. Fully
/// deterministic: the same scenario always yields the same outcome.
class Harness {
public:
    Harness(const detect::Registry& registry,
            const std::vector<std::unique_ptr<Oracle>>& oracles)
        : registry_(&registry), oracles_(&oracles) {}

    /// Streams every frame the mirror port delivers to `recorder` during
    /// run(), labeled with attacker-origin ground truth. Pass nullptr to
    /// detach. The recorder must outlive the run.
    Harness& set_recorder(FrameRecorder* recorder) {
        recorder_ = recorder;
        return *this;
    }

    /// Throws std::runtime_error if the scenario names an unknown scheme.
    [[nodiscard]] RunOutcome run(const CheckScenario& scenario) const;

private:
    const detect::Registry* registry_;
    const std::vector<std::unique_ptr<Oracle>>* oracles_;
    FrameRecorder* recorder_ = nullptr;
};

}  // namespace arpsec::check

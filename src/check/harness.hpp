#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "detect/registry.hpp"

#include "check/oracle.hpp"
#include "check/scenario.hpp"

namespace arpsec::check {

/// What one checked run produced.
struct RunOutcome {
    std::vector<Violation> violations;
    std::size_t alerts = 0;
    std::size_t poisons = 0;  // distinct wrong-MAC cache transitions observed
    std::uint64_t frames = 0;
    std::uint64_t events_executed = 0;

    [[nodiscard]] bool passed() const { return violations.empty(); }
};

/// Builds the small LAN a CheckScenario describes (switch + gateway/DHCP
/// server + hosts + attacker + mirror-port monitor), deploys the scheme
/// under test, injects the event schedule, and evaluates the oracle set at
/// every event boundary plus once after the grace period. Fully
/// deterministic: the same scenario always yields the same outcome.
class Harness {
public:
    Harness(const detect::Registry& registry,
            const std::vector<std::unique_ptr<Oracle>>& oracles)
        : registry_(&registry), oracles_(&oracles) {}

    /// Throws std::runtime_error if the scenario names an unknown scheme.
    [[nodiscard]] RunOutcome run(const CheckScenario& scenario) const;

private:
    const detect::Registry* registry_;
    const std::vector<std::unique_ptr<Oracle>>* oracles_;
};

}  // namespace arpsec::check

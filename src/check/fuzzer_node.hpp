#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/node.hpp"
#include "wire/ipv4_address.hpp"
#include "wire/mac_address.hpp"

namespace arpsec::check {

/// Node that spews attacker-controlled bytes: structurally valid Ethernet
/// frames with randomized payloads (the simulator requires parsable
/// Ethernet framing to deliver at all; everything above L2 is fuzzed).
/// Shared between the fuzz tests and the DST checker so both exercise the
/// same adversarial byte generator. Coverage spans raw ARP/IPv4 garbage
/// plus random bytes wrapped in valid IPv4 headers, including UDP datagrams
/// aimed at the DHCP ports and TCP segments with random flag soup.
class FuzzerNode final : public sim::Node {
public:
    struct Options {
        std::uint64_t max_frames = 2000;
        common::Duration period = common::Duration::micros(200);
        /// Destination of the unicast share of the traffic.
        wire::MacAddress target;
        /// Unicast IPv4 destination used when not broadcasting.
        wire::Ipv4Address target_ip{192, 168, 1, 10};
    };

    FuzzerNode(std::string name, std::uint64_t seed, wire::MacAddress target);
    FuzzerNode(std::string name, std::uint64_t seed, Options options);

    /// One adversarial frame drawn from `rng` — the corpus generator behind
    /// tick(), exposed so parser fuzz tests (PcapReader, EthernetFrame) can
    /// reuse the exact byte distribution without standing up a simulation.
    static wire::EthernetFrame generate_frame(common::Rng& rng, const Options& options);

    void start() override { tick(); }
    void on_frame(sim::PortId, const wire::FrameView&) override {}

    [[nodiscard]] std::uint64_t frames_sent() const { return sent_; }

private:
    void tick();

    common::Rng rng_;
    Options options_;
    std::uint64_t sent_ = 0;
};

}  // namespace arpsec::check

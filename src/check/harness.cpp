#include "check/harness.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "attack/attacker.hpp"
#include "detect/monitor.hpp"
#include "host/apps.hpp"
#include "host/dhcp_server.hpp"
#include "host/host.hpp"
#include "l2/switch.hpp"
#include "sim/network.hpp"
#include "telemetry/metrics.hpp"
#include "wire/arp_packet.hpp"
#include "wire/ethernet.hpp"

namespace arpsec::check {

using common::Duration;
using common::SimTime;
using wire::ArpPacket;
using wire::EthernetFrame;
using wire::Ipv4Address;
using wire::MacAddress;

namespace {

/// Global tap with two jobs: record legitimate ARP frames during the
/// settle phase (the replay-event pool) and track which (IP, MAC)
/// bindings were observable from the mirror port (the prior knowledge a
/// passive monitor could have accumulated).
class CheckTap final : public sim::CaptureTap {
public:
    CheckTap(MacAddress attacker_mac, sim::NodeId monitor, SimTime settle_end)
        : attacker_mac_(attacker_mac), monitor_(monitor), settle_end_(settle_end) {}

    void on_capture(SimTime at, sim::Endpoint from, sim::Endpoint to,
                    const wire::FrameView& view) override {
        (void)from;
        if (!view.ok()) return;
        if (view.ether_type() != wire::EtherType::kArp) return;
        if (view.src() == attacker_mac_) return;
        if (at < settle_end_ && legit_frames_.size() < kMaxLegitFrames) {
            // Shares the transmit buffer: the pool holds refcounts, and a
            // later kReplayLegit injection puts these exact bytes back on
            // the wire with zero copies.
            legit_frames_.push_back(view.buffer());
        }
        if (to.node == monitor_) {
            const ArpPacket* arp = view.arp();
            if (arp != nullptr && !arp->sender_ip.is_any()) {
                announced_.insert({arp->sender_ip.value(), arp->sender_mac.to_u64()});
            }
        }
    }

    [[nodiscard]] const std::vector<wire::FrameBuffer>& legit_frames() const {
        return legit_frames_;
    }
    [[nodiscard]] bool announced(Ipv4Address ip, MacAddress mac) const {
        return announced_.count({ip.value(), mac.to_u64()}) > 0;
    }

private:
    static constexpr std::size_t kMaxLegitFrames = 512;

    MacAddress attacker_mac_;
    sim::NodeId monitor_;
    SimTime settle_end_;
    std::vector<wire::FrameBuffer> legit_frames_;
    std::set<std::pair<std::uint32_t, std::uint64_t>> announced_;
};

/// Feeds the mirror-port frame stream to a FrameRecorder with ground
/// truth. Origin tracking is by byte identity: the tap remembers recent
/// attacker transmissions and labels a monitor delivery as an attack when
/// it matches one of them (the switch mirrors frames verbatim). Matched
/// entries are consumed so a replayed legit frame marks exactly one
/// delivery, and stale entries are pruned after a short window.
class RecorderTap final : public sim::CaptureTap {
public:
    RecorderTap(sim::NodeId attacker, sim::NodeId monitor, FrameRecorder* recorder)
        : attacker_(attacker), monitor_(monitor), recorder_(recorder) {}

    void on_capture(SimTime at, sim::Endpoint from, sim::Endpoint to,
                    const wire::FrameView& view) override {
        if (from.node == attacker_) {
            // A refcount on the attacker's transmit buffer, not a copy.
            pending_.push_back({at, view.buffer()});
        }
        if (to.node != monitor_) return;
        while (!pending_.empty() && at - pending_.front().at > kMatchWindow) {
            pending_.pop_front();
        }
        const auto raw = view.bytes();
        bool attack = false;
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
            // Mirrored frames share the ingress buffer, so identity catches
            // the common case; byte equality keeps the oracle exact.
            const auto pending_bytes = it->buffer.bytes();
            if (it->buffer.identity() == view.buffer().identity() ||
                (pending_bytes.size() == raw.size() &&
                 std::equal(pending_bytes.begin(), pending_bytes.end(), raw.begin()))) {
                attack = true;
                pending_.erase(it);
                break;
            }
        }
        recorder_->on_monitor_frame(at, attack, raw);
    }

private:
    struct Pending {
        SimTime at;
        wire::FrameBuffer buffer;
    };
    static constexpr Duration kMatchWindow = Duration::millis(100);

    sim::NodeId attacker_;
    sim::NodeId monitor_;
    FrameRecorder* recorder_;
    std::deque<Pending> pending_;
};

/// All live state of one checked run.
struct RunState {
    const CheckScenario* scenario = nullptr;
    telemetry::MetricsRegistry metrics;
    std::unique_ptr<sim::Network> net;
    l2::Switch* fabric = nullptr;
    host::Host* gateway = nullptr;
    std::vector<host::Host*> hosts;
    attack::Attacker* attacker = nullptr;
    detect::MonitorNode* monitor = nullptr;
    std::unique_ptr<host::DhcpServer> dhcp_server;
    std::vector<std::unique_ptr<host::UdpSinkApp>> sinks;
    std::unique_ptr<detect::Scheme> scheme;
    detect::SchemeTraits traits;
    detect::AlertSink alerts;
    crypto::OpCounters crypto_ops;
    std::unique_ptr<CheckTap> tap;
    std::unique_ptr<RecorderTap> recorder_tap;
    sim::PortId next_port = 0;
    std::uint8_t infra_ips = 0;
    MacAddress dos_mac = MacAddress::local(0xDEAD00);
    std::set<std::uint32_t> directory_ips;

    // Cache observation state, diffed at every check step.
    enum class Binding : std::uint8_t { kAbsent, kCorrect, kWrong };
    struct Observed {
        Binding binding = Binding::kAbsent;
        MacAddress mac;  // only meaningful for kWrong
    };
    std::map<std::pair<std::size_t, std::uint32_t>, Observed> observed;
    std::vector<PoisonObservation> new_poisons;
    std::vector<PoisonObservation> all_poisons;
    std::vector<Violation> violations;
    std::set<std::string> violated_oracles;

    [[nodiscard]] std::size_t host_count() const { return hosts.size(); }
    /// Station indexing: 0..host_count-1 are hosts, host_count the gateway.
    [[nodiscard]] host::Host* station(std::size_t idx) {
        return idx < hosts.size() ? hosts[idx] : gateway;
    }
    [[nodiscard]] std::size_t station_count() const { return hosts.size() + 1; }
};

Ipv4Address gateway_ip() { return Ipv4Address{192, 168, 1, 1}; }
Ipv4Address static_host_ip(std::size_t i) {
    return Ipv4Address{192, 168, 1, static_cast<std::uint8_t>(10 + i)};
}

void build_lan(RunState& rs) {
    const CheckScenario& s = *rs.scenario;
    rs.net = std::make_unique<sim::Network>(s.seed);
    rs.net->attach_metrics(rs.metrics);

    const std::size_t ports = s.host_count + 12;  // stations + infra headroom
    rs.fabric = &rs.net->emplace_node<l2::Switch>("switch", ports);

    sim::LinkConfig lossy;
    lossy.loss_probability = s.link_loss;
    const auto attach = [&rs](sim::NodeId id, sim::LinkConfig link) {
        const sim::PortId port = rs.next_port++;
        rs.net->connect(sim::Endpoint{id, 0}, sim::Endpoint{rs.fabric->id(), port}, link);
        return port;
    };

    // Gateway + DHCP server. Infrastructure links are lossless: the
    // detection oracle's soundness argument needs the mirror copy of every
    // switched frame to actually reach the monitor.
    host::HostConfig gw_cfg;
    gw_cfg.name = "gateway";
    gw_cfg.mac = MacAddress::local(1);
    gw_cfg.static_ip = gateway_ip();
    gw_cfg.gateway = gateway_ip();
    rs.gateway = &rs.net->emplace_node<host::Host>(gw_cfg);
    rs.fabric->set_trusted_port(attach(rs.gateway->id(), sim::LinkConfig{}), true);

    host::DhcpServer::Config dhcp_cfg;
    dhcp_cfg.pool_start = Ipv4Address{192, 168, 1, 100};
    dhcp_cfg.pool_size = static_cast<std::uint32_t>(s.host_count + 2);
    dhcp_cfg.router = gateway_ip();
    rs.dhcp_server = std::make_unique<host::DhcpServer>(*rs.gateway, dhcp_cfg);
    rs.sinks.push_back(std::make_unique<host::UdpSinkApp>(*rs.gateway, 7000, nullptr));

    for (std::size_t i = 0; i < s.host_count; ++i) {
        host::HostConfig cfg;
        cfg.name = "host" + std::to_string(i);
        cfg.mac = MacAddress::local(10 + i);
        if (!s.dhcp) cfg.static_ip = static_host_ip(i);
        cfg.gateway = gateway_ip();
        host::Host& h = rs.net->emplace_node<host::Host>(cfg);
        attach(h.id(), lossy);
        rs.hosts.push_back(&h);
        rs.sinks.push_back(std::make_unique<host::UdpSinkApp>(h, 7000, nullptr));
    }

    attack::Attacker::Config atk;
    atk.mac = MacAddress::local(0x666);
    atk.ip = Ipv4Address{192, 168, 1, 250};
    rs.attacker = &rs.net->emplace_node<attack::Attacker>(atk);
    attach(rs.attacker->id(), lossy);

    rs.monitor = &rs.net->emplace_node<detect::MonitorNode>("monitor", MacAddress::local(0x999));
    const sim::PortId mon_port = attach(rs.monitor->id(), sim::LinkConfig{});
    rs.fabric->set_mirror_port(mon_port);
    rs.fabric->set_trusted_port(mon_port, true);
}

void deploy_scheme(RunState& rs) {
    const CheckScenario& s = *rs.scenario;
    detect::DeploymentContext ctx;
    ctx.net = rs.net.get();
    ctx.fabric = rs.fabric;
    ctx.alerts = &rs.alerts;
    ctx.ops = &rs.crypto_ops;
    ctx.directory.push_back({"gateway", gateway_ip(), rs.gateway->mac()});
    if (!s.dhcp) {
        for (std::size_t i = 0; i < rs.hosts.size(); ++i) {
            ctx.directory.push_back(
                {rs.hosts[i]->name(), static_host_ip(i), rs.hosts[i]->mac()});
        }
    }
    for (const detect::HostRecord& r : ctx.directory) rs.directory_ips.insert(r.ip.value());
    ctx.attach_infra = [&rs](sim::NodeId id) {
        const sim::PortId port = rs.next_port++;
        rs.net->connect(sim::Endpoint{id, 0}, sim::Endpoint{rs.fabric->id(), port});
        rs.fabric->set_trusted_port(port, true);
        return port;
    };
    ctx.alloc_infra_ip = [&rs] {
        return Ipv4Address{192, 168, 1, static_cast<std::uint8_t>(240 + rs.infra_ips++)};
    };

    rs.scheme->deploy(ctx);
    rs.scheme->configure_switch(*rs.fabric);
    rs.scheme->protect_host(*rs.gateway);
    const std::size_t protect = std::min(s.protected_hosts, rs.hosts.size());
    for (std::size_t i = 0; i < protect; ++i) rs.scheme->protect_host(*rs.hosts[i]);
    rs.scheme->attach_monitor(*rs.monitor);
}

/// Settle-phase stimulus: every host talks to the gateway in both
/// directions and to one peer, so caches (and the monitor's view) hold the
/// true bindings before the adversarial schedule starts.
void schedule_settle_traffic(RunState& rs) {
    const CheckScenario& s = *rs.scenario;
    auto& sched = rs.net->scheduler();
    const Duration base = s.dhcp ? Duration::millis(1500) : Duration::millis(500);
    const wire::Bytes ping{0xA5, 0x5A};
    for (std::size_t i = 0; i < rs.hosts.size(); ++i) {
        host::Host* h = rs.hosts[i];
        const auto step = Duration::millis(150) * static_cast<std::int64_t>(i);
        sched.schedule_at(SimTime::zero() + base + step, [h, ping] {
            if (h->has_ip()) h->send_udp(gateway_ip(), 40000, 7000, ping);
        });
        sched.schedule_at(SimTime::zero() + base + Duration::millis(700) + step,
                          [&rs, h, ping] {
                              if (h->has_ip()) rs.gateway->send_udp(h->ip(), 40000, 7000, ping);
                          });
        host::Host* peer = rs.hosts[(i + 1) % rs.hosts.size()];
        if (peer != h) {
            sched.schedule_at(SimTime::zero() + base + Duration::millis(1400) + step,
                              [h, peer, ping] {
                                  if (h->has_ip() && peer->has_ip()) {
                                      h->send_udp(peer->ip(), 40001, 7000, ping);
                                  }
                              });
        }
    }
}

void inject_event(RunState& rs, const InjectedEvent& e) {
    const std::size_t n = rs.host_count();
    const std::size_t victim_idx = e.target % n;
    host::Host* victim = rs.hosts[victim_idx];

    if (e.kind == InjectKind::kReplayLegit) {
        const auto& pool = rs.tap->legit_frames();
        if (pool.empty()) return;
        // The pool holds the original transmit buffers: the replayed frame
        // is the captured allocation itself, bytes and auth trailers intact.
        rs.attacker->inject_raw(wire::FrameView{pool[e.aux % pool.size()]});
        return;
    }
    if (e.kind == InjectKind::kBenignTraffic) {
        std::size_t peer_idx = e.aux % (n + 1);
        if (peer_idx == victim_idx) peer_idx = n;  // fall back to the gateway
        host::Host* peer = rs.station(peer_idx);
        if (victim->has_ip() && peer->has_ip()) {
            victim->send_udp(peer->ip(), 40002, 7000, wire::Bytes{0x42});
        }
        return;
    }

    // Forgery kinds: claim that `spoofed`'s IP lives at the claimed MAC.
    std::size_t spoofed_idx = e.spoofed % (n + 1);
    if (spoofed_idx == victim_idx) spoofed_idx = n;
    host::Host* spoofed = rs.station(spoofed_idx);
    if (!victim->has_ip() || !spoofed->has_ip()) return;
    const Ipv4Address victim_ip = victim->ip();
    const Ipv4Address spoofed_ip = spoofed->ip();
    const MacAddress claimed = e.claim_attacker_mac ? rs.attacker->mac() : rs.dos_mac;

    EthernetFrame f;
    f.ether_type = wire::EtherType::kArp;
    // consistent_l2 keeps the Ethernet source equal to the claimed sender
    // MAC (stealthier); otherwise the frame betrays a different source.
    f.src = e.consistent_l2 ? claimed
                            : (claimed == rs.attacker->mac() ? rs.dos_mac : rs.attacker->mac());
    ArpPacket pkt;
    switch (e.kind) {
        case InjectKind::kForgedReply:
            pkt = ArpPacket::reply(claimed, spoofed_ip, victim->mac(), victim_ip);
            f.dst = victim->mac();
            break;
        case InjectKind::kForgedRequest:
            pkt = ArpPacket::request(claimed, spoofed_ip, victim_ip);
            f.dst = MacAddress::broadcast();
            break;
        case InjectKind::kGratuitousRequest:
            pkt = ArpPacket::gratuitous(claimed, spoofed_ip, /*as_reply=*/false);
            f.dst = MacAddress::broadcast();
            break;
        case InjectKind::kGratuitousReply:
            pkt = ArpPacket::gratuitous(claimed, spoofed_ip, /*as_reply=*/true);
            f.dst = MacAddress::broadcast();
            break;
        case InjectKind::kReplayLegit:
        case InjectKind::kBenignTraffic:
            return;  // handled above
    }
    f.payload = pkt.serialize();
    rs.attacker->inject_raw(f);
}

/// Diffs every station's ARP cache against ground truth and records
/// wrong-MAC transitions as PoisonObservations.
void observe_caches(RunState& rs) {
    rs.new_poisons.clear();
    struct Truth {
        std::size_t owner;
        Ipv4Address ip;
        MacAddress mac;
    };
    std::vector<Truth> truth;
    for (std::size_t o = 0; o < rs.station_count(); ++o) {
        host::Host* st = rs.station(o);
        if (st->has_ip()) truth.push_back({o, st->ip(), st->mac()});
    }
    for (std::size_t si = 0; si < rs.station_count(); ++si) {
        host::Host* st = rs.station(si);
        for (const Truth& t : truth) {
            if (t.owner == si) continue;
            const auto key = std::make_pair(si, t.ip.value());
            RunState::Observed cur;
            if (const auto entry = st->arp_cache().peek(t.ip)) {
                cur.binding = entry->mac == t.mac ? RunState::Binding::kCorrect
                                                  : RunState::Binding::kWrong;
                cur.mac = entry->mac;
            }
            const RunState::Observed prev = rs.observed[key];
            const bool newly_wrong =
                cur.binding == RunState::Binding::kWrong &&
                (prev.binding != RunState::Binding::kWrong || prev.mac != cur.mac);
            if (newly_wrong) {
                PoisonObservation p;
                p.station = si;
                p.owner = t.owner;
                p.ip = t.ip;
                p.mac = cur.mac;
                p.at = rs.net->now();
                p.overwrite = prev.binding == RunState::Binding::kCorrect;
                p.directory_ip = rs.directory_ips.count(t.ip.value()) > 0;
                p.announced = rs.tap->announced(t.ip, t.mac);
                rs.new_poisons.push_back(p);
                rs.all_poisons.push_back(p);
            }
            rs.observed[key] = cur;
        }
    }
}

void check_step(RunState& rs, const std::vector<std::unique_ptr<Oracle>>& oracles,
                bool final_check, std::size_t last_event) {
    observe_caches(rs);
    CheckContext ctx;
    ctx.scenario = rs.scenario;
    ctx.traits = &rs.traits;
    ctx.net = rs.net.get();
    ctx.alerts = &rs.alerts;
    ctx.metrics = &rs.metrics;
    ctx.host_count = rs.host_count();
    ctx.protected_hosts = std::min(rs.scenario->protected_hosts, rs.host_count());
    ctx.new_poisons = &rs.new_poisons;
    ctx.all_poisons = &rs.all_poisons;
    ctx.final_check = final_check;
    ctx.last_event = last_event;
    for (const auto& oracle : oracles) {
        // Report each oracle's first finding only: a broken invariant
        // usually stays broken, and one witness is all the shrinker needs.
        if (rs.violated_oracles.count(oracle->name()) > 0) continue;
        std::vector<Violation> out;
        oracle->check(ctx, out);
        if (!out.empty()) {
            rs.violated_oracles.insert(oracle->name());
            rs.violations.insert(rs.violations.end(), out.begin(), out.end());
        }
    }
}

}  // namespace

std::vector<detect::HostRecord> lan_directory(const CheckScenario& scenario) {
    std::vector<detect::HostRecord> dir;
    dir.push_back({"gateway", gateway_ip(), MacAddress::local(1)});
    if (!scenario.dhcp) {
        for (std::size_t i = 0; i < scenario.host_count; ++i) {
            dir.push_back({"host" + std::to_string(i), static_host_ip(i),
                           MacAddress::local(10 + i)});
        }
    }
    return dir;
}

RunOutcome Harness::run(const CheckScenario& scenario) const {
    RunState rs;
    rs.scenario = &scenario;
    rs.scheme = registry_->make(scenario.scheme);
    if (rs.scheme == nullptr) {
        throw std::runtime_error("check: unknown scheme '" + scenario.scheme + "'");
    }
    rs.traits = rs.scheme->traits();

    build_lan(rs);
    deploy_scheme(rs);

    const SimTime t0 = SimTime::zero() + scenario.settle;
    rs.tap = std::make_unique<CheckTap>(rs.attacker->mac(), rs.monitor->id(), t0);
    rs.net->add_tap(rs.tap.get());
    if (recorder_ != nullptr) {
        rs.recorder_tap =
            std::make_unique<RecorderTap>(rs.attacker->id(), rs.monitor->id(), recorder_);
        rs.net->add_tap(rs.recorder_tap.get());
    }

    rs.net->start_all();
    schedule_settle_traffic(rs);

    std::vector<InjectedEvent> events = scenario.events;
    std::stable_sort(events.begin(), events.end(),
                     [](const InjectedEvent& a, const InjectedEvent& b) { return a.at < b.at; });

    auto& sched = rs.net->scheduler();
    sched.run_until(t0);
    check_step(rs, *oracles_, /*final_check=*/false, Violation::kNoEvent);

    std::size_t last = Violation::kNoEvent;
    for (std::size_t i = 0; i < events.size(); ++i) {
        sched.run_until(t0 + events[i].at);
        check_step(rs, *oracles_, /*final_check=*/false, last);
        inject_event(rs, events[i]);
        last = i;
    }
    const Duration tail = events.empty() ? Duration::zero() : events.back().at;
    sched.run_until(t0 + tail + scenario.grace);
    check_step(rs, *oracles_, /*final_check=*/true, last);

    RunOutcome out;
    out.violations = std::move(rs.violations);
    out.alerts = rs.alerts.count();
    out.poisons = rs.all_poisons.size();
    out.frames = rs.net->counters().frames;
    out.events_executed = rs.net->scheduler().executed();
    return out;
}

}  // namespace arpsec::check

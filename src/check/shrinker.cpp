#include "check/shrinker.hpp"

#include <algorithm>

namespace arpsec::check {

namespace {

bool still_fails(const std::vector<Violation>& violations, const std::string& oracle) {
    return std::any_of(violations.begin(), violations.end(),
                       [&oracle](const Violation& v) { return v.oracle == oracle; });
}

}  // namespace

ShrinkResult Shrinker::shrink(const CheckScenario& failing, const std::string& oracle) const {
    ShrinkResult result;
    result.minimal = failing;
    std::vector<Violation> best_violations;

    const auto attempt = [&](const CheckScenario& candidate) {
        ++result.runs;
        const RunOutcome outcome = harness_->run(candidate);
        if (!still_fails(outcome.violations, oracle)) return false;
        result.minimal = candidate;
        best_violations = outcome.violations;
        return true;
    };

    std::size_t chunk = std::max<std::size_t>(1, result.minimal.events.size() / 2);
    while (chunk >= 1) {
        std::size_t i = 0;
        while (i < result.minimal.events.size() && result.runs < options_.max_runs) {
            CheckScenario candidate = result.minimal;
            const auto first = candidate.events.begin() + static_cast<std::ptrdiff_t>(i);
            const auto last = candidate.events.begin() +
                              static_cast<std::ptrdiff_t>(
                                  std::min(i + chunk, candidate.events.size()));
            candidate.events.erase(first, last);
            // On success stay at the same index: the next chunk slid into
            // this position. On failure move past the kept chunk.
            if (!attempt(candidate)) i += chunk;
        }
        if (chunk == 1 || result.runs >= options_.max_runs) break;
        chunk /= 2;
    }

    if (best_violations.empty()) {
        // Nothing could be removed (or budget 0): re-derive the minimal
        // scenario's violations so callers always get a consistent pair.
        ++result.runs;
        best_violations = harness_->run(result.minimal).violations;
    }
    result.violations = std::move(best_violations);
    result.removed = failing.events.size() - result.minimal.events.size();
    return result;
}

}  // namespace arpsec::check

#pragma once

#include <cstddef>
#include <string>

#include "check/harness.hpp"
#include "check/scenario.hpp"

namespace arpsec::check {

/// Result of minimizing a failing scenario.
struct ShrinkResult {
    CheckScenario minimal;
    std::size_t runs = 0;     // harness executions spent shrinking
    std::size_t removed = 0;  // events deleted from the original schedule
    std::vector<Violation> violations;  // the minimal scenario's violations
};

/// Greedy delta debugging over the injected event schedule: repeatedly
/// deletes chunks of events (halving the chunk size down to single events)
/// and keeps any deletion under which the harness still reports a
/// violation from the same oracle. Terminates at a 1-minimal schedule:
/// removing any single remaining event makes the failure disappear.
class Shrinker {
public:
    struct Options {
        /// Budget cap: shrinking stops (keeping the best-so-far scenario)
        /// after this many harness re-runs.
        std::size_t max_runs = 200;
    };

    explicit Shrinker(const Harness& harness) : harness_(&harness) {}
    Shrinker(const Harness& harness, Options options) : harness_(&harness), options_(options) {}

    /// `oracle` is the name of the oracle whose violation must be
    /// preserved; `failing` must already violate it.
    [[nodiscard]] ShrinkResult shrink(const CheckScenario& failing,
                                      const std::string& oracle) const;

private:
    const Harness* harness_;
    Options options_;
};

}  // namespace arpsec::check

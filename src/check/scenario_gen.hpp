#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/scenario.hpp"

namespace arpsec::check {

/// Knobs bounding the scenario space the generator samples from.
struct GenOptions {
    /// Scheme pool one scenario's scheme is drawn from. Empty is invalid.
    std::vector<std::string> schemes{"none"};
    std::size_t min_hosts = 3;
    std::size_t max_hosts = 8;
    std::size_t min_events = 4;
    std::size_t max_events = 16;
    /// Probability the LAN runs DHCP addressing instead of static.
    double dhcp_probability = 0.35;
    /// Probability the access links are lossy (then loss in (0, max_loss]).
    double lossy_probability = 0.25;
    double max_loss = 0.03;
    /// Probability of a partial deployment (protecting only a prefix of the
    /// hosts) instead of protecting everyone.
    double partial_probability = 0.35;
};

/// Draws random check scenarios from a common::Rng seed. The same (options,
/// seed) pair always produces the byte-identical scenario: the generator
/// forks fixed sub-streams (stream 1 = topology, stream 2 = schedule) from
/// the seed, so extending one phase cannot perturb the other. The golden
/// seed-stability tests pin both the stream assignment and the resulting
/// schedule digests.
class ScenarioGen {
public:
    explicit ScenarioGen(GenOptions options);

    /// Stream ids forked off the scenario seed; fixed forever — recorded
    /// repro artifacts depend on them.
    static constexpr std::uint64_t kTopologyStream = 1;
    static constexpr std::uint64_t kScheduleStream = 2;

    [[nodiscard]] CheckScenario generate(std::uint64_t seed) const;

    [[nodiscard]] const GenOptions& options() const { return options_; }

private:
    GenOptions options_;
};

}  // namespace arpsec::check

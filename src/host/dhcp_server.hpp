#pragma once

#include <cstdint>
#include <unordered_map>

#include "host/host.hpp"

namespace arpsec::host {

/// DHCP server application bound to a host (typically the gateway). Leases
/// addresses from a fixed pool; Dynamic ARP Inspection builds its binding
/// table by snooping this traffic at the switch.
class DhcpServer {
public:
    struct Config {
        wire::Ipv4Address pool_start{192, 168, 1, 100};
        std::uint32_t pool_size = 100;
        std::uint32_t lease_seconds = 3600;
        wire::Ipv4Address subnet_mask{255, 255, 255, 0};
        wire::Ipv4Address router{192, 168, 1, 1};
    };

    struct Stats {
        std::uint64_t discovers = 0;
        std::uint64_t offers = 0;
        std::uint64_t requests = 0;
        std::uint64_t acks = 0;
        std::uint64_t naks = 0;
        std::uint64_t releases = 0;
        std::uint64_t pool_exhausted = 0;
    };

    struct Lease {
        wire::MacAddress mac;
        common::SimTime expires;
    };

    DhcpServer(Host& host, Config config);

    [[nodiscard]] const Stats& stats() const { return stats_; }
    [[nodiscard]] const std::unordered_map<wire::Ipv4Address, Lease>& leases() const {
        return leases_;
    }
    [[nodiscard]] std::size_t free_addresses() const;

private:
    void handle(const wire::DhcpMessage& msg);
    std::optional<wire::Ipv4Address> allocate(wire::MacAddress mac);
    void reply(const wire::DhcpMessage& to, wire::DhcpMessageType type, wire::Ipv4Address yiaddr);

    Host& host_;
    Config config_;
    Stats stats_;
    std::unordered_map<wire::Ipv4Address, Lease> leases_;
};

}  // namespace arpsec::host

#pragma once

#include <cstdint>
#include <map>

#include "common/time.hpp"
#include "host/payload.hpp"

namespace arpsec::host {

/// Ground-truth record of every generated datagram: who sent it, whether
/// the intended receiver got it, and whether the attacker saw it. The
/// harness derives interception/blackhole rates from this, independently of
/// what any scheme reports.
class DeliveryLedger {
public:
    struct Record {
        common::SimTime sent_at;
        bool delivered = false;
        bool intercepted = false;       // observed by the attacker in transit
        bool modified = false;          // attacker tampered before relaying
        common::SimTime delivered_at;
    };

    void note_sent(const Payload& p, common::SimTime at) {
        auto [it, fresh] = records_.try_emplace(key(p));
        if (fresh) {
            ++sent_;
            ++flows_[p.flow].sent;
        }
        it->second.sent_at = at;
    }

    void note_delivered(const Payload& p, common::SimTime at) {
        auto it = records_.find(key(p));
        if (it == records_.end()) return;
        if (!it->second.delivered) {
            ++delivered_;
            ++flows_[p.flow].delivered;
        }
        it->second.delivered = true;
        it->second.delivered_at = at;
    }

    void note_intercepted(const Payload& p) {
        auto it = records_.find(key(p));
        if (it == records_.end()) return;
        if (!it->second.intercepted) {
            ++intercepted_;
            ++flows_[p.flow].intercepted;
        }
        it->second.intercepted = true;
    }

    void note_modified(const Payload& p) {
        auto it = records_.find(key(p));
        if (it == records_.end()) return;
        if (!it->second.modified) ++modified_;
        it->second.modified = true;
    }

    [[nodiscard]] std::uint64_t sent() const { return sent_; }
    [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
    [[nodiscard]] std::uint64_t intercepted() const { return intercepted_; }
    [[nodiscard]] std::uint64_t modified() const { return modified_; }

    /// Per-flow counters (attack efficacy is often flow-targeted: a DoS on
    /// one victim is invisible in fleet-wide ratios).
    struct FlowStats {
        std::uint64_t sent = 0;
        std::uint64_t delivered = 0;
        std::uint64_t intercepted = 0;
    };
    [[nodiscard]] FlowStats flow_stats(std::uint32_t flow) const {
        auto it = flows_.find(flow);
        return it == flows_.end() ? FlowStats{} : it->second;
    }

    [[nodiscard]] double delivery_ratio() const {
        return sent_ == 0 ? 0.0 : static_cast<double>(delivered_) / static_cast<double>(sent_);
    }
    [[nodiscard]] double interception_ratio() const {
        return sent_ == 0 ? 0.0 : static_cast<double>(intercepted_) / static_cast<double>(sent_);
    }

private:
    static std::uint64_t key(const Payload& p) {
        return (static_cast<std::uint64_t>(p.flow) << 48) ^ p.seq;
    }

    std::map<std::uint64_t, Record> records_;
    std::map<std::uint32_t, FlowStats> flows_;
    std::uint64_t sent_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t intercepted_ = 0;
    std::uint64_t modified_ = 0;
};

}  // namespace arpsec::host

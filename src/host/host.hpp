#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "arp/cache.hpp"
#include "common/stats.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "wire/arp_packet.hpp"
#include "wire/dhcp_message.hpp"
#include "wire/ipv4_packet.hpp"
#include "wire/udp_datagram.hpp"

namespace arpsec::host {

class Host;

/// Configuration of a simulated end host (single NIC on port 0).
struct HostConfig {
    std::string name = "host";
    wire::MacAddress mac;
    /// Static address; if unset the host runs a DHCP client.
    std::optional<wire::Ipv4Address> static_ip;
    wire::Ipv4Subnet subnet{wire::Ipv4Address{192, 168, 1, 0}, 24};
    wire::Ipv4Address gateway{192, 168, 1, 1};
    arp::CachePolicy arp_policy = arp::CachePolicy::linux26();

    /// Announce the acquired address with a gratuitous ARP (most stacks do).
    bool gratuitous_announce = true;
    common::Duration arp_request_timeout = common::Duration::seconds(1);
    int arp_max_tries = 3;
    /// Per-packet protocol processing cost (interrupt + stack traversal).
    common::Duration processing_delay = common::Duration::micros(15);
};

/// Everything the ARP engine knows about a received ARP packet when hooks
/// run, beyond the packet itself.
struct ArpRxInfo {
    bool solicited = false;   // matches one of our outstanding requests
    bool gratuitous = false;  // sender IP == target IP
    wire::MacAddress frame_src;
    sim::PortId port = 0;
};

/// Extension point for host-based schemes (Anticap, Antidote, S-ARP, TARP,
/// middleware). Hooks run in installation order on receive; the first
/// non-Accept verdict wins.
class ArpHook {
public:
    enum class Verdict {
        kAccept,  // continue down the pipeline
        kDrop,    // discard silently (prevention)
        kDefer,   // the hook took ownership; it will call
                  // Host::resume_arp_processing() later (e.g. after a
                  // verification probe or a signature check delay)
    };

    virtual ~ArpHook() = default;
    [[nodiscard]] virtual const char* hook_name() const = 0;

    virtual Verdict on_arp_receive(Host& host, const wire::ArpPacket& pkt,
                                   const ArpRxInfo& info) {
        (void)host;
        (void)pkt;
        (void)info;
        return Verdict::kAccept;
    }

    /// May mutate the outgoing packet (attach auth trailers) and return an
    /// extra transmit delay (signing cost).
    virtual common::Duration on_arp_transmit(Host& host, wire::ArpPacket& pkt) {
        (void)host;
        (void)pkt;
        return common::Duration::zero();
    }
};

struct UdpRxInfo {
    wire::Ipv4Address src_ip;
    wire::Ipv4Address dst_ip;
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    wire::MacAddress frame_src;
};

using UdpHandler = std::function<void(Host&, const UdpRxInfo&, const wire::Bytes&)>;

/// Statistics one host accumulates; the resolution latency distribution is
/// the primary quantity behind figure F1.
struct HostStats {
    common::Summary resolution_latency_us;
    std::uint64_t resolutions_ok = 0;
    std::uint64_t resolutions_failed = 0;
    std::uint64_t arp_requests_sent = 0;
    std::uint64_t arp_replies_sent = 0;
    std::uint64_t arp_received = 0;
    std::uint64_t arp_dropped_by_hook = 0;
    std::uint64_t udp_sent = 0;
    std::uint64_t udp_received = 0;
    std::uint64_t udp_send_failed = 0;  // resolution failure
};

/// A simulated end host: NIC + ARP engine + minimal IPv4/UDP stack + DHCP
/// client. Hosts are the vantage point for all host-based schemes.
class Host : public sim::Node {
public:
    explicit Host(HostConfig config);
    ~Host() override;

    void start() override;
    void on_frame(sim::PortId in_port, const wire::FrameView& view) override;

    // ---- Identity ----------------------------------------------------------
    [[nodiscard]] const HostConfig& config() const { return config_; }
    [[nodiscard]] wire::MacAddress mac() const { return config_.mac; }
    [[nodiscard]] bool has_ip() const { return ip_.has_value(); }
    /// The host's IP; only valid when has_ip().
    [[nodiscard]] wire::Ipv4Address ip() const { return ip_.value_or(wire::Ipv4Address::any()); }
    /// Registers a callback invoked whenever an address is acquired
    /// (statically at start, or on every DHCP bind). Multiple listeners may
    /// register (harness instrumentation, scheme enrollment hooks, ...).
    void add_ip_listener(std::function<void(wire::Ipv4Address)> fn) {
        ip_listeners_.push_back(std::move(fn));
    }

    // ---- ARP ---------------------------------------------------------------
    [[nodiscard]] arp::ArpCache& arp_cache() { return cache_; }
    [[nodiscard]] const arp::ArpCache& arp_cache() const { return cache_; }

    /// Resolves `ip` to a MAC, invoking `done` with the result (nullopt on
    /// timeout after the configured retries).
    void resolve(wire::Ipv4Address ip,
                 std::function<void(std::optional<wire::MacAddress>)> done);

    /// Installs a scheme hook (runs after already-installed hooks).
    void add_arp_hook(std::shared_ptr<ArpHook> hook) { hooks_.push_back(std::move(hook)); }

    /// Continues pipeline processing of a packet a hook deferred. The
    /// deferring hook is skipped; hooks after it still run.
    void resume_arp_processing(const wire::ArpPacket& pkt, const ArpRxInfo& info,
                               const ArpHook* after_hook);

    /// Applies a verified binding directly (bypasses hooks and policy).
    void apply_verified_binding(wire::Ipv4Address ip, wire::MacAddress mac);

    /// Sends an ARP packet out of the NIC (runs transmit hooks). The frame
    /// destination is broadcast for requests/announcements, unicast else.
    void send_arp(wire::ArpPacket pkt, wire::MacAddress frame_dst);

    // ---- UDP/IPv4 ----------------------------------------------------------
    /// Sends a UDP datagram; performs next-hop resolution first. Broadcast
    /// destinations go out immediately with the broadcast MAC.
    void send_udp(wire::Ipv4Address dst, std::uint16_t src_port, std::uint16_t dst_port,
                  wire::Bytes payload);
    void bind_udp(std::uint16_t port, UdpHandler handler);

    /// Handler for a non-UDP IPv4 protocol (e.g. the TCP stack). Receives
    /// packets addressed to this host carrying that protocol number.
    using Ipv4ProtoHandler =
        std::function<void(Host&, const wire::Ipv4Packet&, wire::MacAddress frame_src)>;
    void bind_ipv4_proto(wire::IpProto proto, Ipv4ProtoHandler handler);

    /// Sends a raw IPv4 payload under the given protocol number (resolves
    /// the next hop like send_udp).
    void send_ipv4(wire::Ipv4Address dst, wire::IpProto proto, wire::Bytes payload);

    // ---- Timers ------------------------------------------------------------
    sim::EventId after(common::Duration d, std::function<void()> fn);
    /// Repeats `fn` every `period` until the simulation ends.
    void every(common::Duration period, std::function<void()> fn);

    [[nodiscard]] HostStats& stats() { return stats_; }
    [[nodiscard]] const HostStats& stats() const { return stats_; }

    /// Releases the DHCP lease and forgets the address (host "leaves").
    void dhcp_release();

    /// Powers the host down: it stops answering and sourcing traffic (its
    /// apps see has_ip() == false). Used for offline-victim ablations and
    /// NIC-replacement churn.
    void power_off();
    /// Restores the host (re-acquires the static address or restarts DHCP).
    void power_on();
    [[nodiscard]] bool powered() const { return powered_; }

private:
    struct PendingResolution {
        int tries = 0;
        common::SimTime started;
        sim::EventId timeout_event = 0;
        std::vector<std::function<void(std::optional<wire::MacAddress>)>> callbacks;
    };

    // Frame dispatch.
    void handle_arp(const wire::FrameView& view, sim::PortId port);
    void process_arp_pipeline(const wire::ArpPacket& pkt, const ArpRxInfo& info,
                              std::size_t first_hook);
    void finish_arp_processing(const wire::ArpPacket& pkt, const ArpRxInfo& info);
    void handle_ipv4(const wire::FrameView& view);
    void arp_request_timeout(wire::Ipv4Address ip);
    void resolution_succeeded(wire::Ipv4Address ip, wire::MacAddress mac);
    [[nodiscard]] wire::Ipv4Address next_hop_for(wire::Ipv4Address dst) const;
    void transmit_udp(wire::Ipv4Address dst, wire::MacAddress dst_mac, std::uint16_t src_port,
                      std::uint16_t dst_port, const wire::Bytes& payload);

    // DHCP client state machine.
    enum class DhcpState { kDisabled, kInit, kSelecting, kRequesting, kBound };
    void dhcp_start();
    void dhcp_send_discover();
    void dhcp_send_request(const wire::DhcpMessage& offer);
    void dhcp_handle_reply(const wire::DhcpMessage& msg);
    void dhcp_schedule_renewal();
    void send_dhcp(wire::DhcpMessage msg);

    void acquire_ip(wire::Ipv4Address ip);

    HostConfig config_;
    bool powered_ = true;
    std::optional<wire::Ipv4Address> ip_;
    std::vector<std::function<void(wire::Ipv4Address)>> ip_listeners_;
    arp::ArpCache cache_;
    std::vector<std::shared_ptr<ArpHook>> hooks_;
    std::unordered_map<wire::Ipv4Address, PendingResolution> pending_;
    std::unordered_map<std::uint16_t, UdpHandler> udp_handlers_;
    std::unordered_map<std::uint8_t, Ipv4ProtoHandler> proto_handlers_;
    std::uint16_t next_ip_id_ = 1;
    HostStats stats_;

    DhcpState dhcp_state_ = DhcpState::kDisabled;
    std::uint32_t dhcp_xid_ = 0;
    wire::Ipv4Address dhcp_server_;
    std::uint32_t dhcp_lease_seconds_ = 0;
    sim::EventId dhcp_retry_event_ = 0;
};

}  // namespace arpsec::host

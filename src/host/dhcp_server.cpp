#include "host/dhcp_server.hpp"

namespace arpsec::host {

using wire::DhcpMessage;
using wire::DhcpMessageType;
using wire::Ipv4Address;
using wire::MacAddress;

DhcpServer::DhcpServer(Host& host, Config config) : host_(host), config_(config) {
    host_.bind_udp(DhcpMessage::kServerPort,
                   [this](Host&, const UdpRxInfo&, const wire::Bytes& data) {
                       auto msg = DhcpMessage::parse(data);
                       if (msg.ok() && msg->is_request()) handle(msg.value());
                   });
}

std::size_t DhcpServer::free_addresses() const {
    const auto now = host_.network().now();
    std::size_t used = 0;
    for (const auto& [ip, lease] : leases_) {
        if (lease.expires > now) ++used;
    }
    return config_.pool_size - std::min<std::size_t>(used, config_.pool_size);
}

std::optional<Ipv4Address> DhcpServer::allocate(MacAddress mac) {
    const auto now = host_.network().now();
    // Sticky allocation: a returning client gets its previous address.
    for (const auto& [ip, lease] : leases_) {
        if (lease.mac == mac && lease.expires > now) return ip;
    }
    Ipv4Address candidate = config_.pool_start;
    for (std::uint32_t i = 0; i < config_.pool_size; ++i, candidate = candidate.next()) {
        auto it = leases_.find(candidate);
        if (it == leases_.end() || it->second.expires <= now) return candidate;
    }
    ++stats_.pool_exhausted;
    return std::nullopt;
}

void DhcpServer::reply(const DhcpMessage& to, DhcpMessageType type, Ipv4Address yiaddr) {
    DhcpMessage msg;
    msg.op = 2;
    msg.xid = to.xid;
    msg.flags = DhcpMessage::kFlagBroadcast;
    msg.chaddr = to.chaddr;
    msg.yiaddr = yiaddr;
    msg.message_type = type;
    msg.server_id = host_.ip();
    msg.lease_seconds = config_.lease_seconds;
    msg.subnet_mask = config_.subnet_mask;
    msg.router = config_.router;
    host_.send_udp(Ipv4Address::broadcast(), DhcpMessage::kServerPort, DhcpMessage::kClientPort,
                   msg.serialize());
}

void DhcpServer::handle(const DhcpMessage& msg) {
    const auto now = host_.network().now();
    switch (msg.message_type) {
        case DhcpMessageType::kDiscover: {
            ++stats_.discovers;
            const auto ip = allocate(msg.chaddr);
            if (!ip) return;  // pool exhausted: stay silent, client retries
            // Reserve briefly so concurrent discovers don't collide.
            leases_[*ip] = Lease{msg.chaddr, now + common::Duration::seconds(10)};
            ++stats_.offers;
            reply(msg, DhcpMessageType::kOffer, *ip);
            break;
        }
        case DhcpMessageType::kRequest: {
            ++stats_.requests;
            const Ipv4Address wanted = msg.requested_ip.value_or(msg.ciaddr);
            if (wanted.is_any()) {
                ++stats_.naks;
                reply(msg, DhcpMessageType::kNak, Ipv4Address::any());
                return;
            }
            auto it = leases_.find(wanted);
            const bool available =
                it == leases_.end() || it->second.expires <= now || it->second.mac == msg.chaddr;
            if (!available) {
                ++stats_.naks;
                reply(msg, DhcpMessageType::kNak, Ipv4Address::any());
                return;
            }
            leases_[wanted] =
                Lease{msg.chaddr,
                      now + common::Duration::seconds(config_.lease_seconds)};
            ++stats_.acks;
            reply(msg, DhcpMessageType::kAck, wanted);
            break;
        }
        case DhcpMessageType::kRelease: {
            ++stats_.releases;
            auto it = leases_.find(msg.ciaddr);
            if (it != leases_.end() && it->second.mac == msg.chaddr) leases_.erase(it);
            break;
        }
        default:  // lint:allow(exhaustive-switch): server ignores client-bound message types
            break;
    }
}

}  // namespace arpsec::host

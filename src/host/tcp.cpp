#include "host/tcp.hpp"

namespace arpsec::host {

using common::Duration;
using wire::Bytes;
using wire::Ipv4Address;
using wire::TcpSegment;

TcpStack::TcpStack(Host& host) : TcpStack(host, Options()) {}

TcpStack::TcpStack(Host& host, Options options)
    : host_(host), options_(options), rng_(host.network().fork_rng(0x7C9 + host.id())) {
    host_.bind_ipv4_proto(wire::IpProto::kTcp,
                          [this](Host&, const wire::Ipv4Packet& pkt, wire::MacAddress) {
                              on_segment(pkt);
                          });
}

std::uint32_t TcpStack::initial_seq() { return static_cast<std::uint32_t>(rng_.next_u64()); }

void TcpStack::listen(std::uint16_t port, std::function<void(Connection&)> on_accept) {
    listeners_[port] = Listener{std::move(on_accept)};
}

TcpStack::Connection& TcpStack::connect(Ipv4Address dst, std::uint16_t dst_port,
                                        std::function<void(Connection&)> on_established) {
    auto conn = std::make_unique<Connection>();
    Connection& c = *conn;
    c.stack_ = this;
    c.peer_ip_ = dst;
    c.peer_port_ = dst_port;
    c.local_port_ = next_ephemeral_++;
    c.state_ = State::kSynSent;
    c.snd_nxt = initial_seq();
    c.snd_una = c.snd_nxt;

    const Key key{dst.value(), c.local_port_, dst_port};
    connections_[key] = std::move(conn);
    pending_established_[key] = std::move(on_established);
    ++stats_.connections_opened;

    emit(c, TcpSegment::kSyn, {}, /*track=*/true);
    return c;
}

void TcpStack::emit(Connection& c, std::uint8_t flags, Bytes payload, bool track) {
    TcpSegment seg;
    seg.src_port = c.local_port_;
    seg.dst_port = c.peer_port_;
    seg.seq = c.snd_nxt;
    seg.ack = c.rcv_nxt;
    seg.flags = flags;
    seg.payload = payload;
    ++stats_.segments_sent;
    host_.send_ipv4(c.peer_ip_, wire::IpProto::kTcp, seg.serialize());

    // SYN and FIN consume one sequence number; data consumes its length.
    std::uint32_t advance = static_cast<std::uint32_t>(payload.size());
    if ((flags & TcpSegment::kSyn) != 0 || (flags & TcpSegment::kFin) != 0) advance += 1;
    if (track && advance > 0) {
        c.retransmit_queue_.push_back(
            Connection::Unacked{c.snd_nxt, std::move(payload), flags, 0});
        c.snd_nxt += advance;
        arm_retransmit(c);
    }
}

void TcpStack::arm_retransmit(Connection& c) {
    if (c.retransmit_event_ != 0) return;  // already armed
    const Key key{c.peer_ip_.value(), c.local_port_, c.peer_port_};
    c.retransmit_event_ = host_.network().scheduler().schedule_after(
        options_.retransmit_timeout, [this, key] { retransmit_due(key); });
}

void TcpStack::retransmit_due(Key key) {
    auto it = connections_.find(key);
    if (it == connections_.end()) return;
    Connection& c = *it->second;
    c.retransmit_event_ = 0;
    if (c.retransmit_queue_.empty() || c.state_ == State::kReset ||
        c.state_ == State::kClosed) {
        return;
    }
    auto& head = c.retransmit_queue_.front();
    if (++head.tries > options_.max_retries) {
        // Give up: the connection is dead.
        c.state_ = State::kClosed;
        if (c.on_close) c.on_close();
        return;
    }
    ++stats_.retransmissions;
    TcpSegment seg;
    seg.src_port = c.local_port_;
    seg.dst_port = c.peer_port_;
    seg.seq = head.seq;
    seg.ack = c.rcv_nxt;
    seg.flags = head.flags;
    seg.payload = head.data;
    ++stats_.segments_sent;
    host_.send_ipv4(c.peer_ip_, wire::IpProto::kTcp, seg.serialize());
    arm_retransmit(c);
}

void TcpStack::process_ack(Connection& c, std::uint32_t ack) {
    bool progressed = false;
    while (!c.retransmit_queue_.empty()) {
        const auto& head = c.retransmit_queue_.front();
        std::uint32_t advance = static_cast<std::uint32_t>(head.data.size());
        if ((head.flags & TcpSegment::kSyn) != 0 || (head.flags & TcpSegment::kFin) != 0) {
            advance += 1;
        }
        // Sequence arithmetic modulo 2^32: head fully acked?
        const std::uint32_t end = head.seq + advance;
        if (static_cast<std::int32_t>(ack - end) >= 0) {
            c.retransmit_queue_.pop_front();
            progressed = true;
        } else {
            break;
        }
    }
    if (static_cast<std::int32_t>(ack - c.snd_una) > 0) c.snd_una = ack;
    if (progressed) {
        // Re-arm the timer for the new head (if any).
        if (c.retransmit_event_ != 0) {
            host_.network().scheduler().cancel(c.retransmit_event_);
            c.retransmit_event_ = 0;
        }
        if (!c.retransmit_queue_.empty()) arm_retransmit(c);
    }
}

void TcpStack::on_segment(const wire::Ipv4Packet& pkt) {
    auto parsed = TcpSegment::parse(pkt.payload);
    if (!parsed.ok()) return;
    const TcpSegment& seg = parsed.value();
    ++stats_.segments_received;

    const Key key{pkt.src.value(), seg.dst_port, seg.src_port};
    auto it = connections_.find(key);
    if (it != connections_.end()) {
        segment_arrived(*it->second, seg);
        return;
    }
    if (seg.has(TcpSegment::kSyn) && !seg.has(TcpSegment::kAck) &&
        listeners_.count(seg.dst_port) != 0) {
        handle_listen_syn(seg.dst_port, pkt.src, seg);
    }
}

void TcpStack::handle_listen_syn(std::uint16_t port, Ipv4Address from,
                                 const TcpSegment& seg) {
    auto conn = std::make_unique<Connection>();
    Connection& c = *conn;
    c.stack_ = this;
    c.peer_ip_ = from;
    c.peer_port_ = seg.src_port;
    c.local_port_ = port;
    c.state_ = State::kSynReceived;
    c.rcv_nxt = seg.seq + 1;
    c.snd_nxt = initial_seq();
    c.snd_una = c.snd_nxt;
    const Key key{from.value(), port, seg.src_port};
    connections_[key] = std::move(conn);
    emit(c, TcpSegment::kSyn | TcpSegment::kAck, {}, /*track=*/true);
}

void TcpStack::segment_arrived(Connection& c, const TcpSegment& seg) {
    // RST: in this simulation-grade stack any RST whose sequence lands at
    // the receive point (or carries a plausible ACK during handshake)
    // kills the connection — the classic in-window reset.
    if (seg.has(TcpSegment::kRst)) {
        if (c.state_ == State::kReset || c.state_ == State::kClosed) return;
        if (seg.seq == c.rcv_nxt || c.state_ == State::kSynSent) {
            c.state_ = State::kReset;
            ++stats_.resets_received;
            if (c.retransmit_event_ != 0) {
                host_.network().scheduler().cancel(c.retransmit_event_);
                c.retransmit_event_ = 0;
            }
            c.retransmit_queue_.clear();
            if (c.on_reset) c.on_reset();
        }
        return;
    }

    if (seg.has(TcpSegment::kAck)) process_ack(c, seg.ack);

    switch (c.state_) {
        case State::kSynSent:
            if (seg.has(TcpSegment::kSyn) && seg.has(TcpSegment::kAck)) {
                c.rcv_nxt = seg.seq + 1;
                c.state_ = State::kEstablished;
                emit(c, TcpSegment::kAck, {}, /*track=*/false);
                const Key key{c.peer_ip_.value(), c.local_port_, c.peer_port_};
                if (auto cb = pending_established_.find(key);
                    cb != pending_established_.end()) {
                    auto fn = std::move(cb->second);
                    pending_established_.erase(cb);
                    if (fn) fn(c);
                }
            }
            return;
        case State::kSynReceived:
            if (seg.has(TcpSegment::kAck) && seg.ack == c.snd_nxt) {
                c.state_ = State::kEstablished;
                ++stats_.connections_accepted;
                if (auto l = listeners_.find(c.local_port_); l != listeners_.end()) {
                    if (l->second.on_accept) l->second.on_accept(c);
                }
            }
            // Fall through to data handling: the handshake ACK may carry
            // data in aggressive stacks (ours doesn't, but tolerate it).
            break;
        case State::kEstablished:
        case State::kFinWait:
            break;
        case State::kClosed:
        case State::kReset:
        case State::kListen:
            return;
    }

    if (!seg.payload.empty()) {
        if (seg.seq == c.rcv_nxt) {
            c.rcv_nxt += static_cast<std::uint32_t>(seg.payload.size());
            stats_.bytes_delivered += seg.payload.size();
            if (c.on_data) c.on_data(seg.payload);
            emit(c, TcpSegment::kAck, {}, /*track=*/false);
        } else {
            // Out-of-order (go-back-N): drop and re-ACK the expected point.
            ++stats_.out_of_order_dropped;
            emit(c, TcpSegment::kAck, {}, /*track=*/false);
        }
    }

    if (seg.has(TcpSegment::kFin) && seg.seq == c.rcv_nxt) {
        c.rcv_nxt += 1;
        emit(c, TcpSegment::kAck, {}, /*track=*/false);
        c.state_ = State::kClosed;
        if (c.on_close) c.on_close();
    }
}

void TcpStack::Connection::send(Bytes data) {
    if (state_ != State::kEstablished || data.empty()) return;
    stack_->emit(*this, TcpSegment::kPsh | TcpSegment::kAck, std::move(data), /*track=*/true);
}

void TcpStack::Connection::close() {
    if (state_ != State::kEstablished && state_ != State::kSynReceived) return;
    state_ = State::kFinWait;
    stack_->emit(*this, TcpSegment::kFin | TcpSegment::kAck, {}, /*track=*/true);
}

}  // namespace arpsec::host

#include "host/host.hpp"

#include <cassert>

#include "common/log.hpp"

namespace arpsec::host {

using common::Duration;
using wire::ArpOp;
using wire::ArpPacket;
using wire::DhcpMessage;
using wire::DhcpMessageType;
using wire::EthernetFrame;
using wire::EtherType;
using wire::Ipv4Address;
using wire::Ipv4Packet;
using wire::MacAddress;
using wire::UdpDatagram;

Host::Host(HostConfig config)
    : sim::Node(config.name), config_(std::move(config)), cache_(config_.arp_policy) {}

Host::~Host() = default;

void Host::start() {
    if (config_.static_ip) {
        acquire_ip(*config_.static_ip);
    } else {
        dhcp_state_ = DhcpState::kInit;
        dhcp_start();
    }
}

void Host::acquire_ip(Ipv4Address ip) {
    ip_ = ip;
    // Listeners run before the gratuitous announce so enrollment hooks
    // (S-ARP AKD registration, TARP ticket reissue) cover the announcement.
    const auto listeners = ip_listeners_;  // guard against registration during dispatch
    for (const auto& fn : listeners) fn(ip);
    if (config_.gratuitous_announce) {
        send_arp(ArpPacket::gratuitous(mac(), ip, /*as_reply=*/false), MacAddress::broadcast());
    }
}

// --------------------------------------------------------------------------
// Frame dispatch
// --------------------------------------------------------------------------

void Host::on_frame(sim::PortId in_port, const wire::FrameView& view) {
    if (!powered_) return;
    // Non-promiscuous NIC: accept only frames addressed to us or broadcast.
    const MacAddress dst = view.dst();
    if (dst != mac() && !dst.is_broadcast()) return;
    if (view.src() == mac()) return;  // our own transmissions reflected back

    switch (view.ether_type()) {
        case EtherType::kArp:
            handle_arp(view, in_port);
            break;
        case EtherType::kIpv4:
            handle_ipv4(view);
            break;
    }
}

// --------------------------------------------------------------------------
// ARP engine
// --------------------------------------------------------------------------

void Host::handle_arp(const wire::FrameView& view, sim::PortId port) {
    // Memoized in the shared buffer — the switch's DAI or the monitor may
    // already have paid this parse.
    const ArpPacket* parsed = view.arp();
    if (parsed == nullptr) return;
    const ArpPacket& pkt = *parsed;
    ++stats_.arp_received;

    ArpRxInfo info;
    info.frame_src = view.src();
    info.port = port;
    info.gratuitous = pkt.is_gratuitous();
    info.solicited =
        pkt.op == ArpOp::kReply && !info.gratuitous && pending_.count(pkt.sender_ip) != 0;

    process_arp_pipeline(pkt, info, /*first_hook=*/0);
}

void Host::process_arp_pipeline(const ArpPacket& pkt, const ArpRxInfo& info,
                                std::size_t first_hook) {
    for (std::size_t i = first_hook; i < hooks_.size(); ++i) {
        switch (hooks_[i]->on_arp_receive(*this, pkt, info)) {
            case ArpHook::Verdict::kAccept:
                continue;
            case ArpHook::Verdict::kDrop:
                ++stats_.arp_dropped_by_hook;
                return;
            case ArpHook::Verdict::kDefer:
                return;  // hook will call resume_arp_processing()
        }
    }
    finish_arp_processing(pkt, info);
}

void Host::resume_arp_processing(const ArpPacket& pkt, const ArpRxInfo& info,
                                 const ArpHook* after_hook) {
    std::size_t next = hooks_.size();
    for (std::size_t i = 0; i < hooks_.size(); ++i) {
        if (hooks_[i].get() == after_hook) {
            next = i + 1;
            break;
        }
    }
    process_arp_pipeline(pkt, info, next);
}

void Host::finish_arp_processing(const ArpPacket& pkt, const ArpRxInfo& info) {
    // Classify for the cache policy.
    arp::UpdateSource source;
    if (info.gratuitous) {
        source = pkt.op == ArpOp::kReply ? arp::UpdateSource::kGratuitousReply
                                         : arp::UpdateSource::kGratuitousRequest;
    } else if (pkt.op == ArpOp::kReply) {
        source = info.solicited ? arp::UpdateSource::kSolicitedReply
                                : arp::UpdateSource::kUnsolicitedReply;
    } else {
        source = arp::UpdateSource::kRequest;
    }

    if (!pkt.sender_ip.is_any() && !pkt.sender_mac.is_zero()) {
        const auto outcome = cache_.offer(pkt.sender_ip, pkt.sender_mac, source, network().now());
        if (outcome.accepted && pending_.count(pkt.sender_ip) != 0) {
            resolution_succeeded(pkt.sender_ip, pkt.sender_mac);
        }
    }

    // Answer requests for our address.
    if (pkt.op == ArpOp::kRequest && has_ip() && pkt.target_ip == ip() && !info.gratuitous) {
        ++stats_.arp_replies_sent;
        send_arp(ArpPacket::reply(mac(), ip(), pkt.sender_mac, pkt.sender_ip), pkt.sender_mac);
    }
}

void Host::apply_verified_binding(Ipv4Address ip, MacAddress mac_addr) {
    cache_.force(ip, mac_addr, network().now());
    if (pending_.count(ip) != 0) resolution_succeeded(ip, mac_addr);
}

void Host::send_arp(ArpPacket pkt, MacAddress frame_dst) {
    Duration extra = config_.processing_delay;
    for (auto& hook : hooks_) extra += hook->on_arp_transmit(*this, pkt);

    EthernetFrame frame;
    frame.dst = frame_dst;
    frame.src = mac();
    frame.ether_type = EtherType::kArp;
    frame.payload = pkt.serialize();
    after(extra, [this, frame = std::move(frame)] {
        if (powered_) send(0, frame);
    });
}

void Host::resolve(Ipv4Address target,
                   std::function<void(std::optional<MacAddress>)> done) {
    if (auto hit = cache_.lookup(target, network().now())) {
        ++stats_.resolutions_ok;
        done(hit);
        return;
    }
    auto [it, fresh] = pending_.try_emplace(target);
    it->second.callbacks.push_back(std::move(done));
    if (!fresh) return;  // request already in flight

    it->second.tries = 1;
    it->second.started = network().now();
    ++stats_.arp_requests_sent;
    send_arp(ArpPacket::request(mac(), ip(), target), MacAddress::broadcast());
    it->second.timeout_event =
        after(config_.arp_request_timeout, [this, target] { arp_request_timeout(target); });
}

void Host::arp_request_timeout(Ipv4Address target) {
    auto it = pending_.find(target);
    if (it == pending_.end()) return;
    if (it->second.tries >= config_.arp_max_tries) {
        auto callbacks = std::move(it->second.callbacks);
        pending_.erase(it);
        ++stats_.resolutions_failed;
        for (auto& cb : callbacks) cb(std::nullopt);
        return;
    }
    it->second.tries += 1;
    ++stats_.arp_requests_sent;
    send_arp(ArpPacket::request(mac(), ip(), target), MacAddress::broadcast());
    it->second.timeout_event =
        after(config_.arp_request_timeout, [this, target] { arp_request_timeout(target); });
}

void Host::resolution_succeeded(Ipv4Address target, MacAddress mac_addr) {
    auto it = pending_.find(target);
    if (it == pending_.end()) return;
    network().scheduler().cancel(it->second.timeout_event);
    const Duration took = network().now() - it->second.started;
    stats_.resolution_latency_us.add(took.to_micros());
    ++stats_.resolutions_ok;
    auto callbacks = std::move(it->second.callbacks);
    pending_.erase(it);
    for (auto& cb : callbacks) cb(mac_addr);
}

// --------------------------------------------------------------------------
// IPv4 / UDP
// --------------------------------------------------------------------------

Ipv4Address Host::next_hop_for(Ipv4Address dst) const {
    if (dst.is_broadcast() || config_.subnet.contains(dst)) return dst;
    return config_.gateway;
}

void Host::send_udp(Ipv4Address dst, std::uint16_t src_port, std::uint16_t dst_port,
                    wire::Bytes payload) {
    if (dst.is_broadcast() || dst == config_.subnet.broadcast_address()) {
        transmit_udp(dst, MacAddress::broadcast(), src_port, dst_port, payload);
        return;
    }
    const Ipv4Address hop = next_hop_for(dst);
    resolve(hop, [this, dst, src_port, dst_port, payload = std::move(payload)](
                     std::optional<MacAddress> mac_addr) {
        if (!mac_addr) {
            ++stats_.udp_send_failed;
            return;
        }
        transmit_udp(dst, *mac_addr, src_port, dst_port, payload);
    });
}

void Host::transmit_udp(Ipv4Address dst, MacAddress dst_mac, std::uint16_t src_port,
                        std::uint16_t dst_port, const wire::Bytes& payload) {
    UdpDatagram udp;
    udp.src_port = src_port;
    udp.dst_port = dst_port;
    udp.payload = payload;

    Ipv4Packet ip_pkt;
    ip_pkt.identification = next_ip_id_++;
    ip_pkt.protocol = wire::IpProto::kUdp;
    ip_pkt.src = ip_.value_or(Ipv4Address::any());
    ip_pkt.dst = dst;
    ip_pkt.payload = udp.serialize();

    EthernetFrame frame;
    frame.dst = dst_mac;
    frame.src = mac();
    frame.ether_type = EtherType::kIpv4;
    frame.payload = ip_pkt.serialize();

    ++stats_.udp_sent;
    after(config_.processing_delay, [this, frame = std::move(frame)] {
        if (powered_) send(0, frame);
    });
}

void Host::handle_ipv4(const wire::FrameView& view) {
    const Ipv4Packet* ip_pkt = view.ipv4();  // memoized in the shared buffer
    if (ip_pkt == nullptr) return;
    const bool for_us = has_ip() && ip_pkt->dst == ip();
    const bool broadcast = ip_pkt->dst.is_broadcast() ||
                           ip_pkt->dst == config_.subnet.broadcast_address();
    if (!for_us && !broadcast) return;
    if (ip_pkt->protocol != wire::IpProto::kUdp) {
        auto it = proto_handlers_.find(static_cast<std::uint8_t>(ip_pkt->protocol));
        if (it != proto_handlers_.end()) it->second(*this, *ip_pkt, view.src());
        return;
    }
    auto udp = UdpDatagram::parse(ip_pkt->payload);
    if (!udp.ok()) return;

    ++stats_.udp_received;
    auto it = udp_handlers_.find(udp->dst_port);
    if (it == udp_handlers_.end()) return;
    UdpRxInfo info;
    info.src_ip = ip_pkt->src;
    info.dst_ip = ip_pkt->dst;
    info.src_port = udp->src_port;
    info.dst_port = udp->dst_port;
    info.frame_src = view.src();
    it->second(*this, info, udp->payload);
}

void Host::bind_udp(std::uint16_t port, UdpHandler handler) {
    udp_handlers_[port] = std::move(handler);
}

void Host::bind_ipv4_proto(wire::IpProto proto, Ipv4ProtoHandler handler) {
    proto_handlers_[static_cast<std::uint8_t>(proto)] = std::move(handler);
}

void Host::send_ipv4(Ipv4Address dst, wire::IpProto proto, wire::Bytes payload) {
    const Ipv4Address hop = next_hop_for(dst);
    resolve(hop, [this, dst, proto, payload = std::move(payload)](
                     std::optional<MacAddress> mac_addr) mutable {
        if (!mac_addr) return;
        Ipv4Packet ip_pkt;
        ip_pkt.identification = next_ip_id_++;
        ip_pkt.protocol = proto;
        ip_pkt.src = ip_.value_or(Ipv4Address::any());
        ip_pkt.dst = dst;
        ip_pkt.payload = std::move(payload);

        EthernetFrame frame;
        frame.dst = *mac_addr;
        frame.src = mac();
        frame.ether_type = EtherType::kIpv4;
        frame.payload = ip_pkt.serialize();
        after(config_.processing_delay, [this, frame = std::move(frame)] {
            if (powered_) send(0, frame);
        });
    });
}

// --------------------------------------------------------------------------
// Timers
// --------------------------------------------------------------------------

sim::EventId Host::after(Duration d, std::function<void()> fn) {
    return network().scheduler().schedule_after(d, std::move(fn));
}

void Host::every(Duration period, std::function<void()> fn) {
    after(period, [this, period, fn = std::move(fn)]() mutable {
        fn();
        every(period, std::move(fn));
    });
}

// --------------------------------------------------------------------------
// DHCP client
// --------------------------------------------------------------------------

void Host::dhcp_start() {
    // The client listens on UDP 68.
    bind_udp(DhcpMessage::kClientPort, [this](Host&, const UdpRxInfo&, const wire::Bytes& data) {
        auto msg = DhcpMessage::parse(data);
        if (!msg.ok()) return;
        dhcp_handle_reply(msg.value());
    });
    auto rng = network().fork_rng(0x0DC0 + id());
    dhcp_xid_ = static_cast<std::uint32_t>(rng.next_u64());
    dhcp_send_discover();
}

void Host::send_dhcp(DhcpMessage msg) {
    send_udp(Ipv4Address::broadcast(), DhcpMessage::kClientPort, DhcpMessage::kServerPort,
             msg.serialize());
}

void Host::dhcp_send_discover() {
    dhcp_state_ = DhcpState::kSelecting;
    DhcpMessage msg;
    msg.op = 1;
    msg.xid = dhcp_xid_;
    msg.flags = DhcpMessage::kFlagBroadcast;
    msg.chaddr = mac();
    msg.message_type = DhcpMessageType::kDiscover;
    send_dhcp(msg);
    dhcp_retry_event_ = after(Duration::seconds(3), [this] {
        if (dhcp_state_ == DhcpState::kSelecting || dhcp_state_ == DhcpState::kRequesting) {
            dhcp_send_discover();
        }
    });
}

void Host::dhcp_send_request(const DhcpMessage& offer) {
    dhcp_state_ = DhcpState::kRequesting;
    DhcpMessage msg;
    msg.op = 1;
    msg.xid = dhcp_xid_;
    msg.flags = DhcpMessage::kFlagBroadcast;
    msg.chaddr = mac();
    msg.message_type = DhcpMessageType::kRequest;
    msg.requested_ip = offer.yiaddr;
    msg.server_id = offer.server_id;
    send_dhcp(msg);
}

void Host::dhcp_handle_reply(const DhcpMessage& msg) {
    if (!msg.is_reply() || msg.xid != dhcp_xid_ || msg.chaddr != mac()) return;
    switch (msg.message_type) {
        case DhcpMessageType::kOffer:
            if (dhcp_state_ == DhcpState::kSelecting) dhcp_send_request(msg);
            break;
        case DhcpMessageType::kAck:
            if (dhcp_state_ == DhcpState::kRequesting || dhcp_state_ == DhcpState::kBound) {
                network().scheduler().cancel(dhcp_retry_event_);
                dhcp_state_ = DhcpState::kBound;
                dhcp_server_ = msg.server_id.value_or(Ipv4Address::any());
                dhcp_lease_seconds_ = msg.lease_seconds.value_or(3600);
                const bool fresh = !has_ip() || ip() != msg.yiaddr;
                if (fresh) acquire_ip(msg.yiaddr);
                dhcp_schedule_renewal();
            }
            break;
        case DhcpMessageType::kNak:
            dhcp_state_ = DhcpState::kInit;
            ip_.reset();
            dhcp_send_discover();
            break;
        default:  // lint:allow(exhaustive-switch): client ignores server-bound message types
            break;
    }
}

void Host::dhcp_schedule_renewal() {
    // Renew at T/2 with a unicast-style REQUEST (sent broadcast on this
    // simulated LAN; the server matches by xid/chaddr).
    const auto renew_in = Duration::seconds(std::max<std::int64_t>(1, dhcp_lease_seconds_ / 2));
    after(renew_in, [this] {
        if (dhcp_state_ != DhcpState::kBound) return;
        DhcpMessage msg;
        msg.op = 1;
        msg.xid = dhcp_xid_;
        msg.flags = DhcpMessage::kFlagBroadcast;
        msg.chaddr = mac();
        msg.ciaddr = ip();
        msg.message_type = DhcpMessageType::kRequest;
        msg.requested_ip = ip();
        msg.server_id = dhcp_server_;
        send_dhcp(msg);
        dhcp_state_ = DhcpState::kRequesting;
        dhcp_retry_event_ = after(Duration::seconds(3), [this] {
            if (dhcp_state_ == DhcpState::kRequesting) dhcp_send_discover();
        });
    });
}

void Host::dhcp_release() {
    if (dhcp_state_ == DhcpState::kBound && has_ip()) {
        DhcpMessage msg;
        msg.op = 1;
        msg.xid = dhcp_xid_;
        msg.chaddr = mac();
        msg.ciaddr = ip();
        msg.message_type = DhcpMessageType::kRelease;
        msg.server_id = dhcp_server_;
        send_dhcp(msg);
    }
    dhcp_state_ = DhcpState::kDisabled;
    ip_.reset();
}

void Host::power_off() {
    powered_ = false;
    ip_.reset();
    dhcp_state_ = DhcpState::kDisabled;
    pending_.clear();
}

void Host::power_on() {
    if (powered_) return;
    powered_ = true;
    start();
}

}  // namespace arpsec::host

#pragma once

#include <cstdint>
#include <optional>

#include "wire/buffer.hpp"

namespace arpsec::host {

/// Test payload carried by generated traffic. Flow/sequence numbers give
/// the harness ground truth for delivery and interception accounting.
struct Payload {
    static constexpr std::uint32_t kMagic = 0x41504C44;  // "APLD"

    std::uint32_t flow = 0;
    std::uint64_t seq = 0;

    [[nodiscard]] wire::Bytes serialize() const {
        wire::Bytes out;
        wire::ByteWriter w{out};
        w.u32(kMagic);
        w.u32(flow);
        w.u64(seq);
        return out;
    }

    static std::optional<Payload> parse(std::span<const std::uint8_t> data) {
        wire::ByteReader r{data};
        if (r.u32() != kMagic) return std::nullopt;
        Payload p;
        p.flow = r.u32();
        p.seq = r.u64();
        if (!r.ok()) return std::nullopt;
        return p;
    }
};

}  // namespace arpsec::host

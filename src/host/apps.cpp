#include "host/apps.hpp"

namespace arpsec::host {

UdpSinkApp::UdpSinkApp(Host& host, std::uint16_t port, DeliveryLedger* ledger, bool echo) {
    host.bind_udp(port, [this, ledger, echo](Host& h, const UdpRxInfo& info,
                                             const wire::Bytes& data) {
        ++received_;
        const auto payload = Payload::parse(data);
        if (payload && ledger != nullptr) ledger->note_delivered(*payload, h.network().now());
        if (echo && !info.src_ip.is_any()) {
            h.send_udp(info.src_ip, info.dst_port, info.src_port, data);
        }
    });
}

TrafficApp::TrafficApp(Host& host, DeliveryLedger& ledger, std::vector<FlowSpec> flows)
    : host_(host), ledger_(ledger), flows_(std::move(flows)), next_seq_(flows_.size(), 0) {
    for (std::size_t i = 0; i < flows_.size(); ++i) {
        host_.every(flows_[i].period, [this, i] { tick(i); });
    }
}

void TrafficApp::tick(std::size_t flow_index) {
    if (!host_.has_ip()) return;  // wait for DHCP
    const FlowSpec& flow = flows_[flow_index];
    Payload p;
    p.flow = flow.flow_id;
    p.seq = next_seq_[flow_index]++;
    ledger_.note_sent(p, host_.network().now());
    ++sent_;
    host_.send_udp(flow.dst, static_cast<std::uint16_t>(40000 + flow.flow_id), flow.dst_port,
                   p.serialize());
}

}  // namespace arpsec::host

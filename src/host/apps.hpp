#pragma once

#include <vector>

#include "host/host.hpp"
#include "host/ledger.hpp"
#include "host/payload.hpp"

namespace arpsec::host {

/// Receives test traffic and records deliveries in the ledger; optionally
/// echoes the payload back to the sender (request/response flows).
class UdpSinkApp {
public:
    UdpSinkApp(Host& host, std::uint16_t port, DeliveryLedger* ledger, bool echo = false);

    [[nodiscard]] std::uint64_t received() const { return received_; }

private:
    std::uint64_t received_ = 0;
};

/// Generates periodic UDP flows to fixed destinations, registering each
/// datagram with the ledger. Waits for the host to hold an address.
class TrafficApp {
public:
    struct FlowSpec {
        std::uint32_t flow_id = 0;
        wire::Ipv4Address dst;
        std::uint16_t dst_port = 7000;
        common::Duration period = common::Duration::millis(200);
    };

    TrafficApp(Host& host, DeliveryLedger& ledger, std::vector<FlowSpec> flows);

    [[nodiscard]] std::uint64_t sent() const { return sent_; }

private:
    void tick(std::size_t flow_index);

    Host& host_;
    DeliveryLedger& ledger_;
    std::vector<FlowSpec> flows_;
    std::vector<std::uint64_t> next_seq_;
    std::uint64_t sent_ = 0;
};

}  // namespace arpsec::host

#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "common/rng.hpp"
#include "host/host.hpp"
#include "wire/tcp_segment.hpp"

namespace arpsec::host {

/// Minimal TCP implementation attached to a Host: three-way handshake,
/// in-order data transfer with cumulative ACKs and go-back-N
/// retransmission, FIN teardown and RST handling. Built so the framework
/// can demonstrate what a successful ARP MITM *buys* an attacker —
/// observing sequence numbers and killing or spoofing connections — and
/// measure how the prevention schemes take that away.
class TcpStack {
public:
    struct Options {
        common::Duration retransmit_timeout = common::Duration::millis(200);
        int max_retries = 6;
    };

    enum class State {
        kClosed,
        kListen,
        kSynSent,
        kSynReceived,
        kEstablished,
        kFinWait,
        kReset,
    };

    struct Stats {
        std::uint64_t segments_sent = 0;
        std::uint64_t segments_received = 0;
        std::uint64_t retransmissions = 0;
        std::uint64_t connections_opened = 0;
        std::uint64_t connections_accepted = 0;
        std::uint64_t resets_received = 0;
        std::uint64_t bytes_delivered = 0;
        std::uint64_t out_of_order_dropped = 0;
    };

    /// One end of a connection. Owned by the stack; stable address.
    class Connection {
    public:
        [[nodiscard]] State state() const { return state_; }
        [[nodiscard]] wire::Ipv4Address peer_ip() const { return peer_ip_; }
        [[nodiscard]] std::uint16_t local_port() const { return local_port_; }
        [[nodiscard]] std::uint16_t peer_port() const { return peer_port_; }

        /// Queues application data for in-order delivery to the peer.
        void send(wire::Bytes data);
        /// Graceful close (FIN).
        void close();

        /// In-order application data arrival.
        std::function<void(const wire::Bytes&)> on_data;
        /// Connection torn down by a RST (the hijack signal).
        std::function<void()> on_reset;
        /// Orderly close completed.
        std::function<void()> on_close;

    private:
        friend class TcpStack;
        TcpStack* stack_ = nullptr;
        wire::Ipv4Address peer_ip_;
        std::uint16_t local_port_ = 0;
        std::uint16_t peer_port_ = 0;
        State state_ = State::kClosed;
        std::uint32_t snd_nxt = 0;  // next sequence to send
        std::uint32_t snd_una = 0;  // oldest unacknowledged
        std::uint32_t rcv_nxt = 0;  // next expected from peer
        struct Unacked {
            std::uint32_t seq;
            wire::Bytes data;
            std::uint8_t flags;
            int tries = 0;
        };
        std::deque<Unacked> retransmit_queue_;
        sim::EventId retransmit_event_ = 0;
    };

    explicit TcpStack(Host& host);
    TcpStack(Host& host, Options options);

    /// Accepts connections on `port`; `on_accept` fires when a connection
    /// reaches ESTABLISHED (set per-connection callbacks inside it).
    void listen(std::uint16_t port, std::function<void(Connection&)> on_accept);

    /// Opens a connection; returns it immediately (state kSynSent). Set
    /// callbacks on the returned object; `on_established` fires when the
    /// handshake completes.
    Connection& connect(wire::Ipv4Address dst, std::uint16_t dst_port,
                        std::function<void(Connection&)> on_established);

    [[nodiscard]] const Stats& stats() const { return stats_; }
    [[nodiscard]] Host& host() { return host_; }

private:
    struct Key {
        std::uint32_t peer_ip;
        std::uint16_t local_port;
        std::uint16_t peer_port;
        auto operator<=>(const Key&) const = default;
    };

    void on_segment(const wire::Ipv4Packet& pkt);
    void segment_arrived(Connection& c, const wire::TcpSegment& seg);
    void handle_listen_syn(std::uint16_t port, wire::Ipv4Address from,
                           const wire::TcpSegment& seg);
    void emit(Connection& c, std::uint8_t flags, wire::Bytes payload, bool track);
    void arm_retransmit(Connection& c);
    void retransmit_due(Key key);
    void process_ack(Connection& c, std::uint32_t ack);
    [[nodiscard]] std::uint32_t initial_seq();

    Host& host_;
    Options options_;
    common::Rng rng_;
    std::map<Key, std::unique_ptr<Connection>> connections_;
    struct Listener {
        std::function<void(Connection&)> on_accept;
    };
    std::map<std::uint16_t, Listener> listeners_;
    std::map<Key, std::function<void(Connection&)>> pending_established_;
    std::uint16_t next_ephemeral_ = 49152;
    Stats stats_;
};

}  // namespace arpsec::host

#pragma once

#include <cstdint>
#include <string>

#include "common/expected.hpp"
#include "wire/buffer.hpp"
#include "wire/mac_address.hpp"

namespace arpsec::wire {

enum class EtherType : std::uint16_t {
    kIpv4 = 0x0800,
    kArp = 0x0806,
};

[[nodiscard]] std::string to_string(EtherType t);

/// The 14 fixed Ethernet II header bytes, decoded without touching the
/// payload. FrameView memoizes exactly this, so the header-only parser is
/// shared with EthernetFrame::parse — the two can never disagree about what
/// constitutes a valid frame.
struct EthernetHeader {
    MacAddress dst;
    MacAddress src;
    EtherType ether_type = EtherType::kIpv4;
};

[[nodiscard]] common::Expected<EthernetHeader> parse_ethernet_header(
    std::span<const std::uint8_t> data);

/// Ethernet II frame. The simulator serializes each frame to wire bytes
/// once, at origin (see wire::FrameBuffer); every receiver then reads the
/// exact byte stream a libpcap tap would through a shared wire::FrameView.
struct EthernetFrame {
    static constexpr std::size_t kHeaderSize = 14;
    static constexpr std::size_t kMinPayload = 46;   // 802.3 minimum (frames are padded)
    static constexpr std::size_t kMaxPayload = 1500; // MTU

    MacAddress dst;
    MacAddress src;
    EtherType ether_type = EtherType::kIpv4;
    Bytes payload;

    /// Serializes, padding the payload to the 46-byte Ethernet minimum.
    [[nodiscard]] Bytes serialize() const;

    static common::Expected<EthernetFrame> parse(std::span<const std::uint8_t> data);

    /// Size on the wire after padding (excluding preamble/FCS, like pcap).
    [[nodiscard]] std::size_t wire_size() const;
};

}  // namespace arpsec::wire

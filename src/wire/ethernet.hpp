#pragma once

#include <cstdint>
#include <string>

#include "common/expected.hpp"
#include "wire/buffer.hpp"
#include "wire/mac_address.hpp"

namespace arpsec::wire {

enum class EtherType : std::uint16_t {
    kIpv4 = 0x0800,
    kArp = 0x0806,
};

[[nodiscard]] std::string to_string(EtherType t);

/// Ethernet II frame. The simulator serializes frames to wire bytes at
/// transmit time and re-parses at every receiver, so detectors observe the
/// exact byte stream a libpcap tap would.
struct EthernetFrame {
    static constexpr std::size_t kHeaderSize = 14;
    static constexpr std::size_t kMinPayload = 46;   // 802.3 minimum (frames are padded)
    static constexpr std::size_t kMaxPayload = 1500; // MTU

    MacAddress dst;
    MacAddress src;
    EtherType ether_type = EtherType::kIpv4;
    Bytes payload;

    /// Serializes, padding the payload to the 46-byte Ethernet minimum.
    [[nodiscard]] Bytes serialize() const;

    static common::Expected<EthernetFrame> parse(std::span<const std::uint8_t> data);

    /// Size on the wire after padding (excluding preamble/FCS, like pcap).
    [[nodiscard]] std::size_t wire_size() const;
};

}  // namespace arpsec::wire

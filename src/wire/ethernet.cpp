#include "wire/ethernet.hpp"

#include <algorithm>

namespace arpsec::wire {

std::string to_string(EtherType t) {
    switch (t) {
        case EtherType::kIpv4: return "IPv4";
        case EtherType::kArp: return "ARP";
    }
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%04x", static_cast<unsigned>(t));
    return buf;
}

Bytes EthernetFrame::serialize() const {
    Bytes out;
    out.reserve(kHeaderSize + std::max(payload.size(), kMinPayload));
    ByteWriter w{out};
    w.mac(dst);
    w.mac(src);
    w.u16(static_cast<std::uint16_t>(ether_type));
    w.bytes(payload);
    if (payload.size() < kMinPayload) w.fill(kMinPayload - payload.size());
    return out;
}

common::Expected<EthernetHeader> parse_ethernet_header(std::span<const std::uint8_t> data) {
    using R = common::Expected<EthernetHeader>;
    ByteReader r{data};
    EthernetHeader h;
    h.dst = r.mac();
    h.src = r.mac();
    const std::uint16_t type = r.u16();
    if (!r.ok()) return R::failure("frame shorter than Ethernet header");
    if (type != static_cast<std::uint16_t>(EtherType::kIpv4) &&
        type != static_cast<std::uint16_t>(EtherType::kArp)) {
        return R::failure("unsupported EtherType");
    }
    h.ether_type = static_cast<EtherType>(type);
    return h;
}

common::Expected<EthernetFrame> EthernetFrame::parse(std::span<const std::uint8_t> data) {
    using R = common::Expected<EthernetFrame>;
    auto header = parse_ethernet_header(data);
    if (!header.ok()) return R::failure(header.error());
    EthernetFrame f;
    f.dst = header->dst;
    f.src = header->src;
    f.ether_type = header->ether_type;
    // lint:allow(untrusted-read-bounds): parse_ethernet_header() proved size >= kHeaderSize
    f.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(kHeaderSize), data.end());
    return f;
}

std::size_t EthernetFrame::wire_size() const {
    return kHeaderSize + std::max(payload.size(), kMinPayload);
}

}  // namespace arpsec::wire

#include "wire/ethernet.hpp"

#include <algorithm>

namespace arpsec::wire {

std::string to_string(EtherType t) {
    switch (t) {
        case EtherType::kIpv4: return "IPv4";
        case EtherType::kArp: return "ARP";
    }
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%04x", static_cast<unsigned>(t));
    return buf;
}

Bytes EthernetFrame::serialize() const {
    Bytes out;
    out.reserve(kHeaderSize + std::max(payload.size(), kMinPayload));
    ByteWriter w{out};
    w.mac(dst);
    w.mac(src);
    w.u16(static_cast<std::uint16_t>(ether_type));
    w.bytes(payload);
    if (payload.size() < kMinPayload) w.fill(kMinPayload - payload.size());
    return out;
}

common::Expected<EthernetFrame> EthernetFrame::parse(std::span<const std::uint8_t> data) {
    using R = common::Expected<EthernetFrame>;
    ByteReader r{data};
    EthernetFrame f;
    f.dst = r.mac();
    f.src = r.mac();
    const std::uint16_t type = r.u16();
    if (!r.ok()) return R::failure("frame shorter than Ethernet header");
    if (type != static_cast<std::uint16_t>(EtherType::kIpv4) &&
        type != static_cast<std::uint16_t>(EtherType::kArp)) {
        return R::failure("unsupported EtherType");
    }
    f.ether_type = static_cast<EtherType>(type);
    f.payload = r.rest();
    return f;
}

std::size_t EthernetFrame::wire_size() const {
    return kHeaderSize + std::max(payload.size(), kMinPayload);
}

}  // namespace arpsec::wire

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "wire/ipv4_address.hpp"
#include "wire/mac_address.hpp"

namespace arpsec::wire {

using Bytes = std::vector<std::uint8_t>;

/// Appends big-endian (network byte order) fields to a byte vector.
class ByteWriter {
public:
    explicit ByteWriter(Bytes& out) : out_(out) {}

    void u8(std::uint8_t v) { out_.push_back(v); }
    void u16(std::uint16_t v) {
        out_.push_back(static_cast<std::uint8_t>(v >> 8));
        out_.push_back(static_cast<std::uint8_t>(v));
    }
    void u32(std::uint32_t v) {
        out_.push_back(static_cast<std::uint8_t>(v >> 24));
        out_.push_back(static_cast<std::uint8_t>(v >> 16));
        out_.push_back(static_cast<std::uint8_t>(v >> 8));
        out_.push_back(static_cast<std::uint8_t>(v));
    }
    void u64(std::uint64_t v) {
        u32(static_cast<std::uint32_t>(v >> 32));
        u32(static_cast<std::uint32_t>(v));
    }
    void mac(const MacAddress& m) {
        out_.insert(out_.end(), m.octets().begin(), m.octets().end());
    }
    void ipv4(const Ipv4Address& a) { u32(a.value()); }
    // lint:allow(untrusted-read-bounds): a full-range copy is bounded by the span itself
    void bytes(std::span<const std::uint8_t> b) { out_.insert(out_.end(), b.begin(), b.end()); }
    void fill(std::size_t n, std::uint8_t value = 0) { out_.insert(out_.end(), n, value); }

    [[nodiscard]] std::size_t size() const { return out_.size(); }

private:
    Bytes& out_;
};

/// Reads big-endian fields from a byte span with bounds checking. Any
/// out-of-bounds read sets a sticky failure flag and returns zeros; callers
/// check `ok()` once at the end of a parse instead of after every field.
class ByteReader {
public:
    explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

    std::uint8_t u8() {
        if (!require(1)) return 0;
        return data_[pos_++];
    }
    std::uint16_t u16() {
        if (!require(2)) return 0;
        const std::uint16_t v =
            static_cast<std::uint16_t>(std::uint16_t{data_[pos_]} << 8 | data_[pos_ + 1]);
        pos_ += 2;
        return v;
    }
    std::uint32_t u32() {
        if (!require(4)) return 0;
        const std::uint32_t v = (std::uint32_t{data_[pos_]} << 24) |
                                (std::uint32_t{data_[pos_ + 1]} << 16) |
                                (std::uint32_t{data_[pos_ + 2]} << 8) | data_[pos_ + 3];
        pos_ += 4;
        return v;
    }
    std::uint64_t u64() {
        const std::uint64_t hi = u32();
        const std::uint64_t lo = u32();
        return (hi << 32) | lo;
    }
    MacAddress mac() {
        if (!require(MacAddress::kSize)) return {};
        std::array<std::uint8_t, MacAddress::kSize> o{};
        std::memcpy(o.data(), data_.data() + pos_, o.size());
        pos_ += o.size();
        return MacAddress{o};
    }
    Ipv4Address ipv4() { return Ipv4Address{u32()}; }
    Bytes bytes(std::size_t n) {
        if (!require(n)) return {};
        Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
        pos_ += n;
        return out;
    }
    /// All bytes not yet consumed.
    Bytes rest() { return bytes(remaining()); }
    void skip(std::size_t n) {
        if (require(n)) pos_ += n;
    }

    [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
    [[nodiscard]] std::size_t position() const { return pos_; }
    [[nodiscard]] bool ok() const { return ok_; }

private:
    bool require(std::size_t n) {
        if (data_.size() - pos_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

}  // namespace arpsec::wire

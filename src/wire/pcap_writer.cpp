#include "wire/pcap_writer.hpp"

#include <stdexcept>

namespace arpsec::wire {

namespace {
constexpr std::uint32_t kMagic = 0xa1b2c3d4;
constexpr std::uint32_t kLinkTypeEthernet = 1;
constexpr std::uint32_t kSnapLen = 65535;
}  // namespace

PcapWriter::PcapWriter(const std::string& path) {
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr) throw std::runtime_error("PcapWriter: cannot open " + path);
    u32(kMagic);
    u16(2);  // version major
    u16(4);  // version minor
    u32(0);  // thiszone
    u32(0);  // sigfigs
    u32(kSnapLen);
    u32(kLinkTypeEthernet);
}

PcapWriter::~PcapWriter() {
    if (file_ != nullptr) std::fclose(file_);
}

void PcapWriter::write(common::SimTime at, std::span<const std::uint8_t> frame) {
    const std::int64_t ns = at.nanos();
    u32(static_cast<std::uint32_t>(ns / 1'000'000'000));
    u32(static_cast<std::uint32_t>((ns % 1'000'000'000) / 1'000));
    u32(static_cast<std::uint32_t>(frame.size()));
    u32(static_cast<std::uint32_t>(frame.size()));
    std::fwrite(frame.data(), 1, frame.size(), file_);
    ++frames_;
}

void PcapWriter::u16(std::uint16_t v) {
    // pcap headers are written in the writer's native byte order; readers
    // detect it from the magic. We write little-endian explicitly for
    // platform-independent output.
    const std::uint8_t b[2] = {static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8)};
    std::fwrite(b, 1, 2, file_);
}

void PcapWriter::u32(std::uint32_t v) {
    const std::uint8_t b[4] = {static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
                               static_cast<std::uint8_t>(v >> 16),
                               static_cast<std::uint8_t>(v >> 24)};
    std::fwrite(b, 1, 4, file_);
}

}  // namespace arpsec::wire

#include "wire/tcp_segment.hpp"

#include "wire/checksum.hpp"

namespace arpsec::wire {

Bytes TcpSegment::serialize() const {
    Bytes out;
    out.reserve(kHeaderSize + payload.size());
    ByteWriter w{out};
    w.u16(src_port);
    w.u16(dst_port);
    w.u32(seq);
    w.u32(ack);
    w.u8(5 << 4);  // data offset: 5 words, no options
    w.u8(flags);
    w.u16(window);
    w.u16(0);  // checksum placeholder
    w.u16(0);  // urgent pointer
    w.bytes(payload);
    const std::uint16_t csum = internet_checksum(out);
    out[16] = static_cast<std::uint8_t>(csum >> 8);
    out[17] = static_cast<std::uint8_t>(csum);
    return out;
}

common::Expected<TcpSegment> TcpSegment::parse(std::span<const std::uint8_t> data) {
    using R = common::Expected<TcpSegment>;
    if (data.size() < kHeaderSize) return R::failure("TCP segment shorter than header");
    ByteReader r{data};
    TcpSegment s;
    s.src_port = r.u16();
    s.dst_port = r.u16();
    s.seq = r.u32();
    s.ack = r.u32();
    const std::uint8_t offset_words = r.u8() >> 4;
    if (offset_words != 5) return R::failure("TCP options not supported");
    s.flags = r.u8();
    s.window = r.u16();
    r.u16();  // checksum (verified below over the whole buffer)
    r.u16();  // urgent
    // The IPv4 layer hands us exactly the segment (total-length bounded),
    // so the checksum covers the full span.
    if (internet_checksum(data) != 0) return R::failure("TCP checksum mismatch");
    s.payload = r.rest();
    return s;
}

std::string TcpSegment::summary() const {
    std::string f;
    if (has(kSyn)) f += "SYN,";
    if (has(kAck)) f += "ACK,";
    if (has(kFin)) f += "FIN,";
    if (has(kRst)) f += "RST,";
    if (has(kPsh)) f += "PSH,";
    if (!f.empty()) f.pop_back();
    char buf[96];
    std::snprintf(buf, sizeof(buf), "TCP %u->%u [%s] seq=%u ack=%u len=%zu", src_port, dst_port,
                  f.c_str(), seq, ack, payload.size());
    return buf;
}

}  // namespace arpsec::wire

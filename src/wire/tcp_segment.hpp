#pragma once

#include <cstdint>
#include <string>

#include "common/expected.hpp"
#include "wire/buffer.hpp"

namespace arpsec::wire {

/// TCP segment (fixed 20-byte header, no options). Enough protocol surface
/// for connection establishment, in-order data transfer, reset injection
/// and teardown — the substrate behind the connection-hijacking arm of the
/// attack taxonomy.
struct TcpSegment {
    static constexpr std::size_t kHeaderSize = 20;

    enum Flags : std::uint8_t {
        kFin = 0x01,
        kSyn = 0x02,
        kRst = 0x04,
        kPsh = 0x08,
        kAck = 0x10,
    };

    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint32_t seq = 0;
    std::uint32_t ack = 0;
    std::uint8_t flags = 0;
    std::uint16_t window = 65535;
    Bytes payload;

    [[nodiscard]] bool has(Flags f) const { return (flags & f) != 0; }

    [[nodiscard]] Bytes serialize() const;
    static common::Expected<TcpSegment> parse(std::span<const std::uint8_t> data);

    [[nodiscard]] std::string summary() const;
};

}  // namespace arpsec::wire

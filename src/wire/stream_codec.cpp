#include "wire/stream_codec.hpp"

#include <limits>
#include <utility>

namespace arpsec::wire {

namespace {

constexpr std::uint32_t kHelloMagic = 0x41535631;  // "ASV1"
constexpr std::uint32_t kStreamVersion = 1;

// A directory entry is at least ip(4) + mac(6) + name_len(2) bytes; used
// to reject a hostile count before any allocation happens.
constexpr std::size_t kMinDirectoryEntryBytes = 12;

void append_with_prefix(Bytes& out, const Bytes& body) {
    ByteWriter w{out};
    w.u32(static_cast<std::uint32_t>(body.size()));
    w.bytes(body);
}

}  // namespace

std::string to_string(StreamRecordType type) {
    switch (type) {
        case StreamRecordType::kHello: return "hello";
        case StreamRecordType::kDirectory: return "directory";
        case StreamRecordType::kFrame: return "frame";
        case StreamRecordType::kEnd: return "end";
        case StreamRecordType::kAlert: return "alert";
        case StreamRecordType::kSummary: return "summary";
    }
    return "unknown";
}

void encode_hello(Bytes& out, const StreamHello& hello) {
    Bytes body;
    ByteWriter w{body};
    w.u8(static_cast<std::uint8_t>(StreamRecordType::kHello));
    w.u32(kHelloMagic);
    w.u32(hello.version);
    w.u64(hello.seed);
    append_with_prefix(out, body);
}

void encode_directory(Bytes& out, std::span<const StreamHostEntry> entries) {
    Bytes body;
    ByteWriter w{body};
    w.u8(static_cast<std::uint8_t>(StreamRecordType::kDirectory));
    w.u32(static_cast<std::uint32_t>(entries.size()));
    for (const StreamHostEntry& e : entries) {
        w.ipv4(e.ip);
        w.mac(e.mac);
        w.u16(static_cast<std::uint16_t>(e.name.size()));
        w.bytes(std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(e.name.data()), e.name.size()));
    }
    append_with_prefix(out, body);
}

void encode_frame(Bytes& out, std::uint64_t at_nanos, std::span<const std::uint8_t> frame) {
    Bytes body;
    ByteWriter w{body};
    w.u8(static_cast<std::uint8_t>(StreamRecordType::kFrame));
    w.u64(at_nanos);
    w.u32(static_cast<std::uint32_t>(frame.size()));
    w.bytes(frame);
    append_with_prefix(out, body);
}

void encode_end(Bytes& out) {
    Bytes body;
    ByteWriter w{body};
    w.u8(static_cast<std::uint8_t>(StreamRecordType::kEnd));
    append_with_prefix(out, body);
}

namespace {

void encode_text(Bytes& out, StreamRecordType type, const std::string& text) {
    Bytes body;
    ByteWriter w{body};
    w.u8(static_cast<std::uint8_t>(type));
    w.bytes(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(text.data()),
                                          text.size()));
    append_with_prefix(out, body);
}

}  // namespace

void encode_alert(Bytes& out, const std::string& json_line) {
    encode_text(out, StreamRecordType::kAlert, json_line);
}

void encode_summary(Bytes& out, const std::string& json) {
    encode_text(out, StreamRecordType::kSummary, json);
}

common::Expected<StreamRecord> decode_record_body(std::span<const std::uint8_t> body) {
    using Result = common::Expected<StreamRecord>;
    ByteReader r{body};
    const std::uint8_t raw_type = r.u8();
    if (!r.ok()) return Result::failure("stream: empty record body");

    StreamRecord rec;
    switch (static_cast<StreamRecordType>(raw_type)) {
        case StreamRecordType::kHello: {
            rec.type = StreamRecordType::kHello;
            const std::uint32_t magic = r.u32();
            rec.hello.version = r.u32();
            rec.hello.seed = r.u64();
            if (!r.ok()) return Result::failure("stream: truncated hello record");
            if (magic != kHelloMagic) return Result::failure("stream: bad hello magic");
            if (rec.hello.version != kStreamVersion) {
                return Result::failure("stream: unsupported version " +
                                       std::to_string(rec.hello.version));
            }
            break;
        }
        case StreamRecordType::kDirectory: {
            rec.type = StreamRecordType::kDirectory;
            const std::uint32_t count = r.u32();
            if (!r.ok()) return Result::failure("stream: truncated directory record");
            if (count > r.remaining() / kMinDirectoryEntryBytes) {
                return Result::failure("stream: directory count " + std::to_string(count) +
                                       " exceeds record size");
            }
            rec.directory.reserve(count);
            for (std::uint32_t i = 0; i < count; ++i) {
                StreamHostEntry e;
                e.ip = r.ipv4();
                e.mac = r.mac();
                const std::uint16_t name_len = r.u16();
                const Bytes name = r.bytes(name_len);
                if (!r.ok()) {
                    return Result::failure("stream: truncated directory entry " +
                                           std::to_string(i));
                }
                e.name.assign(name.begin(), name.end());
                rec.directory.push_back(std::move(e));
            }
            if (r.remaining() != 0) {
                return Result::failure("stream: trailing bytes after directory entries");
            }
            break;
        }
        case StreamRecordType::kFrame: {
            rec.type = StreamRecordType::kFrame;
            rec.frame.at_nanos = r.u64();
            const std::uint32_t len = r.u32();
            if (!r.ok()) return Result::failure("stream: truncated frame header");
            if (len != r.remaining()) {
                return Result::failure("stream: frame length " + std::to_string(len) +
                                       " disagrees with record body (" +
                                       std::to_string(r.remaining()) + " bytes left)");
            }
            rec.frame.bytes = r.bytes(len);
            if (!r.ok()) return Result::failure("stream: truncated frame bytes");
            break;
        }
        case StreamRecordType::kEnd: {
            rec.type = StreamRecordType::kEnd;
            if (r.remaining() != 0) return Result::failure("stream: end record has payload");
            break;
        }
        case StreamRecordType::kAlert:
        case StreamRecordType::kSummary: {
            rec.type = static_cast<StreamRecordType>(raw_type);
            const Bytes text = r.rest();
            rec.text.assign(text.begin(), text.end());
            break;
        }
        default:
            return Result::failure("stream: unknown record type " + std::to_string(raw_type));
    }
    return rec;
}

void StreamDecoder::feed(std::span<const std::uint8_t> data) {
    bytes_fed_ += data.size();
    // Reclaim consumed prefix before it dominates the buffer; amortized
    // O(1) per byte because the threshold doubles the copy distance.
    if (pos_ > 4096 && pos_ > buf_.size() / 2) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data.begin(), data.end());
}

StreamDecoder::Status StreamDecoder::poll(StreamRecord& out) {
    if (fatal_) return Status::kFatal;
    const std::size_t available = buf_.size() - pos_;
    if (available < 4) return Status::kNeedMore;

    ByteReader header{std::span<const std::uint8_t>(buf_.data() + pos_, available)};
    const std::uint32_t body_len = header.u32();
    if (body_len == 0 || body_len > kMaxRecordBytes) {
        // The prefix itself is garbage, so the next record boundary is
        // unknowable — skipping would desynchronize every later record.
        fatal_ = true;
        error_ = "stream: length prefix " + std::to_string(body_len) +
                 " out of range (max " + std::to_string(kMaxRecordBytes) + ")";
        return Status::kFatal;
    }
    if (available < 4 + static_cast<std::size_t>(body_len)) return Status::kNeedMore;

    const std::span<const std::uint8_t> body(buf_.data() + pos_ + 4, body_len);
    pos_ += 4 + static_cast<std::size_t>(body_len);
    common::Expected<StreamRecord> rec = decode_record_body(body);
    if (!rec.ok()) {
        ++bad_records_;
        error_ = rec.error();
        return Status::kBadRecord;
    }
    ++records_;
    out = std::move(rec).value();
    return Status::kRecord;
}

}  // namespace arpsec::wire

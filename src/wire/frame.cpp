#include "wire/frame.hpp"

#include <utility>

namespace arpsec::wire {

void flush_frameview_hits() { frame_detail::t_hits.flush(); }

FrameViewStats frameview_stats() {
    frame_detail::t_hits.flush();
    FrameViewStats s;
    s.parse_hits = frame_detail::g_parse_hits.load(std::memory_order_relaxed);
    s.parse_misses = frame_detail::g_parse_misses.load(std::memory_order_relaxed);
    s.arp_hits = frame_detail::g_arp_hits.load(std::memory_order_relaxed);
    s.arp_misses = frame_detail::g_arp_misses.load(std::memory_order_relaxed);
    s.ipv4_hits = frame_detail::g_ipv4_hits.load(std::memory_order_relaxed);
    s.ipv4_misses = frame_detail::g_ipv4_misses.load(std::memory_order_relaxed);
    return s;
}

void reset_frameview_stats() {
    frame_detail::t_hits = frame_detail::HitBatch{};
    frame_detail::g_parse_hits.store(0, std::memory_order_relaxed);
    frame_detail::g_parse_misses.store(0, std::memory_order_relaxed);
    frame_detail::g_arp_hits.store(0, std::memory_order_relaxed);
    frame_detail::g_arp_misses.store(0, std::memory_order_relaxed);
    frame_detail::g_ipv4_hits.store(0, std::memory_order_relaxed);
    frame_detail::g_ipv4_misses.store(0, std::memory_order_relaxed);
}

namespace frame_detail {

void parse_header_slow(FrameBuffer::Rep& rep) {
    g_parse_misses.fetch_add(1, std::memory_order_relaxed);
    rep.eth_parsed = true;
    auto header = parse_ethernet_header(rep.bytes);
    rep.eth_ok = header.ok();
    if (rep.eth_ok) rep.header = header.value();
}

void parse_arp_slow(FrameBuffer::Rep& rep) {
    g_arp_misses.fetch_add(1, std::memory_order_relaxed);
    rep.arp_parsed = true;
    auto parsed = ArpPacket::parse(payload_span(rep));
    rep.arp_ok = parsed.ok();
    if (rep.arp_ok) rep.arp = std::move(parsed).value();
}

void parse_ipv4_slow(FrameBuffer::Rep& rep) {
    g_ipv4_misses.fetch_add(1, std::memory_order_relaxed);
    rep.ipv4_parsed = true;
    auto parsed = Ipv4Packet::parse(payload_span(rep));
    rep.ipv4_ok = parsed.ok();
    if (rep.ipv4_ok) rep.ipv4 = std::move(parsed).value();
}

}  // namespace frame_detail

FrameBuffer FrameBuffer::serialize(const EthernetFrame& frame) {
    auto rep = std::make_shared<Rep>();
    rep->bytes = frame.serialize();
    rep->payload_len = frame.payload.size();
    // The origin knows its own header — memoize it for free so origin
    // buffers never pay a parse, no matter how many hops read them.
    rep->eth_parsed = true;
    rep->eth_ok = true;
    rep->header = EthernetHeader{frame.dst, frame.src, frame.ether_type};
    return FrameBuffer{std::move(rep)};
}

FrameBuffer FrameBuffer::capture(Bytes bytes) {
    auto rep = std::make_shared<Rep>();
    rep->bytes = std::move(bytes);
    return FrameBuffer{std::move(rep)};
}

FrameBuffer FrameBuffer::capture(std::span<const std::uint8_t> bytes) {
    // lint:allow(untrusted-read-bounds): a full-range copy is bounded by the span itself
    return capture(Bytes{bytes.begin(), bytes.end()});
}

std::span<const std::uint8_t> FrameBuffer::bytes() const {
    if (rep_ == nullptr) return {};
    return rep_->bytes;
}

std::size_t FrameBuffer::size() const { return rep_ == nullptr ? 0 : rep_->bytes.size(); }

const EthernetFrame& FrameView::frame() const {
    static const EthernetFrame kEmpty{};
    FrameBuffer::Rep* rep = buffer_.rep_.get();
    if (rep == nullptr) return kEmpty;
    frame_detail::ensure_header(*rep);
    if (!rep->eth_ok) return kEmpty;
    if (!rep->frame_built) {
        rep->frame_built = true;
        rep->frame.dst = rep->header.dst;
        rep->frame.src = rep->header.src;
        rep->frame.ether_type = rep->header.ether_type;
        const auto p = frame_detail::payload_span(*rep);
        rep->frame.payload.assign(p.begin(), p.end());
    }
    return rep->frame;
}

void FrameView::prime() const {
    FrameBuffer::Rep* rep = buffer_.rep_.get();
    if (rep == nullptr) return;
    frame_detail::ensure_header(*rep);
    if (!rep->eth_ok) return;
    if (rep->header.ether_type == EtherType::kArp && !rep->arp_parsed) {
        frame_detail::parse_arp_slow(*rep);
    }
    if (rep->header.ether_type == EtherType::kIpv4 && !rep->ipv4_parsed) {
        frame_detail::parse_ipv4_slow(*rep);
    }
}

}  // namespace arpsec::wire

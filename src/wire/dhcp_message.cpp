#include "wire/dhcp_message.hpp"

namespace arpsec::wire {
namespace {

enum : std::uint8_t {
    kOptSubnetMask = 1,
    kOptRouter = 3,
    kOptRequestedIp = 50,
    kOptLeaseTime = 51,
    kOptMessageType = 53,
    kOptServerId = 54,
    kOptEnd = 255,
};

}  // namespace

std::string to_string(DhcpMessageType t) {
    switch (t) {
        case DhcpMessageType::kDiscover: return "DISCOVER";
        case DhcpMessageType::kOffer: return "OFFER";
        case DhcpMessageType::kRequest: return "REQUEST";
        case DhcpMessageType::kDecline: return "DECLINE";
        case DhcpMessageType::kAck: return "ACK";
        case DhcpMessageType::kNak: return "NAK";
        case DhcpMessageType::kRelease: return "RELEASE";
    }
    return "type" + std::to_string(static_cast<int>(t));
}

Bytes DhcpMessage::serialize() const {
    Bytes out;
    out.reserve(260);
    ByteWriter w{out};
    w.u8(op);
    w.u8(1);                    // htype: Ethernet
    w.u8(MacAddress::kSize);    // hlen
    w.u8(0);                    // hops
    w.u32(xid);
    w.u16(secs);
    w.u16(flags);
    w.ipv4(ciaddr);
    w.ipv4(yiaddr);
    w.ipv4(siaddr);
    w.ipv4(giaddr);
    w.mac(chaddr);
    w.fill(10);   // chaddr padding to 16 bytes
    w.fill(64);   // sname
    w.fill(128);  // file
    w.u32(kMagicCookie);

    w.u8(kOptMessageType);
    w.u8(1);
    w.u8(static_cast<std::uint8_t>(message_type));
    if (requested_ip) {
        w.u8(kOptRequestedIp);
        w.u8(4);
        w.ipv4(*requested_ip);
    }
    if (lease_seconds) {
        w.u8(kOptLeaseTime);
        w.u8(4);
        w.u32(*lease_seconds);
    }
    if (server_id) {
        w.u8(kOptServerId);
        w.u8(4);
        w.ipv4(*server_id);
    }
    if (subnet_mask) {
        w.u8(kOptSubnetMask);
        w.u8(4);
        w.ipv4(*subnet_mask);
    }
    if (router) {
        w.u8(kOptRouter);
        w.u8(4);
        w.ipv4(*router);
    }
    w.u8(kOptEnd);
    return out;
}

common::Expected<DhcpMessage> DhcpMessage::parse(std::span<const std::uint8_t> data) {
    using R = common::Expected<DhcpMessage>;
    ByteReader r{data};
    DhcpMessage m;
    m.op = r.u8();
    const std::uint8_t htype = r.u8();
    const std::uint8_t hlen = r.u8();
    r.u8();  // hops
    m.xid = r.u32();
    m.secs = r.u16();
    m.flags = r.u16();
    m.ciaddr = r.ipv4();
    m.yiaddr = r.ipv4();
    m.siaddr = r.ipv4();
    m.giaddr = r.ipv4();
    m.chaddr = r.mac();
    r.skip(10);   // chaddr padding
    r.skip(64);   // sname
    r.skip(128);  // file
    const std::uint32_t cookie = r.u32();
    if (!r.ok()) return R::failure("DHCP message truncated before options");
    if (m.op != 1 && m.op != 2) return R::failure("invalid DHCP op");
    if (htype != 1 || hlen != MacAddress::kSize) {
        return R::failure("unsupported DHCP hardware type");
    }
    if (cookie != kMagicCookie) return R::failure("missing DHCP magic cookie");

    bool saw_message_type = false;
    while (r.remaining() > 0) {
        const std::uint8_t code = r.u8();
        if (code == kOptEnd) break;
        if (code == 0) continue;  // pad
        const std::uint8_t len = r.u8();
        const Bytes body = r.bytes(len);
        if (!r.ok()) return R::failure("DHCP option truncated");
        ByteReader b{body};
        switch (code) {
            case kOptMessageType: {
                if (len != 1) return R::failure("bad DHCP message-type option length");
                const std::uint8_t t = b.u8();
                if (t < 1 || t > 7) return R::failure("unknown DHCP message type");
                m.message_type = static_cast<DhcpMessageType>(t);
                saw_message_type = true;
                break;
            }
            case kOptRequestedIp:
                if (len != 4) return R::failure("bad requested-IP option length");
                m.requested_ip = b.ipv4();
                break;
            case kOptLeaseTime:
                if (len != 4) return R::failure("bad lease-time option length");
                m.lease_seconds = b.u32();
                break;
            case kOptServerId:
                if (len != 4) return R::failure("bad server-id option length");
                m.server_id = b.ipv4();
                break;
            case kOptSubnetMask:
                if (len != 4) return R::failure("bad subnet-mask option length");
                m.subnet_mask = b.ipv4();
                break;
            case kOptRouter:
                if (len != 4) return R::failure("bad router option length");
                m.router = b.ipv4();
                break;
            default:
                break;  // unknown options are skipped
        }
    }
    if (!saw_message_type) return R::failure("DHCP message missing message-type option");
    return m;
}

}  // namespace arpsec::wire

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/expected.hpp"
#include "common/time.hpp"
#include "wire/buffer.hpp"
#include "wire/ipv4_address.hpp"
#include "wire/mac_address.hpp"

namespace arpsec::wire {

enum class DhcpMessageType : std::uint8_t {
    kDiscover = 1,
    kOffer = 2,
    kRequest = 3,
    kDecline = 4,
    kAck = 5,
    kNak = 6,
    kRelease = 7,
};

[[nodiscard]] std::string to_string(DhcpMessageType t);

/// DHCP message (RFC 2131 BOOTP framing + the option set this framework
/// uses). DHCP matters here because Dynamic ARP Inspection derives its
/// binding table from snooped DHCP traffic, so leases must actually flow.
struct DhcpMessage {
    static constexpr std::uint16_t kServerPort = 67;
    static constexpr std::uint16_t kClientPort = 68;
    static constexpr std::uint32_t kMagicCookie = 0x63825363;
    static constexpr std::uint16_t kFlagBroadcast = 0x8000;

    std::uint8_t op = 1;  // 1 = BOOTREQUEST, 2 = BOOTREPLY
    std::uint32_t xid = 0;
    std::uint16_t secs = 0;
    std::uint16_t flags = 0;
    Ipv4Address ciaddr;  // client's current address (renewal)
    Ipv4Address yiaddr;  // "your" address (server-assigned)
    Ipv4Address siaddr;  // next server
    Ipv4Address giaddr;  // relay agent
    MacAddress chaddr;   // client hardware address

    // Options.
    DhcpMessageType message_type = DhcpMessageType::kDiscover;
    std::optional<Ipv4Address> requested_ip;     // option 50
    std::optional<std::uint32_t> lease_seconds;  // option 51
    std::optional<Ipv4Address> server_id;        // option 54
    std::optional<Ipv4Address> subnet_mask;      // option 1
    std::optional<Ipv4Address> router;           // option 3

    [[nodiscard]] Bytes serialize() const;
    static common::Expected<DhcpMessage> parse(std::span<const std::uint8_t> data);

    [[nodiscard]] bool is_request() const { return op == 1; }
    [[nodiscard]] bool is_reply() const { return op == 2; }
};

}  // namespace arpsec::wire

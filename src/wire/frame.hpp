#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>

#include "wire/arp_packet.hpp"
#include "wire/buffer.hpp"
#include "wire/ethernet.hpp"
#include "wire/ipv4_packet.hpp"

namespace arpsec::wire {

/// Process-wide FrameView memo statistics. `parse_misses` counts real
/// header parses (one per captured buffer — origin buffers are pre-memoized
/// from the frame they serialized); `parse_hits` counts deliveries that
/// reused an existing memo. The ARP and IPv4 pairs count the same for the
/// lazy payload parses. Miss counters are relaxed atomics (they fire once
/// per buffer); hit counters accumulate in a thread-local batch flushed
/// into the atomics when frameview_stats() runs or a thread exits, keeping
/// the hot path free of atomic RMWs. They are observability-only and never
/// feed per-run artifacts (which must be byte-identical across --jobs
/// values).
struct FrameViewStats {
    std::uint64_t parse_hits = 0;
    std::uint64_t parse_misses = 0;
    std::uint64_t arp_hits = 0;
    std::uint64_t arp_misses = 0;
    std::uint64_t ipv4_hits = 0;
    std::uint64_t ipv4_misses = 0;
};

[[nodiscard]] FrameViewStats frameview_stats();
void reset_frameview_stats();

/// Drains the calling thread's batched hit counts into the process-wide
/// totals. Call before a worker thread that touched FrameViews exits (the
/// replay engine does); frameview_stats() flushes its own caller.
void flush_frameview_hits();

namespace frame_detail {

inline std::atomic<std::uint64_t> g_parse_hits{0};
inline std::atomic<std::uint64_t> g_parse_misses{0};
inline std::atomic<std::uint64_t> g_arp_hits{0};
inline std::atomic<std::uint64_t> g_arp_misses{0};
inline std::atomic<std::uint64_t> g_ipv4_hits{0};
inline std::atomic<std::uint64_t> g_ipv4_misses{0};

/// Per-thread hit tally: the hot path pays one plain increment; the batch
/// drains into the atomics via flush_frameview_hits() (the replay engine
/// flushes its worker threads; frameview_stats() flushes its caller).
/// Deliberately trivially destructible — a destructor would force every
/// TLS access through an init-guard wrapper call, which is exactly the
/// per-frame overhead this batch exists to avoid. The cost: hits tallied
/// on a thread that exits without flushing are dropped — fine for
/// observability counters.
struct HitBatch {
    std::uint64_t parse = 0;
    std::uint64_t arp = 0;
    std::uint64_t ipv4 = 0;

    void flush() {
        if (parse != 0) g_parse_hits.fetch_add(parse, std::memory_order_relaxed);
        if (arp != 0) g_arp_hits.fetch_add(arp, std::memory_order_relaxed);
        if (ipv4 != 0) g_ipv4_hits.fetch_add(ipv4, std::memory_order_relaxed);
        parse = arp = ipv4 = 0;
    }
};

inline thread_local constinit HitBatch t_hits;

inline constexpr std::size_t kUnknownLen = std::numeric_limits<std::size_t>::max();

}  // namespace frame_detail

class FrameView;

/// Immutable, refcounted wire bytes plus a lazily populated parse memo.
/// A frame is serialized exactly once, at origin (`serialize()`), or
/// ingested verbatim from a capture (`capture()`); everything downstream —
/// taps, the switch flood/mirror path, scheme monitors, replay — shares the
/// same allocation by value. Copying a FrameBuffer bumps a refcount; the
/// bytes themselves are never copied or mutated after construction.
///
/// The memo (Ethernet header, ARP/IPv4 payload) is populated on first
/// access and is NOT synchronized: buffers that cross threads (replay
/// run_all) must be primed via FrameView::prime() on the owning thread
/// first, after which concurrent access is read-only.
class FrameBuffer {
public:
    FrameBuffer() = default;

    /// Origin path: serialize `frame` (padding to the Ethernet minimum) and
    /// pre-memoize its header and unpadded payload length — origin buffers
    /// never pay a header parse.
    [[nodiscard]] static FrameBuffer serialize(const EthernetFrame& frame);

    /// Capture path (pcap, replayed traces): adopt raw bytes verbatim. The
    /// unpadded payload length is unknown, so views expose the padded
    /// payload exactly as it appeared on the wire.
    [[nodiscard]] static FrameBuffer capture(Bytes bytes);
    [[nodiscard]] static FrameBuffer capture(std::span<const std::uint8_t> bytes);

    [[nodiscard]] bool empty() const { return rep_ == nullptr; }
    [[nodiscard]] std::span<const std::uint8_t> bytes() const;
    [[nodiscard]] std::size_t size() const;

    /// Identity of the shared allocation: two FrameBuffers return the same
    /// pointer here iff they share bytes (the zero-copy forwarding oracle —
    /// a flooded frame must be identity-equal on every egress port).
    [[nodiscard]] const void* identity() const { return rep_.get(); }

    /// Shared state. Exposed (rather than pimpl'd) so the accessor fast
    /// paths inline into callers; treat as an implementation detail and go
    /// through FrameView instead.
    struct Rep {
        Bytes bytes;
        /// Unpadded payload size when origin-known, kUnknownLen for captures.
        std::size_t payload_len = frame_detail::kUnknownLen;

        bool eth_parsed = false;
        bool eth_ok = false;
        EthernetHeader header;

        bool arp_parsed = false;
        bool arp_ok = false;
        ArpPacket arp;

        bool ipv4_parsed = false;
        bool ipv4_ok = false;
        Ipv4Packet ipv4;

        bool frame_built = false;
        EthernetFrame frame;
    };

private:
    friend class FrameView;
    explicit FrameBuffer(std::shared_ptr<Rep> rep) : rep_(std::move(rep)) {}
    std::shared_ptr<Rep> rep_;
};

namespace frame_detail {

// Out-of-line slow paths (frame.cpp): first-touch parses that fill the memo.
void parse_header_slow(FrameBuffer::Rep& rep);
void parse_arp_slow(FrameBuffer::Rep& rep);
void parse_ipv4_slow(FrameBuffer::Rep& rep);

inline void ensure_header(FrameBuffer::Rep& rep) {
    if (!rep.eth_parsed) parse_header_slow(rep);
}

/// Precondition: rep.eth_ok (implies bytes.size() >= kHeaderSize).
inline std::span<const std::uint8_t> payload_span(const FrameBuffer::Rep& rep) {
    const std::span<const std::uint8_t> all{rep.bytes};
    const std::size_t wire_payload = all.size() - EthernetFrame::kHeaderSize;
    const std::size_t len =
        rep.payload_len == kUnknownLen ? wire_payload : std::min(rep.payload_len, wire_payload);
    return all.subspan(EthernetFrame::kHeaderSize, len);
}

}  // namespace frame_detail

/// Parse-once accessor over a FrameBuffer. Cheap to copy (one refcount);
/// all accessors are const and memoize into the shared buffer, so the
/// header and ARP/IPv4 payloads are decoded at most once no matter how many
/// nodes, taps, or schemes inspect the frame.
class FrameView {
public:
    FrameView() = default;
    explicit FrameView(FrameBuffer buffer) : buffer_(std::move(buffer)) {}

    /// True when the buffer carries a well-formed Ethernet II header with a
    /// supported EtherType. Every other accessor returns zero values until
    /// this holds.
    [[nodiscard]] bool ok() const {
        FrameBuffer::Rep* rep = buffer_.rep_.get();
        if (rep == nullptr) return false;
        if (rep->eth_parsed) {
            ++frame_detail::t_hits.parse;
        } else {
            frame_detail::parse_header_slow(*rep);
        }
        return rep->eth_ok;
    }

    [[nodiscard]] const FrameBuffer& buffer() const { return buffer_; }
    [[nodiscard]] std::span<const std::uint8_t> bytes() const { return buffer_.bytes(); }

    [[nodiscard]] MacAddress dst() const {
        FrameBuffer::Rep* rep = buffer_.rep_.get();
        if (rep == nullptr) return {};
        frame_detail::ensure_header(*rep);
        return rep->eth_ok ? rep->header.dst : MacAddress{};
    }

    [[nodiscard]] MacAddress src() const {
        FrameBuffer::Rep* rep = buffer_.rep_.get();
        if (rep == nullptr) return {};
        frame_detail::ensure_header(*rep);
        return rep->eth_ok ? rep->header.src : MacAddress{};
    }

    [[nodiscard]] EtherType ether_type() const {
        FrameBuffer::Rep* rep = buffer_.rep_.get();
        if (rep == nullptr) return EtherType::kIpv4;
        frame_detail::ensure_header(*rep);
        return rep->eth_ok ? rep->header.ether_type : EtherType::kIpv4;
    }

    /// The L2 payload. For origin buffers this is the *unpadded* payload
    /// the sender handed to serialize() (fixing the serialize→parse padding
    /// asymmetry); for captured buffers padding is indistinguishable from
    /// payload and is kept, as a pcap consumer would see it.
    [[nodiscard]] std::span<const std::uint8_t> payload() const {
        FrameBuffer::Rep* rep = buffer_.rep_.get();
        if (rep == nullptr) return {};
        frame_detail::ensure_header(*rep);
        if (!rep->eth_ok) return {};
        return frame_detail::payload_span(*rep);
    }

    /// Materialized EthernetFrame (memoized; allocates once per buffer).
    /// Prefer the field accessors — this exists for round-trip tests and
    /// legacy consumers that need an owning frame.
    [[nodiscard]] const EthernetFrame& frame() const;

    /// The memoized ARP payload, or nullptr when the frame is not ARP or
    /// the payload does not parse.
    [[nodiscard]] const ArpPacket* arp() const {
        FrameBuffer::Rep* rep = buffer_.rep_.get();
        if (rep == nullptr) return nullptr;
        frame_detail::ensure_header(*rep);
        if (!rep->eth_ok || rep->header.ether_type != EtherType::kArp) return nullptr;
        if (rep->arp_parsed) {
            ++frame_detail::t_hits.arp;
        } else {
            frame_detail::parse_arp_slow(*rep);
        }
        return rep->arp_ok ? &rep->arp : nullptr;
    }

    /// The memoized IPv4 payload, or nullptr when the frame is not IPv4 or
    /// the payload does not parse. Like arp(), the parse happens at most
    /// once per buffer no matter how many schemes inspect the packet.
    [[nodiscard]] const Ipv4Packet* ipv4() const {
        FrameBuffer::Rep* rep = buffer_.rep_.get();
        if (rep == nullptr) return nullptr;
        frame_detail::ensure_header(*rep);
        if (!rep->eth_ok || rep->header.ether_type != EtherType::kIpv4) return nullptr;
        if (rep->ipv4_parsed) {
            ++frame_detail::t_hits.ipv4;
        } else {
            frame_detail::parse_ipv4_slow(*rep);
        }
        return rep->ipv4_ok ? &rep->ipv4 : nullptr;
    }

    /// Prefetch hint: pulls the shared memo's hot cache lines toward the
    /// CPU. Replay's scoring loop visits views in order but the Rep
    /// allocations are scattered on the heap, so prefetching a few frames
    /// ahead hides the per-buffer streaming miss.
    void prefetch() const {
#if defined(__GNUC__) || defined(__clang__)
        const FrameBuffer::Rep* rep = buffer_.rep_.get();
        if (rep != nullptr) {
            __builtin_prefetch(rep);
            __builtin_prefetch(reinterpret_cast<const char*>(rep) + 64);
        }
#endif
    }

    /// Eagerly populates the header and payload (ARP or IPv4) memos. Call
    /// on the owning thread before sharing a view across threads (replay
    /// fan-out); after priming, every accessor except frame() is read-only
    /// (frame() keeps its own lazy memo and stays single-thread only).
    void prime() const;

private:
    FrameBuffer buffer_;
};

}  // namespace arpsec::wire

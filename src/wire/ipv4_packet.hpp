#pragma once

#include <cstdint>
#include <string>

#include "common/expected.hpp"
#include "wire/buffer.hpp"
#include "wire/ipv4_address.hpp"

namespace arpsec::wire {

enum class IpProto : std::uint8_t {
    kIcmp = 1,
    kTcp = 6,
    kUdp = 17,
};

/// IPv4 packet (fixed 20-byte header, no options) with header checksum.
struct Ipv4Packet {
    static constexpr std::size_t kHeaderSize = 20;
    static constexpr std::uint8_t kDefaultTtl = 64;

    std::uint8_t tos = 0;
    std::uint16_t identification = 0;
    std::uint8_t ttl = kDefaultTtl;
    IpProto protocol = IpProto::kUdp;
    Ipv4Address src;
    Ipv4Address dst;
    Bytes payload;

    /// Serializes with a freshly computed header checksum.
    [[nodiscard]] Bytes serialize() const;

    /// Parses and verifies the header checksum and total length.
    static common::Expected<Ipv4Packet> parse(std::span<const std::uint8_t> data);
};

}  // namespace arpsec::wire

#pragma once

#include <cstdint>
#include <string>

#include "common/expected.hpp"
#include "wire/buffer.hpp"
#include "wire/ipv4_address.hpp"
#include "wire/mac_address.hpp"

namespace arpsec::wire {

enum class ArpOp : std::uint16_t {
    kRequest = 1,
    kReply = 2,
};

[[nodiscard]] std::string to_string(ArpOp op);

/// RFC 826 ARP packet for Ethernet/IPv4, with an optional authentication
/// trailer used by the cryptographic schemes (S-ARP and TARP both extend the
/// ARP payload past the classic 28 bytes; legacy stacks ignore the trailer).
///
/// The trailer is encoded as [magic u16][length u16][bytes...] so that the
/// zero padding Ethernet adds to short frames can never be misparsed as an
/// authentication extension.
struct ArpPacket {
    static constexpr std::size_t kClassicSize = 28;
    static constexpr std::uint16_t kHtypeEthernet = 1;
    static constexpr std::uint16_t kPtypeIpv4 = 0x0800;
    static constexpr std::uint16_t kAuthMagic = 0x5A17;

    std::uint16_t htype = kHtypeEthernet;
    std::uint16_t ptype = kPtypeIpv4;
    std::uint8_t hlen = MacAddress::kSize;
    std::uint8_t plen = 4;
    ArpOp op = ArpOp::kRequest;
    MacAddress sender_mac;
    Ipv4Address sender_ip;
    MacAddress target_mac;
    Ipv4Address target_ip;
    /// Opaque authentication trailer (empty for classic ARP).
    Bytes auth;

    [[nodiscard]] Bytes serialize() const;
    static common::Expected<ArpPacket> parse(std::span<const std::uint8_t> data);

    /// A request asking who-has `ip`, from (mac, self_ip).
    static ArpPacket request(MacAddress mac, Ipv4Address self_ip, Ipv4Address ip);
    /// A reply telling `to` that `ip` is at `mac`.
    static ArpPacket reply(MacAddress mac, Ipv4Address ip, MacAddress to_mac, Ipv4Address to_ip);
    /// Gratuitous announcement (sender == target IP). `as_reply` selects the
    /// reply-form variant; both are seen in the wild.
    static ArpPacket gratuitous(MacAddress mac, Ipv4Address ip, bool as_reply);

    /// Gratuitous = sender IP equals target IP (an unsolicited announcement).
    [[nodiscard]] bool is_gratuitous() const { return sender_ip == target_ip; }

    /// The 28 classic bytes only — the region cryptographic schemes sign.
    [[nodiscard]] Bytes classic_bytes() const;

    [[nodiscard]] std::string summary() const;
};

}  // namespace arpsec::wire

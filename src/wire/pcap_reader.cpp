#include "wire/pcap_reader.hpp"

#include <fstream>
#include <sstream>

namespace arpsec::wire {

namespace {

constexpr std::uint32_t kMagicMicroLe = 0xa1b2c3d4u;
constexpr std::uint32_t kMagicMicroBe = 0xd4c3b2a1u;
constexpr std::uint32_t kMagicNanoLe = 0xa1b23c4du;
constexpr std::uint32_t kMagicNanoBe = 0x4d3cb2a1u;

// pcap headers use the capturer's native byte order, announced by the magic;
// ByteReader is fixed network order, so decode with an order flag instead.
std::uint32_t read_u32(std::span<const std::uint8_t> data, std::size_t off, bool swapped) {
    if (off + 4 > data.size()) return 0;  // callers bound off; keep the read total anyway
    const auto b0 = static_cast<std::uint32_t>(data[off]);
    const auto b1 = static_cast<std::uint32_t>(data[off + 1]);
    const auto b2 = static_cast<std::uint32_t>(data[off + 2]);
    const auto b3 = static_cast<std::uint32_t>(data[off + 3]);
    if (swapped) return (b0 << 24) | (b1 << 16) | (b2 << 8) | b3;
    return (b3 << 24) | (b2 << 16) | (b1 << 8) | b0;
}

std::string fmt_error(const std::string& what, std::size_t offset) {
    std::ostringstream os;
    os << "pcap: " << what << " at offset " << offset;
    return os.str();
}

}  // namespace

common::Expected<PcapTrace> PcapReader::parse(std::span<const std::uint8_t> data) {
    using Result = common::Expected<PcapTrace>;
    if (data.size() < kGlobalHeaderSize) {
        return Result::failure("pcap: file too short for the 24-byte global header (" +
                               std::to_string(data.size()) + " bytes)");
    }

    const std::uint32_t magic = read_u32(data, 0, /*swapped=*/false);
    PcapTrace trace;
    switch (magic) {
        case kMagicMicroLe:
            break;
        case kMagicNanoLe:
            trace.nanosecond = true;
            break;
        case kMagicMicroBe:
            trace.big_endian = true;
            break;
        case kMagicNanoBe:
            trace.big_endian = true;
            trace.nanosecond = true;
            break;
        default: {
            std::ostringstream os;
            os << "pcap: unrecognized magic 0x" << std::hex << magic;
            return Result::failure(os.str());
        }
    }

    // On a little-endian host the byte-swapped magics mean "decode big-endian".
    const bool swapped = trace.big_endian;
    trace.snaplen = read_u32(data, 16, swapped);
    trace.link_type = read_u32(data, 20, swapped);

    std::size_t off = kGlobalHeaderSize;
    while (off < data.size()) {
        if (data.size() - off < kRecordHeaderSize) {
            return Result::failure(fmt_error(
                "truncated record header in record #" + std::to_string(trace.records.size()),
                off));
        }
        const std::uint32_t ts_sec = read_u32(data, off, swapped);
        const std::uint32_t ts_frac = read_u32(data, off + 4, swapped);
        const std::uint32_t incl_len = read_u32(data, off + 8, swapped);
        const std::uint32_t orig_len = read_u32(data, off + 12, swapped);
        off += kRecordHeaderSize;

        if (incl_len > trace.snaplen && incl_len > 0x0004'0000u) {
            // Far beyond any plausible snap length: a corrupt length field
            // would otherwise drag the cursor past unrelated bytes.
            return Result::failure(fmt_error(
                "implausible captured length " + std::to_string(incl_len) + " in record #" +
                    std::to_string(trace.records.size()),
                off - kRecordHeaderSize));
        }
        if (data.size() - off < incl_len) {
            return Result::failure(fmt_error(
                "truncated record body in record #" + std::to_string(trace.records.size()) +
                    " (want " + std::to_string(incl_len) + " bytes, have " +
                    std::to_string(data.size() - off) + ")",
                off));
        }

        PcapRecord rec;
        const std::int64_t frac_nanos =
            trace.nanosecond ? static_cast<std::int64_t>(ts_frac)
                             : static_cast<std::int64_t>(ts_frac) * 1000;
        rec.at = common::SimTime{static_cast<std::int64_t>(ts_sec) * 1'000'000'000 + frac_nanos};
        rec.orig_len = orig_len;
        rec.bytes.assign(data.begin() + static_cast<std::ptrdiff_t>(off),
                         data.begin() + static_cast<std::ptrdiff_t>(off + incl_len));
        trace.records.push_back(std::move(rec));
        off += incl_len;
    }
    return Result{std::move(trace)};
}

void PcapStreamReader::feed(std::span<const std::uint8_t> data) {
    bytes_fed_ += data.size();
    // Reclaim consumed prefix before appending; the threshold keeps the
    // copy cost amortized O(1) per byte.
    if (pos_ > 4096 && pos_ > buf_.size() / 2) {
        base_ += pos_;
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data.begin(), data.end());
}

PcapStreamReader::Status PcapStreamReader::fail(const std::string& error) {
    failed_ = true;
    error_ = error;
    return Status::kError;
}

PcapStreamReader::Status PcapStreamReader::poll(PcapRecord& out) {
    if (failed_) return Status::kError;
    const std::size_t available = buf_.size() - pos_;
    const std::span<const std::uint8_t> data(buf_.data() + pos_, available);

    if (!header_done_) {
        if (data.size() < PcapReader::kGlobalHeaderSize) {
            if (finished_ && !data.empty()) {
                return fail("pcap: file too short for the 24-byte global header (" +
                            std::to_string(data.size()) + " bytes)");
            }
            return finished_ ? Status::kEnd : Status::kNeedMore;
        }
        const std::uint32_t magic = read_u32(data, 0, /*swapped=*/false);
        switch (magic) {
            case kMagicMicroLe:
                break;
            case kMagicNanoLe:
                nanosecond_ = true;
                break;
            case kMagicMicroBe:
                big_endian_ = true;
                break;
            case kMagicNanoBe:
                big_endian_ = true;
                nanosecond_ = true;
                break;
            default: {
                std::ostringstream os;
                os << "pcap: unrecognized magic 0x" << std::hex << magic;
                return fail(os.str());
            }
        }
        snaplen_ = read_u32(data, 16, big_endian_);
        link_type_ = read_u32(data, 20, big_endian_);
        pos_ += PcapReader::kGlobalHeaderSize;
        header_done_ = true;
        return poll(out);
    }

    if (data.empty()) return finished_ ? Status::kEnd : Status::kNeedMore;
    if (data.size() < PcapReader::kRecordHeaderSize) {
        if (finished_) {
            return fail(fmt_error(
                "truncated record header in record #" + std::to_string(records_),
                base_ + pos_));
        }
        return Status::kNeedMore;
    }

    const std::uint32_t ts_sec = read_u32(data, 0, big_endian_);
    const std::uint32_t ts_frac = read_u32(data, 4, big_endian_);
    const std::uint32_t incl_len = read_u32(data, 8, big_endian_);
    const std::uint32_t orig_len = read_u32(data, 12, big_endian_);

    if (incl_len > snaplen_ && incl_len > 0x0004'0000u) {
        // Same plausibility bound as the batch parser: a corrupt length
        // field must not make the stream wait forever for phantom bytes.
        return fail(fmt_error("implausible captured length " + std::to_string(incl_len) +
                                  " in record #" + std::to_string(records_),
                              base_ + pos_));
    }
    if (data.size() - PcapReader::kRecordHeaderSize < incl_len) {
        if (finished_) {
            return fail(fmt_error(
                "truncated record body in record #" + std::to_string(records_) + " (want " +
                    std::to_string(incl_len) + " bytes, have " +
                    std::to_string(data.size() - PcapReader::kRecordHeaderSize) + ")",
                base_ + pos_ + PcapReader::kRecordHeaderSize));
        }
        return Status::kNeedMore;
    }

    const std::int64_t frac_nanos = nanosecond_ ? static_cast<std::int64_t>(ts_frac)
                                                : static_cast<std::int64_t>(ts_frac) * 1000;
    out.at = common::SimTime{static_cast<std::int64_t>(ts_sec) * 1'000'000'000 + frac_nanos};
    out.orig_len = orig_len;
    const std::size_t body = pos_ + PcapReader::kRecordHeaderSize;
    out.bytes.assign(buf_.begin() + static_cast<std::ptrdiff_t>(body),
                     buf_.begin() + static_cast<std::ptrdiff_t>(body + incl_len));
    pos_ = body + incl_len;
    ++records_;
    return Status::kRecord;
}

common::Expected<PcapTrace> PcapReader::read_file(const std::string& path) {
    using Result = common::Expected<PcapTrace>;
    std::ifstream in{path, std::ios::binary};
    if (!in) return Result::failure("pcap: cannot open '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string raw = buf.str();
    return parse(std::span<const std::uint8_t>{
        reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size()});
}

}  // namespace arpsec::wire

#pragma once

#include <cstdint>

#include "common/expected.hpp"
#include "wire/buffer.hpp"

namespace arpsec::wire {

/// UDP datagram. The checksum is computed over the datagram only (the
/// optional IPv4 pseudo-header is omitted; the simulator's IPv4 layer
/// already integrity-checks addressing via its own header checksum).
struct UdpDatagram {
    static constexpr std::size_t kHeaderSize = 8;

    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    Bytes payload;

    [[nodiscard]] Bytes serialize() const;
    static common::Expected<UdpDatagram> parse(std::span<const std::uint8_t> data);
};

}  // namespace arpsec::wire

#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/expected.hpp"

namespace arpsec::wire {

/// 48-bit IEEE 802 MAC address.
class MacAddress {
public:
    static constexpr std::size_t kSize = 6;

    constexpr MacAddress() = default;
    constexpr explicit MacAddress(std::array<std::uint8_t, kSize> octets) : octets_(octets) {}
    constexpr MacAddress(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d,
                         std::uint8_t e, std::uint8_t f)
        : octets_{a, b, c, d, e, f} {}

    /// ff:ff:ff:ff:ff:ff
    static constexpr MacAddress broadcast() {
        return MacAddress{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
    }
    static constexpr MacAddress zero() { return MacAddress{}; }

    /// Builds a locally-administered unicast address from a 40-bit id:
    /// 02:xx:xx:xx:xx:xx. Used by the simulator to hand out unique NICs.
    static constexpr MacAddress local(std::uint64_t id) {
        return MacAddress{0x02,
                          static_cast<std::uint8_t>(id >> 32),
                          static_cast<std::uint8_t>(id >> 24),
                          static_cast<std::uint8_t>(id >> 16),
                          static_cast<std::uint8_t>(id >> 8),
                          static_cast<std::uint8_t>(id)};
    }

    /// Parses "aa:bb:cc:dd:ee:ff" or "aa-bb-cc-dd-ee-ff".
    static common::Expected<MacAddress> parse(std::string_view text);

    [[nodiscard]] constexpr const std::array<std::uint8_t, kSize>& octets() const {
        return octets_;
    }
    [[nodiscard]] constexpr bool is_broadcast() const { return *this == broadcast(); }
    [[nodiscard]] constexpr bool is_multicast() const { return (octets_[0] & 0x01) != 0; }
    [[nodiscard]] constexpr bool is_zero() const { return *this == zero(); }
    /// Unicast = neither broadcast nor group address.
    [[nodiscard]] constexpr bool is_unicast() const { return !is_multicast(); }

    [[nodiscard]] std::string to_string() const;

    /// The address as a 48-bit integer (useful as a map key).
    [[nodiscard]] constexpr std::uint64_t to_u64() const {
        std::uint64_t v = 0;
        for (std::uint8_t o : octets_) v = (v << 8) | o;
        return v;
    }

    constexpr auto operator<=>(const MacAddress&) const = default;

private:
    std::array<std::uint8_t, kSize> octets_{};
};

}  // namespace arpsec::wire

template <>
struct std::hash<arpsec::wire::MacAddress> {
    std::size_t operator()(const arpsec::wire::MacAddress& m) const noexcept {
        return std::hash<std::uint64_t>{}(m.to_u64() * 0x9E3779B97f4A7C15ULL);
    }
};

#include "wire/ipv4_packet.hpp"

#include "wire/checksum.hpp"

namespace arpsec::wire {

Bytes Ipv4Packet::serialize() const {
    Bytes out;
    out.reserve(kHeaderSize + payload.size());
    ByteWriter w{out};
    w.u8(0x45);  // version 4, IHL 5
    w.u8(tos);
    w.u16(static_cast<std::uint16_t>(kHeaderSize + payload.size()));
    w.u16(identification);
    w.u16(0);  // flags + fragment offset: fragmentation is not modelled
    w.u8(ttl);
    w.u8(static_cast<std::uint8_t>(protocol));
    w.u16(0);  // checksum placeholder
    w.ipv4(src);
    w.ipv4(dst);
    const std::uint16_t csum =
        internet_checksum(std::span<const std::uint8_t>{out.data(), kHeaderSize});
    out[10] = static_cast<std::uint8_t>(csum >> 8);
    out[11] = static_cast<std::uint8_t>(csum);
    w.bytes(payload);
    return out;
}

common::Expected<Ipv4Packet> Ipv4Packet::parse(std::span<const std::uint8_t> data) {
    using R = common::Expected<Ipv4Packet>;
    if (data.size() < kHeaderSize) return R::failure("IPv4 packet shorter than header");
    if (internet_checksum(data.first(kHeaderSize)) != 0) {
        return R::failure("IPv4 header checksum mismatch");
    }
    ByteReader r{data};
    Ipv4Packet p;
    const std::uint8_t ver_ihl = r.u8();
    if (ver_ihl != 0x45) return R::failure("unsupported IPv4 version/IHL");
    p.tos = r.u8();
    const std::uint16_t total_len = r.u16();
    p.identification = r.u16();
    const std::uint16_t flags_frag = r.u16();
    if ((flags_frag & 0x3FFF) != 0) return R::failure("fragmented packets not supported");
    p.ttl = r.u8();
    p.protocol = static_cast<IpProto>(r.u8());
    r.u16();  // checksum, already verified
    p.src = r.ipv4();
    p.dst = r.ipv4();
    if (total_len < kHeaderSize || total_len > data.size()) {
        return R::failure("IPv4 total length inconsistent with buffer");
    }
    p.payload = r.bytes(total_len - kHeaderSize);
    if (!r.ok()) return R::failure("IPv4 payload truncated");
    return p;
}

}  // namespace arpsec::wire

#pragma once

#include <cstdio>
#include <memory>
#include <span>
#include <string>

#include "common/time.hpp"

namespace arpsec::wire {

/// Writes captured frames in classic libpcap format (magic 0xa1b2c3d4,
/// LINKTYPE_ETHERNET), so simulated captures open directly in
/// Wireshark/tcpdump. This is the output half of the libpcap substitution
/// described in DESIGN.md.
class PcapWriter {
public:
    /// Opens `path` for writing and emits the global header. Throws
    /// std::runtime_error if the file cannot be opened.
    explicit PcapWriter(const std::string& path);
    ~PcapWriter();

    PcapWriter(const PcapWriter&) = delete;
    PcapWriter& operator=(const PcapWriter&) = delete;

    /// Appends one frame with the given capture timestamp.
    void write(common::SimTime at, std::span<const std::uint8_t> frame);

    [[nodiscard]] std::size_t frames_written() const { return frames_; }

private:
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);

    std::FILE* file_ = nullptr;
    std::size_t frames_ = 0;
};

}  // namespace arpsec::wire

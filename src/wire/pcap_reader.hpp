#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "common/time.hpp"
#include "wire/buffer.hpp"

namespace arpsec::wire {

/// One captured frame: timestamp, the captured bytes (caplen), and the
/// original on-wire length (orig_len >= bytes.size() when the capture was
/// snapped).
struct PcapRecord {
    common::SimTime at;
    std::uint32_t orig_len = 0;
    Bytes bytes;
};

/// A fully parsed classic-pcap capture file.
struct PcapTrace {
    std::uint32_t link_type = 1;  // LINKTYPE_ETHERNET
    std::uint32_t snaplen = 65535;
    bool nanosecond = false;      // nanosecond-resolution magic variant
    bool big_endian = false;      // file written on a big-endian capturer
    std::vector<PcapRecord> records;
};

/// Reads classic libpcap captures (the input half of PcapWriter): both byte
/// orders (magic 0xa1b2c3d4 and its swap) and both timestamp resolutions
/// (microsecond 0xa1b2c3d4, nanosecond 0xa1b23c4d). Every read is bounds
/// checked; malformed or truncated input is surfaced as a typed
/// common::Expected failure naming the offending record — parsers in
/// src/wire/ never assert on attacker-controlled bytes.
class PcapReader {
public:
    static constexpr std::size_t kGlobalHeaderSize = 24;
    static constexpr std::size_t kRecordHeaderSize = 16;

    /// Parses a whole capture from memory.
    static common::Expected<PcapTrace> parse(std::span<const std::uint8_t> data);

    /// Reads and parses `path`; I/O problems are failures too.
    static common::Expected<PcapTrace> read_file(const std::string& path);
};

/// Incremental classic-pcap parser: feed transport/file chunks of any
/// size, poll records out as they complete. This is the streaming half of
/// `PcapReader::parse` — a chunk boundary landing mid-header or mid-body
/// simply reports `kNeedMore` and resumes when the rest arrives, which is
/// what a tail -f style capture follower or a socket forwarder needs.
///
/// Errors are sticky: pcap has no record-level resync marker, so a corrupt
/// header (bad magic, implausible captured length) poisons the rest of the
/// stream and every later poll repeats the typed error. Truncation is only
/// an error once the caller declares the stream over via `finish()`.
class PcapStreamReader {
public:
    enum class Status {
        kNeedMore,  ///< No complete record buffered; feed more (or finish()).
        kRecord,    ///< `out` holds the next record.
        kEnd,       ///< finish() was called and every buffered byte consumed.
        kError,     ///< Sticky parse failure; `last_error()` says why.
    };

    /// Appends capture bytes to the reassembly buffer.
    void feed(std::span<const std::uint8_t> data);

    /// Declares end-of-stream: leftover bytes become a truncation error.
    void finish() { finished_ = true; }

    /// Extracts the next record, if a complete one is buffered.
    Status poll(PcapRecord& out);

    /// Global-header fields; meaningful once `header_ready()`.
    [[nodiscard]] bool header_ready() const { return header_done_; }
    [[nodiscard]] std::uint32_t link_type() const { return link_type_; }
    [[nodiscard]] std::uint32_t snaplen() const { return snaplen_; }
    [[nodiscard]] bool nanosecond() const { return nanosecond_; }
    [[nodiscard]] bool big_endian() const { return big_endian_; }

    [[nodiscard]] const std::string& last_error() const { return error_; }
    [[nodiscard]] std::uint64_t records() const { return records_; }
    [[nodiscard]] std::uint64_t bytes_fed() const { return bytes_fed_; }
    /// Bytes buffered but not yet consumed by a poll.
    [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

private:
    Status fail(const std::string& error);

    Bytes buf_;
    std::size_t pos_ = 0;       // consumed prefix of buf_
    std::uint64_t base_ = 0;    // stream offset of buf_[0] (errors use absolute offsets)
    bool header_done_ = false;
    bool finished_ = false;
    bool failed_ = false;
    std::uint32_t link_type_ = 1;
    std::uint32_t snaplen_ = 65535;
    bool nanosecond_ = false;
    bool big_endian_ = false;
    std::string error_;
    std::uint64_t records_ = 0;
    std::uint64_t bytes_fed_ = 0;
};

}  // namespace arpsec::wire

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "common/time.hpp"
#include "wire/buffer.hpp"

namespace arpsec::wire {

/// One captured frame: timestamp, the captured bytes (caplen), and the
/// original on-wire length (orig_len >= bytes.size() when the capture was
/// snapped).
struct PcapRecord {
    common::SimTime at;
    std::uint32_t orig_len = 0;
    Bytes bytes;
};

/// A fully parsed classic-pcap capture file.
struct PcapTrace {
    std::uint32_t link_type = 1;  // LINKTYPE_ETHERNET
    std::uint32_t snaplen = 65535;
    bool nanosecond = false;      // nanosecond-resolution magic variant
    bool big_endian = false;      // file written on a big-endian capturer
    std::vector<PcapRecord> records;
};

/// Reads classic libpcap captures (the input half of PcapWriter): both byte
/// orders (magic 0xa1b2c3d4 and its swap) and both timestamp resolutions
/// (microsecond 0xa1b2c3d4, nanosecond 0xa1b23c4d). Every read is bounds
/// checked; malformed or truncated input is surfaced as a typed
/// common::Expected failure naming the offending record — parsers in
/// src/wire/ never assert on attacker-controlled bytes.
class PcapReader {
public:
    static constexpr std::size_t kGlobalHeaderSize = 24;
    static constexpr std::size_t kRecordHeaderSize = 16;

    /// Parses a whole capture from memory.
    static common::Expected<PcapTrace> parse(std::span<const std::uint8_t> data);

    /// Reads and parses `path`; I/O problems are failures too.
    static common::Expected<PcapTrace> read_file(const std::string& path);
};

}  // namespace arpsec::wire

#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/expected.hpp"

namespace arpsec::wire {

/// IPv4 address, stored in host byte order.
class Ipv4Address {
public:
    constexpr Ipv4Address() = default;
    constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}
    constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
        : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) |
                 d) {}

    static constexpr Ipv4Address any() { return Ipv4Address{0U}; }
    static constexpr Ipv4Address broadcast() { return Ipv4Address{0xFFFFFFFFU}; }

    /// Parses dotted-quad notation ("192.168.1.7").
    static common::Expected<Ipv4Address> parse(std::string_view text);

    [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
    [[nodiscard]] constexpr bool is_any() const { return value_ == 0; }
    [[nodiscard]] constexpr bool is_broadcast() const { return value_ == 0xFFFFFFFFU; }

    [[nodiscard]] std::string to_string() const;

    constexpr auto operator<=>(const Ipv4Address&) const = default;

    /// Next address numerically (used when iterating DHCP pools).
    [[nodiscard]] constexpr Ipv4Address next() const { return Ipv4Address{value_ + 1}; }

private:
    std::uint32_t value_ = 0;
};

/// An IPv4 subnet in CIDR form (e.g. 192.168.1.0/24).
class Ipv4Subnet {
public:
    constexpr Ipv4Subnet() = default;
    constexpr Ipv4Subnet(Ipv4Address base, int prefix_len)
        : base_(Ipv4Address{base.value() & mask_for(prefix_len)}), prefix_len_(prefix_len) {}

    [[nodiscard]] constexpr bool contains(Ipv4Address a) const {
        return (a.value() & mask_for(prefix_len_)) == base_.value();
    }
    [[nodiscard]] constexpr Ipv4Address network() const { return base_; }
    [[nodiscard]] constexpr Ipv4Address broadcast_address() const {
        return Ipv4Address{base_.value() | ~mask_for(prefix_len_)};
    }
    [[nodiscard]] constexpr int prefix_len() const { return prefix_len_; }
    /// Host address at the given offset from the network address.
    [[nodiscard]] constexpr Ipv4Address host(std::uint32_t offset) const {
        return Ipv4Address{base_.value() + offset};
    }
    [[nodiscard]] std::string to_string() const;

private:
    static constexpr std::uint32_t mask_for(int prefix_len) {
        return prefix_len == 0 ? 0U : ~0U << (32 - prefix_len);
    }
    Ipv4Address base_{};
    int prefix_len_ = 0;
};

}  // namespace arpsec::wire

template <>
struct std::hash<arpsec::wire::Ipv4Address> {
    std::size_t operator()(const arpsec::wire::Ipv4Address& a) const noexcept {
        return std::hash<std::uint32_t>{}(a.value());
    }
};

#include "wire/arp_packet.hpp"

namespace arpsec::wire {

std::string to_string(ArpOp op) {
    switch (op) {
        case ArpOp::kRequest: return "request";
        case ArpOp::kReply: return "reply";
    }
    return "op" + std::to_string(static_cast<int>(op));
}

Bytes ArpPacket::classic_bytes() const {
    Bytes out;
    out.reserve(kClassicSize);
    ByteWriter w{out};
    w.u16(htype);
    w.u16(ptype);
    w.u8(hlen);
    w.u8(plen);
    w.u16(static_cast<std::uint16_t>(op));
    w.mac(sender_mac);
    w.ipv4(sender_ip);
    w.mac(target_mac);
    w.ipv4(target_ip);
    return out;
}

Bytes ArpPacket::serialize() const {
    Bytes out = classic_bytes();
    if (!auth.empty()) {
        ByteWriter w{out};
        w.u16(kAuthMagic);
        w.u16(static_cast<std::uint16_t>(auth.size()));
        w.bytes(auth);
    }
    return out;
}

common::Expected<ArpPacket> ArpPacket::parse(std::span<const std::uint8_t> data) {
    using R = common::Expected<ArpPacket>;
    ByteReader r{data};
    ArpPacket p;
    p.htype = r.u16();
    p.ptype = r.u16();
    p.hlen = r.u8();
    p.plen = r.u8();
    const std::uint16_t op = r.u16();
    p.sender_mac = r.mac();
    p.sender_ip = r.ipv4();
    p.target_mac = r.mac();
    p.target_ip = r.ipv4();
    if (!r.ok()) return R::failure("ARP packet truncated");
    if (p.htype != kHtypeEthernet || p.ptype != kPtypeIpv4) {
        return R::failure("unsupported ARP hardware/protocol type");
    }
    if (p.hlen != MacAddress::kSize || p.plen != 4) {
        return R::failure("unexpected ARP address lengths");
    }
    if (op != static_cast<std::uint16_t>(ArpOp::kRequest) &&
        op != static_cast<std::uint16_t>(ArpOp::kReply)) {
        return R::failure("unknown ARP opcode");
    }
    p.op = static_cast<ArpOp>(op);
    // Optional authentication trailer. Ethernet padding is all zeros and
    // cannot match the magic, so plain frames parse with an empty trailer.
    if (r.remaining() >= 4) {
        ByteReader peek{data.subspan(r.position())};
        if (peek.u16() == kAuthMagic) {
            r.skip(2);
            const std::uint16_t len = r.u16();
            p.auth = r.bytes(len);
            if (!r.ok()) return R::failure("ARP auth trailer truncated");
        }
    }
    return p;
}

ArpPacket ArpPacket::request(MacAddress mac, Ipv4Address self_ip, Ipv4Address ip) {
    ArpPacket p;
    p.op = ArpOp::kRequest;
    p.sender_mac = mac;
    p.sender_ip = self_ip;
    p.target_mac = MacAddress::zero();
    p.target_ip = ip;
    return p;
}

ArpPacket ArpPacket::reply(MacAddress mac, Ipv4Address ip, MacAddress to_mac, Ipv4Address to_ip) {
    ArpPacket p;
    p.op = ArpOp::kReply;
    p.sender_mac = mac;
    p.sender_ip = ip;
    p.target_mac = to_mac;
    p.target_ip = to_ip;
    return p;
}

ArpPacket ArpPacket::gratuitous(MacAddress mac, Ipv4Address ip, bool as_reply) {
    ArpPacket p;
    p.op = as_reply ? ArpOp::kReply : ArpOp::kRequest;
    p.sender_mac = mac;
    p.sender_ip = ip;
    p.target_mac = as_reply ? MacAddress::broadcast() : MacAddress::zero();
    p.target_ip = ip;
    return p;
}

std::string ArpPacket::summary() const {
    std::string s = "ARP " + to_string(op) + " " + sender_ip.to_string() + " is-at " +
                    sender_mac.to_string() + " -> " + target_ip.to_string();
    if (!auth.empty()) s += " [auth " + std::to_string(auth.size()) + "B]";
    return s;
}

}  // namespace arpsec::wire

#include "wire/udp_datagram.hpp"

#include "wire/checksum.hpp"

namespace arpsec::wire {

Bytes UdpDatagram::serialize() const {
    Bytes out;
    out.reserve(kHeaderSize + payload.size());
    ByteWriter w{out};
    w.u16(src_port);
    w.u16(dst_port);
    w.u16(static_cast<std::uint16_t>(kHeaderSize + payload.size()));
    w.u16(0);  // checksum placeholder
    w.bytes(payload);
    const std::uint16_t csum = internet_checksum(out);
    out[6] = static_cast<std::uint8_t>(csum >> 8);
    out[7] = static_cast<std::uint8_t>(csum);
    return out;
}

common::Expected<UdpDatagram> UdpDatagram::parse(std::span<const std::uint8_t> data) {
    using R = common::Expected<UdpDatagram>;
    if (data.size() < kHeaderSize) return R::failure("UDP datagram shorter than header");
    ByteReader r{data};
    UdpDatagram d;
    d.src_port = r.u16();
    d.dst_port = r.u16();
    const std::uint16_t len = r.u16();
    r.u16();  // checksum
    if (len < kHeaderSize || len > data.size()) {
        return R::failure("UDP length inconsistent with buffer");
    }
    // Verify checksum over exactly `len` bytes (the buffer may carry
    // Ethernet padding past the datagram).
    if (internet_checksum(data.first(len)) != 0) {
        return R::failure("UDP checksum mismatch");
    }
    d.payload = r.bytes(len - kHeaderSize);
    if (!r.ok()) return R::failure("UDP payload truncated");
    return d;
}

}  // namespace arpsec::wire

#include "wire/ipv4_address.hpp"

#include <cstdio>

namespace arpsec::wire {

common::Expected<Ipv4Address> Ipv4Address::parse(std::string_view text) {
    using R = common::Expected<Ipv4Address>;
    std::uint32_t value = 0;
    int octets = 0;
    std::size_t i = 0;
    while (octets < 4) {
        if (i >= text.size() || text[i] < '0' || text[i] > '9') {
            return R::failure("expected digit in IPv4 address");
        }
        std::uint32_t octet = 0;
        std::size_t digits = 0;
        while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
            octet = octet * 10 + static_cast<std::uint32_t>(text[i] - '0');
            ++digits;
            ++i;
            if (digits > 3 || octet > 255) return R::failure("IPv4 octet out of range");
        }
        value = (value << 8) | octet;
        ++octets;
        if (octets < 4) {
            if (i >= text.size() || text[i] != '.') return R::failure("expected '.' separator");
            ++i;
        }
    }
    if (i != text.size()) return R::failure("trailing characters after IPv4 address");
    return Ipv4Address{value};
}

std::string Ipv4Address::to_string() const {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xFF, (value_ >> 16) & 0xFF,
                  (value_ >> 8) & 0xFF, value_ & 0xFF);
    return buf;
}

std::string Ipv4Subnet::to_string() const {
    return network().to_string() + "/" + std::to_string(prefix_len_);
}

}  // namespace arpsec::wire

#include "wire/mac_address.hpp"

#include <cstdio>

namespace arpsec::wire {
namespace {

int nibble(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

}  // namespace

common::Expected<MacAddress> MacAddress::parse(std::string_view text) {
    using R = common::Expected<MacAddress>;
    if (text.size() != 17) return R::failure("MAC address must be 17 characters");
    std::array<std::uint8_t, kSize> octets{};
    for (std::size_t i = 0; i < kSize; ++i) {
        const std::size_t at = i * 3;
        const int hi = nibble(text[at]);
        const int lo = nibble(text[at + 1]);
        if (hi < 0 || lo < 0) return R::failure("invalid hex digit in MAC address");
        octets[i] = static_cast<std::uint8_t>((hi << 4) | lo);
        if (i + 1 < kSize) {
            const char sep = text[at + 2];
            if (sep != ':' && sep != '-') return R::failure("expected ':' or '-' separator");
        }
    }
    return MacAddress{octets};
}

std::string MacAddress::to_string() const {
    char buf[18];
    std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0], octets_[1],
                  octets_[2], octets_[3], octets_[4], octets_[5]);
    return buf;
}

}  // namespace arpsec::wire

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "wire/buffer.hpp"
#include "wire/ipv4_address.hpp"
#include "wire/mac_address.hpp"

namespace arpsec::wire {

/// `arpsec.stream.v1` — the length-prefixed record framing spoken between
/// `arpsec-loadgen` (or any capture forwarder) and `arpsec-served`.
///
/// Every record is `u32 body_len` (big-endian) followed by `body_len`
/// bytes of body; the first body byte is the record type. The framing is
/// transport-agnostic: the same bytes flow over a Unix socket, a TCP
/// socket, or an in-process pipe, and the decoder below is incremental so
/// a reader can feed whatever chunk sizes the transport hands it.
///
/// Client -> server: kHello (once), kDirectory (optional, once, before any
/// frame), kFrame (repeated), kEnd. Server -> client: kAlert (repeated,
/// one JSONL `arpsec.alert-stream.v1` line each) and kSummary (final
/// scorecard JSON).
enum class StreamRecordType : std::uint8_t {
    kHello = 0x01,
    kDirectory = 0x02,
    kFrame = 0x03,
    kEnd = 0x04,
    kAlert = 0x10,
    kSummary = 0x11,
};

[[nodiscard]] std::string to_string(StreamRecordType type);

/// First record on every stream; lets the server reject incompatible
/// peers before any frame is admitted.
struct StreamHello {
    std::uint32_t version = 1;
    std::uint64_t seed = 1;  ///< Seed for the per-shard offline LANs.
};

/// One `detect::HostRecord` equivalent. The wire layer cannot depend on
/// detect (layering), so the codec carries the fields and serve converts.
struct StreamHostEntry {
    std::string name;
    Ipv4Address ip;
    MacAddress mac;
};

/// One captured frame plus its capture timestamp (nanoseconds since the
/// stream epoch — virtual time on the serve side).
struct StreamFrame {
    std::uint64_t at_nanos = 0;
    Bytes bytes;
};

/// A decoded record. `type` says which member is meaningful.
struct StreamRecord {
    StreamRecordType type = StreamRecordType::kEnd;
    StreamHello hello;                       // kHello
    std::vector<StreamHostEntry> directory;  // kDirectory
    StreamFrame frame;                       // kFrame
    std::string text;                        // kAlert / kSummary (UTF-8 JSON)
};

/// Serializers append one complete record (length prefix included) to
/// `out`, so callers can batch several records into a single write.
void encode_hello(Bytes& out, const StreamHello& hello);
void encode_directory(Bytes& out, std::span<const StreamHostEntry> entries);
void encode_frame(Bytes& out, std::uint64_t at_nanos, std::span<const std::uint8_t> frame);
void encode_end(Bytes& out);
void encode_alert(Bytes& out, const std::string& json_line);
void encode_summary(Bytes& out, const std::string& json);

/// Incremental decoder for the record stream. Feed it transport chunks of
/// any size, then poll until it reports `kNeedMore`.
///
/// Error containment mirrors the repo's parser contract: a record whose
/// body fails validation is *skipped* (`kBadRecord`, with a typed error
/// naming the record and offset) and decoding resumes at the next length
/// prefix — one corrupt frame must not kill a long-lived daemon. The only
/// unrecoverable state is a corrupt length prefix (zero or larger than
/// `kMaxRecordBytes`): record boundaries are gone at that point, so the
/// decoder latches `fatal()` rather than guessing at a resync.
class StreamDecoder {
public:
    /// Upper bound on a record body. Generous for any real frame (an
    /// Ethernet frame is <64 KiB even with jumbo encapsulation) while
    /// keeping a hostile length prefix from reserving gigabytes.
    static constexpr std::size_t kMaxRecordBytes = 1u << 20;

    enum class Status {
        kNeedMore,   ///< Buffer holds no complete record; feed more bytes.
        kRecord,     ///< `out` holds the next record.
        kBadRecord,  ///< A record was skipped; `last_error()` says why.
        kFatal,      ///< Framing lost; the connection must be dropped.
    };

    /// Appends transport bytes to the internal reassembly buffer.
    void feed(std::span<const std::uint8_t> data);

    /// Extracts the next record, if a complete one is buffered.
    Status poll(StreamRecord& out);

    [[nodiscard]] bool fatal() const { return fatal_; }
    [[nodiscard]] const std::string& last_error() const { return error_; }
    [[nodiscard]] std::uint64_t records() const { return records_; }
    [[nodiscard]] std::uint64_t bad_records() const { return bad_records_; }
    [[nodiscard]] std::uint64_t bytes_fed() const { return bytes_fed_; }
    /// Bytes buffered but not yet consumed by a poll.
    [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

private:
    Bytes buf_;
    std::size_t pos_ = 0;
    std::string error_;
    bool fatal_ = false;
    std::uint64_t records_ = 0;
    std::uint64_t bad_records_ = 0;
    std::uint64_t bytes_fed_ = 0;
};

/// Parses one record body (everything after the length prefix). Exposed
/// for tests; `StreamDecoder` is the transport-facing entry point.
[[nodiscard]] common::Expected<StreamRecord> decode_record_body(
    std::span<const std::uint8_t> body);

}  // namespace arpsec::wire

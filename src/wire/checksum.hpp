#pragma once

#include <cstdint>
#include <span>

namespace arpsec::wire {

/// RFC 1071 Internet checksum: one's-complement sum of 16-bit words.
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

}  // namespace arpsec::wire

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "telemetry/json.hpp"

namespace arpsec::lint {

/// One rule violation at a specific source location.
struct Violation {
    std::string file;     // repo-relative path, forward slashes
    std::size_t line = 0; // 1-based
    std::string rule;     // rule id, e.g. "sim-determinism"
    std::string message;  // human-readable explanation
    std::string snippet;  // the offending source line, trimmed
};

/// Rule metadata for --list-rules and the report envelope.
struct RuleInfo {
    std::string_view id;
    std::string_view summary;
};

/// Every rule the engine enforces, in report order.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

/// Repo-native static analysis: a fast textual scanner enforcing the
/// invariants the compiler cannot see (sim determinism, parser hygiene,
/// include layering). Rules operate on comment- and string-stripped source
/// so prose never trips a check; `// lint:allow(<rule>)` on the offending
/// line or the line above suppresses a finding.
class Linter {
public:
    /// Lints one translation unit given as text. `path` is the repo-relative
    /// path (e.g. "src/wire/arp_packet.cpp") and selects which rules apply.
    [[nodiscard]] std::vector<Violation> lint_source(std::string_view path,
                                                     std::string_view text) const;

    /// Walks src/, tests/, tools/, bench/, and examples/ under `root` and
    /// lints every .cpp/.hpp file, in sorted path order.
    [[nodiscard]] std::vector<Violation> lint_tree(const std::string& root);

    /// Number of files visited by the last lint_tree() call.
    [[nodiscard]] std::size_t files_scanned() const { return files_scanned_; }

    /// Builds the arpsec.lint-report.v1 JSON envelope.
    [[nodiscard]] static telemetry::Json report(const std::vector<Violation>& violations,
                                                std::string_view root,
                                                std::size_t files_scanned);

private:
    std::size_t files_scanned_ = 0;
};

/// Replaces comment bodies and string/char literal contents with spaces while
/// preserving line structure, so rules match code, not prose. Exposed for
/// tests.
[[nodiscard]] std::string strip_comments_and_strings(std::string_view text);

}  // namespace arpsec::lint

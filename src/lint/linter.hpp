#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "telemetry/json.hpp"

namespace arpsec::lint {

/// One rule violation at a specific source location. When the rule knows a
/// mechanical remedy it attaches one as an insertion: `fix_insert` goes in
/// front of (1-based) line `fix_line`. `fix_line == 0` means no autofix.
struct Violation {
    std::string file;     // repo-relative path, forward slashes
    std::size_t line = 0; // 1-based
    std::string rule;     // rule id, e.g. "sim-determinism"
    std::string message;  // human-readable explanation
    std::string snippet;  // the offending source line, trimmed
    std::size_t fix_line = 0;
    std::string fix_insert;
};

/// A file lint_tree() could not lint (unreadable, invalid UTF-8) — surfaced
/// in the report envelope instead of silently shrinking coverage.
struct SkippedFile {
    std::string file;
    std::string reason;
};

/// Rule metadata for --list-rules and the report envelope.
struct RuleInfo {
    std::string_view id;
    std::string_view summary;
};

/// Every rule the engine enforces, in report order.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

/// Repo-native static analysis. v1 rules are textual scans over comment- and
/// string-stripped source; v2 rules (untrusted-read-bounds,
/// exhaustive-switch, lock-discipline, symbol-layering) run on the token
/// stream and the per-TU symbol index, with lint_tree() merging per-file
/// facts first so enums and guard annotations cross file boundaries.
/// `// lint:allow(<rule>)` on the offending line or the line above
/// suppresses a finding.
class Linter {
public:
    /// Lints one translation unit given as text. `path` is the repo-relative
    /// path (e.g. "src/wire/arp_packet.cpp") and selects which rules apply.
    /// Cross-file rules fall back to facts visible in this TU alone.
    [[nodiscard]] std::vector<Violation> lint_source(std::string_view path,
                                                     std::string_view text) const;

    /// Walks src/, tests/, tools/, bench/, and examples/ under `root` and
    /// lints every .cpp/.hpp file, in sorted path order. Pass 1 indexes
    /// every file (enums, guarded fields, module symbols); pass 2 lints
    /// against the merged facts.
    [[nodiscard]] std::vector<Violation> lint_tree(const std::string& root);

    /// Number of files linted by the last lint_tree() call.
    [[nodiscard]] std::size_t files_scanned() const { return files_scanned_; }

    /// Files the last lint_tree() call had to skip, with reasons.
    [[nodiscard]] const std::vector<SkippedFile>& skipped() const { return skipped_; }

    /// Builds the arpsec.lint-report.v1 JSON envelope.
    [[nodiscard]] static telemetry::Json report(const std::vector<Violation>& violations,
                                                std::string_view root,
                                                std::size_t files_scanned,
                                                const std::vector<SkippedFile>& skipped = {});

    /// Applies the attached autofixes (fix_line/fix_insert) for ONE file's
    /// violations to that file's text and returns the fixed text. Insertions
    /// are applied bottom-up so earlier fixes do not shift later ones.
    [[nodiscard]] static std::string apply_fixes(std::string_view text,
                                                 const std::vector<Violation>& violations);

private:
    std::size_t files_scanned_ = 0;
    std::vector<SkippedFile> skipped_;
};

/// Contents of every source file lint_tree() would scan under `root`,
/// unreadable/non-UTF-8 files omitted. Exposed so the throughput bench
/// measures lines/sec over the linter's own corpus.
[[nodiscard]] std::vector<std::string> scanned_sources(const std::string& root);

/// Replaces comment bodies and string/char literal contents with spaces while
/// preserving line structure, so rules match code, not prose. Built on the
/// same region scanner as the lexer (see lexer.hpp), so the two cannot
/// disagree about raw strings, custom delimiters, or digit separators.
/// Exposed for tests.
[[nodiscard]] std::string strip_comments_and_strings(std::string_view text);

}  // namespace arpsec::lint

#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/index.hpp"
#include "lint/linter.hpp"

namespace arpsec::lint {

/// Module dependency closure mirroring src/*/CMakeLists.txt link graphs.
/// A file in src/<key>/ may only include (include-layering) or name symbols
/// from (symbol-layering) the listed modules.
[[nodiscard]] const std::map<std::string, std::set<std::string>, std::less<>>& module_layering();

/// Everything a token-level semantic rule needs about one file. `tree` is
/// the cross-file fact base from lint_tree pass 1; it is null when linting a
/// lone source string, in which case rules fall back to per-TU facts.
struct SemanticInput {
    std::string_view path;
    std::string module;  // "" outside src/<module>/
    const TuIndex& tu;
    const TreeIndex* tree = nullptr;
    const std::vector<std::string_view>& raw_lines;
};

/// untrusted-read-bounds: in src/wire/, bytes arriving through span /
/// string_view / Bytes parameters and span-typed fields are tainted; an
/// indexed or multi-byte read (`v[i]`, `v.data()`, `v.front()`, ...) must be
/// dominated by a size check (`v.size()`, `v.empty()`, `require(...)`).
void check_untrusted_read_bounds(const SemanticInput& in, std::vector<Violation>& out);

/// exhaustive-switch: a switch whose case labels are enumerators of a
/// repo-defined enum must either cover every enumerator or carry a default
/// annotated with `// lint:allow(exhaustive-switch)`.
void check_exhaustive_switch(const SemanticInput& in, std::vector<Violation>& out);

/// lock-discipline: fields annotated `// guards: <mutex>` may only be
/// touched in function bodies that constructed a lock_guard / scoped_lock /
/// unique_lock over that mutex first. Enforced in src/common/, src/exp/,
/// src/telemetry/.
void check_lock_discipline(const SemanticInput& in, std::vector<Violation>& out);

/// no-frame-copy: outside src/wire/ (and tests/, which legitimately build
/// raw-byte fixtures), Ethernet frames travel through the shared
/// FrameBuffer / FrameView fabric. `EthernetFrame::parse` re-parses bytes
/// the fabric already memoized, and `.serialize()` on an EthernetFrame
/// value re-copies wire bytes that are serialized exactly once, at origin.
void check_no_frame_copy(const SemanticInput& in, std::vector<Violation>& out);

/// symbol-layering: `module::Symbol` chains in src/ files are checked
/// against module_layering(), catching cross-module reach-through that
/// arrives via transitive includes (which include-layering cannot see).
void check_symbol_layering(const SemanticInput& in, std::vector<Violation>& out);

}  // namespace arpsec::lint

#include "lint/baseline.hpp"

#include <fstream>
#include <sstream>

namespace arpsec::lint {

Baseline Baseline::from_violations(const std::vector<Violation>& violations) {
    Baseline b;
    for (const Violation& v : violations) {
        b.entries_.insert({v.file, v.rule, v.snippet});
    }
    return b;
}

common::Expected<Baseline> Baseline::parse(const std::string& text) {
    const auto doc = telemetry::Json::parse(text);
    if (!doc.has_value() || !doc->is_object()) {
        return common::Expected<Baseline>::failure("baseline: not a JSON object");
    }
    const telemetry::Json* schema = doc->find("schema");
    if (schema == nullptr || !schema->is_string() ||
        schema->as_string() != "arpsec.lint-baseline.v1") {
        return common::Expected<Baseline>::failure(
            "baseline: missing or unknown schema (want arpsec.lint-baseline.v1)");
    }
    const telemetry::Json* entries = doc->find("entries");
    if (entries == nullptr || !entries->is_array()) {
        return common::Expected<Baseline>::failure("baseline: 'entries' must be an array");
    }
    Baseline b;
    for (const telemetry::Json& item : entries->as_array()) {
        const telemetry::Json* file = item.find("file");
        const telemetry::Json* rule = item.find("rule");
        const telemetry::Json* snippet = item.find("snippet");
        if (file == nullptr || !file->is_string() || rule == nullptr || !rule->is_string() ||
            snippet == nullptr || !snippet->is_string()) {
            return common::Expected<Baseline>::failure(
                "baseline: every entry needs string file/rule/snippet");
        }
        b.entries_.insert({file->as_string(), rule->as_string(), snippet->as_string()});
    }
    return b;
}

common::Expected<Baseline> Baseline::load(const std::string& path) {
    std::ifstream in{path, std::ios::binary};
    if (!in) {
        return common::Expected<Baseline>::failure("baseline: cannot open " + path);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
}

bool Baseline::contains(const Violation& v) const {
    return entries_.count({v.file, v.rule, v.snippet}) != 0;
}

std::vector<Violation> Baseline::filter_new(const std::vector<Violation>& violations) const {
    std::vector<Violation> fresh;
    for (const Violation& v : violations) {
        if (!contains(v)) fresh.push_back(v);
    }
    return fresh;
}

telemetry::Json Baseline::to_json() const {
    telemetry::Json doc = telemetry::Json::object();
    doc["schema"] = "arpsec.lint-baseline.v1";
    doc["entry_count"] = static_cast<std::int64_t>(entries_.size());
    telemetry::Json list = telemetry::Json::array();
    for (const Entry& e : entries_) {
        telemetry::Json item = telemetry::Json::object();
        item["file"] = e.file;
        item["rule"] = e.rule;
        item["snippet"] = e.snippet;
        list.push_back(std::move(item));
    }
    doc["entries"] = std::move(list);
    return doc;
}

}  // namespace arpsec::lint

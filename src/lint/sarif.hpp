#pragma once

#include <vector>

#include "lint/linter.hpp"
#include "telemetry/json.hpp"

namespace arpsec::lint {

/// Renders violations as a SARIF 2.1.0 document (one run, driver
/// "arpsec-lint", rule metadata from rule_catalog()), consumable by GitHub
/// code scanning and SARIF viewers.
[[nodiscard]] telemetry::Json sarif_report(const std::vector<Violation>& violations);

}  // namespace arpsec::lint

#include "lint/sarif.hpp"

namespace arpsec::lint {

telemetry::Json sarif_report(const std::vector<Violation>& violations) {
    telemetry::Json doc = telemetry::Json::object();
    doc["version"] = "2.1.0";
    doc["$schema"] = "https://json.schemastore.org/sarif-2.1.0.json";

    telemetry::Json rules = telemetry::Json::array();
    for (const RuleInfo& info : rule_catalog()) {
        telemetry::Json rule = telemetry::Json::object();
        rule["id"] = std::string{info.id};
        telemetry::Json desc = telemetry::Json::object();
        desc["text"] = std::string{info.summary};
        rule["shortDescription"] = std::move(desc);
        telemetry::Json props = telemetry::Json::object();
        props["tags"] = telemetry::Json::array();
        props["tags"].push_back("arpsec");
        rule["properties"] = std::move(props);
        rules.push_back(std::move(rule));
    }

    telemetry::Json driver = telemetry::Json::object();
    driver["name"] = "arpsec-lint";
    driver["informationUri"] = "docs/STATIC_ANALYSIS.md";
    driver["rules"] = std::move(rules);
    telemetry::Json tool = telemetry::Json::object();
    tool["driver"] = std::move(driver);

    telemetry::Json results = telemetry::Json::array();
    for (const Violation& v : violations) {
        telemetry::Json res = telemetry::Json::object();
        res["ruleId"] = v.rule;
        res["level"] = "error";
        telemetry::Json msg = telemetry::Json::object();
        msg["text"] = v.message;
        res["message"] = std::move(msg);

        telemetry::Json artifact = telemetry::Json::object();
        artifact["uri"] = v.file;
        telemetry::Json region = telemetry::Json::object();
        region["startLine"] = static_cast<std::int64_t>(v.line == 0 ? 1 : v.line);
        telemetry::Json phys = telemetry::Json::object();
        phys["artifactLocation"] = std::move(artifact);
        phys["region"] = std::move(region);
        telemetry::Json loc = telemetry::Json::object();
        loc["physicalLocation"] = std::move(phys);
        telemetry::Json locs = telemetry::Json::array();
        locs.push_back(std::move(loc));
        res["locations"] = std::move(locs);
        results.push_back(std::move(res));
    }

    telemetry::Json run = telemetry::Json::object();
    run["tool"] = std::move(tool);
    run["results"] = std::move(results);
    telemetry::Json runs = telemetry::Json::array();
    runs.push_back(std::move(run));
    doc["runs"] = std::move(runs);
    return doc;
}

}  // namespace arpsec::lint

#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.hpp"

namespace arpsec::lint {

/// One enum definition: `enum [class|struct] Name [: type] { ... }`.
struct EnumDef {
    std::string name;  // bare name (nested enums are indexed by leaf name)
    std::vector<std::string> enumerators;
    std::size_t line = 0;
};

struct Param {
    std::string type;  // token spellings joined with single spaces
    std::string name;  // "" for unnamed parameters
};

/// One function (or member function) definition with a body.
struct FunctionDef {
    std::string name;
    std::string qualifier;  // `X` in `X::name(...)` definitions, else ""
    std::vector<Param> params;
    std::size_t body_begin = 0;  // token index of the opening '{'
    std::size_t body_end = 0;    // token index of the matching '}'
    std::size_t line = 0;
};

/// A class/struct member (or namespace-scope variable) declaration that the
/// heuristic declaration scanner recognized outside any function body.
struct FieldDef {
    std::string type;  // token spellings joined with single spaces
    std::string name;
    std::size_t line = 0;
};

/// A field carrying a `// guards: <mutex>` annotation: the lock-discipline
/// rule requires every use inside a function body to hold that mutex.
struct GuardedField {
    std::string field;
    std::string mutex_name;
    std::size_t line = 0;
};

/// Per-translation-unit symbol index: a heuristic single-pass parse of the
/// token stream. It does not try to be a C++ front end — it recovers the
/// symbols the semantic lint rules need (enums with enumerators, function
/// bodies with parameter types, annotated/mutex fields, call sites) and
/// stays silent where it cannot be sure.
struct TuIndex {
    std::vector<Token> tokens;  // full stream, comments included
    std::vector<EnumDef> enums;
    std::vector<FunctionDef> functions;
    std::vector<FieldDef> fields;          // non-function declarations seen
    std::vector<GuardedField> guarded_fields;
    std::set<std::string> mutex_fields;    // fields with a *mutex* type
    std::set<std::string> symbols;         // classes, enums, functions, enumerators
};

[[nodiscard]] TuIndex build_index(std::string_view text);

/// Facts merged across every file of the tree (pass 1 of lint_tree), so a
/// switch in one TU can be checked against an enum defined in a header and
/// a guarded field annotated in a header is enforced in its .cpp.
struct TreeIndex {
    std::map<std::string, std::vector<EnumDef>, std::less<>> enums;
    std::map<std::string, GuardedField, std::less<>> guarded_fields;
    std::map<std::string, std::set<std::string>, std::less<>> module_symbols;
};

/// Folds `tu` facts into `tree`. `module` is the `src/<module>/` the file
/// lives in ("" outside src/).
void merge_into(TreeIndex& tree, const std::string& module, const TuIndex& tu);

/// Token index of the `}` matching the `{` at `open` (scanning `tokens`
/// while ignoring comment tokens), or tokens.size() when unbalanced.
[[nodiscard]] std::size_t match_brace(const std::vector<Token>& tokens, std::size_t open);

}  // namespace arpsec::lint

#include "lint/index.hpp"

#include <algorithm>
#include <array>

namespace arpsec::lint {

namespace {

bool is_punct(const Token& t, std::string_view s) {
    return t.kind == TokenKind::kPunct && t.text == s;
}

bool is_ident(const Token& t) { return t.kind == TokenKind::kIdentifier; }

bool is_ident(const Token& t, std::string_view s) {
    return t.kind == TokenKind::kIdentifier && t.text == s;
}

/// Keywords that can precede a '(' without being a function name.
constexpr std::array<std::string_view, 14> kNotFunctionNames = {
    "if",     "for",      "while",  "switch",        "catch",   "return", "sizeof",
    "alignof", "decltype", "noexcept", "static_assert", "operator", "throw", "new",
};

bool callable_name(std::string_view s) {
    return std::find(kNotFunctionNames.begin(), kNotFunctionNames.end(), s) ==
           kNotFunctionNames.end();
}

std::string join_tokens(const std::vector<Token>& tokens, const std::vector<std::size_t>& idx,
                        std::size_t begin, std::size_t end) {
    std::string out;
    for (std::size_t k = begin; k < end; ++k) {
        if (!out.empty()) out += ' ';
        out += tokens[idx[k]].text;
    }
    return out;
}

/// Indices of structural tokens: comments dropped, preprocessor directives
/// dropped together with the rest of their (possibly continued) line, so
/// `#include <thread>` never looks like expression tokens.
std::vector<std::size_t> code_indices(const std::vector<Token>& tokens) {
    std::vector<std::size_t> code;
    code.reserve(tokens.size());
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].kind == TokenKind::kComment) continue;
        if (tokens[i].kind != TokenKind::kPreprocessor) {
            code.push_back(i);
            continue;
        }
        // Swallow the directive line (and backslash continuations).
        std::size_t line = tokens[i].line;
        std::size_t j = i + 1;
        bool continued = false;
        while (j < tokens.size()) {
            if (tokens[j].kind == TokenKind::kComment) {
                ++j;
                continue;
            }
            if (tokens[j].line != line && !continued) break;
            if (tokens[j].line != line) line = tokens[j].line;
            continued = is_punct(tokens[j], "\\");
            ++j;
        }
        i = j - 1;
    }
    return code;
}

/// Position (in `code` coordinates) of the bracket matching code[open],
/// or code.size() when unbalanced.
std::size_t match_in_code(const std::vector<Token>& tokens, const std::vector<std::size_t>& code,
                          std::size_t open, std::string_view open_s, std::string_view close_s) {
    int depth = 0;
    for (std::size_t k = open; k < code.size(); ++k) {
        if (is_punct(tokens[code[k]], open_s)) ++depth;
        if (is_punct(tokens[code[k]], close_s) && --depth == 0) return k;
    }
    return code.size();
}

}  // namespace

std::size_t match_brace(const std::vector<Token>& tokens, std::size_t open) {
    int depth = 0;
    for (std::size_t i = open; i < tokens.size(); ++i) {
        if (is_punct(tokens[i], "{")) ++depth;
        if (is_punct(tokens[i], "}") && --depth == 0) return i;
    }
    return tokens.size();
}

namespace {

struct Scanner {
    const std::vector<Token>& tokens;
    const std::vector<std::size_t>& code;
    TuIndex& out;

    [[nodiscard]] const Token& tok(std::size_t k) const { return tokens[code[k]]; }
    [[nodiscard]] std::size_t size() const { return code.size(); }

    /// Parses `enum [class|struct] Name [: type] { enumerators }` starting
    /// at code position k (the `enum` keyword). Returns the position to
    /// resume from.
    std::size_t parse_enum(std::size_t k) {
        std::size_t j = k + 1;
        if (j < size() && (is_ident(tok(j), "class") || is_ident(tok(j), "struct"))) ++j;
        std::string name;
        if (j < size() && is_ident(tok(j))) {
            name = tok(j).text;
            ++j;
        }
        const std::size_t name_line = j > 0 && j - 1 < size() ? tok(j - 1).line : 0;
        while (j < size() && !is_punct(tok(j), "{") && !is_punct(tok(j), ";")) ++j;
        if (j >= size() || is_punct(tok(j), ";")) return j;  // forward declaration

        EnumDef def;
        def.name = name;
        def.line = name_line;
        std::size_t p = j + 1;
        while (p < size() && !is_punct(tok(p), "}")) {
            if (is_ident(tok(p))) {
                def.enumerators.emplace_back(tok(p).text);
                out.symbols.emplace(tok(p).text);
                ++p;
                // Skip the optional `= constant-expression` up to ',' / '}'.
                int depth = 0;
                while (p < size()) {
                    if (is_punct(tok(p), "(") || is_punct(tok(p), "{")) ++depth;
                    if (is_punct(tok(p), ")") || is_punct(tok(p), "}")) {
                        if (depth == 0) break;
                        --depth;
                    }
                    if (depth == 0 && is_punct(tok(p), ",")) break;
                    ++p;
                }
                if (p < size() && is_punct(tok(p), ",")) ++p;
            } else {
                ++p;
            }
        }
        if (!def.name.empty()) {
            out.symbols.insert(def.name);
            out.enums.push_back(std::move(def));
        }
        return p;
    }

    /// Splits the parameter list in (open, close) into typed params.
    std::vector<Param> parse_params(std::size_t open, std::size_t close) {
        std::vector<Param> params;
        std::size_t piece_start = open + 1;
        int depth = 0;
        for (std::size_t k = open + 1; k <= close && k < size(); ++k) {
            const bool at_end = k == close;
            if (!at_end) {
                if (is_punct(tok(k), "(") || is_punct(tok(k), "<") || is_punct(tok(k), "{") ||
                    is_punct(tok(k), "[")) {
                    ++depth;
                    continue;
                }
                if (is_punct(tok(k), ")") || is_punct(tok(k), ">") || is_punct(tok(k), "}") ||
                    is_punct(tok(k), "]")) {
                    --depth;
                    continue;
                }
            }
            if (!at_end && !(depth == 0 && is_punct(tok(k), ","))) continue;
            if (k <= piece_start) {
                piece_start = k + 1;
                continue;  // empty piece: `()`
            }
            // Default argument: ignore everything from '=' on.
            std::size_t piece_end = k;
            for (std::size_t q = piece_start; q < k; ++q) {
                if (is_punct(tok(q), "=")) {
                    piece_end = q;
                    break;
                }
            }
            Param p;
            if (piece_end > piece_start && is_ident(tok(piece_end - 1)) &&
                piece_end - piece_start > 1) {
                p.name = tok(piece_end - 1).text;
                p.type = join_tokens(tokens, code, piece_start, piece_end - 1);
            } else {
                p.type = join_tokens(tokens, code, piece_start, piece_end);
            }
            params.push_back(std::move(p));
            piece_start = k + 1;
        }
        return params;
    }

    /// Tries to recognize a function definition whose name sits at code
    /// position k (an identifier directly followed by '('). On success the
    /// body is recorded and the position after the closing brace returned;
    /// on failure k itself is returned.
    std::size_t try_function(std::size_t k) {
        if (!callable_name(tok(k).text)) return k;
        const std::size_t open = k + 1;
        const std::size_t close = match_in_code(tokens, code, open, "(", ")");
        if (close >= size()) return k;

        // Walk the trailer (cv-qualifiers, noexcept, trailing return type,
        // constructor init list) looking for the body '{'. Declarations
        // (';'), defaulted/deleted definitions and initializers ('=') and
        // anything unexpected reject the candidate.
        std::size_t p = close + 1;
        bool in_init_list = false;
        std::size_t body = size();
        while (p < size()) {
            const Token& t = tok(p);
            if (is_punct(t, ";") || is_punct(t, "=")) return k;
            if (is_punct(t, "(")) {
                p = match_in_code(tokens, code, p, "(", ")") + 1;
                continue;
            }
            if (is_punct(t, "{")) {
                if (in_init_list) {
                    // Brace-init of a member: `: x_{0}` — skip the group and
                    // stay in the init list.
                    p = match_in_code(tokens, code, p, "{", "}") + 1;
                    in_init_list = false;
                    continue;
                }
                body = p;
                break;
            }
            if (is_punct(t, ":")) {
                in_init_list = true;
                ++p;
                continue;
            }
            if (is_punct(t, ",")) {
                in_init_list = true;  // next init-list item
                ++p;
                continue;
            }
            if (is_ident(t) || t.kind == TokenKind::kNumber || is_punct(t, "::") ||
                is_punct(t, "<") || is_punct(t, ">") || is_punct(t, "&") ||
                is_punct(t, "*") || is_punct(t, "->") || is_punct(t, "[") ||
                is_punct(t, "]")) {
                if (is_ident(t) && !in_init_list) in_init_list = false;
                ++p;
                continue;
            }
            return k;  // something that is not part of a definition header
        }
        if (body >= size()) return k;
        const std::size_t body_close = match_in_code(tokens, code, body, "{", "}");

        FunctionDef fn;
        fn.name = tok(k).text;
        fn.line = tok(k).line;
        if (k >= 2 && is_punct(tok(k - 1), "::") && is_ident(tok(k - 2))) {
            fn.qualifier = tok(k - 2).text;
        }
        fn.params = parse_params(open, close);
        fn.body_begin = code[body];
        fn.body_end = body_close < size() ? code[body_close] : tokens.size();
        out.symbols.insert(fn.name);
        out.functions.push_back(std::move(fn));
        return body_close < size() ? body_close + 1 : size();
    }

    void run() {
        std::size_t k = 0;
        while (k < size()) {
            const Token& t = tok(k);
            if (is_ident(t, "enum")) {
                k = parse_enum(k) + 1;
                continue;
            }
            if (is_ident(t, "class") || is_ident(t, "struct") || is_ident(t, "union")) {
                if (k + 1 < size() && is_ident(tok(k + 1))) {
                    out.symbols.emplace(tok(k + 1).text);
                }
                // Walk the class head, then descend into the body so member
                // functions and nested enums are indexed too.
                std::size_t p = k + 1;
                while (p < size() && !is_punct(tok(p), "{") && !is_punct(tok(p), ";")) ++p;
                k = p + 1;
                continue;
            }
            if (is_ident(t) && k + 1 < size() && is_punct(tok(k + 1), "(")) {
                const std::size_t after = try_function(k);
                if (after != k) {
                    k = after;
                    continue;
                }
            }
            ++k;
        }
    }
};

/// True when [begin, end) (token coordinates) lies inside any recorded
/// function body.
bool inside_body(const std::vector<FunctionDef>& functions, std::size_t i) {
    for (const auto& fn : functions) {
        if (i > fn.body_begin && i < fn.body_end) return true;
    }
    return false;
}

/// Collects namespace/class-scope declarations (runs of code tokens ending
/// in ';' with no parentheses) into FieldDefs.
void collect_fields(const std::vector<Token>& tokens, const std::vector<std::size_t>& code,
                    TuIndex& out) {
    std::vector<std::size_t> run;  // positions in `code`
    for (std::size_t k = 0; k < code.size(); ++k) {
        const Token& t = tokens[code[k]];
        if (inside_body(out.functions, code[k])) {
            run.clear();
            continue;
        }
        if (is_punct(t, "{") || is_punct(t, "}") || is_punct(t, ":")) {
            run.clear();
            continue;
        }
        if (!is_punct(t, ";")) {
            run.push_back(k);
            continue;
        }
        // Declaration run complete. Reject anything with parens (functions,
        // macro calls) or leading keywords that are not declarations.
        bool plausible = run.size() >= 2;
        for (const std::size_t q : run) {
            if (is_punct(tokens[code[q]], "(") || is_punct(tokens[code[q]], ")")) {
                plausible = false;
            }
        }
        if (plausible) {
            const std::string_view first = tokens[code[run.front()]].text;
            if (first == "using" || first == "typedef" || first == "friend" ||
                first == "template" || first == "public" || first == "private" ||
                first == "protected" || first == "return" || first == "enum") {
                plausible = false;
            }
        }
        if (plausible) {
            // Name = identifier just before '=' (or before '[' / run end).
            std::size_t stop = run.size();
            for (std::size_t q = 0; q < run.size(); ++q) {
                if (is_punct(tokens[code[run[q]]], "=")) {
                    stop = q;
                    break;
                }
            }
            std::size_t name_pos = stop;
            while (name_pos > 0) {
                --name_pos;
                if (is_ident(tokens[code[run[name_pos]]])) break;
            }
            if (name_pos > 0 && is_ident(tokens[code[run[name_pos]]])) {
                FieldDef f;
                f.name = tokens[code[run[name_pos]]].text;
                f.line = tokens[code[run[name_pos]]].line;
                f.type = join_tokens(tokens, code, run.front(), run[name_pos]);
                if (f.type.find("mutex") != std::string::npos) {
                    out.mutex_fields.insert(f.name);
                }
                out.fields.push_back(std::move(f));
            }
        }
        run.clear();
    }
}

/// Extracts `// guards: <mutex>` annotations: the comment trails a member
/// declaration, so the annotated field is the declarator just before the
/// preceding ';'.
void collect_guarded_fields(const std::vector<Token>& tokens, TuIndex& out) {
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].kind != TokenKind::kComment) continue;
        const std::size_t at = tokens[i].text.find("guards:");
        if (at == std::string_view::npos) continue;
        std::string_view rest = tokens[i].text.substr(at + std::string_view{"guards:"}.size());
        while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t')) {
            rest.remove_prefix(1);
        }
        std::size_t len = 0;
        while (len < rest.size() &&
               (std::isalnum(static_cast<unsigned char>(rest[len])) != 0 || rest[len] == '_')) {
            ++len;
        }
        if (len == 0) continue;
        const std::string mutex_name{rest.substr(0, len)};

        // Walk back to the ';' ending the annotated declaration, then to
        // the declarator name (the identifier before '=' when present).
        std::size_t j = i;
        while (j > 0 && tokens[j - 1].kind == TokenKind::kComment) --j;
        if (j == 0 || !is_punct(tokens[j - 1], ";")) continue;
        std::size_t decl_end = j - 1;  // the ';'
        std::size_t decl_begin = decl_end;
        while (decl_begin > 0) {
            const Token& t = tokens[decl_begin - 1];
            if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}") || is_punct(t, ":")) {
                break;
            }
            --decl_begin;
        }
        std::size_t stop = decl_end;
        for (std::size_t q = decl_begin; q < decl_end; ++q) {
            if (is_punct(tokens[q], "=")) {
                stop = q;
                break;
            }
        }
        while (stop > decl_begin) {
            --stop;
            if (tokens[stop].kind == TokenKind::kComment) continue;
            if (is_ident(tokens[stop])) {
                out.guarded_fields.push_back(
                    {std::string{tokens[stop].text}, mutex_name, tokens[stop].line});
                break;
            }
        }
    }
}

}  // namespace

TuIndex build_index(std::string_view text) {
    TuIndex idx;
    idx.tokens = lex(text);
    const std::vector<std::size_t> code = code_indices(idx.tokens);
    Scanner scanner{idx.tokens, code, idx};
    scanner.run();
    collect_fields(idx.tokens, code, idx);
    collect_guarded_fields(idx.tokens, idx);
    return idx;
}

void merge_into(TreeIndex& tree, const std::string& module, const TuIndex& tu) {
    for (const auto& e : tu.enums) {
        auto& defs = tree.enums[e.name];
        const bool dup = std::any_of(defs.begin(), defs.end(), [&](const EnumDef& d) {
            return d.enumerators == e.enumerators;
        });
        if (!dup) defs.push_back(e);
    }
    for (const auto& g : tu.guarded_fields) {
        tree.guarded_fields[g.field] = g;
    }
    if (!module.empty()) {
        tree.module_symbols[module].insert(tu.symbols.begin(), tu.symbols.end());
    }
}

}  // namespace arpsec::lint

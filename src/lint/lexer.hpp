#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace arpsec::lint {

/// Lexical class of a source region, produced by the single escape-aware
/// scanner shared by the comment/string stripper and the lexer. Keeping one
/// scanner is what guarantees the two never disagree about where a literal
/// ends (raw strings with custom delimiters, digit separators, escapes).
enum class RegionKind {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kCharLiteral,
    kRawString,
};

/// Half-open byte range [begin, end) of one region. `content_begin` /
/// `content_end` bound the part the stripper blanks: the interior of a
/// literal (delimiters stay visible so `"x"` still reads as a string
/// expression) and the whole body of a comment (markers included).
struct Region {
    RegionKind kind = RegionKind::kCode;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t content_begin = 0;
    std::size_t content_end = 0;
};

/// Splits `text` into code / comment / literal regions. Handles escape
/// sequences, raw strings with custom delimiters (`R"x(...)x"`, including
/// `u8R`/`uR`/`LR`/`UR` prefixes), and digit separators (`1'000` never opens
/// a char literal). Regions are contiguous and cover the whole input.
[[nodiscard]] std::vector<Region> scan_regions(std::string_view text);

/// Token classes. Identifiers include keywords — the rules that care match
/// on spelling. A preprocessor token covers `#` plus the directive name
/// (`#include`, `# define`); the rest of the directive line lexes normally.
enum class TokenKind {
    kIdentifier,
    kNumber,
    kString,
    kRawString,
    kCharLiteral,
    kPunct,
    kPreprocessor,
    kComment,
};

[[nodiscard]] const char* to_string(TokenKind kind);

/// One token with its source span. `text` views into the lexed input, so
/// the input must outlive the token stream.
struct Token {
    TokenKind kind = TokenKind::kPunct;
    std::string_view text;
    std::size_t offset = 0;  // byte offset of text.front() in the input
    std::size_t line = 1;    // 1-based
    std::size_t col = 1;     // 1-based byte column
};

/// Tokenizes `text`. Never throws and never reads out of bounds, whatever
/// the input bytes (the fuzz suite drives attacker-generated frames through
/// it); unknown bytes become single-character punctuation tokens.
/// Whitespace is dropped; comments are kept as tokens so annotation-reading
/// passes (`// guards: mu_`) can see them in stream order.
[[nodiscard]] std::vector<Token> lex(std::string_view text);

}  // namespace arpsec::lint

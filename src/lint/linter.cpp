#include "lint/linter.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "common/expected.hpp"
#include "lint/index.hpp"
#include "lint/lexer.hpp"
#include "lint/rules.hpp"

namespace arpsec::lint {

namespace {

bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string_view trim(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) {
        s.remove_prefix(1);
    }
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
        s.remove_suffix(1);
    }
    return s;
}

std::vector<std::string_view> split_lines(std::string_view text) {
    std::vector<std::string_view> lines;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t nl = text.find('\n', start);
        if (nl == std::string_view::npos) {
            lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

/// True when `needle` occurs in `line` as a whole token (no identifier
/// character on either side). `::`-qualified needles match only the full
/// qualified spelling.
bool contains_token(std::string_view line, std::string_view needle) {
    std::size_t pos = 0;
    while ((pos = line.find(needle, pos)) != std::string_view::npos) {
        const bool left_ok =
            pos == 0 || !ident_char(line[pos - 1]) || !ident_char(needle.front());
        const std::size_t end = pos + needle.size();
        const bool right_ok =
            end >= line.size() || !ident_char(line[end]) || !ident_char(needle.back());
        if (left_ok && right_ok) return true;
        pos += 1;
    }
    return false;
}

/// Identifiers that leak wall-clock time or global PRNG state into what must
/// be a deterministic simulation. Only common/time.* may touch the host
/// clock.
constexpr std::array<std::string_view, 14> kDeterminismBans = {
    "rand",
    "srand",
    "drand48",
    "random_device",
    "mt19937",
    "system_clock",
    "steady_clock",
    "high_resolution_clock",
    "gettimeofday",
    "clock_gettime",
    "localtime",
    "gmtime",
    "strftime",
    "std::time",
};

/// Concurrency headers whose inclusion forks the simulator's single-threaded
/// world model. Only the sweep executor (src/exp/) may spawn threads, and
/// only the logger (common/log.*) may lock — everything else must stay
/// single-threaded so a per-seed run is deterministic.
constexpr std::array<std::string_view, 5> kThreadHeaderBans = {
    "thread", "mutex", "shared_mutex", "condition_variable", "future",
};

/// Spellings that start concurrency without the telltale include (the header
/// may arrive transitively).
constexpr std::array<std::string_view, 4> kThreadTokenBans = {
    "std::thread",
    "std::jthread",
    "std::async",
    "std::mutex",
};

/// Parser entry points returning common::Expected whose result must never be
/// discarded: a dropped parse failure silently corrupts reproduced figures.
constexpr std::array<std::string_view, 9> kExpectedEntryPoints = {
    "ArpPacket::parse",
    "EthernetFrame::parse",
    "Ipv4Packet::parse",
    "UdpDatagram::parse",
    "TcpSegment::parse",
    "DhcpMessage::parse",
    "MacAddress::parse",
    "Ipv4Address::parse",
    "Json::parse",
};

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// Extracts the rule ids named by lint:allow(...) markers on `line` (comment
/// text included — callers pass the original, unstripped line).
std::set<std::string> allow_markers(std::string_view line) {
    std::set<std::string> out;
    std::size_t pos = 0;
    while ((pos = line.find("lint:allow(", pos)) != std::string_view::npos) {
        const std::size_t open = pos + std::string_view{"lint:allow("}.size();
        const std::size_t close = line.find(')', open);
        if (close == std::string_view::npos) break;
        std::string inner{line.substr(open, close - open)};
        std::stringstream ss{inner};
        std::string id;
        while (std::getline(ss, id, ',')) {
            const std::string_view t = trim(id);
            if (!t.empty()) out.emplace(t);
        }
        pos = close + 1;
    }
    return out;
}

/// Index of the matching close paren for the open paren at `open`, or npos.
std::size_t match_paren(std::string_view line, std::size_t open) {
    int depth = 0;
    for (std::size_t i = open; i < line.size(); ++i) {
        if (line[i] == '(') ++depth;
        if (line[i] == ')' && --depth == 0) return i;
    }
    return std::string_view::npos;
}

/// `src/<module>/...` (anywhere in the path) -> module name, else "".
std::string module_of(std::string_view path) {
    const std::size_t src = path.rfind("src/");
    if (src == std::string_view::npos) return "";
    if (src != 0 && path[src - 1] != '/') return "";
    const std::string_view after = path.substr(src + 4);
    const std::size_t slash = after.find('/');
    if (slash == std::string_view::npos) return "";
    return std::string{after.substr(0, slash)};
}

struct FileContext {
    std::string_view path;
    std::vector<std::string_view> raw_lines;   // original text, per line
    std::vector<std::string_view> code_lines;  // comments/strings blanked
    bool is_header = false;
    bool in_src = false;
    std::string module;  // "" when not under src/<module>/
};

void check_determinism(const FileContext& ctx, std::vector<Violation>& out) {
    if (ctx.path.find("common/time.") != std::string_view::npos) return;
    for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
        for (const auto ban : kDeterminismBans) {
            if (!contains_token(ctx.code_lines[i], ban)) continue;
            out.push_back({std::string{ctx.path}, i + 1, "sim-determinism",
                           "'" + std::string{ban} +
                               "' leaks wall-clock/global randomness into sim code; use "
                               "common::SimTime / common::Rng (only common/time.* may touch "
                               "the host clock)",
                           std::string{trim(ctx.raw_lines[i])}});
        }
    }
}

void check_no_threads(const FileContext& ctx, std::vector<Violation>& out) {
    if (ctx.module == "exp") return;
    // The replay pipeline (prime workers + frontier collector) is the other
    // sanctioned concurrency site: determinism is preserved by construction
    // (docs/REPLAY.md, pipeline determinism contract), and the SPSC ring it
    // rides on lives in common/ring.* (atomics only — no threads, no locks).
    if (ctx.module == "replay") return;
    // The streaming service is inherently concurrent (intake thread, shard
    // workers, alert drain — docs/SERVING.md). Its threads never enter sim
    // code: each SchemeSession stays confined to one worker.
    if (ctx.module == "serve") return;
    if (ctx.path.find("common/log.") != std::string_view::npos) return;
    if (ctx.path.find("common/ring.") != std::string_view::npos) return;
    for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
        const std::string_view code = ctx.code_lines[i];
        std::string offender;
        const std::string_view trimmed = trim(code);
        if (starts_with(trimmed, "#include")) {
            for (const auto hdr : kThreadHeaderBans) {
                const std::string needle = "<" + std::string{hdr} + ">";
                if (trimmed.find(needle) != std::string_view::npos) offender = needle;
            }
        }
        if (offender.empty()) {
            for (const auto tok : kThreadTokenBans) {
                if (contains_token(code, tok)) {
                    offender = std::string{tok};
                    break;
                }
            }
        }
        if (offender.empty()) continue;
        out.push_back({std::string{ctx.path}, i + 1, "no-threads-in-sim",
                       "'" + offender +
                           "' introduces concurrency outside the sanctioned sites; the "
                           "simulation must stay single-threaded per seed (threads only in "
                           "src/exp/, src/replay/ and src/serve/, locking only in "
                           "common/log.*, lock-free ring only in common/ring.*)",
                       std::string{trim(ctx.raw_lines[i])}});
    }
}

/// OS networking headers. Sockets are I/O with the outside world: only the
/// serve transport layer may open them, so the simulator provably cannot
/// leak packets onto (or read state from) a real network.
constexpr std::array<std::string_view, 6> kSocketHeaderBans = {
    "sys/socket.h", "sys/un.h", "netinet/in.h", "netinet/tcp.h", "arpa/inet.h", "netdb.h",
};

void check_no_sockets(const FileContext& ctx, std::vector<Violation>& out) {
    if (ctx.module == "serve") return;
    for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
        const std::string_view trimmed = trim(ctx.code_lines[i]);
        if (!starts_with(trimmed, "#include")) continue;
        for (const auto hdr : kSocketHeaderBans) {
            const std::string needle = "<" + std::string{hdr} + ">";
            if (trimmed.find(needle) == std::string_view::npos) continue;
            out.push_back({std::string{ctx.path}, i + 1, "no-sockets-outside-serve",
                           "'" + needle +
                               "' opens real network I/O outside src/serve/; everything else "
                               "speaks to the world through serve::Connection or stays in the "
                               "simulator",
                           std::string{trim(ctx.raw_lines[i])}});
        }
    }
}

void check_discarded_expected(const FileContext& ctx, std::vector<Violation>& out) {
    for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
        const std::string_view code = ctx.code_lines[i];
        const std::string_view trimmed = trim(code);
        for (const auto entry : kExpectedEntryPoints) {
            const std::size_t pos = trimmed.find(entry);
            if (pos == std::string_view::npos) continue;
            // The call must open the statement: walk back over namespace
            // qualifiers and confirm nothing (assignment, return, argument
            // context) consumes the result.
            std::size_t start = pos;
            while (start > 0 && (ident_char(trimmed[start - 1]) || trimmed[start - 1] == ':')) {
                --start;
            }
            if (start != 0) continue;
            const std::size_t open = trimmed.find('(', pos + entry.size());
            if (open != pos + entry.size()) continue;
            const std::size_t close = match_paren(trimmed, open);
            if (close == std::string_view::npos) continue;
            if (trim(trimmed.substr(close + 1)) != ";") continue;
            out.push_back({std::string{ctx.path}, i + 1, "discarded-expected",
                           "result of '" + std::string{entry} +
                               "' (an Expected) is discarded; a dropped parse failure "
                               "silently corrupts results",
                           std::string{trim(ctx.raw_lines[i])}});
        }
    }
}

void check_naked_new(const FileContext& ctx, std::vector<Violation>& out) {
    for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
        const std::string_view code = ctx.code_lines[i];
        const char* what = nullptr;
        if (contains_token(code, "new")) what = "new";
        // `free` is deliberately absent: the repo has legitimate methods named
        // free() (crypto::CostModel::free), and malloc/calloc/realloc already
        // flag the allocating side of any manual-management pair.
        for (const auto* fn : {"malloc", "calloc", "realloc"}) {
            if (contains_token(code, std::string{fn} + "(")) what = fn;
        }
        if (what == nullptr) continue;
        out.push_back({std::string{ctx.path}, i + 1, "naked-new",
                       "raw allocation ('" + std::string{what} +
                           "'); use std::make_unique/containers so ownership is typed",
                       std::string{trim(ctx.raw_lines[i])}});
    }
}

void check_assert_in_parser(const FileContext& ctx, std::vector<Violation>& out) {
    if (ctx.path.find("src/wire/") == std::string_view::npos) return;
    for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
        if (!contains_token(ctx.code_lines[i], "assert")) continue;
        out.push_back({std::string{ctx.path}, i + 1, "assert-in-parser",
                       "assert() compiles out of release builds; wire parsers must reject "
                       "bad input via Expected::failure",
                       std::string{trim(ctx.raw_lines[i])}});
    }
}

void check_pragma_once(const FileContext& ctx, std::vector<Violation>& out) {
    if (!ctx.is_header) return;
    for (const auto line : ctx.code_lines) {
        if (trim(line) == "#pragma once") return;
    }
    Violation v{std::string{ctx.path}, 1, "pragma-once",
                "header is missing '#pragma once'", ""};
    v.fix_line = 1;
    v.fix_insert = "#pragma once\n\n";
    out.push_back(std::move(v));
}

void check_include_layering(const FileContext& ctx, std::vector<Violation>& out) {
    if (!ctx.in_src || ctx.module.empty()) return;
    const auto it = module_layering().find(ctx.module);
    if (it == module_layering().end()) return;
    // Include paths live inside quotes, which the sanitizer blanks, so this
    // rule reads the raw lines.
    for (std::size_t i = 0; i < ctx.raw_lines.size(); ++i) {
        const std::string_view trimmed = trim(ctx.raw_lines[i]);
        if (!starts_with(trimmed, "#include \"")) continue;
        const std::size_t open = trimmed.find('"');
        const std::size_t close = trimmed.find('"', open + 1);
        if (close == std::string_view::npos) continue;
        const std::string_view inc = trimmed.substr(open + 1, close - open - 1);
        const std::size_t slash = inc.find('/');
        if (slash == std::string_view::npos) continue;
        const std::string_view target = inc.substr(0, slash);
        if (module_layering().find(target) == module_layering().end()) continue;
        if (it->second.count(std::string{target}) != 0) continue;
        out.push_back({std::string{ctx.path}, i + 1, "include-layering",
                       "module '" + ctx.module + "' may not include '" + std::string{target} +
                           "/' (layering: see src/" + ctx.module + "/CMakeLists.txt)",
                       std::string{trim(ctx.raw_lines[i])}});
    }
}

/// Full lint of one file, with optional tree-wide facts for the semantic
/// rules.
std::vector<Violation> lint_text(std::string_view path, std::string_view text,
                                 const TreeIndex* tree) {
    const std::string code = strip_comments_and_strings(text);

    FileContext ctx;
    ctx.path = path;
    ctx.raw_lines = split_lines(text);
    ctx.code_lines = split_lines(code);
    ctx.is_header = path.size() >= 4 && path.substr(path.size() - 4) == ".hpp";
    ctx.in_src = starts_with(path, "src/") || path.find("/src/") != std::string_view::npos;
    ctx.module = module_of(path);

    std::vector<Violation> found;
    check_determinism(ctx, found);
    check_no_threads(ctx, found);
    check_no_sockets(ctx, found);
    check_discarded_expected(ctx, found);
    check_naked_new(ctx, found);
    check_assert_in_parser(ctx, found);
    check_pragma_once(ctx, found);
    check_include_layering(ctx, found);

    const TuIndex tu = build_index(text);
    const SemanticInput sem{path, ctx.module, tu, tree, ctx.raw_lines};
    check_untrusted_read_bounds(sem, found);
    check_exhaustive_switch(sem, found);
    check_lock_discipline(sem, found);
    check_symbol_layering(sem, found);
    check_no_frame_copy(sem, found);

    // Apply lint:allow(<rule>) markers from the flagged line or the line
    // above (markers live in comments, so consult the raw text).
    std::vector<Violation> kept;
    for (auto& v : found) {
        std::set<std::string> allowed;
        if (v.line >= 1 && v.line <= ctx.raw_lines.size()) {
            allowed = allow_markers(ctx.raw_lines[v.line - 1]);
            if (v.line >= 2) {
                for (auto& id : allow_markers(ctx.raw_lines[v.line - 2])) allowed.insert(id);
            }
        }
        if (allowed.count(v.rule) != 0 || allowed.count("*") != 0) continue;
        kept.push_back(std::move(v));
    }
    std::sort(kept.begin(), kept.end(), [](const Violation& a, const Violation& b) {
        return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
    });
    return kept;
}

/// True when `text` is valid UTF-8 (ASCII included); reports the byte offset
/// of the first bad sequence otherwise.
std::optional<std::string> utf8_error(std::string_view text) {
    std::size_t i = 0;
    while (i < text.size()) {
        const auto b = static_cast<unsigned char>(text[i]);
        std::size_t extra = 0;
        if (b < 0x80U) {
            i += 1;
            continue;
        } else if (b >= 0xC2U && b <= 0xDFU) {
            extra = 1;
        } else if (b >= 0xE0U && b <= 0xEFU) {
            extra = 2;
        } else if (b >= 0xF0U && b <= 0xF4U) {
            extra = 3;
        } else {
            return "invalid UTF-8 lead byte at offset " + std::to_string(i);
        }
        if (i + extra >= text.size()) {
            return "truncated UTF-8 sequence at offset " + std::to_string(i);
        }
        for (std::size_t k = 1; k <= extra; ++k) {
            const auto c = static_cast<unsigned char>(text[i + k]);
            if (c < 0x80U || c > 0xBFU) {
                return "invalid UTF-8 continuation at offset " + std::to_string(i + k);
            }
        }
        // Reject overlong encodings and surrogate halves.
        const auto c1 = static_cast<unsigned char>(text[i + 1]);
        if ((b == 0xE0U && c1 < 0xA0U) || (b == 0xEDU && c1 > 0x9FU) ||
            (b == 0xF0U && c1 < 0x90U) || (b == 0xF4U && c1 > 0x8FU)) {
            return "non-canonical UTF-8 sequence at offset " + std::to_string(i);
        }
        i += 1 + extra;
    }
    return std::nullopt;
}

/// Reads a source file as text, rejecting unreadable files and non-UTF-8
/// contents with a typed error instead of silently skipping them.
common::Expected<std::string> read_source_file(const std::filesystem::path& path) {
    std::ifstream in{path, std::ios::binary};
    if (!in) {
        return common::Expected<std::string>::failure("cannot open file");
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) {
        return common::Expected<std::string>::failure("read error");
    }
    std::string text = buf.str();
    if (const auto err = utf8_error(text)) {
        return common::Expected<std::string>::failure("not valid UTF-8: " + *err);
    }
    return text;
}

/// The files lint_tree() scans: every .cpp/.hpp under the code roots, in
/// sorted path order.
std::vector<std::filesystem::path> collect_source_files(const std::string& root) {
    namespace fs = std::filesystem;
    std::vector<fs::path> files;
    for (const char* dir : {"src", "tests", "tools", "bench", "examples"}) {
        const fs::path base = fs::path{root} / dir;
        if (!fs::exists(base)) continue;
        for (const auto& entry : fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file()) continue;
            const std::string ext = entry.path().extension().string();
            if (ext == ".cpp" || ext == ".hpp") files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

}  // namespace

std::vector<std::string> scanned_sources(const std::string& root) {
    std::vector<std::string> out;
    for (const auto& file : collect_source_files(root)) {
        auto text = read_source_file(file);
        if (text) out.push_back(std::move(*text));
    }
    return out;
}

const std::vector<RuleInfo>& rule_catalog() {
    static const std::vector<RuleInfo> kRules = {
        {"sim-determinism",
         "no wall-clock / global PRNG identifiers outside common/time.*"},
        {"no-threads-in-sim",
         "concurrency only in src/exp/ + src/replay/ + src/serve/ (threads), "
         "common/log.* (locking), common/ring.* (lock-free SPSC)"},
        {"no-sockets-outside-serve",
         "OS networking headers only in src/serve/ — the simulator can never "
         "touch a real network"},
        {"discarded-expected",
         "results of Expected-returning parser entry points must be consumed"},
        {"naked-new", "no raw new/malloc; ownership must be typed"},
        {"assert-in-parser",
         "src/wire/ parsers must validate via Expected, not assert()"},
        {"pragma-once", "every header starts with #pragma once"},
        {"include-layering",
         "src/ modules may only include modules they link against"},
        {"untrusted-read-bounds",
         "src/wire/ reads of untrusted bytes need a dominating size/require() check"},
        {"exhaustive-switch",
         "switches over repo enums cover every enumerator or carry an annotated default"},
        {"lock-discipline",
         "fields annotated '// guards: <mutex>' are only touched holding that mutex"},
        {"symbol-layering",
         "src/ modules may only name symbols of modules they link against"},
        {"no-frame-copy",
         "outside src/wire/, frames flow through FrameBuffer/FrameView — no "
         "EthernetFrame serialize()/parse()"},
    };
    return kRules;
}

std::string strip_comments_and_strings(std::string_view text) {
    std::string out{text};
    for (const Region& region : scan_regions(text)) {
        if (region.kind == RegionKind::kCode) continue;
        for (std::size_t i = region.content_begin;
             i < region.content_end && i < out.size(); ++i) {
            if (out[i] != '\n') out[i] = ' ';
        }
    }
    return out;
}

std::vector<Violation> Linter::lint_source(std::string_view path,
                                           std::string_view text) const {
    return lint_text(path, text, nullptr);
}

std::vector<Violation> Linter::lint_tree(const std::string& root) {
    namespace fs = std::filesystem;
    files_scanned_ = 0;
    skipped_.clear();
    const std::vector<fs::path> files = collect_source_files(root);

    // Pass 1: load every file and merge its symbols into the tree index so
    // pass 2 can resolve enums, guard annotations, and module symbols across
    // file boundaries.
    struct Loaded {
        std::string rel;
        std::string text;
    };
    std::vector<Loaded> loaded;
    loaded.reserve(files.size());
    TreeIndex tree;
    for (const auto& file : files) {
        const std::string rel = fs::relative(file, root).generic_string();
        auto text = read_source_file(file);
        if (!text) {
            skipped_.push_back({rel, std::move(text).error()});
            continue;
        }
        {
            const TuIndex tu = build_index(*text);
            merge_into(tree, module_of(rel), tu);
        }
        loaded.push_back({rel, std::move(*text)});
    }

    // Pass 2: lint against the merged facts.
    std::vector<Violation> all;
    for (const Loaded& l : loaded) {
        ++files_scanned_;
        auto found = lint_text(l.rel, l.text, &tree);
        all.insert(all.end(), std::make_move_iterator(found.begin()),
                   std::make_move_iterator(found.end()));
    }
    return all;
}

telemetry::Json Linter::report(const std::vector<Violation>& violations,
                               std::string_view root, std::size_t files_scanned,
                               const std::vector<SkippedFile>& skipped) {
    telemetry::Json doc = telemetry::Json::object();
    doc["schema"] = "arpsec.lint-report.v1";
    doc["root"] = std::string{root};
    doc["files_scanned"] = static_cast<std::int64_t>(files_scanned);
    doc["files_skipped"] = static_cast<std::int64_t>(skipped.size());
    doc["violation_count"] = static_cast<std::int64_t>(violations.size());

    telemetry::Json counts = telemetry::Json::object();
    for (const auto& info : rule_catalog()) {
        std::int64_t n = 0;
        for (const auto& v : violations) {
            if (v.rule == info.id) ++n;
        }
        counts[std::string{info.id}] = n;
    }
    doc["counts"] = std::move(counts);

    telemetry::Json skipped_list = telemetry::Json::array();
    for (const auto& s : skipped) {
        telemetry::Json item = telemetry::Json::object();
        item["file"] = s.file;
        item["reason"] = s.reason;
        skipped_list.push_back(std::move(item));
    }
    doc["skipped"] = std::move(skipped_list);

    telemetry::Json list = telemetry::Json::array();
    for (const auto& v : violations) {
        telemetry::Json item = telemetry::Json::object();
        item["file"] = v.file;
        item["line"] = static_cast<std::int64_t>(v.line);
        item["rule"] = v.rule;
        item["message"] = v.message;
        item["snippet"] = v.snippet;
        item["fixable"] = v.fix_line != 0;
        list.push_back(std::move(item));
    }
    doc["violations"] = std::move(list);
    return doc;
}

std::string Linter::apply_fixes(std::string_view text,
                                const std::vector<Violation>& violations) {
    std::vector<std::pair<std::size_t, const std::string*>> fixes;
    for (const Violation& v : violations) {
        if (v.fix_line != 0 && !v.fix_insert.empty()) {
            fixes.emplace_back(v.fix_line, &v.fix_insert);
        }
    }
    std::stable_sort(fixes.begin(), fixes.end(),
                     [](const auto& a, const auto& b) { return a.first > b.first; });

    std::vector<std::size_t> starts{0};
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '\n') starts.push_back(i + 1);
    }
    std::string out{text};
    for (const auto& [line, insert] : fixes) {
        const std::size_t offset = line - 1 < starts.size() ? starts[line - 1] : out.size();
        out.insert(offset, *insert);
    }
    return out;
}

}  // namespace arpsec::lint

#include "lint/linter.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace arpsec::lint {

namespace {

bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string_view trim(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) {
        s.remove_prefix(1);
    }
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
        s.remove_suffix(1);
    }
    return s;
}

std::vector<std::string_view> split_lines(std::string_view text) {
    std::vector<std::string_view> lines;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t nl = text.find('\n', start);
        if (nl == std::string_view::npos) {
            lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

/// True when `needle` occurs in `line` as a whole token (no identifier
/// character on either side). `::`-qualified needles match only the full
/// qualified spelling.
bool contains_token(std::string_view line, std::string_view needle) {
    std::size_t pos = 0;
    while ((pos = line.find(needle, pos)) != std::string_view::npos) {
        const bool left_ok =
            pos == 0 || !ident_char(line[pos - 1]) || !ident_char(needle.front());
        const std::size_t end = pos + needle.size();
        const bool right_ok =
            end >= line.size() || !ident_char(line[end]) || !ident_char(needle.back());
        if (left_ok && right_ok) return true;
        pos += 1;
    }
    return false;
}

/// Identifiers that leak wall-clock time or global PRNG state into what must
/// be a deterministic simulation. Only common/time.* may touch the host
/// clock.
constexpr std::array<std::string_view, 14> kDeterminismBans = {
    "rand",
    "srand",
    "drand48",
    "random_device",
    "mt19937",
    "system_clock",
    "steady_clock",
    "high_resolution_clock",
    "gettimeofday",
    "clock_gettime",
    "localtime",
    "gmtime",
    "strftime",
    "std::time",
};

/// Concurrency headers whose inclusion forks the simulator's single-threaded
/// world model. Only the sweep executor (src/exp/) may spawn threads, and
/// only the logger (common/log.*) may lock — everything else must stay
/// single-threaded so a per-seed run is deterministic.
constexpr std::array<std::string_view, 5> kThreadHeaderBans = {
    "thread", "mutex", "shared_mutex", "condition_variable", "future",
};

/// Spellings that start concurrency without the telltale include (the header
/// may arrive transitively).
constexpr std::array<std::string_view, 4> kThreadTokenBans = {
    "std::thread",
    "std::jthread",
    "std::async",
    "std::mutex",
};

/// Parser entry points returning common::Expected whose result must never be
/// discarded: a dropped parse failure silently corrupts reproduced figures.
constexpr std::array<std::string_view, 9> kExpectedEntryPoints = {
    "ArpPacket::parse",
    "EthernetFrame::parse",
    "Ipv4Packet::parse",
    "UdpDatagram::parse",
    "TcpSegment::parse",
    "DhcpMessage::parse",
    "MacAddress::parse",
    "Ipv4Address::parse",
    "Json::parse",
};

/// Module dependency closure mirroring src/*/CMakeLists.txt link graphs.
/// A header in src/<key>/ may only include headers from the listed modules.
const std::map<std::string, std::set<std::string>, std::less<>>& layering() {
    static const std::map<std::string, std::set<std::string>, std::less<>> kAllowed = {
        {"common", {"common"}},
        {"telemetry", {"telemetry", "common"}},
        {"wire", {"wire", "common"}},
        {"crypto", {"crypto", "wire", "common"}},
        {"sim", {"sim", "telemetry", "wire", "common"}},
        {"arp", {"arp", "telemetry", "wire", "common"}},
        {"l2", {"l2", "sim", "telemetry", "wire", "common"}},
        {"host", {"host", "arp", "sim", "telemetry", "wire", "common"}},
        {"attack", {"attack", "host", "arp", "sim", "telemetry", "wire", "common"}},
        {"detect",
         {"detect", "host", "l2", "arp", "sim", "crypto", "telemetry", "wire", "common"}},
        {"core",
         {"core", "detect", "attack", "host", "l2", "arp", "sim", "crypto", "telemetry", "wire",
          "common"}},
        {"exp",
         {"exp", "core", "detect", "attack", "host", "l2", "arp", "sim", "crypto", "telemetry",
          "wire", "common"}},
        // The checker may drive everything below it (fan-out via exp, sim
        // construction, scheme deployment), but no module lists "check":
        // nothing in the tree may depend back on the test harness.
        {"check",
         {"check", "exp", "detect", "attack", "host", "l2", "arp", "sim", "crypto", "telemetry",
          "wire", "common"}},
        // Replay sits beside check at the top of the stack: it renders
        // check scenarios, fans out via exp, and deploys detect schemes —
        // but nothing may depend back on it.
        {"replay",
         {"replay", "check", "exp", "detect", "attack", "host", "l2", "arp", "sim", "crypto",
          "telemetry", "wire", "common"}},
        {"lint", {"lint", "telemetry", "common"}},
    };
    return kAllowed;
}

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// Extracts the rule ids named by lint:allow(...) markers on `line` (comment
/// text included — callers pass the original, unstripped line).
std::set<std::string> allow_markers(std::string_view line) {
    std::set<std::string> out;
    std::size_t pos = 0;
    while ((pos = line.find("lint:allow(", pos)) != std::string_view::npos) {
        const std::size_t open = pos + std::string_view{"lint:allow("}.size();
        const std::size_t close = line.find(')', open);
        if (close == std::string_view::npos) break;
        std::string inner{line.substr(open, close - open)};
        std::stringstream ss{inner};
        std::string id;
        while (std::getline(ss, id, ',')) {
            const std::string_view t = trim(id);
            if (!t.empty()) out.emplace(t);
        }
        pos = close + 1;
    }
    return out;
}

/// Index of the matching close paren for the open paren at `open`, or npos.
std::size_t match_paren(std::string_view line, std::size_t open) {
    int depth = 0;
    for (std::size_t i = open; i < line.size(); ++i) {
        if (line[i] == '(') ++depth;
        if (line[i] == ')' && --depth == 0) return i;
    }
    return std::string_view::npos;
}

struct FileContext {
    std::string_view path;
    std::vector<std::string_view> raw_lines;   // original text, per line
    std::vector<std::string_view> code_lines;  // comments/strings blanked
    bool is_header = false;
    bool in_src = false;
    std::string module;  // "" when not under src/<module>/
};

void check_determinism(const FileContext& ctx, std::vector<Violation>& out) {
    if (ctx.path.find("common/time.") != std::string_view::npos) return;
    for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
        for (const auto ban : kDeterminismBans) {
            if (!contains_token(ctx.code_lines[i], ban)) continue;
            out.push_back({std::string{ctx.path}, i + 1, "sim-determinism",
                           "'" + std::string{ban} +
                               "' leaks wall-clock/global randomness into sim code; use "
                               "common::SimTime / common::Rng (only common/time.* may touch "
                               "the host clock)",
                           std::string{trim(ctx.raw_lines[i])}});
        }
    }
}

void check_no_threads(const FileContext& ctx, std::vector<Violation>& out) {
    if (ctx.module == "exp") return;
    if (ctx.path.find("common/log.") != std::string_view::npos) return;
    for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
        const std::string_view code = ctx.code_lines[i];
        std::string offender;
        const std::string_view trimmed = trim(code);
        if (starts_with(trimmed, "#include")) {
            for (const auto hdr : kThreadHeaderBans) {
                const std::string needle = "<" + std::string{hdr} + ">";
                if (trimmed.find(needle) != std::string_view::npos) offender = needle;
            }
        }
        if (offender.empty()) {
            for (const auto tok : kThreadTokenBans) {
                if (contains_token(code, tok)) {
                    offender = std::string{tok};
                    break;
                }
            }
        }
        if (offender.empty()) continue;
        out.push_back({std::string{ctx.path}, i + 1, "no-threads-in-sim",
                       "'" + offender +
                           "' introduces concurrency outside the sweep executor; the "
                           "simulation must stay single-threaded per seed (threads only in "
                           "src/exp/, locking only in common/log.*)",
                       std::string{trim(ctx.raw_lines[i])}});
    }
}

void check_discarded_expected(const FileContext& ctx, std::vector<Violation>& out) {
    for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
        const std::string_view code = ctx.code_lines[i];
        const std::string_view trimmed = trim(code);
        for (const auto entry : kExpectedEntryPoints) {
            const std::size_t pos = trimmed.find(entry);
            if (pos == std::string_view::npos) continue;
            // The call must open the statement: walk back over namespace
            // qualifiers and confirm nothing (assignment, return, argument
            // context) consumes the result.
            std::size_t start = pos;
            while (start > 0 && (ident_char(trimmed[start - 1]) || trimmed[start - 1] == ':')) {
                --start;
            }
            if (start != 0) continue;
            const std::size_t open = trimmed.find('(', pos + entry.size());
            if (open != pos + entry.size()) continue;
            const std::size_t close = match_paren(trimmed, open);
            if (close == std::string_view::npos) continue;
            if (trim(trimmed.substr(close + 1)) != ";") continue;
            out.push_back({std::string{ctx.path}, i + 1, "discarded-expected",
                           "result of '" + std::string{entry} +
                               "' (an Expected) is discarded; a dropped parse failure "
                               "silently corrupts results",
                           std::string{trim(ctx.raw_lines[i])}});
        }
    }
}

void check_naked_new(const FileContext& ctx, std::vector<Violation>& out) {
    for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
        const std::string_view code = ctx.code_lines[i];
        const char* what = nullptr;
        if (contains_token(code, "new")) what = "new";
        // `free` is deliberately absent: the repo has legitimate methods named
        // free() (crypto::CostModel::free), and malloc/calloc/realloc already
        // flag the allocating side of any manual-management pair.
        for (const auto* fn : {"malloc", "calloc", "realloc"}) {
            if (contains_token(code, std::string{fn} + "(")) what = fn;
        }
        if (what == nullptr) continue;
        out.push_back({std::string{ctx.path}, i + 1, "naked-new",
                       "raw allocation ('" + std::string{what} +
                           "'); use std::make_unique/containers so ownership is typed",
                       std::string{trim(ctx.raw_lines[i])}});
    }
}

void check_assert_in_parser(const FileContext& ctx, std::vector<Violation>& out) {
    if (ctx.path.find("src/wire/") == std::string_view::npos) return;
    for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
        if (!contains_token(ctx.code_lines[i], "assert")) continue;
        out.push_back({std::string{ctx.path}, i + 1, "assert-in-parser",
                       "assert() compiles out of release builds; wire parsers must reject "
                       "bad input via Expected::failure",
                       std::string{trim(ctx.raw_lines[i])}});
    }
}

void check_pragma_once(const FileContext& ctx, std::vector<Violation>& out) {
    if (!ctx.is_header) return;
    for (const auto line : ctx.code_lines) {
        if (trim(line) == "#pragma once") return;
    }
    out.push_back({std::string{ctx.path}, 1, "pragma-once",
                   "header is missing '#pragma once'", ""});
}

void check_include_layering(const FileContext& ctx, std::vector<Violation>& out) {
    if (!ctx.in_src || ctx.module.empty()) return;
    const auto it = layering().find(ctx.module);
    if (it == layering().end()) return;
    // Include paths live inside quotes, which the sanitizer blanks, so this
    // rule reads the raw lines.
    for (std::size_t i = 0; i < ctx.raw_lines.size(); ++i) {
        const std::string_view trimmed = trim(ctx.raw_lines[i]);
        if (!starts_with(trimmed, "#include \"")) continue;
        const std::size_t open = trimmed.find('"');
        const std::size_t close = trimmed.find('"', open + 1);
        if (close == std::string_view::npos) continue;
        const std::string_view inc = trimmed.substr(open + 1, close - open - 1);
        const std::size_t slash = inc.find('/');
        if (slash == std::string_view::npos) continue;
        const std::string_view target = inc.substr(0, slash);
        if (layering().find(target) == layering().end()) continue;  // not a module path
        if (it->second.count(std::string{target}) != 0) continue;
        out.push_back({std::string{ctx.path}, i + 1, "include-layering",
                       "module '" + ctx.module + "' may not include '" + std::string{target} +
                           "/' (layering: see src/" + ctx.module + "/CMakeLists.txt)",
                       std::string{trim(ctx.raw_lines[i])}});
    }
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
    static const std::vector<RuleInfo> kRules = {
        {"sim-determinism",
         "no wall-clock / global PRNG identifiers outside common/time.*"},
        {"no-threads-in-sim",
         "concurrency only in src/exp/ (threads) and common/log.* (locking)"},
        {"discarded-expected",
         "results of Expected-returning parser entry points must be consumed"},
        {"naked-new", "no raw new/malloc; ownership must be typed"},
        {"assert-in-parser",
         "src/wire/ parsers must validate via Expected, not assert()"},
        {"pragma-once", "every header starts with #pragma once"},
        {"include-layering",
         "src/ modules may only include modules they link against"},
    };
    return kRules;
}

std::string strip_comments_and_strings(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
    State state = State::kCode;
    std::string raw_delim;  // for raw strings: the )delim" terminator
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (state) {
            case State::kCode:
                if (c == '/' && next == '/') {
                    state = State::kLineComment;
                    out += "  ";
                    ++i;
                } else if (c == '/' && next == '*') {
                    state = State::kBlockComment;
                    out += "  ";
                    ++i;
                } else if (c == 'R' && next == '"' &&
                           (i == 0 || !ident_char(text[i - 1]))) {
                    const std::size_t open = text.find('(', i + 2);
                    if (open == std::string_view::npos) {
                        out += c;
                        break;
                    }
                    raw_delim = ")" + std::string{text.substr(i + 2, open - (i + 2))} + "\"";
                    state = State::kRawString;
                    out += "R\"";
                    out.append(open - (i + 2) + 1, ' ');
                    i = open;
                } else if (c == '"') {
                    state = State::kString;
                    out += c;
                } else if (c == '\'') {
                    state = State::kChar;
                    out += c;
                } else {
                    out += c;
                }
                break;
            case State::kLineComment:
                if (c == '\n') {
                    state = State::kCode;
                    out += c;
                } else {
                    out += ' ';
                }
                break;
            case State::kBlockComment:
                if (c == '*' && next == '/') {
                    state = State::kCode;
                    out += "  ";
                    ++i;
                } else {
                    out += c == '\n' ? '\n' : ' ';
                }
                break;
            case State::kString:
                if (c == '\\' && next != '\0') {
                    out += "  ";
                    ++i;
                } else if (c == '"') {
                    state = State::kCode;
                    out += c;
                } else {
                    out += c == '\n' ? '\n' : ' ';
                }
                break;
            case State::kChar:
                if (c == '\\' && next != '\0') {
                    out += "  ";
                    ++i;
                } else if (c == '\'') {
                    state = State::kCode;
                    out += c;
                } else {
                    out += c == '\n' ? '\n' : ' ';
                }
                break;
            case State::kRawString:
                if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
                    state = State::kCode;
                    out.append(raw_delim.size(), ' ');
                    out.back() = '"';
                    i += raw_delim.size() - 1;
                } else {
                    out += c == '\n' ? '\n' : ' ';
                }
                break;
        }
    }
    return out;
}

std::vector<Violation> Linter::lint_source(std::string_view path,
                                           std::string_view text) const {
    const std::string code = strip_comments_and_strings(text);

    FileContext ctx;
    ctx.path = path;
    ctx.raw_lines = split_lines(text);
    ctx.code_lines = split_lines(code);
    ctx.is_header = path.size() >= 4 && path.substr(path.size() - 4) == ".hpp";
    ctx.in_src = starts_with(path, "src/") || path.find("/src/") != std::string_view::npos;
    if (ctx.in_src) {
        const std::size_t src = path.rfind("src/");
        const std::string_view after = path.substr(src + 4);
        const std::size_t slash = after.find('/');
        if (slash != std::string_view::npos) ctx.module = std::string{after.substr(0, slash)};
    }

    std::vector<Violation> found;
    check_determinism(ctx, found);
    check_no_threads(ctx, found);
    check_discarded_expected(ctx, found);
    check_naked_new(ctx, found);
    check_assert_in_parser(ctx, found);
    check_pragma_once(ctx, found);
    check_include_layering(ctx, found);

    // Apply lint:allow(<rule>) markers from the flagged line or the line
    // above (markers live in comments, so consult the raw text).
    std::vector<Violation> kept;
    for (auto& v : found) {
        std::set<std::string> allowed;
        if (v.line >= 1 && v.line <= ctx.raw_lines.size()) {
            allowed = allow_markers(ctx.raw_lines[v.line - 1]);
            if (v.line >= 2) {
                for (auto& id : allow_markers(ctx.raw_lines[v.line - 2])) allowed.insert(id);
            }
        }
        if (allowed.count(v.rule) != 0 || allowed.count("*") != 0) continue;
        kept.push_back(std::move(v));
    }
    std::sort(kept.begin(), kept.end(), [](const Violation& a, const Violation& b) {
        return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
    });
    return kept;
}

std::vector<Violation> Linter::lint_tree(const std::string& root) {
    namespace fs = std::filesystem;
    files_scanned_ = 0;
    std::vector<fs::path> files;
    for (const char* dir : {"src", "tests", "tools", "bench", "examples"}) {
        const fs::path base = fs::path{root} / dir;
        if (!fs::exists(base)) continue;
        for (const auto& entry : fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file()) continue;
            const std::string ext = entry.path().extension().string();
            if (ext == ".cpp" || ext == ".hpp") files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());

    std::vector<Violation> all;
    for (const auto& file : files) {
        std::ifstream in{file, std::ios::binary};
        if (!in) continue;
        std::ostringstream buf;
        buf << in.rdbuf();
        ++files_scanned_;
        const std::string rel = fs::relative(file, root).generic_string();
        auto found = lint_source(rel, buf.str());
        all.insert(all.end(), std::make_move_iterator(found.begin()),
                   std::make_move_iterator(found.end()));
    }
    return all;
}

telemetry::Json Linter::report(const std::vector<Violation>& violations,
                               std::string_view root, std::size_t files_scanned) {
    telemetry::Json doc = telemetry::Json::object();
    doc["schema"] = "arpsec.lint-report.v1";
    doc["root"] = std::string{root};
    doc["files_scanned"] = static_cast<std::int64_t>(files_scanned);
    doc["violation_count"] = static_cast<std::int64_t>(violations.size());

    telemetry::Json counts = telemetry::Json::object();
    for (const auto& info : rule_catalog()) {
        std::int64_t n = 0;
        for (const auto& v : violations) {
            if (v.rule == info.id) ++n;
        }
        counts[std::string{info.id}] = n;
    }
    doc["counts"] = std::move(counts);

    telemetry::Json list = telemetry::Json::array();
    for (const auto& v : violations) {
        telemetry::Json item = telemetry::Json::object();
        item["file"] = v.file;
        item["line"] = static_cast<std::int64_t>(v.line);
        item["rule"] = v.rule;
        item["message"] = v.message;
        item["snippet"] = v.snippet;
        list.push_back(std::move(item));
    }
    doc["violations"] = std::move(list);
    return doc;
}

}  // namespace arpsec::lint

#pragma once

#include <set>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "lint/linter.hpp"
#include "telemetry/json.hpp"

namespace arpsec::lint {

/// A committed snapshot of accepted violations (`arpsec.lint-baseline.v1`):
/// CI fails only on findings that are not in the snapshot, so a new rule can
/// land with its existing debt recorded instead of blocking the tree.
/// Entries key on (file, rule, snippet) — not line numbers — so unrelated
/// edits that shift code do not invalidate the baseline.
class Baseline {
public:
    struct Entry {
        std::string file;
        std::string rule;
        std::string snippet;
        [[nodiscard]] bool operator<(const Entry& o) const {
            if (file != o.file) return file < o.file;
            if (rule != o.rule) return rule < o.rule;
            return snippet < o.snippet;
        }
    };

    /// Snapshot of the given findings.
    [[nodiscard]] static Baseline from_violations(const std::vector<Violation>& violations);

    /// Parses an arpsec.lint-baseline.v1 document from `text`.
    [[nodiscard]] static common::Expected<Baseline> parse(const std::string& text);

    /// Reads and parses the snapshot at `path`.
    [[nodiscard]] static common::Expected<Baseline> load(const std::string& path);

    [[nodiscard]] bool contains(const Violation& v) const;

    /// Violations not covered by this snapshot (the ones CI should fail on).
    [[nodiscard]] std::vector<Violation> filter_new(
        const std::vector<Violation>& violations) const;

    /// Serializes as arpsec.lint-baseline.v1, entries sorted.
    [[nodiscard]] telemetry::Json to_json() const;

    [[nodiscard]] std::size_t size() const { return entries_.size(); }

private:
    std::set<Entry> entries_;
};

}  // namespace arpsec::lint

#include "lint/lexer.hpp"

#include <array>
#include <cctype>
#include <string>

namespace arpsec::lint {

namespace {

bool ident_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool digit(char c) { return c >= '0' && c <= '9'; }

/// True when the `'` at `pos` is a digit separator (`1'000`, `0xFF'FF`)
/// rather than the start of a char literal: the maximal identifier-ish run
/// ending just before it must itself start with a digit (a pp-number).
bool is_digit_separator(std::string_view text, std::size_t pos) {
    if (pos == 0 || pos + 1 >= text.size()) return false;
    if (!std::isalnum(static_cast<unsigned char>(text[pos + 1]))) return false;
    std::size_t start = pos;
    while (start > 0) {
        const char p = text[start - 1];
        if (ident_char(p) || p == '\'' || p == '.') {
            --start;
        } else {
            break;
        }
    }
    return start < pos && digit(text[start]);
}

/// Raw-string prefixes: the maximal identifier run ending just before the
/// opening quote must be exactly one of these.
bool is_raw_prefix(std::string_view run) {
    return run == "R" || run == "u8R" || run == "uR" || run == "LR" || run == "UR";
}

/// Length of the identifier run ending at `quote` (exclusive), i.e. the
/// candidate encoding prefix of a string literal.
std::size_t prefix_run(std::string_view text, std::size_t quote) {
    std::size_t start = quote;
    while (start > 0 && ident_char(text[start - 1])) --start;
    return quote - start;
}

}  // namespace

std::vector<Region> scan_regions(std::string_view text) {
    std::vector<Region> out;
    const std::size_t n = text.size();
    std::size_t i = 0;
    std::size_t code_start = 0;

    auto flush_code = [&](std::size_t end) {
        if (end > code_start) out.push_back({RegionKind::kCode, code_start, end, end, end});
    };

    while (i < n) {
        const char c = text[i];
        const char next = i + 1 < n ? text[i + 1] : '\0';

        if (c == '/' && next == '/') {
            flush_code(i);
            std::size_t end = text.find('\n', i + 2);
            if (end == std::string_view::npos) end = n;
            out.push_back({RegionKind::kLineComment, i, end, i, end});
            code_start = i = end;
        } else if (c == '/' && next == '*') {
            flush_code(i);
            std::size_t end = text.find("*/", i + 2);
            end = end == std::string_view::npos ? n : end + 2;
            out.push_back({RegionKind::kBlockComment, i, end, i, end});
            code_start = i = end;
        } else if (c == '"') {
            const std::size_t plen = prefix_run(text, i);
            const std::string_view prefix = text.substr(i - plen, plen);
            if (is_raw_prefix(prefix)) {
                // R"delim( ... )delim" — the delimiter may be empty or any
                // run of non-paren, non-space chars up to 16 bytes.
                const std::size_t open = text.find('(', i + 1);
                if (open != std::string_view::npos && open - i <= 17) {
                    const std::string term =
                        ")" + std::string{text.substr(i + 1, open - i - 1)} + "\"";
                    std::size_t close = text.find(term, open + 1);
                    std::size_t end = close == std::string_view::npos ? n : close + term.size();
                    flush_code(i - plen);
                    const std::size_t content_end =
                        close == std::string_view::npos ? end : end - 1;
                    out.push_back({RegionKind::kRawString, i - plen, end, i + 1, content_end});
                    code_start = i = end;
                    continue;
                }
            }
            // Ordinary string literal: escapes honored, terminated by the
            // closing quote or an unescaped newline (ill-formed input must
            // not swallow the rest of the file).
            flush_code(i);
            std::size_t j = i + 1;
            bool closed = false;
            while (j < n) {
                if (text[j] == '\\' && j + 1 < n) {
                    j += 2;
                } else if (text[j] == '"') {
                    closed = true;
                    ++j;
                    break;
                } else if (text[j] == '\n') {
                    break;
                } else {
                    ++j;
                }
            }
            out.push_back({RegionKind::kString, i, j, i + 1, closed ? j - 1 : j});
            code_start = i = j;
        } else if (c == '\'' && !is_digit_separator(text, i)) {
            flush_code(i);
            std::size_t j = i + 1;
            bool closed = false;
            while (j < n) {
                if (text[j] == '\\' && j + 1 < n) {
                    j += 2;
                } else if (text[j] == '\'') {
                    closed = true;
                    ++j;
                    break;
                } else if (text[j] == '\n') {
                    break;
                } else {
                    ++j;
                }
            }
            out.push_back({RegionKind::kCharLiteral, i, j, i + 1, closed ? j - 1 : j});
            code_start = i = j;
        } else {
            ++i;
        }
    }
    flush_code(n);
    return out;
}

const char* to_string(TokenKind kind) {
    switch (kind) {
        case TokenKind::kIdentifier: return "identifier";
        case TokenKind::kNumber: return "number";
        case TokenKind::kString: return "string";
        case TokenKind::kRawString: return "raw-string";
        case TokenKind::kCharLiteral: return "char";
        case TokenKind::kPunct: return "punct";
        case TokenKind::kPreprocessor: return "preprocessor";
        case TokenKind::kComment: return "comment";
    }
    return "?";
}

namespace {

/// Multi-character operators, longest first within each leading char.
constexpr std::array<std::string_view, 24> kMultiPunct = {
    "<<=", ">>=", "->*", "...", "::", "->", ".*", "<<", ">>", "<=", ">=", "==",
    "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++",
};

/// Running line/column cursor: advances over a byte range once, in order.
class Cursor {
public:
    explicit Cursor(std::string_view text) : text_(text) {}

    void advance_to(std::size_t offset) {
        while (pos_ < offset && pos_ < text_.size()) {
            if (text_[pos_] == '\n') {
                ++line_;
                col_ = 1;
            } else {
                ++col_;
            }
            ++pos_;
        }
    }

    [[nodiscard]] std::size_t line() const { return line_; }
    [[nodiscard]] std::size_t col() const { return col_; }

private:
    std::string_view text_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
    std::size_t col_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view text) {
    std::vector<Token> tokens;
    Cursor cursor{text};
    // True until a non-whitespace token is seen on the current line; gates
    // preprocessor-directive recognition.
    bool at_line_start = true;

    auto emit = [&](TokenKind kind, std::size_t begin, std::size_t end) {
        cursor.advance_to(begin);
        tokens.push_back(
            {kind, text.substr(begin, end - begin), begin, cursor.line(), cursor.col()});
        at_line_start = false;
    };

    for (const Region& region : scan_regions(text)) {
        switch (region.kind) {
            case RegionKind::kLineComment:
            case RegionKind::kBlockComment:
                emit(TokenKind::kComment, region.begin, region.end);
                if (text.substr(region.begin, region.end - region.begin).find('\n') !=
                    std::string_view::npos) {
                    at_line_start = true;
                }
                continue;
            case RegionKind::kString:
                emit(TokenKind::kString, region.begin, region.end);
                continue;
            case RegionKind::kRawString:
                emit(TokenKind::kRawString, region.begin, region.end);
                continue;
            case RegionKind::kCharLiteral:
                emit(TokenKind::kCharLiteral, region.begin, region.end);
                continue;
            case RegionKind::kCode:
                break;
        }

        std::size_t i = region.begin;
        while (i < region.end) {
            const char c = text[i];
            if (c == '\n') {
                at_line_start = true;
                ++i;
                continue;
            }
            if (std::isspace(static_cast<unsigned char>(c)) != 0) {
                ++i;
                continue;
            }
            if (c == '#' && at_line_start) {
                // Preprocessor token: `#` plus the directive name, horizontal
                // whitespace between them allowed (`#  include`).
                std::size_t j = i + 1;
                while (j < region.end && (text[j] == ' ' || text[j] == '\t')) ++j;
                std::size_t name_end = j;
                while (name_end < region.end && ident_char(text[name_end])) ++name_end;
                emit(TokenKind::kPreprocessor, i, name_end > j ? name_end : i + 1);
                i = name_end > j ? name_end : i + 1;
                continue;
            }
            if (ident_start(c)) {
                std::size_t j = i + 1;
                while (j < region.end && ident_char(text[j])) ++j;
                emit(TokenKind::kIdentifier, i, j);
                i = j;
                continue;
            }
            if (digit(c) || (c == '.' && i + 1 < region.end && digit(text[i + 1]))) {
                // pp-number: digits, idents, digit separators, dots, and
                // sign characters directly after an exponent marker.
                std::size_t j = i + 1;
                while (j < region.end) {
                    const char d = text[j];
                    if (ident_char(d) || d == '.' || d == '\'') {
                        ++j;
                    } else if ((d == '+' || d == '-') && j > i &&
                               (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                                text[j - 1] == 'p' || text[j - 1] == 'P')) {
                        ++j;
                    } else {
                        break;
                    }
                }
                emit(TokenKind::kNumber, i, j);
                i = j;
                continue;
            }
            std::size_t punct_len = 1;
            for (const auto op : kMultiPunct) {
                if (text.compare(i, op.size(), op) == 0 && i + op.size() <= region.end) {
                    punct_len = op.size();
                    break;
                }
            }
            emit(TokenKind::kPunct, i, i + punct_len);
            i += punct_len;
        }
    }
    return tokens;
}

}  // namespace arpsec::lint

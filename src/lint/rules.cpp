#include "lint/rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace arpsec::lint {

const std::map<std::string, std::set<std::string>, std::less<>>& module_layering() {
    static const std::map<std::string, std::set<std::string>, std::less<>> kAllowed = {
        {"common", {"common"}},
        {"telemetry", {"telemetry", "common"}},
        {"wire", {"wire", "common"}},
        {"crypto", {"crypto", "wire", "common"}},
        {"sim", {"sim", "telemetry", "wire", "common"}},
        {"arp", {"arp", "telemetry", "wire", "common"}},
        {"l2", {"l2", "sim", "telemetry", "wire", "common"}},
        {"host", {"host", "arp", "sim", "telemetry", "wire", "common"}},
        {"attack", {"attack", "host", "arp", "sim", "telemetry", "wire", "common"}},
        {"detect",
         {"detect", "host", "l2", "arp", "sim", "crypto", "telemetry", "wire", "common"}},
        {"core",
         {"core", "detect", "attack", "host", "l2", "arp", "sim", "crypto", "telemetry", "wire",
          "common"}},
        {"exp",
         {"exp", "core", "detect", "attack", "host", "l2", "arp", "sim", "crypto", "telemetry",
          "wire", "common"}},
        // The checker may drive everything below it (fan-out via exp, sim
        // construction, scheme deployment), but no module lists "check":
        // nothing in the tree may depend back on the test harness.
        {"check",
         {"check", "exp", "detect", "attack", "host", "l2", "arp", "sim", "crypto", "telemetry",
          "wire", "common"}},
        // Replay sits beside check at the top of the stack: it renders
        // check scenarios, fans out via exp, and deploys detect schemes —
        // but nothing may depend back on it.
        {"replay",
         {"replay", "check", "exp", "detect", "attack", "host", "l2", "arp", "sim", "crypto",
          "telemetry", "wire", "common"}},
        // The streaming service tops the stack: it owns transports and shard
        // workers and feeds replay sessions. Listing "serve" nowhere else is
        // what forbids reverse dependencies — sim/detect/replay code can
        // never reach back into the daemon.
        {"serve",
         {"serve", "replay", "check", "exp", "detect", "attack", "host", "l2", "arp", "sim",
          "crypto", "telemetry", "wire", "common"}},
        {"lint", {"lint", "telemetry", "common"}},
    };
    return kAllowed;
}

namespace {

bool is_punct(const Token& t, std::string_view s) {
    return t.kind == TokenKind::kPunct && t.text == s;
}

bool is_ident(const Token& t) { return t.kind == TokenKind::kIdentifier; }

std::string snippet_at(const std::vector<std::string_view>& raw_lines, std::size_t line) {
    if (line == 0 || line > raw_lines.size()) return "";
    std::string_view s = raw_lines[line - 1];
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) {
        s.remove_prefix(1);
    }
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
        s.remove_suffix(1);
    }
    return std::string{s};
}

/// Next non-comment token at or after `i`, or tokens.size().
std::size_t next_code(const std::vector<Token>& tokens, std::size_t i) {
    while (i < tokens.size() && tokens[i].kind == TokenKind::kComment) ++i;
    return i;
}

bool type_contains(const std::string& type, std::string_view word) {
    std::size_t pos = 0;
    while ((pos = type.find(word, pos)) != std::string::npos) {
        const bool left = pos == 0 || !(std::isalnum(static_cast<unsigned char>(type[pos - 1])) ||
                                        type[pos - 1] == '_');
        const std::size_t end = pos + word.size();
        const bool right = end >= type.size() ||
                           !(std::isalnum(static_cast<unsigned char>(type[end])) ||
                             type[end] == '_');
        if (left && right) return true;
        ++pos;
    }
    return false;
}

/// A type that carries attacker-controlled bytes into a wire parser.
bool untrusted_type(const std::string& type) {
    if (type_contains(type, "span") && type_contains(type, "uint8_t")) return true;
    if (type_contains(type, "string_view")) return true;
    if (type_contains(type, "Bytes")) return true;
    return false;
}

constexpr std::array<std::string_view, 4> kSizeProbes = {"size", "length", "empty",
                                                         "remaining"};
constexpr std::array<std::string_view, 4> kUncheckedReads = {"data", "front", "back", "begin"};
constexpr std::array<std::string_view, 3> kLockTypes = {"lock_guard", "scoped_lock",
                                                        "unique_lock"};

}  // namespace

void check_untrusted_read_bounds(const SemanticInput& in, std::vector<Violation>& out) {
    if (in.path.find("src/wire/") == std::string_view::npos) return;
    const std::vector<Token>& tokens = in.tu.tokens;

    // Span-typed fields (e.g. ByteReader::data_) are tainted in every member
    // function of the TU.
    std::set<std::string, std::less<>> field_taint;
    for (const FieldDef& f : in.tu.fields) {
        if (untrusted_type(f.type)) field_taint.insert(f.name);
    }

    for (const FunctionDef& fn : in.tu.functions) {
        std::set<std::string, std::less<>> tainted = field_taint;
        for (const Param& p : fn.params) {
            if (!p.name.empty() && untrusted_type(p.type)) tainted.insert(p.name);
        }
        if (tainted.empty()) continue;

        std::set<std::string, std::less<>> checked;
        bool all_checked = false;  // require()/ensure() validate every input
        for (std::size_t i = fn.body_begin; i < fn.body_end && i < tokens.size(); ++i) {
            const Token& t = tokens[i];
            if (!is_ident(t)) continue;
            const std::size_t after = next_code(tokens, i + 1);
            if (after >= tokens.size()) break;

            if ((t.text == "require" || t.text == "ensure") &&
                is_punct(tokens[after], "(")) {
                all_checked = true;
                continue;
            }
            const auto taint_it = tainted.find(t.text);
            if (taint_it == tainted.end()) continue;

            if (is_punct(tokens[after], ".")) {
                const std::size_t member = next_code(tokens, after + 1);
                if (member >= tokens.size() || !is_ident(tokens[member])) continue;
                const std::string_view m = tokens[member].text;
                if (std::find(kSizeProbes.begin(), kSizeProbes.end(), m) !=
                    kSizeProbes.end()) {
                    checked.insert(std::string{t.text});
                    continue;
                }
                if (std::find(kUncheckedReads.begin(), kUncheckedReads.end(), m) ==
                    kUncheckedReads.end()) {
                    continue;
                }
                if (all_checked || checked.count(t.text) != 0) continue;
                out.push_back({std::string{in.path}, t.line, "untrusted-read-bounds",
                               "'" + std::string{t.text} + "." + std::string{m} +
                                   "()' reads untrusted bytes before any size check; guard "
                                   "with '" +
                                   std::string{t.text} + ".size()' / require() first",
                               snippet_at(in.raw_lines, t.line)});
                continue;
            }
            if (is_punct(tokens[after], "[")) {
                if (all_checked || checked.count(t.text) != 0) continue;
                out.push_back({std::string{in.path}, t.line, "untrusted-read-bounds",
                               "indexed read of untrusted bytes '" + std::string{t.text} +
                                   "[...]' without a dominating bounds check; guard with '" +
                                   std::string{t.text} + ".size()' / require() first",
                               snippet_at(in.raw_lines, t.line)});
            }
        }
    }
}

namespace {

/// One parsed switch statement: case-label enumerators plus default info.
struct SwitchShape {
    std::size_t switch_line = 0;
    std::size_t default_line = 0;           // 0 when absent
    std::size_t close_line = 0;             // line of the switch's '}'
    std::string qualifier;                  // `Q` from the first `Q::kX` label
    std::vector<std::string> labels;        // leaf enumerator names
    bool enum_like = true;                  // false on numeric/char labels
};

/// Token index of the matching close paren, ignoring comments.
std::size_t match_paren_tok(const std::vector<Token>& tokens, std::size_t open) {
    int depth = 0;
    for (std::size_t i = open; i < tokens.size(); ++i) {
        if (is_punct(tokens[i], "(")) ++depth;
        if (is_punct(tokens[i], ")") && --depth == 0) return i;
    }
    return tokens.size();
}

}  // namespace

void check_exhaustive_switch(const SemanticInput& in, std::vector<Violation>& out) {
    const std::vector<Token>& tokens = in.tu.tokens;

    // Enum fact base: the whole tree when available, else this TU.
    std::map<std::string, std::vector<EnumDef>, std::less<>> local;
    const std::map<std::string, std::vector<EnumDef>, std::less<>>* enums = &local;
    if (in.tree != nullptr) {
        enums = &in.tree->enums;
    } else {
        for (const EnumDef& e : in.tu.enums) local[e.name].push_back(e);
    }
    if (enums->empty()) return;

    for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (!is_ident(tokens[i]) || tokens[i].text != "switch") continue;
        const std::size_t open_paren = next_code(tokens, i + 1);
        if (open_paren >= tokens.size() || !is_punct(tokens[open_paren], "(")) continue;
        const std::size_t close_paren = match_paren_tok(tokens, open_paren);
        const std::size_t open_brace = next_code(tokens, close_paren + 1);
        if (open_brace >= tokens.size() || !is_punct(tokens[open_brace], "{")) continue;
        const std::size_t close_brace = match_brace(tokens, open_brace);

        SwitchShape shape;
        shape.switch_line = tokens[i].line;
        shape.close_line =
            close_brace < tokens.size() ? tokens[close_brace].line : tokens[i].line;

        int depth = 0;
        for (std::size_t k = open_brace; k < close_brace && k < tokens.size(); ++k) {
            const Token& t = tokens[k];
            if (is_punct(t, "{")) ++depth;
            if (is_punct(t, "}")) --depth;
            if (depth != 1 || !is_ident(t)) continue;
            if (t.text == "default") {
                const std::size_t colon = next_code(tokens, k + 1);
                if (colon < tokens.size() && is_punct(tokens[colon], ":")) {
                    shape.default_line = t.line;
                }
                continue;
            }
            if (t.text != "case") continue;
            // Label tokens up to the ':' terminator ('::' lexes as one
            // token, so a bare ':' is unambiguous).
            std::vector<std::string_view> chain;
            bool clean = true;
            std::size_t k2 = k + 1;
            while (k2 < close_brace && k2 < tokens.size()) {
                const Token& lt = tokens[k2];
                if (lt.kind == TokenKind::kComment) {
                    ++k2;
                    continue;
                }
                if (is_punct(lt, ":")) break;
                if (is_ident(lt)) {
                    chain.push_back(lt.text);
                } else if (!is_punct(lt, "::")) {
                    clean = false;  // numeric / char / expression label
                }
                ++k2;
            }
            if (!clean || chain.empty()) {
                shape.enum_like = false;
                break;
            }
            shape.labels.emplace_back(chain.back());
            if (chain.size() >= 2 && shape.qualifier.empty()) {
                shape.qualifier = std::string{chain[chain.size() - 2]};
            }
            k = k2;
        }
        if (!shape.enum_like || shape.labels.empty()) continue;

        // Bind to a repo enum: every label must be an enumerator of one
        // candidate definition (restricted by qualifier when present).
        const EnumDef* best = nullptr;
        std::vector<std::string> best_missing;
        bool fully_covered = false;
        auto consider = [&](const EnumDef& def) {
            for (const std::string& label : shape.labels) {
                if (std::find(def.enumerators.begin(), def.enumerators.end(), label) ==
                    def.enumerators.end()) {
                    return;
                }
            }
            std::vector<std::string> missing;
            for (const std::string& e : def.enumerators) {
                if (std::find(shape.labels.begin(), shape.labels.end(), e) ==
                    shape.labels.end()) {
                    missing.push_back(e);
                }
            }
            if (missing.empty()) {
                fully_covered = true;
                return;
            }
            if (best == nullptr || missing.size() < best_missing.size()) {
                best = &def;
                best_missing = std::move(missing);
            }
        };
        if (!shape.qualifier.empty()) {
            const auto it = enums->find(shape.qualifier);
            if (it == enums->end()) continue;
            for (const EnumDef& def : it->second) consider(def);
        } else {
            for (const auto& [name, defs] : *enums) {
                for (const EnumDef& def : defs) consider(def);
            }
        }
        if (fully_covered || best == nullptr) continue;

        std::string missing_list;
        for (const std::string& m : best_missing) {
            if (!missing_list.empty()) missing_list += ", ";
            missing_list += m;
        }
        if (shape.default_line != 0) {
            out.push_back({std::string{in.path}, shape.default_line, "exhaustive-switch",
                           "bare default over enum '" + best->name + "' hides enumerators: " +
                               missing_list +
                               "; cover them or annotate the default with "
                               "lint:allow(exhaustive-switch)",
                           snippet_at(in.raw_lines, shape.default_line)});
        } else {
            // Autofix: insert an annotated default just before the switch's
            // closing brace, indented one level past it.
            std::string indent;
            if (shape.close_line >= 1 && shape.close_line <= in.raw_lines.size()) {
                const std::string_view close = in.raw_lines[shape.close_line - 1];
                for (const char c : close) {
                    if (c == ' ' || c == '\t') {
                        indent += c;
                    } else {
                        break;
                    }
                }
            }
            Violation v{std::string{in.path}, shape.switch_line, "exhaustive-switch",
                        "switch over enum '" + best->name +
                            "' misses enumerators: " + missing_list +
                            "; add the cases or an annotated default",
                        snippet_at(in.raw_lines, shape.switch_line)};
            v.fix_line = shape.close_line;
            v.fix_insert = indent +
                           "    default:  // lint:allow(exhaustive-switch): unhandled "
                           "enumerators fall through\n" +
                           indent + "        break;\n";
            out.push_back(std::move(v));
        }
    }
}

void check_lock_discipline(const SemanticInput& in, std::vector<Violation>& out) {
    if (in.module != "common" && in.module != "exp" && in.module != "telemetry") return;
    const std::vector<Token>& tokens = in.tu.tokens;

    // field name -> GuardedField (annotation may live in a header while the
    // uses sit in the .cpp, hence the tree-level map).
    std::map<std::string, GuardedField, std::less<>> guarded;
    if (in.tree != nullptr) {
        guarded = in.tree->guarded_fields;
    }
    for (const GuardedField& g : in.tu.guarded_fields) guarded[g.field] = g;
    if (guarded.empty()) return;

    for (const FunctionDef& fn : in.tu.functions) {
        std::set<std::string, std::less<>> held;
        for (std::size_t i = fn.body_begin; i < fn.body_end && i < tokens.size(); ++i) {
            const Token& t = tokens[i];
            if (!is_ident(t)) continue;
            if (std::find(kLockTypes.begin(), kLockTypes.end(), t.text) != kLockTypes.end()) {
                // The mutex being locked is named somewhere before the ';'
                // ending the declaration: `lock_guard<mutex> l{sink_mutex()}`.
                for (std::size_t k = i + 1; k < fn.body_end && k < tokens.size(); ++k) {
                    if (is_punct(tokens[k], ";")) break;
                    if (is_ident(tokens[k])) held.insert(std::string{tokens[k].text});
                }
                continue;
            }
            const auto g = guarded.find(t.text);
            if (g == guarded.end()) continue;
            if (held.count(g->second.mutex_name) != 0) continue;
            out.push_back({std::string{in.path}, t.line, "lock-discipline",
                           "'" + g->second.field + "' is annotated '// guards: " +
                               g->second.mutex_name + "' but is touched in '" + fn.name +
                               "' without holding that mutex (construct a lock_guard/"
                               "scoped_lock first)",
                           snippet_at(in.raw_lines, t.line)});
        }
    }
}

void check_no_frame_copy(const SemanticInput& in, std::vector<Violation>& out) {
    // src/wire/ owns the frame codec; tests build raw-byte fixtures.
    if (in.path.find("src/wire/") != std::string_view::npos) return;
    if (in.path.find("tests/") != std::string_view::npos) return;
    const std::vector<Token>& tokens = in.tu.tokens;

    // Names declared with an EthernetFrame type: fields, parameters, and
    // (collected in the scan below) local declarations.
    std::set<std::string, std::less<>> frames;
    for (const FieldDef& f : in.tu.fields) {
        if (type_contains(f.type, "EthernetFrame")) frames.insert(f.name);
    }
    for (const FunctionDef& fn : in.tu.functions) {
        for (const Param& p : fn.params) {
            if (!p.name.empty() && type_contains(p.type, "EthernetFrame")) {
                frames.insert(p.name);
            }
        }
    }

    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& t = tokens[i];
        if (!is_ident(t) || t.text != "EthernetFrame") continue;
        std::size_t j = next_code(tokens, i + 1);
        if (j >= tokens.size()) break;
        if (is_punct(tokens[j], "::")) {
            const std::size_t k = next_code(tokens, j + 1);
            if (k < tokens.size() && is_ident(tokens[k]) && tokens[k].text == "parse") {
                out.push_back({std::string{in.path}, t.line, "no-frame-copy",
                               "EthernetFrame::parse outside src/wire/ re-parses bytes the "
                               "frame fabric memoizes; read them through a FrameView",
                               snippet_at(in.raw_lines, t.line)});
            }
            continue;
        }
        // Local declaration: `[wire::]EthernetFrame [const] [&|*] name ...`.
        while (j < tokens.size() &&
               (is_punct(tokens[j], "&") || is_punct(tokens[j], "*") ||
                (is_ident(tokens[j]) && tokens[j].text == "const"))) {
            j = next_code(tokens, j + 1);
        }
        if (j < tokens.size() && is_ident(tokens[j])) {
            frames.insert(std::string{tokens[j].text});
        }
    }

    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& t = tokens[i];
        if (!is_ident(t)) continue;
        // `view.frame().serialize()`: re-serializing a FrameView's
        // materialized frame round-trips bytes the buffer already holds.
        const bool is_view_frame = t.text == "frame" && i > 0 &&
                                   (is_punct(tokens[i - 1], ".") || is_punct(tokens[i - 1], "->"));
        const bool is_frame_value = frames.count(t.text) != 0;
        if (!is_view_frame && !is_frame_value) continue;
        std::size_t j = next_code(tokens, i + 1);
        if (is_view_frame) {
            // Skip the `()` of the frame() call.
            if (j >= tokens.size() || !is_punct(tokens[j], "(")) continue;
            j = next_code(tokens, j + 1);
            if (j >= tokens.size() || !is_punct(tokens[j], ")")) continue;
            j = next_code(tokens, j + 1);
        }
        if (j >= tokens.size() || !(is_punct(tokens[j], ".") || is_punct(tokens[j], "->"))) {
            continue;
        }
        const std::size_t m = next_code(tokens, j + 1);
        if (m >= tokens.size() || !is_ident(tokens[m]) || tokens[m].text != "serialize") {
            continue;
        }
        const std::size_t call = next_code(tokens, m + 1);
        if (call >= tokens.size() || !is_punct(tokens[call], "(")) continue;
        out.push_back({std::string{in.path}, t.line, "no-frame-copy",
                       "serializing an EthernetFrame outside src/wire/ copies wire bytes "
                       "the frame fabric owns; send the frame (origin) or forward its "
                       "FrameView instead",
                       snippet_at(in.raw_lines, t.line)});
    }
}

void check_symbol_layering(const SemanticInput& in, std::vector<Violation>& out) {
    if (in.module.empty()) return;
    const auto self = module_layering().find(in.module);
    if (self == module_layering().end()) return;
    const std::vector<Token>& tokens = in.tu.tokens;

    for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (!is_ident(tokens[i])) continue;
        const std::size_t sep = next_code(tokens, i + 1);
        if (sep >= tokens.size() || !is_punct(tokens[sep], "::")) continue;
        // Collect the whole `a::b::c` chain so `arpsec::wire::X` resolves
        // the module from the right segment.
        std::vector<std::string_view> chain{tokens[i].text};
        std::size_t k = sep;
        std::size_t chain_end = i;
        while (k < tokens.size() && is_punct(tokens[k], "::")) {
            const std::size_t nxt = next_code(tokens, k + 1);
            if (nxt >= tokens.size() || !is_ident(tokens[nxt])) break;
            chain.push_back(tokens[nxt].text);
            chain_end = nxt;
            k = next_code(tokens, nxt + 1);
        }
        const std::size_t resume = chain_end;

        for (std::size_t s = 0; s + 1 < chain.size(); ++s) {
            const std::string_view mod = chain[s];
            if (module_layering().find(mod) == module_layering().end()) continue;
            const std::string_view symbol = chain[s + 1];
            if (mod == in.module) break;
            if (self->second.count(std::string{mod}) != 0) break;
            // With a tree index, only flag symbols the named module really
            // defines — an unrelated namespace segment stays silent.
            if (in.tree != nullptr) {
                const auto ms = in.tree->module_symbols.find(std::string{mod});
                if (ms == in.tree->module_symbols.end() ||
                    ms->second.count(std::string{symbol}) == 0) {
                    break;
                }
            }
            out.push_back({std::string{in.path}, tokens[i].line, "symbol-layering",
                           "module '" + in.module + "' may not reach symbol '" +
                               std::string{mod} + "::" + std::string{symbol} +
                               "' (layering: see src/" + in.module + "/CMakeLists.txt)",
                           snippet_at(in.raw_lines, tokens[i].line)});
            break;
        }
        i = resume;
    }
}

}  // namespace arpsec::lint

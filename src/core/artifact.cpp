#include "core/artifact.hpp"

namespace arpsec::core {

using telemetry::Json;

Json to_json(const ScenarioConfig& config) {
    Json j = Json::object();
    j["name"] = config.name;
    j["seed"] = config.seed;
    j["host_count"] = config.host_count;
    j["addressing"] = to_string(config.addressing);
    j["host_policy"] = config.host_policy.name;
    j["duration_ms"] = config.duration.to_millis();
    j["attack_start_ms"] = config.attack_start.to_millis();
    j["attack_stop_ms"] = config.attack_stop.to_millis();
    j["attack"] = to_string(config.attack);
    j["poison_vector"] = attack::to_string(config.vector);
    j["repoison_period_ms"] = config.repoison_period.to_millis();
    j["traffic_period_ms"] = config.traffic_period.to_millis();
    Json churn = Json::object();
    churn["dhcp_recycles"] = config.churn.dhcp_recycles;
    churn["nic_swap"] = config.churn.nic_swap;
    j["churn"] = std::move(churn);
    j["link_loss"] = config.link_loss;
    j["lease_seconds"] = static_cast<std::uint64_t>(config.lease_seconds);
    return j;
}

Json to_json(const WindowStats& w) {
    Json j = Json::object();
    j["sent"] = w.sent;
    j["delivered"] = w.delivered;
    j["intercepted"] = w.intercepted;
    j["delivery_ratio"] = w.delivery_ratio();
    j["interception_ratio"] = w.interception_ratio();
    return j;
}

namespace {

Json summary_json(const common::Summary& s) {
    Json j = Json::object();
    j["count"] = s.count();
    j["mean"] = s.mean();
    j["min"] = s.min();
    j["p50"] = s.percentile(0.5);
    j["p90"] = s.percentile(0.9);
    j["p99"] = s.percentile(0.99);
    j["max"] = s.max();
    return j;
}

}  // namespace

Json to_json(const ScenarioResult& result) {
    Json j = Json::object();
    j["scheme"] = result.scheme_name;
    j["attack_succeeded"] = result.attack_succeeded;
    j["victim_poisoned_at_end"] = result.victim_poisoned_at_end;

    Json windows = Json::object();
    windows["benign"] = to_json(result.benign_window);
    windows["attack"] = to_json(result.attack_window);
    windows["victim_flow_attack"] = to_json(result.victim_flow_attack_window);
    j["windows"] = std::move(windows);

    Json alerts = Json::object();
    alerts["true_positives"] = result.alerts.true_positives;
    alerts["false_positives"] = result.alerts.false_positives;
    alerts["total"] = result.raw_alerts.size();
    alerts["detection_latency_ms"] = result.alerts.detection_latency
                                         ? Json(result.alerts.detection_latency->to_millis())
                                         : Json(nullptr);
    j["alerts"] = std::move(alerts);

    Json overhead = Json::object();
    overhead["total_frames"] = result.total_frames;
    overhead["total_bytes"] = result.total_bytes;
    overhead["arp_frames"] = result.arp_frames;
    overhead["arp_bytes"] = result.arp_bytes;
    overhead["events_executed"] = result.events_executed;
    Json crypto = Json::object();
    crypto["signs"] = result.crypto_ops.signs;
    crypto["verifies"] = result.crypto_ops.verifies;
    crypto["hashes"] = result.crypto_ops.hashes;
    crypto["hmacs"] = result.crypto_ops.hmacs;
    overhead["crypto_ops"] = std::move(crypto);
    j["overhead"] = std::move(overhead);

    j["resolution_latency_us"] = summary_json(result.resolution_latency_us);
    return j;
}

Json run_json(const ScenarioResult& result, const telemetry::MetricsRegistry* metrics) {
    Json j = Json::object();
    j["scheme"] = result.scheme_name;
    j["config"] = to_json(result.config);
    j["result"] = to_json(result);
    j["metrics"] = metrics != nullptr ? metrics->snapshot_json() : Json(nullptr);
    return j;
}

}  // namespace arpsec::core

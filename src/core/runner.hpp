#pragma once

#include <memory>
#include <set>
#include <vector>

#include "attack/attacker.hpp"
#include "core/scenario.hpp"
#include "detect/monitor.hpp"
#include "detect/scheme.hpp"
#include "host/apps.hpp"
#include "host/dhcp_server.hpp"
#include "host/host.hpp"
#include "host/ledger.hpp"
#include "l2/switch.hpp"
#include "sim/network.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace arpsec::core {

/// Builds the standard single-switch LAN testbed (gateway + DHCP server,
/// n hosts, attacker, mirror-port monitor), deploys one scheme, runs the
/// scenario timeline, and computes the metrics. This harness is the
/// executable form of the paper's analysis: every table and figure is a
/// sweep over ScenarioRunner runs.
class ScenarioRunner {
public:
    explicit ScenarioRunner(ScenarioConfig config);
    ~ScenarioRunner();

    ScenarioRunner(const ScenarioRunner&) = delete;
    ScenarioRunner& operator=(const ScenarioRunner&) = delete;

    /// Runs the full scenario under `scheme` and returns the metrics.
    ScenarioResult run(detect::Scheme& scheme);

    /// Like run(), but attaches a capture tap (e.g. a PcapTap) to the
    /// network before traffic starts, recording every frame on the wire.
    ScenarioResult run_with_tap(detect::Scheme& scheme, sim::CaptureTap* tap);

    /// Convenience: construct + run a registered scheme in one call.
    static ScenarioResult run_scheme(const ScenarioConfig& config, detect::Scheme& scheme);

    // ---- Accessors (valid after run(); used by tests and examples) --------
    [[nodiscard]] sim::Network& network() { return *net_; }
    [[nodiscard]] l2::Switch& fabric() { return *switch_; }
    [[nodiscard]] host::Host& gateway() { return *gateway_; }
    [[nodiscard]] host::Host& victim() { return *hosts_.front(); }
    [[nodiscard]] std::vector<host::Host*>& hosts() { return hosts_; }
    [[nodiscard]] attack::Attacker& attacker() { return *attacker_; }
    [[nodiscard]] detect::MonitorNode& monitor() { return *monitor_; }
    [[nodiscard]] detect::AlertSink& alerts() { return alert_sink_; }
    [[nodiscard]] host::DeliveryLedger& ledger() { return ledger_; }

    [[nodiscard]] const ScenarioConfig& config() const { return config_; }

    /// Per-run metric store. Live `sim.*` series accumulate during the run;
    /// the `l2.*`, `arp.*`, `detect.*` and `crypto.*` aggregates are
    /// published when run() collects. Feed this to core::run_json() for the
    /// machine-readable artifact.
    [[nodiscard]] telemetry::MetricsRegistry& metrics() { return metrics_; }

    /// Optional structured tracer (not owned; may be null). Records the
    /// scenario timeline — window spans, attack launch/halt, churn, alerts —
    /// in simulated time. Set before run().
    void set_tracer(telemetry::EventTracer* tracer) { tracer_ = tracer; }

    /// Flow id used by the designated victim's traffic toward the gateway.
    static constexpr std::uint32_t kVictimFlowId = 1;

    /// Subnet/addressing plan used by the harness (shared with benches).
    static wire::Ipv4Subnet subnet() { return {wire::Ipv4Address{192, 168, 1, 0}, 24}; }
    static wire::Ipv4Address gateway_ip() { return {192, 168, 1, 1}; }
    static wire::Ipv4Address static_host_ip(std::size_t index) {
        return {192, 168, 1, static_cast<std::uint8_t>(10 + index)};
    }

private:
    void build();
    void deploy(detect::Scheme& scheme);
    void schedule_timeline();
    void launch_attack();
    void halt_attack();
    ScenarioResult collect(detect::Scheme& scheme);
    void publish_metrics(const ScenarioResult& r);
    void trace_timeline(const ScenarioResult& r);
    [[nodiscard]] bool is_attacker_alert(const detect::Alert& a) const;

    ScenarioConfig config_;
    std::unique_ptr<sim::Network> net_;
    l2::Switch* switch_ = nullptr;
    host::Host* gateway_ = nullptr;
    std::unique_ptr<host::DhcpServer> dhcp_server_;
    std::vector<host::Host*> hosts_;
    std::vector<std::unique_ptr<host::TrafficApp>> traffic_apps_;
    std::vector<std::unique_ptr<host::UdpSinkApp>> sink_apps_;
    attack::Attacker* attacker_ = nullptr;
    detect::MonitorNode* monitor_ = nullptr;
    detect::AlertSink alert_sink_;
    host::DeliveryLedger ledger_;

    sim::PortId next_free_port_ = 0;
    std::set<wire::MacAddress> attacker_macs_;
    wire::MacAddress dos_mac_;
    wire::Ipv4Address victim_ip_at_attack_;
    wire::Ipv4Address gateway_ip_at_attack_;

    WindowStats snapshot_at_attack_start_;
    WindowStats snapshot_at_attack_stop_;
    host::DeliveryLedger::FlowStats victim_flow_at_start_;
    host::DeliveryLedger::FlowStats victim_flow_at_stop_;
    std::uint32_t infra_ip_counter_ = 0;
    crypto::OpCounters crypto_ops_;
    bool victim_poisoned_at_end_ = false;
    detect::Scheme* active_scheme_ = nullptr;  // for churn-joiner protection

    telemetry::MetricsRegistry metrics_;
    telemetry::EventTracer* tracer_ = nullptr;
};

}  // namespace arpsec::core

#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace arpsec::core {

/// Column-aligned plain-text table (the output format of every bench
/// binary, mirroring the rows the paper's tables report).
class TextTable {
public:
    explicit TextTable(std::string title = "") : title_(std::move(title)) {}

    void set_headers(std::vector<std::string> headers) { headers_ = std::move(headers); }
    void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

    [[nodiscard]] std::string to_string() const;
    void print() const { std::fputs(to_string().c_str(), stdout); }

    /// RFC 4180-style CSV (quoted when needed); headers first, no title.
    [[nodiscard]] std::string to_csv() const;
    /// Writes the CSV to `path`; returns false on I/O failure.
    bool write_csv(const std::string& path) const;

    [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Small formatting helpers shared by benches.
[[nodiscard]] std::string fmt_percent(double ratio);
[[nodiscard]] std::string fmt_double(double v, int precision = 2);
[[nodiscard]] std::string fmt_bool(bool v);

}  // namespace arpsec::core

#include "core/runner.hpp"

#include <cassert>

namespace arpsec::core {

using common::Duration;
using common::SimTime;
using wire::Ipv4Address;
using wire::MacAddress;

std::string to_string(Addressing a) {
    return a == Addressing::kStatic ? "static" : "dhcp";
}

std::string to_string(AttackKind k) {
    switch (k) {
        case AttackKind::kNone: return "none";
        case AttackKind::kMitm: return "mitm";
        case AttackKind::kDosBlackhole: return "dos-blackhole";
        case AttackKind::kHijackOffline: return "hijack-offline";
        case AttackKind::kReplyRace: return "reply-race";
    }
    return "?";
}

std::string ScenarioResult::summary_line() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%-18s attack=%-15s success=%-5s intercept=%5.1f%% deliver=%5.1f%% TP=%llu "
                  "FP=%llu latency=%s",
                  scheme_name.c_str(), to_string(config.attack).c_str(),
                  attack_succeeded ? "yes" : "no", attack_window.interception_ratio() * 100.0,
                  attack_window.delivery_ratio() * 100.0,
                  static_cast<unsigned long long>(alerts.true_positives),
                  static_cast<unsigned long long>(alerts.false_positives),
                  alerts.detection_latency ? alerts.detection_latency->to_string().c_str()
                                           : "n/a");
    return buf;
}

ScenarioRunner::ScenarioRunner(ScenarioConfig config) : config_(std::move(config)) {}
ScenarioRunner::~ScenarioRunner() = default;

ScenarioResult ScenarioRunner::run_scheme(const ScenarioConfig& config, detect::Scheme& scheme) {
    ScenarioRunner runner(config);
    return runner.run(scheme);
}

void ScenarioRunner::build() {
    net_ = std::make_unique<sim::Network>(config_.seed);
    net_->attach_metrics(metrics_);

    const std::size_t ports =
        1 /*gateway*/ + config_.host_count + 1 /*attacker*/ + 1 /*monitor*/ +
        config_.churn.dhcp_recycles + 8 /*infra + nic swap spares*/;
    switch_ = &net_->emplace_node<l2::Switch>("switch", ports);

    sim::LinkConfig access_link;
    access_link.loss_probability = config_.link_loss;
    const auto attach = [this, access_link](sim::NodeId id) {
        const sim::PortId port = next_free_port_++;
        net_->connect(sim::Endpoint{id, 0}, sim::Endpoint{switch_->id(), port}, access_link);
        return port;
    };

    // Gateway (also the DHCP server and the hosts' traffic sink).
    host::HostConfig gw_cfg;
    gw_cfg.name = "gateway";
    gw_cfg.mac = MacAddress::local(1);
    gw_cfg.static_ip = gateway_ip();
    gw_cfg.subnet = subnet();
    gw_cfg.gateway = gateway_ip();
    gw_cfg.arp_policy = config_.host_policy;
    gateway_ = &net_->emplace_node<host::Host>(gw_cfg);
    const sim::PortId gw_port = attach(gateway_->id());
    switch_->set_trusted_port(gw_port, true);

    host::DhcpServer::Config dhcp_cfg;
    dhcp_cfg.pool_start = Ipv4Address{192, 168, 1, 100};
    dhcp_cfg.pool_size =
        static_cast<std::uint32_t>(config_.host_count + config_.churn.dhcp_recycles + 2);
    dhcp_cfg.lease_seconds = config_.lease_seconds;
    dhcp_cfg.router = gateway_ip();
    dhcp_server_ = std::make_unique<host::DhcpServer>(*gateway_, dhcp_cfg);
    sink_apps_.push_back(std::make_unique<host::UdpSinkApp>(*gateway_, 7000, &ledger_));

    // Hosts. hosts_[0] is the designated victim.
    for (std::size_t i = 0; i < config_.host_count; ++i) {
        host::HostConfig cfg;
        cfg.name = "host" + std::to_string(i);
        cfg.mac = MacAddress::local(10 + i);
        if (config_.addressing == Addressing::kStatic) cfg.static_ip = static_host_ip(i);
        cfg.subnet = subnet();
        cfg.gateway = gateway_ip();
        cfg.arp_policy = config_.host_policy;
        host::Host& h = net_->emplace_node<host::Host>(cfg);
        attach(h.id());
        hosts_.push_back(&h);
        sink_apps_.push_back(std::make_unique<host::UdpSinkApp>(h, 7000, &ledger_));
        traffic_apps_.push_back(std::make_unique<host::TrafficApp>(
            h, ledger_,
            std::vector<host::TrafficApp::FlowSpec>{
                {static_cast<std::uint32_t>(i + 1), gateway_ip(), 7000,
                 config_.traffic_period}}));
    }

    // Reverse flow gateway -> victim, so hijack/offline attacks have loot.
    const auto add_gateway_flow = [this](Ipv4Address victim_ip) {
        traffic_apps_.push_back(std::make_unique<host::TrafficApp>(
            *gateway_, ledger_,
            std::vector<host::TrafficApp::FlowSpec>{
                {1000, victim_ip, 7000, config_.traffic_period}}));
    };
    if (config_.addressing == Addressing::kStatic) {
        add_gateway_flow(static_host_ip(0));
    } else {
        hosts_.front()->add_ip_listener(
            [add_gateway_flow, done = false](Ipv4Address ip) mutable {
                if (!done) {
                    add_gateway_flow(ip);
                    done = true;
                }
            });
    }

    // Attacker.
    attack::Attacker::Config atk_cfg;
    atk_cfg.mac = MacAddress::local(0x666);
    atk_cfg.ip = Ipv4Address{192, 168, 1, 250};
    attacker_ = &net_->emplace_node<attack::Attacker>(atk_cfg);
    attach(attacker_->id());
    attacker_macs_.insert(atk_cfg.mac);
    dos_mac_ = MacAddress::local(0xDEAD00);

    // Mirror-port monitor.
    monitor_ = &net_->emplace_node<detect::MonitorNode>("monitor", MacAddress::local(0x999));
    const sim::PortId mon_port = attach(monitor_->id());
    switch_->set_mirror_port(mon_port);
    switch_->set_trusted_port(mon_port, true);
}

void ScenarioRunner::deploy(detect::Scheme& scheme) {
    detect::DeploymentContext ctx;
    ctx.net = net_.get();
    ctx.fabric = switch_;
    ctx.alerts = &alert_sink_;
    ctx.cost = config_.cost_model;
    ctx.ops = &crypto_ops_;
    if (config_.addressing == Addressing::kStatic) {
        ctx.directory.push_back({"gateway", gateway_ip(), gateway_->mac()});
        for (std::size_t i = 0; i < hosts_.size(); ++i) {
            ctx.directory.push_back({hosts_[i]->name(), static_host_ip(i), hosts_[i]->mac()});
        }
    } else {
        ctx.directory.push_back({"gateway", gateway_ip(), gateway_->mac()});
    }
    ctx.attach_infra = [this](sim::NodeId id) {
        const sim::PortId port = next_free_port_++;
        net_->connect(sim::Endpoint{id, 0}, sim::Endpoint{switch_->id(), port});
        switch_->set_trusted_port(port, true);
        return port;
    };
    ctx.alloc_infra_ip = [this] {
        return Ipv4Address{192, 168, 1, static_cast<std::uint8_t>(240 + infra_ip_counter_++)};
    };

    scheme.deploy(ctx);
    scheme.configure_switch(*switch_);
    scheme.protect_host(*gateway_);
    for (host::Host* h : hosts_) scheme.protect_host(*h);
    scheme.attach_monitor(*monitor_);
}

void ScenarioRunner::schedule_timeline() {
    auto& sched = net_->scheduler();
    const SimTime t0 = SimTime::zero();

    sched.schedule_at(t0 + config_.attack_start, [this] {
        snapshot_at_attack_start_ =
            WindowStats{ledger_.sent(), ledger_.delivered(), ledger_.intercepted()};
        victim_flow_at_start_ = ledger_.flow_stats(kVictimFlowId);
        launch_attack();
    });
    sched.schedule_at(t0 + config_.attack_stop, [this] {
        snapshot_at_attack_stop_ =
            WindowStats{ledger_.sent(), ledger_.delivered(), ledger_.intercepted()};
        victim_flow_at_stop_ = ledger_.flow_stats(kVictimFlowId);
        halt_attack();
    });

    // Benign churn.
    for (std::size_t k = 0; k < config_.churn.dhcp_recycles; ++k) {
        if (config_.host_count < 2) break;
        const std::size_t leave_idx =
            config_.host_count - 1 - (k % (config_.host_count - 1));
        const Duration leave_at = Duration::seconds(5) + Duration::seconds(8) * static_cast<std::int64_t>(k);
        sched.schedule_at(t0 + leave_at, [this, leave_idx] {
            hosts_[leave_idx]->dhcp_release();
            // Power down once the RELEASE datagram has left the NIC.
            hosts_[leave_idx]->after(Duration::millis(10),
                                     [this, leave_idx] { hosts_[leave_idx]->power_off(); });
        });
        sched.schedule_at(t0 + leave_at + Duration::seconds(4), [this, k] {
            host::HostConfig cfg;
            cfg.name = "joiner" + std::to_string(k);
            cfg.mac = MacAddress::local(0x4000 + k);
            cfg.subnet = subnet();
            cfg.gateway = gateway_ip();
            cfg.arp_policy = config_.host_policy;
            host::Host& h = net_->emplace_node<host::Host>(cfg);
            const sim::PortId port = next_free_port_++;
            net_->connect(sim::Endpoint{h.id(), 0}, sim::Endpoint{switch_->id(), port});
            sink_apps_.push_back(std::make_unique<host::UdpSinkApp>(h, 7000, &ledger_));
            traffic_apps_.push_back(std::make_unique<host::TrafficApp>(
                h, ledger_,
                std::vector<host::TrafficApp::FlowSpec>{
                    {static_cast<std::uint32_t>(2000 + k), gateway_ip(), 7000,
                     config_.traffic_period}}));
            if (active_scheme_ != nullptr) active_scheme_->protect_host(h);
            hosts_.push_back(&h);
        });
    }

    if (config_.churn.nic_swap && config_.addressing == Addressing::kStatic &&
        config_.host_count >= 2) {
        const std::size_t idx = config_.host_count - 1;
        sched.schedule_at(t0 + Duration::seconds(8), [this, idx] {
            hosts_[idx]->power_off();
        });
        sched.schedule_at(t0 + Duration::seconds(10), [this, idx] {
            host::HostConfig cfg;
            cfg.name = "swapped" + std::to_string(idx);
            cfg.mac = MacAddress::local(0x5000 + idx);  // new NIC
            cfg.static_ip = static_host_ip(idx);        // same address
            cfg.subnet = subnet();
            cfg.gateway = gateway_ip();
            cfg.arp_policy = config_.host_policy;
            host::Host& h = net_->emplace_node<host::Host>(cfg);
            const sim::PortId port = next_free_port_++;
            net_->connect(sim::Endpoint{h.id(), 0}, sim::Endpoint{switch_->id(), port});
            sink_apps_.push_back(std::make_unique<host::UdpSinkApp>(h, 7000, &ledger_));
            if (active_scheme_ != nullptr) active_scheme_->protect_host(h);
            hosts_.push_back(&h);
        });
    }

    if (config_.attack == AttackKind::kHijackOffline) {
        sched.schedule_at(t0 + (config_.attack_start - Duration::seconds(2)),
                          [this] { hosts_.front()->power_off(); });
        sched.schedule_at(t0 + config_.attack_stop + Duration::seconds(1),
                          [this] { hosts_.front()->power_on(); });
    }
}

void ScenarioRunner::launch_attack() {
    if (config_.attack == AttackKind::kNone) return;
    host::Host* victim = hosts_.front();
    if (tracer_ != nullptr) {
        tracer_->instant("attack-launch", "attack", net_->now(),
                         {{"kind", to_string(config_.attack)},
                          {"vector", attack::to_string(config_.vector)}});
    }
    victim_ip_at_attack_ = victim->has_ip() ? victim->ip() : static_host_ip(0);
    gateway_ip_at_attack_ = gateway_ip();

    attacker_->learn_binding(victim_ip_at_attack_, victim->mac());
    attacker_->learn_binding(gateway_ip_at_attack_, gateway_->mac());
    attacker_->enable_relay(&ledger_);

    switch (config_.attack) {
        case AttackKind::kNone:
            break;
        case AttackKind::kMitm: {
            attacker_->start_poison({victim_ip_at_attack_, victim->mac(), gateway_ip_at_attack_,
                                     attacker_->mac(), config_.vector,
                                     config_.repoison_period});
            attacker_->start_poison({gateway_ip_at_attack_, gateway_->mac(),
                                     victim_ip_at_attack_, attacker_->mac(), config_.vector,
                                     config_.repoison_period});
            break;
        }
        case AttackKind::kDosBlackhole: {
            attacker_macs_.insert(dos_mac_);
            attacker_->start_poison({victim_ip_at_attack_, victim->mac(), gateway_ip_at_attack_,
                                     dos_mac_, config_.vector, config_.repoison_period});
            break;
        }
        case AttackKind::kHijackOffline: {
            attacker_->start_poison({gateway_ip_at_attack_, gateway_->mac(),
                                     victim_ip_at_attack_, attacker_->mac(), config_.vector,
                                     config_.repoison_period});
            break;
        }
        case AttackKind::kReplyRace: {
            attacker_->enable_reply_race(gateway_ip_at_attack_, attacker_->mac(),
                                         Duration::micros(50));
            // Model periodic cache expiry on the victim so races recur.
            const auto evict_loop = [this, victim]() {
                victim->arp_cache().evict(gateway_ip_at_attack_);
            };
            evict_loop();
            victim->every(config_.repoison_period, evict_loop);
            break;
        }
    }
}

void ScenarioRunner::halt_attack() {
    // Poisoning state at the instant the attack ends (before caches decay).
    const Ipv4Address poisoned_key = config_.attack == AttackKind::kHijackOffline
                                         ? victim_ip_at_attack_
                                         : gateway_ip_at_attack_;
    arp::ArpCache& cache = config_.attack == AttackKind::kHijackOffline
                               ? gateway_->arp_cache()
                               : hosts_.front()->arp_cache();
    if (const auto entry = cache.peek(poisoned_key)) {
        victim_poisoned_at_end_ = attacker_macs_.count(entry->mac) != 0;
    }
    attacker_->stop_all();
    if (tracer_ != nullptr) {
        tracer_->instant("attack-halt", "attack", net_->now(),
                         {{"victim_poisoned", victim_poisoned_at_end_ ? "true" : "false"}});
    }
}

bool ScenarioRunner::is_attacker_alert(const detect::Alert& a) const {
    return attacker_macs_.count(a.claimed_mac) != 0 || attacker_macs_.count(a.previous_mac) != 0;
}

ScenarioResult ScenarioRunner::collect(detect::Scheme& scheme) {
    ScenarioResult r;
    r.scheme_name = scheme.traits().name;
    r.config = config_;

    r.benign_window = snapshot_at_attack_start_;
    r.attack_window = WindowStats{
        snapshot_at_attack_stop_.sent - snapshot_at_attack_start_.sent,
        snapshot_at_attack_stop_.delivered - snapshot_at_attack_start_.delivered,
        snapshot_at_attack_stop_.intercepted - snapshot_at_attack_start_.intercepted};
    r.victim_flow_attack_window =
        WindowStats{victim_flow_at_stop_.sent - victim_flow_at_start_.sent,
                    victim_flow_at_stop_.delivered - victim_flow_at_start_.delivered,
                    victim_flow_at_stop_.intercepted - victim_flow_at_start_.intercepted};
    r.victim_poisoned_at_end = victim_poisoned_at_end_;

    switch (config_.attack) {
        case AttackKind::kNone:
            r.attack_succeeded = false;
            break;
        case AttackKind::kDosBlackhole:
            // DoS efficacy is judged on the targeted victim's own flow.
            r.attack_succeeded = r.victim_flow_attack_window.delivery_ratio() < 0.5;
            break;
        default:  // lint:allow(exhaustive-switch): remaining kinds share the interception test
            r.attack_succeeded = r.attack_window.interception_ratio() > 0.05;
            break;
    }

    const SimTime attack_at = SimTime::zero() + config_.attack_start;
    for (const detect::Alert& a : alert_sink_.alerts()) {
        if (is_attacker_alert(a)) {
            ++r.alerts.true_positives;
            if (!r.alerts.detection_latency && a.at >= attack_at) {
                r.alerts.detection_latency = a.at - attack_at;
            }
        } else {
            ++r.alerts.false_positives;
        }
    }
    r.raw_alerts = alert_sink_.alerts();

    const auto& c = net_->counters();
    r.total_frames = c.frames;
    r.total_bytes = c.bytes;
    r.arp_frames = c.arp_frames;
    r.arp_bytes = c.arp_bytes;

    r.resolution_latency_us.merge(gateway_->stats().resolution_latency_us);
    for (host::Host* h : hosts_) r.resolution_latency_us.merge(h->stats().resolution_latency_us);

    r.crypto_ops = crypto_ops_;
    r.events_executed = net_->scheduler().executed();

    publish_metrics(r);
    trace_timeline(r);
    return r;
}

void ScenarioRunner::publish_metrics(const ScenarioResult& r) {
    // sim.* counters accumulated live; everything below is the end-of-run
    // aggregation across the layers.
    switch_->export_metrics(metrics_);

    arp::CacheStats arp_agg = gateway_->arp_cache().stats();
    for (host::Host* h : hosts_) arp_agg += h->arp_cache().stats();
    arp::export_metrics(arp_agg, metrics_);

    alert_sink_.export_metrics(metrics_);
    metrics_.counter("detect.alerts.true_positives").inc(r.alerts.true_positives);
    metrics_.counter("detect.alerts.false_positives").inc(r.alerts.false_positives);
    telemetry::Gauge& ttfa = metrics_.gauge("detect.time_to_first_alert_us");
    ttfa.set(r.alerts.detection_latency
                 ? static_cast<std::int64_t>(r.alerts.detection_latency->to_micros())
                 : -1);

    metrics_.counter("crypto.ops.signs").inc(r.crypto_ops.signs);
    metrics_.counter("crypto.ops.verifies").inc(r.crypto_ops.verifies);
    metrics_.counter("crypto.ops.hashes").inc(r.crypto_ops.hashes);
    metrics_.counter("crypto.ops.hmacs").inc(r.crypto_ops.hmacs);

    telemetry::Histogram& resolve = metrics_.histogram(
        "arp.resolution_latency_us",
        {10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 50000});
    for (const double v : r.resolution_latency_us.samples()) resolve.observe(v);

    metrics_.counter("scenario.traffic.sent").inc(ledger_.sent());
    metrics_.counter("scenario.traffic.delivered").inc(ledger_.delivered());
    metrics_.counter("scenario.traffic.intercepted").inc(ledger_.intercepted());
}

void ScenarioRunner::trace_timeline(const ScenarioResult& r) {
    if (tracer_ == nullptr) return;
    const SimTime t0 = SimTime::zero();
    tracer_->complete("benign-window", "scenario", t0, config_.attack_start,
                      {{"scheme", r.scheme_name}});
    tracer_->complete("attack-window", "scenario", t0 + config_.attack_start,
                      config_.attack_stop - config_.attack_start,
                      {{"attack", to_string(config_.attack)},
                       {"succeeded", r.attack_succeeded ? "true" : "false"}});
    tracer_->complete("cooldown", "scenario", t0 + config_.attack_stop,
                      config_.duration - config_.attack_stop);
    // Alerts are replayed from the sink so the tracer never perturbs the
    // scheme's own callback channel mid-run.
    for (const detect::Alert& a : alert_sink_.alerts()) {
        tracer_->instant("alert", "detect", a.at,
                         {{"scheme", a.scheme},
                          {"kind", detect::to_string(a.kind)},
                          {"ip", a.ip.to_string()},
                          {"claimed_mac", a.claimed_mac.to_string()},
                          {"true_positive", is_attacker_alert(a) ? "true" : "false"}});
    }
    tracer_->instant("run-end", "scenario", t0 + config_.duration,
                     {{"events_executed", std::to_string(r.events_executed)}});
}

ScenarioResult ScenarioRunner::run(detect::Scheme& scheme) {
    return run_with_tap(scheme, nullptr);
}

ScenarioResult ScenarioRunner::run_with_tap(detect::Scheme& scheme, sim::CaptureTap* tap) {
    build();
    active_scheme_ = &scheme;
    deploy(scheme);
    schedule_timeline();
    if (tap != nullptr) net_->add_tap(tap);
    net_->start_all();
    net_->scheduler().run_until(SimTime::zero() + config_.duration);
    active_scheme_ = nullptr;
    return collect(scheme);
}

}  // namespace arpsec::core

#pragma once

#include "core/scenario.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace arpsec::core {

/// JSON serialization of the scenario layer for telemetry::RunArtifact
/// files. Schema documented in docs/OBSERVABILITY.md; bump the artifact
/// schema tag when changing shapes, not just adding keys.
[[nodiscard]] telemetry::Json to_json(const ScenarioConfig& config);
[[nodiscard]] telemetry::Json to_json(const WindowStats& w);
[[nodiscard]] telemetry::Json to_json(const ScenarioResult& result);

/// One complete run object: {"scheme", "config" (incl. seed), "result",
/// "metrics"}. `metrics` may be null when no registry was populated.
[[nodiscard]] telemetry::Json run_json(const ScenarioResult& result,
                                       const telemetry::MetricsRegistry* metrics);

}  // namespace arpsec::core

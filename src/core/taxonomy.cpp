#include "core/taxonomy.hpp"

#include "host/host.hpp"
#include "l2/switch.hpp"
#include "sim/network.hpp"

namespace arpsec::core {

using common::Duration;
using common::SimTime;
using wire::Ipv4Address;
using wire::MacAddress;

std::string to_string(InitialEntry e) {
    switch (e) {
        case InitialEntry::kAbsent: return "absent";
        case InitialEntry::kFresh: return "fresh";
        case InitialEntry::kAged: return "aged";
    }
    return "?";
}

TaxonomyOutcome evaluate_poison_case(const TaxonomyCase& c) {
    sim::Network net(c.seed);
    auto& fabric = net.emplace_node<l2::Switch>("switch", 4);

    const Ipv4Address victim_ip{192, 168, 1, 10};
    const Ipv4Address owner_ip{192, 168, 1, 20};
    const MacAddress victim_mac = MacAddress::local(10);
    const MacAddress owner_mac = MacAddress::local(20);
    const MacAddress attacker_mac = MacAddress::local(0x666);

    host::HostConfig vcfg;
    vcfg.name = "victim";
    vcfg.mac = victim_mac;
    vcfg.static_ip = victim_ip;
    vcfg.arp_policy = c.policy;
    // Boot-time announcements are suppressed so the victim's cache holds
    // exactly the state the case specifies (gratuitous-accepting policies
    // would otherwise pre-populate the "absent" cells).
    vcfg.gratuitous_announce = false;
    auto& victim = net.emplace_node<host::Host>(vcfg);

    host::HostConfig ocfg;
    ocfg.name = "owner";
    ocfg.mac = owner_mac;
    ocfg.static_ip = owner_ip;
    ocfg.arp_policy = c.policy;
    ocfg.gratuitous_announce = false;
    auto& owner = net.emplace_node<host::Host>(ocfg);
    (void)owner;

    attack::Attacker::Config acfg;
    acfg.mac = attacker_mac;
    auto& attacker = net.emplace_node<attack::Attacker>(acfg);

    net.connect({victim.id(), 0}, {fabric.id(), 0});
    net.connect({owner.id(), 0}, {fabric.id(), 1});
    net.connect({attacker.id(), 0}, {fabric.id(), 2});

    auto& sched = net.scheduler();
    const bool race = c.vector == attack::PoisonVector::kReplyRace;

    // Prime the victim's cache unless the case starts from an empty entry.
    if (c.initial != InitialEntry::kAbsent) {
        sched.schedule_at(SimTime::zero() + Duration::seconds(1), [&victim, owner_ip] {
            victim.resolve(owner_ip, [](auto) {});
        });
    }

    // Aged entries: wait past any refresh guard (Solaris-style) but within
    // the entry TTL before attacking.
    const Duration attack_at = c.initial == InitialEntry::kAged
                                   ? Duration::seconds(40)
                                   : Duration::seconds(3);

    sched.schedule_at(SimTime::zero() + attack_at, [&, owner_ip, victim_ip, victim_mac] {
        if (race) {
            // Attack tools answer from userspace ring buffers in a few
            // microseconds — faster than a victim stack's ~15us turnaround.
            attacker.enable_reply_race(owner_ip, attacker.mac(), Duration::micros(5));
            // The race is triggered by the victim's own (re-)resolution.
            victim.arp_cache().evict(owner_ip);
            victim.resolve(owner_ip, [](auto) {});
            return;
        }
        attack::PoisonCampaign campaign;
        campaign.victim_ip = victim_ip;
        campaign.victim_mac = victim_mac;
        campaign.spoofed_ip = owner_ip;
        campaign.claimed_mac = attacker.mac();
        campaign.vector = c.vector;
        campaign.period = Duration::zero();  // single shot
        attacker.start_poison(campaign);
    });

    net.start_all();
    sched.run_until(SimTime::zero() + attack_at + Duration::seconds(2));

    TaxonomyOutcome out;
    if (const auto entry = victim.arp_cache().peek(owner_ip)) {
        out.poisoned = entry->mac == attacker.mac();
    }
    return out;
}

std::vector<TaxonomyCase> full_taxonomy_sweep() {
    std::vector<TaxonomyCase> cases;
    for (const auto& policy : arp::CachePolicy::all_profiles()) {
        for (auto vector : {attack::PoisonVector::kUnsolicitedReply,
                            attack::PoisonVector::kForgedRequest,
                            attack::PoisonVector::kGratuitousRequest,
                            attack::PoisonVector::kGratuitousReply,
                            attack::PoisonVector::kReplyRace}) {
            for (auto initial :
                 {InitialEntry::kAbsent, InitialEntry::kFresh, InitialEntry::kAged}) {
                cases.push_back(TaxonomyCase{policy, vector, initial, 1});
            }
        }
    }
    return cases;
}

}  // namespace arpsec::core

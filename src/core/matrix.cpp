#include "core/matrix.hpp"

namespace arpsec::core {

TextTable traits_matrix(const std::vector<detect::SchemeTraits>& traits) {
    TextTable table("T2a — Scheme comparison (qualitative attributes)");
    table.set_headers({"scheme", "vantage", "detects", "prevents", "proto chg", "infra",
                       "per-host", "crypto", "needs DHCP", "dyn IPs ok", "deploy cost",
                       "runtime cost"});
    for (const auto& t : traits) {
        table.add_row({t.name, t.vantage, fmt_bool(t.detects), fmt_bool(t.prevents_poisoning),
                       fmt_bool(t.requires_protocol_change), fmt_bool(t.requires_infrastructure),
                       fmt_bool(t.requires_per_host_deploy), fmt_bool(t.uses_cryptography),
                       fmt_bool(t.depends_on_dhcp), fmt_bool(t.handles_dynamic_ips),
                       detect::to_string(t.deployment_cost),
                       detect::to_string(t.runtime_cost)});
    }
    return table;
}

TextTable quantitative_matrix(const std::vector<ScenarioResult>& results,
                              const ScenarioResult* baseline,
                              const ScenarioResult* baseline_dhcp) {
    TextTable table("T2b — Scheme comparison (measured under MITM attack)");
    table.set_headers({"scheme", "attack ok", "intercepted", "delivered", "TP", "FP",
                       "det. latency", "resolve p50 (us)", "ARP bytes", "byte ovh",
                       "crypto ops"});
    for (const auto& r : results) {
        const ScenarioResult* base =
            r.config.addressing == Addressing::kDhcp ? baseline_dhcp : baseline;
        std::string overhead = "-";
        if (base != nullptr && base->total_bytes > 0) {
            const double ratio = static_cast<double>(r.total_bytes) /
                                     static_cast<double>(base->total_bytes) -
                                 1.0;
            overhead = fmt_percent(ratio);
        }
        table.add_row(
            {r.scheme_name, fmt_bool(r.attack_succeeded),
             fmt_percent(r.attack_window.interception_ratio()),
             fmt_percent(r.attack_window.delivery_ratio()),
             std::to_string(r.alerts.true_positives), std::to_string(r.alerts.false_positives),
             r.alerts.detection_latency ? r.alerts.detection_latency->to_string() : "n/a",
             fmt_double(r.resolution_latency_us.median(), 1), std::to_string(r.arp_bytes),
             overhead, std::to_string(r.crypto_ops.total())});
    }
    return table;
}

}  // namespace arpsec::core

#pragma once

#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "detect/scheme.hpp"

namespace arpsec::core {

/// Renders the qualitative half of the paper's comparison matrix (T2):
/// scheme × {detects, prevents, vantage, protocol change, infra, crypto,
/// DHCP dependence, dynamic-IP tolerance, costs}.
[[nodiscard]] TextTable traits_matrix(const std::vector<detect::SchemeTraits>& traits);

/// Renders the measured half of the matrix: per-scheme quantitative
/// results from harness runs (interception under attack, delivery,
/// TP/FP, detection latency, resolution latency, overheads). The byte
/// overhead column compares each run against the baseline with matching
/// addressing mode (`baseline_dhcp` may be null when no scheme ran under
/// DHCP; such rows then print "-").
[[nodiscard]] TextTable quantitative_matrix(const std::vector<ScenarioResult>& results,
                                            const ScenarioResult* baseline,
                                            const ScenarioResult* baseline_dhcp = nullptr);

}  // namespace arpsec::core

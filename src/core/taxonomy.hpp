#pragma once

#include <string>
#include <vector>

#include "arp/policy.hpp"
#include "attack/attacker.hpp"

namespace arpsec::core {

/// Cache state of the victim's entry for the target IP when the poisoning
/// packet arrives. Susceptibility differs sharply across states (notably
/// for policies with a refresh guard, and for create-vs-update rules).
enum class InitialEntry {
    kAbsent,  // victim never resolved the IP
    kFresh,   // resolved moments ago
    kAged,    // resolved long ago (past any refresh guard, within TTL)
};

[[nodiscard]] std::string to_string(InitialEntry e);

struct TaxonomyCase {
    arp::CachePolicy policy;
    attack::PoisonVector vector = attack::PoisonVector::kUnsolicitedReply;
    InitialEntry initial = InitialEntry::kFresh;
    std::uint64_t seed = 1;
};

struct TaxonomyOutcome {
    bool poisoned = false;  // victim cache maps the IP to the attacker MAC
};

/// Runs one micro-scenario: victim + legitimate owner + attacker on one
/// switch; a single application of the poison vector; returns whether the
/// victim's cache ended up poisoned. The full sweep of (policy × vector ×
/// state) reproduces the attack-taxonomy table T1.
[[nodiscard]] TaxonomyOutcome evaluate_poison_case(const TaxonomyCase& c);

/// All (policy, vector, state) combinations for the sweep.
[[nodiscard]] std::vector<TaxonomyCase> full_taxonomy_sweep();

}  // namespace arpsec::core

#include "core/report.hpp"

#include <algorithm>

namespace arpsec::core {

std::string TextTable::to_string() const {
    std::vector<std::size_t> widths;
    const auto account = [&widths](const std::vector<std::string>& row) {
        if (widths.size() < row.size()) widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i) {
            widths[i] = std::max(widths[i], row[i].size());
        }
    };
    account(headers_);
    for (const auto& row : rows_) account(row);

    const auto render_row = [&widths](const std::vector<std::string>& row) {
        std::string line = "|";
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string& cell = i < row.size() ? row[i] : std::string{};
            line += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
        }
        return line + "\n";
    };
    const auto rule = [&widths] {
        std::string line = "+";
        for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
        return line + "\n";
    };

    std::string out;
    if (!title_.empty()) out += title_ + "\n";
    out += rule();
    if (!headers_.empty()) {
        out += render_row(headers_);
        out += rule();
    }
    for (const auto& row : rows_) out += render_row(row);
    out += rule();
    return out;
}

namespace {

std::string csv_cell(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"') out += "\"\"";
        else out.push_back(c);
    }
    return out + "\"";
}

}  // namespace

std::string TextTable::to_csv() const {
    std::string out;
    const auto render = [&out](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i > 0) out.push_back(',');
            out += csv_cell(row[i]);
        }
        out.push_back('\n');
    };
    if (!headers_.empty()) render(headers_);
    for (const auto& row : rows_) render(row);
    return out;
}

bool TextTable::write_csv(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string csv = to_csv();
    const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
    std::fclose(f);
    return ok;
}

std::string fmt_percent(double ratio) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", ratio * 100.0);
    return buf;
}

std::string fmt_double(double v, int precision) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string fmt_bool(bool v) { return v ? "yes" : "no"; }

}  // namespace arpsec::core

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arp/policy.hpp"
#include "attack/attacker.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "crypto/cost_model.hpp"
#include "detect/alert.hpp"

namespace arpsec::core {

enum class Addressing {
    kStatic,  // administratively assigned addresses
    kDhcp,    // hosts lease addresses from the gateway's DHCP server
};

[[nodiscard]] std::string to_string(Addressing a);

/// What the adversary does during the attack window.
enum class AttackKind {
    kNone,           // benign run (baseline / false-positive measurement)
    kMitm,           // poison victim<->gateway both ways and relay
    kDosBlackhole,   // poison victim's gateway entry to a nonexistent MAC
    kHijackOffline,  // impersonate the victim's IP while it is powered off
    kReplyRace,      // answer the victim's requests faster than the owner
};

[[nodiscard]] std::string to_string(AttackKind k);

/// Benign-churn generators (the false-positive stressors of figure F5).
struct ChurnConfig {
    /// Hosts that leave (DHCP release) and are replaced by a new machine
    /// that receives the recycled IP — the classic arpwatch false alarm.
    std::size_t dhcp_recycles = 0;
    /// A host gets its NIC replaced: same IP, new MAC (static networks).
    bool nic_swap = false;
};

struct ScenarioConfig {
    std::string name = "scenario";
    std::uint64_t seed = 1;
    std::size_t host_count = 8;
    Addressing addressing = Addressing::kStatic;
    arp::CachePolicy host_policy = arp::CachePolicy::linux26();

    common::Duration duration = common::Duration::seconds(60);
    common::Duration attack_start = common::Duration::seconds(20);
    common::Duration attack_stop = common::Duration::seconds(50);

    AttackKind attack = AttackKind::kMitm;
    attack::PoisonVector vector = attack::PoisonVector::kUnsolicitedReply;
    common::Duration repoison_period = common::Duration::seconds(2);

    /// Per-host traffic period toward the gateway (plus a reverse flow
    /// gateway->victim so both MITM directions carry data).
    common::Duration traffic_period = common::Duration::millis(200);

    ChurnConfig churn;
    crypto::CostModel cost_model;

    /// IID frame-loss probability on every access link (robustness runs).
    double link_loss = 0.0;

    /// DHCP lease time (short leases exercise renewals within a run).
    std::uint32_t lease_seconds = 120;
};

/// Alert bookkeeping against ground truth.
struct AlertBreakdown {
    std::uint64_t true_positives = 0;
    std::uint64_t false_positives = 0;
    /// Time from attack start to the first true-positive alert.
    std::optional<common::Duration> detection_latency;
};

struct WindowStats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t intercepted = 0;

    [[nodiscard]] double delivery_ratio() const {
        return sent == 0 ? 1.0 : static_cast<double>(delivered) / static_cast<double>(sent);
    }
    [[nodiscard]] double interception_ratio() const {
        return sent == 0 ? 0.0 : static_cast<double>(intercepted) / static_cast<double>(sent);
    }
};

struct ScenarioResult {
    std::string scheme_name;
    ScenarioConfig config;

    // Ground-truth attack efficacy.
    WindowStats benign_window;
    WindowStats attack_window;
    /// The targeted victim's own flow during the attack window (a DoS on
    /// one station is invisible in fleet-wide ratios).
    WindowStats victim_flow_attack_window;
    bool victim_poisoned_at_end = false;
    bool attack_succeeded = false;

    // Detection.
    AlertBreakdown alerts;
    std::vector<detect::Alert> raw_alerts;

    // Overhead.
    std::uint64_t total_frames = 0;
    std::uint64_t total_bytes = 0;
    std::uint64_t arp_frames = 0;
    std::uint64_t arp_bytes = 0;
    common::Summary resolution_latency_us;  // pooled over all hosts
    crypto::OpCounters crypto_ops;
    std::uint64_t events_executed = 0;

    [[nodiscard]] std::string summary_line() const;
};

}  // namespace arpsec::core

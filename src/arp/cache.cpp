#include "arp/cache.hpp"

namespace arpsec::arp {

std::optional<wire::MacAddress> ArpCache::lookup(wire::Ipv4Address ip, common::SimTime now) {
    ++stats_.lookups;
    auto it = entries_.find(ip);
    if (it == entries_.end()) return std::nullopt;
    if (expired(it->second, now)) {
        entries_.erase(it);
        ++stats_.expirations;
        return std::nullopt;
    }
    ++stats_.hits;
    return it->second.mac;
}

std::optional<CacheEntry> ArpCache::peek(wire::Ipv4Address ip) const {
    auto it = entries_.find(ip);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
}

void ArpCache::set_static(wire::Ipv4Address ip, wire::MacAddress mac, common::SimTime now) {
    CacheEntry e;
    e.mac = mac;
    e.state = EntryState::kStatic;
    e.inserted_at = now;
    e.updated_at = now;
    e.last_source = UpdateSource::kStatic;
    entries_[ip] = e;
}

UpdateOutcome ArpCache::offer(wire::Ipv4Address ip, wire::MacAddress mac, UpdateSource source,
                              common::SimTime now) {
    ++stats_.offers;
    UpdateOutcome out;

    auto it = entries_.find(ip);
    if (it != entries_.end() && expired(it->second, now)) {
        entries_.erase(it);
        ++stats_.expirations;
        it = entries_.end();
    }

    if (it == entries_.end()) {
        if (!policy_.allows_create(source)) {
            ++stats_.rejected_by_policy;
            out.reject_reason = "policy forbids create";
            return out;
        }
        if (policy_.max_entries != 0 && entries_.size() >= policy_.max_entries) {
            // Full table: evict the least recently confirmed dynamic entry
            // (Linux-style garbage collection under pressure). If only
            // static entries remain, the create is refused.
            auto victim = entries_.end();
            for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
                if (cand->second.state != EntryState::kDynamic) continue;
                if (victim == entries_.end() ||
                    cand->second.updated_at < victim->second.updated_at) {
                    victim = cand;
                }
            }
            if (victim == entries_.end()) {
                ++stats_.rejected_by_policy;
                out.reject_reason = "table full of static entries";
                return out;
            }
            entries_.erase(victim);
            ++stats_.capacity_evictions;
        }
        CacheEntry e;
        e.mac = mac;
        e.state = EntryState::kDynamic;
        e.inserted_at = now;
        e.updated_at = now;
        e.last_source = source;
        entries_[ip] = e;
        ++stats_.accepted;
        out.accepted = true;
        out.created = true;
        return out;
    }

    CacheEntry& entry = it->second;
    if (entry.state == EntryState::kStatic) {
        ++stats_.rejected_by_policy;
        out.reject_reason = "static entry";
        return out;
    }
    if (!policy_.allows_update(source)) {
        ++stats_.rejected_by_policy;
        out.reject_reason = "policy forbids update";
        return out;
    }
    if (entry.mac != mac && policy_.min_update_age > common::Duration::zero() &&
        now - entry.updated_at < policy_.min_update_age) {
        ++stats_.rejected_by_policy;
        out.reject_reason = "entry too fresh to overwrite";
        return out;
    }

    if (entry.mac != mac) {
        out.overwrote = true;
        out.previous_mac = entry.mac;
        ++stats_.overwrites;
    }
    entry.mac = mac;
    entry.updated_at = now;
    entry.last_source = source;
    ++stats_.accepted;
    out.accepted = true;
    return out;
}

void ArpCache::force(wire::Ipv4Address ip, wire::MacAddress mac, common::SimTime now) {
    auto it = entries_.find(ip);
    if (it != entries_.end() && it->second.state == EntryState::kStatic) return;
    CacheEntry e;
    e.mac = mac;
    e.state = EntryState::kDynamic;
    e.inserted_at = it != entries_.end() ? it->second.inserted_at : now;
    e.updated_at = now;
    e.last_source = UpdateSource::kSolicitedReply;
    entries_[ip] = e;
}

void ArpCache::evict(wire::Ipv4Address ip) {
    auto it = entries_.find(ip);
    if (it != entries_.end() && it->second.state != EntryState::kStatic) entries_.erase(it);
}

std::size_t ArpCache::purge_expired(common::SimTime now) {
    std::size_t removed = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (expired(it->second, now)) {
            it = entries_.erase(it);
            ++removed;
            ++stats_.expirations;
        } else {
            ++it;
        }
    }
    return removed;
}

std::vector<std::pair<wire::Ipv4Address, CacheEntry>> ArpCache::snapshot() const {
    std::vector<std::pair<wire::Ipv4Address, CacheEntry>> out;
    out.reserve(entries_.size());
    for (const auto& [ip, e] : entries_) out.emplace_back(ip, e);
    return out;
}

void export_metrics(const CacheStats& stats, telemetry::MetricsRegistry& registry) {
    registry.counter("arp.cache.lookups").inc(stats.lookups);
    registry.counter("arp.cache.hits").inc(stats.hits);
    registry.counter("arp.cache.misses").inc(stats.lookups - stats.hits);
    registry.counter("arp.cache.offers").inc(stats.offers);
    registry.counter("arp.cache.accepted").inc(stats.accepted);
    registry.counter("arp.cache.rejected_by_policy").inc(stats.rejected_by_policy);
    registry.counter("arp.cache.overwrites").inc(stats.overwrites);
    registry.counter("arp.cache.expirations").inc(stats.expirations);
    registry.counter("arp.cache.capacity_evictions").inc(stats.capacity_evictions);
}

}  // namespace arpsec::arp

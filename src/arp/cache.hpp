#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "arp/policy.hpp"
#include "common/time.hpp"
#include "telemetry/metrics.hpp"
#include "wire/ipv4_address.hpp"
#include "wire/mac_address.hpp"

namespace arpsec::arp {

enum class EntryState {
    kStatic,     // administratively pinned; never overwritten or expired
    kDynamic,    // learned from traffic
};

struct CacheEntry {
    wire::MacAddress mac;
    EntryState state = EntryState::kDynamic;
    common::SimTime inserted_at;
    common::SimTime updated_at;
    UpdateSource last_source = UpdateSource::kStatic;
};

/// Outcome of offering an observed (IP, MAC) binding to the cache.
struct UpdateOutcome {
    bool accepted = false;          // the cache now holds (ip -> mac)
    bool created = false;           // a new entry was created
    bool overwrote = false;         // an existing different MAC was replaced
    wire::MacAddress previous_mac;  // valid when overwrote
    const char* reject_reason = nullptr;  // set when !accepted
};

struct CacheStats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t offers = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected_by_policy = 0;
    std::uint64_t overwrites = 0;
    std::uint64_t expirations = 0;
    std::uint64_t capacity_evictions = 0;  // LRU pressure from a full table

    /// Fleet-wide aggregation (the harness pools every host's cache).
    CacheStats& operator+=(const CacheStats& o) {
        lookups += o.lookups;
        hits += o.hits;
        offers += o.offers;
        accepted += o.accepted;
        rejected_by_policy += o.rejected_by_policy;
        overwrites += o.overwrites;
        expirations += o.expirations;
        capacity_evictions += o.capacity_evictions;
        return *this;
    }
};

/// Publishes a (possibly aggregated) CacheStats into `registry` under
/// `arp.cache.*`. `overwrites` is the poisoning signal itself: a benign
/// static-addressing run has zero, a successful poison has many.
void export_metrics(const CacheStats& stats, telemetry::MetricsRegistry& registry);

/// The ARP cache of one host, governed by a CachePolicy. Time flows in from
/// the caller (the simulated host), keeping the cache testable in isolation.
class ArpCache {
public:
    explicit ArpCache(CachePolicy policy) : policy_(std::move(policy)) {}

    [[nodiscard]] const CachePolicy& policy() const { return policy_; }
    void set_policy(CachePolicy p) { policy_ = std::move(p); }

    /// Looks up a usable binding; expired dynamic entries miss (and are
    /// removed lazily).
    std::optional<wire::MacAddress> lookup(wire::Ipv4Address ip, common::SimTime now);

    /// Non-mutating inspection (does not count as a lookup, returns even
    /// expired entries). For detectors and tests.
    [[nodiscard]] std::optional<CacheEntry> peek(wire::Ipv4Address ip) const;

    /// Pins a static entry (prevention scheme "static ARP entries").
    void set_static(wire::Ipv4Address ip, wire::MacAddress mac, common::SimTime now);

    /// Offers an observed binding; the policy decides. `solicited` handling
    /// is encoded in `source` by the ARP engine.
    UpdateOutcome offer(wire::Ipv4Address ip, wire::MacAddress mac, UpdateSource source,
                        common::SimTime now);

    /// Unconditionally installs a dynamic binding, bypassing policy. Used
    /// by schemes that have *verified* a binding out of band (Antidote
    /// probe result, S-ARP/TARP verification).
    void force(wire::Ipv4Address ip, wire::MacAddress mac, common::SimTime now);

    /// Removes a dynamic entry (e.g. scheme-initiated eviction).
    void evict(wire::Ipv4Address ip);

    /// Drops expired dynamic entries; returns how many were removed.
    std::size_t purge_expired(common::SimTime now);

    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    [[nodiscard]] const CacheStats& stats() const { return stats_; }

    /// Snapshot of all live entries (for diagnostics and detectors).
    [[nodiscard]] std::vector<std::pair<wire::Ipv4Address, CacheEntry>> snapshot() const;

private:
    [[nodiscard]] bool expired(const CacheEntry& e, common::SimTime now) const {
        return e.state == EntryState::kDynamic && now - e.updated_at > policy_.entry_ttl;
    }

    CachePolicy policy_;
    std::unordered_map<wire::Ipv4Address, CacheEntry> entries_;
    CacheStats stats_;
};

}  // namespace arpsec::arp

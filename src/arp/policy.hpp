#pragma once

#include <string>
#include <vector>

#include "common/time.hpp"

namespace arpsec::arp {

/// How an ARP-cache update was triggered. The ARP engine classifies each
/// received packet; the cache policy decides acceptance per class.
enum class UpdateSource {
    kSolicitedReply,     // reply matching one of our outstanding requests
    kUnsolicitedReply,   // reply we never asked for
    kRequest,            // learned from a request's sender fields
    kGratuitousRequest,  // announcement in request form (sender IP == target IP)
    kGratuitousReply,    // announcement in reply form
    kStatic,             // administratively configured
};

[[nodiscard]] std::string to_string(UpdateSource s);

/// ARP cache acceptance policy. The fields model the per-OS behavioural
/// differences the 2007-era literature documents for poisoning
/// susceptibility: which packet classes may *create* a new cache entry and
/// which may *update* (overwrite) an existing one.
struct CachePolicy {
    std::string name = "default";

    bool create_on_solicited_reply = true;
    bool update_on_solicited_reply = true;
    bool create_on_unsolicited_reply = false;
    bool update_on_unsolicited_reply = true;
    bool create_on_request = true;
    bool update_on_request = true;
    bool create_on_gratuitous = false;
    bool update_on_gratuitous = true;

    /// Solaris-style refresh guard: dynamic entries younger than this are
    /// not overwritten (an attacker must win the refresh race).
    common::Duration min_update_age = common::Duration::zero();

    /// Lifetime of a dynamic entry after its last confirmation.
    common::Duration entry_ttl = common::Duration::seconds(60);

    /// Neighbor-table bound (Linux gc_thresh3-style). When the cache is
    /// full, creating a new dynamic entry evicts the least recently
    /// confirmed dynamic entry — the behaviour cache-exhaustion DoS
    /// attacks lean on. 0 disables the bound.
    std::size_t max_entries = 1024;

    [[nodiscard]] bool allows_create(UpdateSource s) const;
    [[nodiscard]] bool allows_update(UpdateSource s) const;

    // ---- Profiles reproducing documented stack behaviour (ca. 2007) ----

    /// Linux 2.4/2.6: will not create entries from unsolicited replies, but
    /// refreshes existing entries from any well-formed ARP packet.
    static CachePolicy linux26();
    /// Windows 2000/XP: accepts unsolicited replies even for new entries.
    static CachePolicy windows_xp();
    /// FreeBSD 4/5: ignores unsolicited replies entirely; learns from
    /// requests and solicited replies.
    static CachePolicy freebsd5();
    /// Solaris 8/9: accepts unsolicited traffic but refuses to overwrite an
    /// entry until it has aged past a refresh threshold.
    static CachePolicy solaris9();
    /// A maximally strict dynamic policy (only solicited replies; never
    /// overwrite before expiry) — the upper bound a host can reach without
    /// protocol changes.
    static CachePolicy strict();

    /// All built-in profiles, for taxonomy sweeps.
    static std::vector<CachePolicy> all_profiles();
};

}  // namespace arpsec::arp

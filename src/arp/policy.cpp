#include "arp/policy.hpp"

namespace arpsec::arp {

std::string to_string(UpdateSource s) {
    switch (s) {
        case UpdateSource::kSolicitedReply: return "solicited-reply";
        case UpdateSource::kUnsolicitedReply: return "unsolicited-reply";
        case UpdateSource::kRequest: return "request";
        case UpdateSource::kGratuitousRequest: return "gratuitous-request";
        case UpdateSource::kGratuitousReply: return "gratuitous-reply";
        case UpdateSource::kStatic: return "static";
    }
    return "?";
}

bool CachePolicy::allows_create(UpdateSource s) const {
    switch (s) {
        case UpdateSource::kSolicitedReply: return create_on_solicited_reply;
        case UpdateSource::kUnsolicitedReply: return create_on_unsolicited_reply;
        case UpdateSource::kRequest: return create_on_request;
        case UpdateSource::kGratuitousRequest:
        case UpdateSource::kGratuitousReply: return create_on_gratuitous;
        case UpdateSource::kStatic: return true;
    }
    return false;
}

bool CachePolicy::allows_update(UpdateSource s) const {
    switch (s) {
        case UpdateSource::kSolicitedReply: return update_on_solicited_reply;
        case UpdateSource::kUnsolicitedReply: return update_on_unsolicited_reply;
        case UpdateSource::kRequest: return update_on_request;
        case UpdateSource::kGratuitousRequest:
        case UpdateSource::kGratuitousReply: return update_on_gratuitous;
        case UpdateSource::kStatic: return true;
    }
    return false;
}

CachePolicy CachePolicy::linux26() {
    CachePolicy p;
    p.name = "linux-2.6";
    p.create_on_unsolicited_reply = false;
    p.update_on_unsolicited_reply = true;
    p.create_on_request = true;
    p.update_on_request = true;
    p.create_on_gratuitous = false;
    p.update_on_gratuitous = true;
    return p;
}

CachePolicy CachePolicy::windows_xp() {
    CachePolicy p;
    p.name = "windows-xp";
    p.create_on_unsolicited_reply = true;
    p.update_on_unsolicited_reply = true;
    p.create_on_request = true;
    p.update_on_request = true;
    p.create_on_gratuitous = true;
    p.update_on_gratuitous = true;
    return p;
}

CachePolicy CachePolicy::freebsd5() {
    CachePolicy p;
    p.name = "freebsd-5";
    p.create_on_unsolicited_reply = false;
    p.update_on_unsolicited_reply = false;
    p.create_on_request = true;
    p.update_on_request = true;
    p.create_on_gratuitous = false;
    p.update_on_gratuitous = false;
    return p;
}

CachePolicy CachePolicy::solaris9() {
    CachePolicy p;
    p.name = "solaris-9";
    p.create_on_unsolicited_reply = true;
    p.update_on_unsolicited_reply = true;
    p.create_on_request = true;
    p.update_on_request = true;
    p.create_on_gratuitous = true;
    p.update_on_gratuitous = true;
    p.min_update_age = common::Duration::seconds(30);
    return p;
}

CachePolicy CachePolicy::strict() {
    CachePolicy p;
    p.name = "strict";
    p.create_on_solicited_reply = true;
    p.update_on_solicited_reply = true;
    p.create_on_unsolicited_reply = false;
    p.update_on_unsolicited_reply = false;
    p.create_on_request = false;
    p.update_on_request = false;
    p.create_on_gratuitous = false;
    p.update_on_gratuitous = false;
    p.min_update_age = common::Duration::seconds(60);
    return p;
}

std::vector<CachePolicy> CachePolicy::all_profiles() {
    return {linux26(), windows_xp(), freebsd5(), solaris9(), strict()};
}

}  // namespace arpsec::arp

#include "detect/switch_schemes.hpp"

namespace arpsec::detect {
namespace {

/// Maps switch events into scheme alerts.
AlertKind kind_for(l2::SwitchEventKind k) {
    switch (k) {
        case l2::SwitchEventKind::kPortSecurityViolation:
        case l2::SwitchEventKind::kPortShutdown: return AlertKind::kPortSecurity;
        case l2::SwitchEventKind::kDaiDrop: return AlertKind::kBindingViolation;
        case l2::SwitchEventKind::kDaiRateLimited: return AlertKind::kRateAnomaly;
        case l2::SwitchEventKind::kDhcpSnoopDrop: return AlertKind::kRogueDhcp;
        case l2::SwitchEventKind::kBindingAdded:
        case l2::SwitchEventKind::kCamFull: return AlertKind::kRateAnomaly;
    }
    return AlertKind::kRateAnomaly;
}

}  // namespace

SchemeTraits PortSecurityScheme::traits() const {
    SchemeTraits t;
    t.name = "port-security";
    t.vantage = "switch";
    t.detects = true;              // violations are logged
    t.prevents_poisoning = false;  // attacker's own MAC is a legal source
    t.prevents_flooding = true;
    t.requires_infrastructure = true;  // managed switch
    t.handles_dynamic_ips = true;
    t.deployment_cost = CostBand::kMedium;
    t.runtime_cost = CostBand::kNone;
    t.notes = "limits source MACs per port; orthogonal to ARP claim forgery";
    return t;
}

void PortSecurityScheme::configure_switch(l2::Switch& fabric) {
    l2::PortSecurityConfig cfg;
    cfg.enabled = true;
    cfg.max_macs_per_port = options_.max_macs_per_port;
    cfg.shutdown_on_violation = options_.shutdown_on_violation;
    fabric.set_port_security(cfg);
    fabric.set_event_listener([this](const l2::SwitchEvent& ev) {
        if (ev.kind == l2::SwitchEventKind::kBindingAdded ||
            ev.kind == l2::SwitchEventKind::kCamFull) {
            return;
        }
        Alert a;
        a.kind = kind_for(ev.kind);
        a.ip = ev.ip;
        a.claimed_mac = ev.mac;
        a.detail = l2::to_string(ev.kind) + " on port " + std::to_string(ev.port) + ": " +
                   ev.detail;
        alert(std::move(a));
    });
}

SchemeTraits DaiScheme::traits() const {
    SchemeTraits t;
    t.name = options_.use_dhcp_snooping ? "dai+dhcp-snooping" : "dai-static";
    t.vantage = "switch";
    t.detects = true;
    t.prevents_poisoning = true;
    t.prevents_flooding = false;  // orthogonal (pair with port security)
    t.requires_infrastructure = true;
    t.depends_on_dhcp = options_.use_dhcp_snooping;
    t.handles_dynamic_ips = options_.use_dhcp_snooping;
    t.deployment_cost = CostBand::kMedium;
    t.runtime_cost = CostBand::kLow;  // per-ARP table check in the switch
    t.notes = options_.use_dhcp_snooping
                  ? "validates ARP against snooped DHCP leases; drops rogue DHCP too"
                  : "validates ARP against static bindings (no DHCP required)";
    return t;
}

void DaiScheme::configure_switch(l2::Switch& fabric) {
    if (options_.use_dhcp_snooping) {
        fabric.enable_dhcp_snooping({});  // trusted ports are set by the harness
    } else {
        for (const HostRecord& rec : ctx_.directory) {
            // Port unknown at configure time in static mode: learn it from
            // the CAM as frames arrive is not faithful to IOS, so static
            // bindings pin MAC only (port check relaxed via port 0xFFFF).
            fabric.add_static_binding(rec.ip, rec.mac, l2::Switch::kAnyPort);
        }
    }
    l2::ArpInspectionConfig cfg;
    cfg.enabled = true;
    cfg.validate_src_mac = true;
    cfg.rate_limit_pps = options_.rate_limit_pps;
    cfg.err_disable_on_rate = options_.err_disable_on_rate;
    fabric.enable_arp_inspection(cfg);
    fabric.set_event_listener([this](const l2::SwitchEvent& ev) {
        if (ev.kind != l2::SwitchEventKind::kDaiDrop &&
            ev.kind != l2::SwitchEventKind::kDaiRateLimited &&
            ev.kind != l2::SwitchEventKind::kDhcpSnoopDrop) {
            return;
        }
        Alert a;
        a.kind = kind_for(ev.kind);
        a.ip = ev.ip;
        a.claimed_mac = ev.mac;
        a.detail = l2::to_string(ev.kind) + " on port " + std::to_string(ev.port) + ": " +
                   ev.detail;
        alert(std::move(a));
    });
}

}  // namespace arpsec::detect

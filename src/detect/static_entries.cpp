#include "detect/static_entries.hpp"

namespace arpsec::detect {

SchemeTraits StaticEntriesScheme::traits() const {
    SchemeTraits t;
    t.name = "static-entries";
    t.vantage = "host";
    t.detects = false;
    t.prevents_poisoning = true;
    t.requires_per_host_deploy = true;
    t.handles_dynamic_ips = false;
    t.deployment_cost = CostBand::kHigh;  // O(n^2) manual administration
    t.runtime_cost = CostBand::kNone;
    t.notes = "perfect prevention, unusable with DHCP; breaks on NIC replacement";
    return t;
}

void StaticEntriesScheme::protect_host(host::Host& host) {
    const auto now = host.network().now();
    for (const HostRecord& rec : ctx_.directory) {
        if (rec.mac == host.mac()) continue;
        host.arp_cache().set_static(rec.ip, rec.mac, now);
    }
}

}  // namespace arpsec::detect

#pragma once

#include "common/time.hpp"
#include "detect/scheme.hpp"

namespace arpsec::detect {

/// Host middleware approach (Tripunitara & Dutta): an interposition layer
/// between the NIC and the OS ARP stack that treats cache updates as a
/// discrete-event stream. Every *new or changed* binding is quarantined
/// while the middleware broadcasts its own request for the IP and collects
/// claims; a unanimous answer is admitted, conflicting answers are rejected
/// and alerted. Guards creations as well as overwrites (unlike
/// Anticap/Antidote), needs no protocol change or infrastructure, but
/// delays first contact with every new station by the verification window.
class MiddlewareScheme final : public Scheme {
public:
    struct Options {
        common::Duration verification_window = common::Duration::millis(300);
    };

    MiddlewareScheme() = default;
    explicit MiddlewareScheme(Options options) : options_(options) {}

    [[nodiscard]] SchemeTraits traits() const override;
    void protect_host(host::Host& host) override;

private:
    class Hook;
    Options options_;
};

}  // namespace arpsec::detect

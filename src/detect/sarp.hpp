#pragma once

#include <memory>
#include <unordered_map>

#include "crypto/schnorr.hpp"
#include "detect/scheme.hpp"
#include "host/host.hpp"

namespace arpsec::detect {

/// S-ARP (Bruschi et al.): every ARP message carries a digital signature
/// and timestamp; hosts verify signatures against per-host public keys
/// served by a trusted Authoritative Key Distributor (AKD) on the LAN.
/// Complete prevention, at the price of a protocol change on every host,
/// key-management infrastructure, and asymmetric-crypto latency on the ARP
/// fast path (cold resolutions additionally pay an AKD round trip).
class SArpScheme final : public Scheme {
public:
    struct Options {
        /// Accepted clock skew / message age before a packet is considered
        /// a replay.
        common::Duration timestamp_tolerance = common::Duration::seconds(30);
        common::Duration key_fetch_timeout = common::Duration::seconds(1);
        /// Drop unsigned ARP entirely (strict mode, the paper's default).
        bool strict = true;
    };

    static constexpr std::uint16_t kAkdPort = 3310;
    static constexpr std::uint16_t kClientPort = 3311;
    static constexpr std::uint8_t kAuthTag = 1;

    SArpScheme() = default;
    explicit SArpScheme(Options options) : options_(options) {}

    [[nodiscard]] SchemeTraits traits() const override;
    void deploy(const DeploymentContext& ctx) override;
    void protect_host(host::Host& host) override;

    /// The AKD's address (valid after deploy); exposed for tests.
    [[nodiscard]] wire::Ipv4Address akd_ip() const { return akd_ip_; }
    [[nodiscard]] wire::MacAddress akd_mac() const { return akd_mac_; }
    /// The AKD server node itself (valid after deploy). Exposed so
    /// availability experiments can take the key server down.
    [[nodiscard]] host::Host* akd_host() const { return akd_host_; }

    /// Key pair a station uses, derived from its MAC (stable across DHCP).
    static crypto::KeyPair station_key(wire::MacAddress mac);

private:
    class Hook;

    Options options_;
    wire::Ipv4Address akd_ip_;
    wire::MacAddress akd_mac_;
    std::unique_ptr<crypto::KeyPair> akd_key_;
    host::Host* akd_host_ = nullptr;
    /// The AKD's authoritative key registry (IP -> station public key).
    std::unordered_map<wire::Ipv4Address, crypto::PublicKey> registry_;
};

}  // namespace arpsec::detect

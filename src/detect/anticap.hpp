#pragma once

#include "detect/scheme.hpp"

namespace arpsec::detect {

/// Kernel-patch approach #1 (Anticap): refuse any ARP packet that would
/// *overwrite* a live cache entry with a different MAC. Cheap and local,
/// but (a) cannot stop the *creation* of fake entries for addresses not
/// yet cached, and (b) also rejects legitimate rebinding, freezing stale
/// bindings until TTL expiry.
class AnticapScheme final : public Scheme {
public:
    [[nodiscard]] SchemeTraits traits() const override;
    void protect_host(host::Host& host) override;
};

}  // namespace arpsec::detect

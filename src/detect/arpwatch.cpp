#include "detect/arpwatch.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

namespace arpsec::detect {

class ArpwatchScheme::Watcher final : public TrafficObserver {
public:
    Watcher(Options options, std::function<void(Alert)> raise)
        : options_(options), raise_(std::move(raise)) {}

    void on_observed(MonitorNode&, common::SimTime at, const wire::FrameView& view,
                     const wire::ArpPacket* arp) override {
        (void)view;
        if (arp == nullptr) return;
        if (arp->sender_ip.is_any() || arp->sender_mac.is_zero()) return;
        note(at, arp->sender_ip, arp->sender_mac);
    }

    void note(common::SimTime at, wire::Ipv4Address ip, wire::MacAddress mac) {
        auto it = db_.find(ip);
        if (it == db_.end()) {
            db_[ip] = Station{mac, {}, at, common::SimTime::zero()};
            return;  // "new station" is informational, not an alert
        }
        Station& st = it->second;
        if (st.mac == mac) {
            st.last_seen = at;
            return;
        }
        Alert a;
        a.ip = ip;
        a.claimed_mac = mac;
        a.previous_mac = st.mac;
        const bool flipflop =
            mac == st.previous_mac && at - st.last_change <= options_.flipflop_window;
        a.kind = flipflop ? AlertKind::kFlipFlop : AlertKind::kIpMacChange;
        a.detail = flipflop ? "station oscillating between two addresses"
                            : "station changed ethernet address";
        raise_(std::move(a));
        st.previous_mac = st.mac;
        st.mac = mac;
        st.last_change = at;
        st.last_seen = at;
    }

    [[nodiscard]] std::size_t stations() const { return db_.size(); }

    [[nodiscard]] telemetry::Json snapshot() const {
        // db_ is an unordered_map; emit rows sorted by IP so snapshots of
        // identical state are byte-identical (the snapshot artifact is
        // subject to the repo's determinism contract).
        std::vector<std::pair<wire::Ipv4Address, const Station*>> rows;
        rows.reserve(db_.size());
        for (const auto& [ip, st] : db_) rows.emplace_back(ip, &st);
        std::sort(rows.begin(), rows.end(),
                  [](const auto& a, const auto& b) { return a.first.value() < b.first.value(); });
        telemetry::Json stations = telemetry::Json::array();
        for (const auto& [ip, st] : rows) {
            telemetry::Json row = telemetry::Json::object();
            row["ip"] = ip.to_string();
            row["mac"] = st->mac.to_string();
            row["previous_mac"] = st->previous_mac.to_string();
            row["last_seen_ns"] = st->last_seen.nanos();
            row["last_change_ns"] = st->last_change.nanos();
            stations.push_back(std::move(row));
        }
        telemetry::Json j = telemetry::Json::object();
        j["stations"] = std::move(stations);
        return j;
    }

    void restore(const telemetry::Json& state) {
        db_.clear();
        const telemetry::Json* stations = state.find("stations");
        if (stations == nullptr || !stations->is_array()) return;
        for (const telemetry::Json& row : stations->as_array()) {
            if (!row.is_object()) continue;
            const telemetry::Json* ip = row.find("ip");
            const telemetry::Json* mac = row.find("mac");
            if (ip == nullptr || mac == nullptr || !ip->is_string() || !mac->is_string()) {
                continue;
            }
            const auto ip_v = wire::Ipv4Address::parse(ip->as_string());
            const auto mac_v = wire::MacAddress::parse(mac->as_string());
            if (!ip_v.ok() || !mac_v.ok()) continue;  // a bad row loses one station, not all
            Station st;
            st.mac = mac_v.value();
            if (const telemetry::Json* prev = row.find("previous_mac");
                prev != nullptr && prev->is_string()) {
                if (const auto prev_v = wire::MacAddress::parse(prev->as_string()); prev_v.ok()) {
                    st.previous_mac = prev_v.value();
                }
            }
            if (const telemetry::Json* seen = row.find("last_seen_ns");
                seen != nullptr && seen->is_number()) {
                st.last_seen = common::SimTime{seen->as_int()};
            }
            if (const telemetry::Json* change = row.find("last_change_ns");
                change != nullptr && change->is_number()) {
                st.last_change = common::SimTime{change->as_int()};
            }
            db_[ip_v.value()] = st;
        }
    }

private:
    struct Station {
        wire::MacAddress mac;
        wire::MacAddress previous_mac;
        common::SimTime last_seen;
        common::SimTime last_change;
    };

    Options options_;
    std::function<void(Alert)> raise_;
    std::unordered_map<wire::Ipv4Address, Station> db_;
};

SchemeTraits ArpwatchScheme::traits() const {
    SchemeTraits t;
    t.name = "arpwatch";
    t.vantage = "monitor";
    t.detects = true;
    t.prevents_poisoning = false;
    t.requires_infrastructure = true;  // a monitoring station on a SPAN port
    t.handles_dynamic_ips = false;     // DHCP reassignment == "changed address"
    t.deployment_cost = CostBand::kLow;
    t.runtime_cost = CostBand::kNone;
    t.notes = "passive IP/MAC database; alerts by email; false alarms under DHCP churn";
    return t;
}

void ArpwatchScheme::attach_monitor(MonitorNode& monitor) {
    watcher_ = std::make_shared<Watcher>(options_, [this](Alert a) { alert(std::move(a)); });
    monitor.add_observer(watcher_);
}

telemetry::Json ArpwatchScheme::snapshot_state() const {
    return watcher_ ? watcher_->snapshot() : telemetry::Json::object();
}

void ArpwatchScheme::restore_state(const telemetry::Json& state) {
    if (watcher_) watcher_->restore(state);
}

std::size_t ArpwatchScheme::stations() const { return watcher_ ? watcher_->stations() : 0; }

}  // namespace arpsec::detect

#include "detect/arpwatch.hpp"

#include <unordered_map>

namespace arpsec::detect {

class ArpwatchScheme::Watcher final : public TrafficObserver {
public:
    Watcher(Options options, std::function<void(Alert)> raise)
        : options_(options), raise_(std::move(raise)) {}

    void on_observed(MonitorNode&, common::SimTime at, const wire::FrameView& view,
                     const wire::ArpPacket* arp) override {
        (void)view;
        if (arp == nullptr) return;
        if (arp->sender_ip.is_any() || arp->sender_mac.is_zero()) return;
        note(at, arp->sender_ip, arp->sender_mac);
    }

    void note(common::SimTime at, wire::Ipv4Address ip, wire::MacAddress mac) {
        auto it = db_.find(ip);
        if (it == db_.end()) {
            db_[ip] = Station{mac, {}, at, common::SimTime::zero()};
            return;  // "new station" is informational, not an alert
        }
        Station& st = it->second;
        if (st.mac == mac) {
            st.last_seen = at;
            return;
        }
        Alert a;
        a.ip = ip;
        a.claimed_mac = mac;
        a.previous_mac = st.mac;
        const bool flipflop =
            mac == st.previous_mac && at - st.last_change <= options_.flipflop_window;
        a.kind = flipflop ? AlertKind::kFlipFlop : AlertKind::kIpMacChange;
        a.detail = flipflop ? "station oscillating between two addresses"
                            : "station changed ethernet address";
        raise_(std::move(a));
        st.previous_mac = st.mac;
        st.mac = mac;
        st.last_change = at;
        st.last_seen = at;
    }

    [[nodiscard]] std::size_t stations() const { return db_.size(); }

private:
    struct Station {
        wire::MacAddress mac;
        wire::MacAddress previous_mac;
        common::SimTime last_seen;
        common::SimTime last_change;
    };

    Options options_;
    std::function<void(Alert)> raise_;
    std::unordered_map<wire::Ipv4Address, Station> db_;
};

SchemeTraits ArpwatchScheme::traits() const {
    SchemeTraits t;
    t.name = "arpwatch";
    t.vantage = "monitor";
    t.detects = true;
    t.prevents_poisoning = false;
    t.requires_infrastructure = true;  // a monitoring station on a SPAN port
    t.handles_dynamic_ips = false;     // DHCP reassignment == "changed address"
    t.deployment_cost = CostBand::kLow;
    t.runtime_cost = CostBand::kNone;
    t.notes = "passive IP/MAC database; alerts by email; false alarms under DHCP churn";
    return t;
}

void ArpwatchScheme::attach_monitor(MonitorNode& monitor) {
    watcher_ = std::make_shared<Watcher>(options_, [this](Alert a) { alert(std::move(a)); });
    monitor.add_observer(watcher_);
}

std::size_t ArpwatchScheme::stations() const { return watcher_ ? watcher_->stations() : 0; }

}  // namespace arpsec::detect

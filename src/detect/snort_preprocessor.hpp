#pragma once

#include "detect/scheme.hpp"

namespace arpsec::detect {

/// Signature IDS approach: a reimplementation of the Snort arpspoof
/// preprocessor's rules. Checks every observed ARP packet against (a) a
/// statically configured IP->MAC table, (b) Ethernet/ARP header
/// consistency, and (c) the unicast-request tool signature. Detects fast
/// with no host changes, but the static table goes stale under DHCP, and
/// there is no prevention.
class SnortPreprocessorScheme final : public Scheme {
public:
    struct Options {
        bool check_table = true;
        bool check_header_consistency = true;
        bool check_unicast_requests = true;
    };

    SnortPreprocessorScheme() = default;
    explicit SnortPreprocessorScheme(Options options) : options_(options) {}

    [[nodiscard]] SchemeTraits traits() const override;
    void attach_monitor(MonitorNode& monitor) override;

private:
    class Preprocessor;
    Options options_;
};

}  // namespace arpsec::detect

#pragma once

#include "detect/scheme.hpp"

namespace arpsec::detect {

/// Cisco-style port security: at most N source MACs per access port,
/// err-disable on violation. Stops CAM flooding and MAC cloning, but an
/// ARP poisoner using its own NIC address sails through — the paper's
/// point that L2 *source* control does not authenticate ARP *claims*.
class PortSecurityScheme final : public Scheme {
public:
    struct Options {
        std::size_t max_macs_per_port = 1;
        bool shutdown_on_violation = true;
    };

    PortSecurityScheme() = default;
    explicit PortSecurityScheme(Options options) : options_(options) {}

    [[nodiscard]] SchemeTraits traits() const override;
    void configure_switch(l2::Switch& fabric) override;

private:
    Options options_;
};

/// DHCP snooping + Dynamic ARP Inspection: the switch validates every ARP
/// packet on untrusted ports against bindings snooped from DHCP (or
/// statically configured), drops violations and rate-limits ARP. Prevents
/// poisoning without touching hosts, but requires managed switches
/// everywhere and (in dynamic mode) DHCP-managed addressing.
class DaiScheme final : public Scheme {
public:
    struct Options {
        /// Use snooped DHCP bindings. When false, static bindings from the
        /// deployment directory are installed instead (the no-DHCP ablation).
        bool use_dhcp_snooping = true;
        std::uint32_t rate_limit_pps = 15;
        bool err_disable_on_rate = false;  // drop-only default: keep hosts up
    };

    DaiScheme() = default;
    explicit DaiScheme(Options options) : options_(options) {}

    [[nodiscard]] SchemeTraits traits() const override;
    void configure_switch(l2::Switch& fabric) override;

private:
    Options options_;
};

}  // namespace arpsec::detect

#include "detect/sarp.hpp"

#include <unordered_map>
#include <vector>

namespace arpsec::detect {

using common::Duration;
using crypto::KeyPair;
using crypto::PublicKey;
using crypto::Signature;
using wire::ArpPacket;
using wire::Bytes;
using wire::ByteReader;
using wire::ByteWriter;
using wire::Ipv4Address;
using wire::MacAddress;

namespace {

Bytes signed_region(const ArpPacket& pkt, std::uint64_t ts) {
    Bytes msg;
    ByteWriter w{msg};
    w.bytes(pkt.classic_bytes());
    w.u64(ts);
    return msg;
}

Bytes akd_record_region(Ipv4Address ip, std::uint64_t y, std::uint64_t expiry) {
    Bytes msg;
    ByteWriter w{msg};
    w.ipv4(ip);
    w.u64(y);
    w.u64(expiry);
    return msg;
}

}  // namespace

KeyPair SArpScheme::station_key(MacAddress mac) {
    return KeyPair::derive(0x5A52'0000'0000'0000ULL ^ mac.to_u64());
}

// ---------------------------------------------------------------------------
// Per-host hook
// ---------------------------------------------------------------------------

class SArpScheme::Hook final : public host::ArpHook,
                               public std::enable_shared_from_this<Hook> {
public:
    Hook(SArpScheme& scheme, host::Host& host)
        : scheme_(scheme), host_(host), own_key_(station_key(host.mac())) {
        // The AKD's identity is securely distributed at enrollment: pin its
        // binding so the key-fetch channel cannot itself be poisoned, and
        // preinstall its station key (fetching the AKD's key *from* the
        // AKD would deadlock the bootstrap).
        host_.arp_cache().set_static(scheme_.akd_ip_, scheme_.akd_mac_, host_.network().now());
        key_cache_[scheme_.akd_ip_] = station_key(scheme_.akd_mac_).public_key();
        host_.bind_udp(kClientPort, [this](host::Host&, const host::UdpRxInfo&,
                                           const Bytes& data) { on_akd_response(data); });
    }

    [[nodiscard]] const char* hook_name() const override { return "s-arp"; }

    Duration on_arp_transmit(host::Host&, ArpPacket& pkt) override {
        const auto ts = static_cast<std::uint64_t>(host_.network().now().nanos());
        const Signature sig = own_key_.sign(signed_region(pkt, ts));
        if (scheme_.ctx_.ops != nullptr) ++scheme_.ctx_.ops->signs;
        Bytes auth;
        ByteWriter w{auth};
        w.u8(kAuthTag);
        w.u64(ts);
        w.bytes(sig.serialize());
        pkt.auth = std::move(auth);
        return scheme_.ctx_.cost.sign;
    }

    Verdict on_arp_receive(host::Host& host, const ArpPacket& pkt,
                           const host::ArpRxInfo& info) override {
        if (pkt.auth.empty() || pkt.auth[0] != kAuthTag) {
            if (!scheme_.options_.strict) return Verdict::kAccept;
            Alert a;
            a.kind = AlertKind::kUnsignedArp;
            a.ip = pkt.sender_ip;
            a.claimed_mac = pkt.sender_mac;
            a.detail = "unsigned ARP dropped on " + host.name();
            scheme_.alert(std::move(a));
            return Verdict::kDrop;
        }

        ByteReader r{pkt.auth};
        r.u8();  // tag
        const std::uint64_t ts = r.u64();
        const Signature sig = Signature::deserialize(r.bytes(Signature::kWireSize));
        if (!r.ok()) return Verdict::kDrop;

        const auto now = host.network().now();
        const auto age = now.nanos() >= static_cast<std::int64_t>(ts)
                             ? Duration{now.nanos() - static_cast<std::int64_t>(ts)}
                             : Duration{static_cast<std::int64_t>(ts) - now.nanos()};
        if (age > scheme_.options_.timestamp_tolerance) {
            Alert a;
            a.kind = AlertKind::kBindingViolation;
            a.ip = pkt.sender_ip;
            a.claimed_mac = pkt.sender_mac;
            a.detail = "stale S-ARP timestamp (replay?)";
            scheme_.alert(std::move(a));
            return Verdict::kDrop;
        }

        // The AKD itself resolves keys from its local registry (there is
        // no network round trip from the key server to itself, and the
        // registry is always current).
        if (&host_ == scheme_.akd_host_) {
            auto reg = scheme_.registry_.find(pkt.sender_ip);
            if (reg == scheme_.registry_.end()) return Verdict::kDrop;  // unenrolled
            schedule_verification(Held{pkt, info, ts, sig, /*retried=*/true}, reg->second);
            return Verdict::kDefer;
        }

        if (auto key = key_cache_.find(pkt.sender_ip); key != key_cache_.end()) {
            schedule_verification(Held{pkt, info, ts, sig, /*retried=*/false}, key->second);
            return Verdict::kDefer;
        }

        // Cold path: fetch the sender's public key from the AKD first.
        enqueue_fetch(Held{pkt, info, ts, sig, /*retried=*/true});
        return Verdict::kDefer;
    }

private:
    struct Held {
        ArpPacket pkt;
        host::ArpRxInfo info;
        std::uint64_t ts;
        Signature sig;
        /// True once the key has been (re)fetched for this packet: a second
        /// verification failure is final.
        bool retried = false;
    };

    void schedule_verification(Held held, const PublicKey& key) {
        auto self = shared_from_this();
        host_.network().scheduler().schedule_after(
            scheme_.ctx_.cost.verify,
            [self, held = std::move(held), key] { self->verify_now(held, key); });
    }

    void verify_now(const Held& held, const PublicKey& key) {
        if (scheme_.ctx_.ops != nullptr) ++scheme_.ctx_.ops->verifies;
        if (!key.verify(signed_region(held.pkt, held.ts), held.sig)) {
            // A failure against a cached key may just mean the station
            // re-enrolled (NIC replacement, DHCP rebind): refetch once
            // before judging — key records at the AKD are authoritative.
            if (!held.retried) {
                key_cache_.erase(held.pkt.sender_ip);
                Held retry = held;
                retry.retried = true;
                enqueue_fetch(std::move(retry));
                return;
            }
            Alert a;
            a.kind = AlertKind::kBindingViolation;
            a.ip = held.pkt.sender_ip;
            a.claimed_mac = held.pkt.sender_mac;
            a.detail = "S-ARP signature verification failed on " + host_.name();
            scheme_.alert(std::move(a));
            return;  // drop
        }
        // Authenticity established; the regular cache policy now decides
        // (S-ARP replaces ARP's trust model, not its caching semantics).
        host_.resume_arp_processing(held.pkt, held.info, this);
    }

    void enqueue_fetch(Held held) {
        auto& waiting = pending_fetches_[held.pkt.sender_ip];
        waiting.push_back(std::move(held));
        if (waiting.size() == 1) send_key_request(waiting.back().pkt.sender_ip);
    }

    void send_key_request(Ipv4Address ip) {
        Bytes req;
        ByteWriter w{req};
        w.u8(1);
        w.ipv4(ip);
        host_.send_udp(scheme_.akd_ip_, kClientPort, kAkdPort, std::move(req));
        // Fetch timeout: abandon held packets.
        auto self = shared_from_this();
        host_.network().scheduler().schedule_after(scheme_.options_.key_fetch_timeout,
                                                   [self, ip] {
                                                       auto it = self->pending_fetches_.find(ip);
                                                       if (it != self->pending_fetches_.end()) {
                                                           self->pending_fetches_.erase(it);
                                                       }
                                                   });
    }

    void on_akd_response(const Bytes& data) {
        ByteReader r{data};
        if (r.u8() != 2) return;
        const Ipv4Address ip = r.ipv4();
        const std::uint64_t y = r.u64();
        const std::uint64_t expiry = r.u64();
        const Signature sig = Signature::deserialize(r.bytes(Signature::kWireSize));
        if (!r.ok()) return;
        if (scheme_.ctx_.ops != nullptr) ++scheme_.ctx_.ops->verifies;
        if (!scheme_.akd_key_->public_key().verify(akd_record_region(ip, y, expiry), sig)) {
            return;  // forged key record
        }
        const PublicKey key{y};
        key_cache_[ip] = key;
        auto it = pending_fetches_.find(ip);
        if (it == pending_fetches_.end()) return;
        auto held = std::move(it->second);
        pending_fetches_.erase(it);
        for (Held& h : held) schedule_verification(std::move(h), key);
    }

    SArpScheme& scheme_;
    host::Host& host_;
    KeyPair own_key_;
    std::unordered_map<Ipv4Address, PublicKey> key_cache_;
    std::unordered_map<Ipv4Address, std::vector<Held>> pending_fetches_;
};

// ---------------------------------------------------------------------------
// Scheme
// ---------------------------------------------------------------------------

SchemeTraits SArpScheme::traits() const {
    SchemeTraits t;
    t.name = "s-arp";
    t.vantage = "host+server";
    t.detects = true;
    t.prevents_poisoning = true;
    t.requires_protocol_change = true;
    t.requires_infrastructure = true;  // the AKD
    t.requires_per_host_deploy = true;
    t.uses_cryptography = true;
    t.handles_dynamic_ips = true;  // keys bind to stations, served per IP by AKD
    t.deployment_cost = CostBand::kHigh;
    t.runtime_cost = CostBand::kHigh;  // sign+verify per ARP, AKD RTT when cold
    t.notes = "signed ARP with AKD key server; incompatible with unmodified hosts";
    return t;
}

void SArpScheme::deploy(const DeploymentContext& ctx) {
    Scheme::deploy(ctx);
    akd_key_ = std::make_unique<KeyPair>(KeyPair::derive(0xA4D0));

    akd_ip_ = ctx_.alloc_infra_ip();
    akd_mac_ = MacAddress::local(0xA4D0);

    host::HostConfig cfg;
    cfg.name = "akd";
    cfg.mac = akd_mac_;
    cfg.static_ip = akd_ip_;
    akd_host_ = &ctx_.net->emplace_node<host::Host>(cfg);
    ctx_.attach_infra(akd_host_->id());

    // Key registry: every directory station's public key, indexed by IP.
    for (const HostRecord& rec : ctx_.directory) {
        registry_[rec.ip] = station_key(rec.mac).public_key();
    }
    registry_[akd_ip_] = station_key(akd_mac_).public_key();

    host::Host* akd = akd_host_;
    SArpScheme* self = this;
    akd_host_->bind_udp(kAkdPort, [self, akd](host::Host&, const host::UdpRxInfo& info,
                                              const Bytes& data) {
        ByteReader r{data};
        if (r.u8() != 1) return;
        const Ipv4Address wanted = r.ipv4();
        if (!r.ok()) return;
        auto it = self->registry_.find(wanted);
        if (it == self->registry_.end()) return;  // unknown station: silence
        const std::uint64_t expiry =
            static_cast<std::uint64_t>((akd->network().now() + Duration::seconds(3600)).nanos());
        const std::uint64_t y = it->second.y();
        const Signature sig = self->akd_key_->sign(akd_record_region(wanted, y, expiry));
        if (self->ctx_.ops != nullptr) ++self->ctx_.ops->signs;
        Bytes resp;
        ByteWriter w{resp};
        w.u8(2);
        w.ipv4(wanted);
        w.u64(y);
        w.u64(expiry);
        w.bytes(sig.serialize());
        // Charge the AKD's signing latency before the response leaves.
        const Ipv4Address reply_to = info.src_ip;
        akd->after(self->ctx_.cost.sign, [akd, reply_to, resp = std::move(resp)] {
            akd->send_udp(reply_to, kAkdPort, kClientPort, resp);
        });
    });

    // The AKD speaks S-ARP too.
    protect_host(*akd_host_);
}

void SArpScheme::protect_host(host::Host& host) {
    host.add_arp_hook(std::make_shared<Hook>(*this, host));
    // Enrollment: whenever the station (re)acquires an address, its public
    // key is registered at the AKD under that IP — the S-ARP deployment
    // step that follows any NIC replacement or DHCP rebind. (The enrollment
    // channel itself is assumed authenticated, as in the original design.)
    host::Host* h = &host;
    host.add_ip_listener([this, h](wire::Ipv4Address ip) {
        registry_[ip] = station_key(h->mac()).public_key();
    });
}

}  // namespace arpsec::detect

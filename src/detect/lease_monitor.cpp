#include "detect/lease_monitor.hpp"

#include <map>

#include "wire/dhcp_message.hpp"
#include "wire/ipv4_packet.hpp"
#include "wire/udp_datagram.hpp"

namespace arpsec::detect {

using common::Duration;
using common::SimTime;
using wire::Ipv4Address;
using wire::MacAddress;

class LeaseMonitorScheme::Observer final : public TrafficObserver {
public:
    Observer(LeaseMonitorScheme::Options options, std::function<void(Alert)> raise)
        : options_(options), raise_(std::move(raise)) {}

    void on_observed(MonitorNode&, SimTime at, const wire::FrameView& view,
                     const wire::ArpPacket* arp) override {
        if (arp != nullptr) {
            check_arp(at, *arp);
            return;
        }
        // Memoized in the shared buffer: at most one IPv4 parse per frame
        // process-wide, no matter how many schemes snoop the traffic.
        const wire::Ipv4Packet* ip = view.ipv4();
        if (ip == nullptr) return;
        if (ip->protocol == wire::IpProto::kUdp && is_dhcp_port(ip->payload)) {
            if (auto udp = wire::UdpDatagram::parse(ip->payload); udp.ok()) {
                if (auto dhcp = wire::DhcpMessage::parse(udp->payload); dhcp.ok()) {
                    snoop_dhcp(at, dhcp.value());
                    return;
                }
            }
        }
        if (options_.check_ip_traffic && !ip->src.is_any()) {
            check_source(at, ip->src, view.src());
        }
    }

    [[nodiscard]] std::size_t lease_count() const { return leases_.size(); }

private:
    /// Cheap dst-port peek before the allocating UDP decode: only DHCP
    /// traffic is worth a full parse, and on a busy segment almost no
    /// datagram is DHCP. Non-DHCP (and unparsable) UDP falls through to
    /// the source check either way, so this only skips wasted work.
    [[nodiscard]] static bool is_dhcp_port(const wire::Bytes& udp_bytes) {
        if (udp_bytes.size() < wire::UdpDatagram::kHeaderSize) return false;
        const auto dst_port =
            static_cast<std::uint16_t>((udp_bytes[2] << 8) | udp_bytes[3]);
        return dst_port == wire::DhcpMessage::kClientPort ||
               dst_port == wire::DhcpMessage::kServerPort;
    }

    struct Lease {
        MacAddress mac;
        SimTime expires;
    };

    void snoop_dhcp(SimTime at, const wire::DhcpMessage& m) {
        if (!m.is_reply()) {
            if (m.message_type == wire::DhcpMessageType::kRelease && !m.ciaddr.is_any()) {
                leases_.erase(m.ciaddr);
            }
            return;
        }
        if (m.message_type != wire::DhcpMessageType::kAck || m.yiaddr.is_any()) return;
        const auto lease_s = m.lease_seconds.value_or(3600);
        leases_[m.yiaddr] =
            Lease{m.chaddr, at + Duration::seconds(static_cast<std::int64_t>(lease_s))};
    }

    void check_arp(SimTime at, const wire::ArpPacket& arp) {
        if (arp.sender_ip.is_any() || arp.sender_mac.is_zero()) return;
        check_source(at, arp.sender_ip, arp.sender_mac);
    }

    void check_source(SimTime at, Ipv4Address ip, MacAddress mac) {
        auto it = leases_.find(ip);
        if (it == leases_.end()) return;  // not lease-managed: out of scope
        if (it->second.expires < at) {
            leases_.erase(it);
            return;
        }
        if (it->second.mac == mac) return;
        const std::uint64_t key = ip.value() ^ (mac.to_u64() << 8);
        if (auto la = last_alert_.find(key);
            la != last_alert_.end() && at - la->second < options_.realert_backoff) {
            return;
        }
        last_alert_[key] = at;
        Alert a;
        a.kind = AlertKind::kBindingViolation;
        a.ip = ip;
        a.claimed_mac = mac;
        a.previous_mac = it->second.mac;
        a.detail = "claim contradicts snooped DHCP lease";
        raise_(std::move(a));
    }

    LeaseMonitorScheme::Options options_;
    std::function<void(Alert)> raise_;
    std::unordered_map<Ipv4Address, Lease> leases_;
    std::map<std::uint64_t, SimTime> last_alert_;
};

SchemeTraits LeaseMonitorScheme::traits() const {
    SchemeTraits t;
    t.name = "lease-monitor";
    t.vantage = "monitor";
    t.detects = true;
    t.prevents_poisoning = false;  // observes the mirror: no enforcement
    t.requires_infrastructure = true;  // monitoring station on a SPAN port
    t.depends_on_dhcp = true;
    t.handles_dynamic_ips = true;  // the lease table *is* the churn
    t.deployment_cost = CostBand::kLow;
    t.runtime_cost = CostBand::kNone;
    t.notes = "software DAI: lease-validated detection without managed switches; "
              "blind to statically addressed stations";
    return t;
}

void LeaseMonitorScheme::attach_monitor(MonitorNode& monitor) {
    observer_ = std::make_shared<Observer>(options_, [this](Alert a) { alert(std::move(a)); });
    monitor.add_observer(observer_);
}

std::size_t LeaseMonitorScheme::lease_count() const {
    return observer_ ? observer_->lease_count() : 0;
}

}  // namespace arpsec::detect

#pragma once

#include <unordered_map>

#include "common/time.hpp"
#include "detect/scheme.hpp"

namespace arpsec::detect {

/// Software lease monitor ("DAI without the managed switch"): a passive
/// station on the mirror port snoops DHCP ACKs into a lease table and
/// flags every observed ARP claim that contradicts a live lease. Detection
/// quality approaches DAI (leases are authoritative and follow churn), but
/// with no enforcement — forged packets still reach their victims — and
/// statically addressed stations are invisible to it.
class LeaseMonitorScheme final : public Scheme {
public:
    struct Options {
        /// Also alert when a *leased* IP's traffic appears with a source
        /// MAC other than the lease holder's (catches MAC cloning too).
        bool check_ip_traffic = false;
        common::Duration realert_backoff = common::Duration::seconds(10);
    };

    LeaseMonitorScheme() = default;
    explicit LeaseMonitorScheme(Options options) : options_(options) {}

    [[nodiscard]] SchemeTraits traits() const override;
    void attach_monitor(MonitorNode& monitor) override;

    /// Live leases currently known (for tests/examples).
    [[nodiscard]] std::size_t lease_count() const;

private:
    class Observer;
    Options options_;
    std::shared_ptr<Observer> observer_;
};

}  // namespace arpsec::detect

#include "detect/active_probe.hpp"

#include <memory>
#include <unordered_map>

namespace arpsec::detect {

class ActiveProbeScheme::Prober final : public TrafficObserver,
                                        public std::enable_shared_from_this<Prober> {
public:
    Prober(ActiveProbeScheme::Options options, std::function<void(Alert)> raise)
        : options_(options), raise_(std::move(raise)) {}

    void on_observed(MonitorNode& monitor, common::SimTime at, const wire::FrameView& view,
                     const wire::ArpPacket* arp) override {
        (void)view;
        if (arp == nullptr || arp->sender_ip.is_any() || arp->sender_mac.is_zero()) return;
        const wire::Ipv4Address ip = arp->sender_ip;
        const wire::MacAddress mac = arp->sender_mac;

        // Evidence for an in-flight verification?
        if (auto it = probes_.find(ip); it != probes_.end()) {
            Probe& p = it->second;
            if (mac == p.old_mac) {
                // Old station still alive while a new MAC claims the IP:
                // attack confirmed.
                monitor.network().scheduler().cancel(p.timeout_event);
                Alert a;
                a.kind = AlertKind::kSpoofSuspected;
                a.ip = ip;
                a.claimed_mac = p.new_mac;
                a.previous_mac = p.old_mac;
                a.detail = "both stations answered for one IP";
                raise_(std::move(a));
                last_alert_[ip] = at;
                probes_.erase(it);
            }
            return;
        }

        auto it = db_.find(ip);
        if (it == db_.end()) {
            db_[ip] = mac;
            return;
        }
        if (it->second == mac) return;

        // Conflicting claim: under backoff, skip re-verification.
        if (auto la = last_alert_.find(ip);
            la != last_alert_.end() && at - la->second < options_.realert_backoff) {
            return;
        }

        // Start verification: unicast probe to the previously known MAC.
        Probe p;
        p.old_mac = it->second;
        p.new_mac = mac;
        auto self = shared_from_this();
        MonitorNode* mon = &monitor;
        p.timeout_event = monitor.network().scheduler().schedule_after(
            options_.probe_timeout, [self, mon, ip] { self->probe_timeout(*mon, ip); });
        probes_[ip] = p;

        wire::EthernetFrame probe;
        probe.dst = p.old_mac;
        probe.ether_type = wire::EtherType::kArp;
        // Sender IP zero: a neutral probe that cannot poison any cache.
        probe.payload =
            wire::ArpPacket::request(monitor.mac(), wire::Ipv4Address::any(), ip).serialize();
        monitor.transmit(std::move(probe));
        ++probes_sent_;
    }

    void probe_timeout(MonitorNode&, wire::Ipv4Address ip) {
        auto it = probes_.find(ip);
        if (it == probes_.end()) return;
        // Old station silent: legitimate rebind; update quietly.
        db_[ip] = it->second.new_mac;
        probes_.erase(it);
    }

    [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_; }

private:
    struct Probe {
        wire::MacAddress old_mac;
        wire::MacAddress new_mac;
        sim::EventId timeout_event = 0;
    };

    ActiveProbeScheme::Options options_;
    std::function<void(Alert)> raise_;
    std::unordered_map<wire::Ipv4Address, wire::MacAddress> db_;
    std::unordered_map<wire::Ipv4Address, Probe> probes_;
    std::unordered_map<wire::Ipv4Address, common::SimTime> last_alert_;
    std::uint64_t probes_sent_ = 0;
};

SchemeTraits ActiveProbeScheme::traits() const {
    SchemeTraits t;
    t.name = "active-probe";
    t.vantage = "monitor";
    t.detects = true;
    t.prevents_poisoning = false;
    t.requires_infrastructure = true;
    t.handles_dynamic_ips = true;  // probe distinguishes rebind from attack
    t.deployment_cost = CostBand::kLow;
    t.runtime_cost = CostBand::kLow;  // one probe per conflicting claim
    t.notes = "XArp-class verification; needs the old station online to confirm";
    return t;
}

void ActiveProbeScheme::attach_monitor(MonitorNode& monitor) {
    monitor.add_observer(std::make_shared<Prober>(options_, [this](Alert a) {
        alert(std::move(a));
    }));
}

}  // namespace arpsec::detect

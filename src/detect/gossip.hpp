#pragma once

#include <memory>
#include <vector>

#include "common/time.hpp"
#include "detect/scheme.hpp"

namespace arpsec::detect {

/// Cooperative (gossip) detection: protected hosts periodically broadcast
/// a digest of their ARP caches over UDP; every host cross-checks received
/// digests against its own cache and flags conflicting bindings — a
/// poisoned victim stands out because its view of (IP -> MAC) disagrees
/// with the rest of the LAN. Purely host-based and protocol-compatible
/// (plain UDP), but the gossip itself is unauthenticated and transient
/// disagreement during legitimate rebinding can false-alarm.
class GossipScheme final : public Scheme {
public:
    struct Options {
        common::Duration gossip_period = common::Duration::seconds(5);
        std::uint16_t udp_port = 3320;
        /// Evict the local entry when a quorum of peers disagree with it
        /// (turns the detector into a self-healing semi-preventer).
        bool evict_on_conflict = true;
        /// Alerts for the same (ip, mac) pair are suppressed for this long.
        common::Duration realert_backoff = common::Duration::seconds(10);
    };

    GossipScheme();
    explicit GossipScheme(Options options);
    ~GossipScheme() override;  // out of line: Agent is incomplete here

    [[nodiscard]] SchemeTraits traits() const override;
    void protect_host(host::Host& host) override;

private:
    class Agent;
    Options options_;
    std::vector<std::unique_ptr<Agent>> agents_;
};

}  // namespace arpsec::detect

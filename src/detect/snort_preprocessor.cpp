#include "detect/snort_preprocessor.hpp"

#include <unordered_map>

namespace arpsec::detect {

class SnortPreprocessorScheme::Preprocessor final : public TrafficObserver {
public:
    Preprocessor(Options options, std::unordered_map<wire::Ipv4Address, wire::MacAddress> table,
                 std::function<void(Alert)> raise)
        : options_(options), table_(std::move(table)), raise_(std::move(raise)) {}

    void on_observed(MonitorNode&, common::SimTime, const wire::FrameView& view,
                     const wire::ArpPacket* arp) override {
        if (arp == nullptr) return;

        if (options_.check_header_consistency && arp->sender_mac != view.src()) {
            Alert a;
            a.kind = AlertKind::kInconsistentHeader;
            a.ip = arp->sender_ip;
            a.claimed_mac = arp->sender_mac;
            a.detail = "ethernet source " + view.src().to_string() + " != ARP sender";
            raise_(std::move(a));
        }

        if (options_.check_unicast_requests && arp->op == wire::ArpOp::kRequest &&
            view.dst().is_unicast() && !arp->is_gratuitous()) {
            Alert a;
            a.kind = AlertKind::kUnicastRequest;
            a.ip = arp->target_ip;
            a.claimed_mac = arp->sender_mac;
            a.detail = "unicast ARP request (spoofing-tool signature)";
            raise_(std::move(a));
        }

        if (options_.check_table && !arp->sender_ip.is_any()) {
            auto it = table_.find(arp->sender_ip);
            if (it != table_.end() && it->second != arp->sender_mac) {
                Alert a;
                a.kind = AlertKind::kBindingViolation;
                a.ip = arp->sender_ip;
                a.claimed_mac = arp->sender_mac;
                a.previous_mac = it->second;
                a.detail = "claim contradicts configured table";
                raise_(std::move(a));
            }
        }
    }

private:
    Options options_;
    std::unordered_map<wire::Ipv4Address, wire::MacAddress> table_;
    std::function<void(Alert)> raise_;
};

SchemeTraits SnortPreprocessorScheme::traits() const {
    SchemeTraits t;
    t.name = "snort-arpspoof";
    t.vantage = "monitor";
    t.detects = true;
    t.prevents_poisoning = false;
    t.requires_infrastructure = true;  // IDS sensor on a SPAN port
    t.handles_dynamic_ips = false;     // table configured by hand, goes stale
    t.deployment_cost = CostBand::kMedium;  // table must be maintained
    t.runtime_cost = CostBand::kNone;
    t.notes = "signature rules: table mismatch, header inconsistency, unicast requests";
    return t;
}

void SnortPreprocessorScheme::attach_monitor(MonitorNode& monitor) {
    std::unordered_map<wire::Ipv4Address, wire::MacAddress> table;
    for (const HostRecord& rec : ctx_.directory) table[rec.ip] = rec.mac;
    monitor.add_observer(std::make_shared<Preprocessor>(
        options_, std::move(table), [this](Alert a) { alert(std::move(a)); }));
}

}  // namespace arpsec::detect

#include "detect/alert.hpp"

namespace arpsec::detect {

std::string to_string(AlertKind k) {
    switch (k) {
        case AlertKind::kSpoofSuspected: return "spoof-suspected";
        case AlertKind::kIpMacChange: return "ip-mac-change";
        case AlertKind::kFlipFlop: return "flip-flop";
        case AlertKind::kUnsignedArp: return "unsigned-arp";
        case AlertKind::kBindingViolation: return "binding-violation";
        case AlertKind::kInconsistentHeader: return "inconsistent-header";
        case AlertKind::kUnicastRequest: return "unicast-request";
        case AlertKind::kPortSecurity: return "port-security";
        case AlertKind::kRogueDhcp: return "rogue-dhcp";
        case AlertKind::kRateAnomaly: return "rate-anomaly";
    }
    return "?";
}

std::string Alert::to_string() const {
    return "[" + at.to_string() + "] " + scheme + ": " + detect::to_string(kind) + " ip=" +
           ip.to_string() + " claimed=" + claimed_mac.to_string() +
           (previous_mac.is_zero() ? "" : " was=" + previous_mac.to_string()) +
           (detail.empty() ? "" : " (" + detail + ")");
}

}  // namespace arpsec::detect

#include "detect/alert.hpp"

namespace arpsec::detect {

std::string to_string(AlertKind k) {
    switch (k) {
        case AlertKind::kSpoofSuspected: return "spoof-suspected";
        case AlertKind::kIpMacChange: return "ip-mac-change";
        case AlertKind::kFlipFlop: return "flip-flop";
        case AlertKind::kUnsignedArp: return "unsigned-arp";
        case AlertKind::kBindingViolation: return "binding-violation";
        case AlertKind::kInconsistentHeader: return "inconsistent-header";
        case AlertKind::kUnicastRequest: return "unicast-request";
        case AlertKind::kPortSecurity: return "port-security";
        case AlertKind::kRogueDhcp: return "rogue-dhcp";
        case AlertKind::kRateAnomaly: return "rate-anomaly";
    }
    return "?";
}

void AlertSink::export_metrics(telemetry::MetricsRegistry& registry) const {
    registry.counter("detect.alerts.total").inc(alerts_.size());
    telemetry::Gauge& first = registry.gauge("detect.first_alert_us");
    first.set(-1);
    if (!alerts_.empty()) {
        first.set(static_cast<std::int64_t>(alerts_.front().at.nanos() / 1000));
    }
    for (const Alert& a : alerts_) {
        registry.counter("detect.alerts.kind." + detect::to_string(a.kind)).inc();
        registry.counter("detect.alerts.scheme." + a.scheme).inc();
    }
}

std::string Alert::to_string() const {
    return "[" + at.to_string() + "] " + scheme + ": " + detect::to_string(kind) + " ip=" +
           ip.to_string() + " claimed=" + claimed_mac.to_string() +
           (previous_mac.is_zero() ? "" : " was=" + previous_mac.to_string()) +
           (detail.empty() ? "" : " (" + detail + ")");
}

}  // namespace arpsec::detect

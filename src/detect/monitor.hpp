#pragma once

#include <memory>
#include <vector>

#include "sim/network.hpp"
#include "sim/node.hpp"
#include "wire/arp_packet.hpp"

namespace arpsec::detect {

class MonitorNode;

/// Receives every frame the monitor's promiscuous NIC sees (via the
/// switch's SPAN/mirror port — the libpcap vantage point of arpwatch,
/// Snort, and XArp-style tools).
class TrafficObserver {
public:
    virtual ~TrafficObserver() = default;
    /// `arp` is non-null when the frame carries a parsable ARP packet (the
    /// parse is memoized in the shared FrameBuffer, so it happened at most
    /// once no matter how many schemes observe the frame).
    virtual void on_observed(MonitorNode& monitor, common::SimTime at,
                             const wire::FrameView& view, const wire::ArpPacket* arp) = 0;
};

/// Dedicated passive-monitoring station plugged into the switch mirror
/// port. Active-verification schemes may also transmit probes through it.
class MonitorNode final : public sim::Node {
public:
    MonitorNode(std::string name, wire::MacAddress mac)
        : sim::Node(std::move(name)), mac_(mac) {}

    void on_frame(sim::PortId in_port, const wire::FrameView& view) override {
        (void)in_port;
        if (view.src() == mac_) return;  // our own probes mirrored back
        ++frames_seen_;
        if (observers_.empty()) return;
        // Memoized in the shared buffer: the first observer of this frame
        // anywhere in the process paid the only ARP parse.
        const wire::ArpPacket* arp = view.arp();
        const common::SimTime at = network().now();
        // Index loop (size re-read each pass) so observers added during
        // iteration are picked up without copying the vector per frame.
        for (std::size_t i = 0; i < observers_.size(); ++i) {
            observers_[i]->on_observed(*this, at, view, arp);
        }
    }

    void add_observer(std::shared_ptr<TrafficObserver> obs) {
        observers_.push_back(std::move(obs));
    }

    /// Transmits a frame (active probing). Sets the frame source to the
    /// monitor's own MAC.
    void transmit(wire::EthernetFrame frame) {
        frame.src = mac_;
        send(0, frame);
    }

    [[nodiscard]] wire::MacAddress mac() const { return mac_; }
    [[nodiscard]] std::uint64_t frames_seen() const { return frames_seen_; }

private:
    wire::MacAddress mac_;
    std::vector<std::shared_ptr<TrafficObserver>> observers_;
    std::uint64_t frames_seen_ = 0;
};

}  // namespace arpsec::detect

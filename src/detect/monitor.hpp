#pragma once

#include <memory>
#include <vector>

#include "sim/network.hpp"
#include "sim/node.hpp"
#include "wire/arp_packet.hpp"

namespace arpsec::detect {

class MonitorNode;

/// Receives every frame the monitor's promiscuous NIC sees (via the
/// switch's SPAN/mirror port — the libpcap vantage point of arpwatch,
/// Snort, and XArp-style tools).
class TrafficObserver {
public:
    virtual ~TrafficObserver() = default;
    /// `arp` is non-null when the frame carries a parsable ARP packet.
    virtual void on_observed(MonitorNode& monitor, common::SimTime at,
                             const wire::EthernetFrame& frame, const wire::ArpPacket* arp) = 0;
};

/// Dedicated passive-monitoring station plugged into the switch mirror
/// port. Active-verification schemes may also transmit probes through it.
class MonitorNode final : public sim::Node {
public:
    MonitorNode(std::string name, wire::MacAddress mac)
        : sim::Node(std::move(name)), mac_(mac) {}

    void on_frame(sim::PortId in_port, const wire::EthernetFrame& frame,
                  std::span<const std::uint8_t> raw) override {
        (void)in_port;
        (void)raw;
        if (frame.src == mac_) return;  // our own probes mirrored back
        ++frames_seen_;
        const wire::ArpPacket* arp = nullptr;
        wire::ArpPacket parsed;
        if (frame.ether_type == wire::EtherType::kArp) {
            if (auto p = wire::ArpPacket::parse(frame.payload); p.ok()) {
                parsed = p.value();
                arp = &parsed;
            }
        }
        // Copy to guard against observers added during iteration.
        const auto observers = observers_;
        for (const auto& obs : observers) obs->on_observed(*this, network().now(), frame, arp);
    }

    void add_observer(std::shared_ptr<TrafficObserver> obs) {
        observers_.push_back(std::move(obs));
    }

    /// Transmits a frame (active probing). Sets the frame source to the
    /// monitor's own MAC.
    void transmit(wire::EthernetFrame frame) {
        frame.src = mac_;
        send(0, frame);
    }

    [[nodiscard]] wire::MacAddress mac() const { return mac_; }
    [[nodiscard]] std::uint64_t frames_seen() const { return frames_seen_; }

private:
    wire::MacAddress mac_;
    std::vector<std::shared_ptr<TrafficObserver>> observers_;
    std::uint64_t frames_seen_ = 0;
};

}  // namespace arpsec::detect

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "detect/scheme.hpp"

namespace arpsec::detect {

/// Factory for one scheme instance (schemes are single-scenario objects).
using SchemeFactory = std::function<std::unique_ptr<Scheme>()>;

struct RegisteredScheme {
    std::string name;
    SchemeFactory make;
};

/// All schemes the paper analyzes, in presentation order. The evaluation
/// harness sweeps this list to build the comparison matrix.
[[nodiscard]] std::vector<RegisteredScheme> all_schemes();

/// Creates a scheme by registered name; nullptr when unknown.
[[nodiscard]] std::unique_ptr<Scheme> make_scheme(const std::string& name);

}  // namespace arpsec::detect

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "detect/scheme.hpp"

namespace arpsec::detect {

/// Factory for one scheme instance (schemes are single-scenario objects).
using SchemeFactory = std::function<std::unique_ptr<Scheme>()>;

struct RegisteredScheme {
    std::string name;
    SchemeFactory make;
};

/// All schemes the paper analyzes, in presentation order. The evaluation
/// harness sweeps this list to build the comparison matrix.
[[nodiscard]] std::vector<RegisteredScheme> all_schemes();

/// Creates a scheme by registered name; nullptr when unknown.
[[nodiscard]] std::unique_ptr<Scheme> make_scheme(const std::string& name);

/// A mutable scheme catalog: the builtin list plus caller-registered
/// factories (the DST checker registers fault-injected decorators this
/// way). Names are unique; registration of a duplicate or empty name is an
/// error, so a typo cannot silently shadow a real scheme.
class Registry {
public:
    /// Starts from the builtin all_schemes() list.
    Registry();
    /// Starts empty (tests and special-purpose catalogs).
    struct Empty {};
    explicit Registry(Empty) {}

    /// Registers an additional factory. Fails on an empty name, a null
    /// factory, or a name already present.
    common::Expected<bool> add(RegisteredScheme entry);

    [[nodiscard]] bool contains(const std::string& name) const;
    /// Instance by name; nullptr when unknown.
    [[nodiscard]] std::unique_ptr<Scheme> make(const std::string& name) const;
    [[nodiscard]] const std::vector<RegisteredScheme>& entries() const { return entries_; }

private:
    std::vector<RegisteredScheme> entries_;
};

}  // namespace arpsec::detect

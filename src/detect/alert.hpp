#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "telemetry/metrics.hpp"
#include "wire/ipv4_address.hpp"
#include "wire/mac_address.hpp"

namespace arpsec::detect {

enum class AlertKind {
    kSpoofSuspected,     // scheme believes an ARP poisoning attempt happened
    kIpMacChange,        // a known IP moved to a new MAC (arpwatch "changed")
    kFlipFlop,           // an IP oscillating between two MACs
    kUnsignedArp,        // cryptographic scheme saw an unauthenticated packet
    kBindingViolation,   // claim contradicts an authoritative table
    kInconsistentHeader, // Ethernet/ARP header fields disagree
    kUnicastRequest,     // tool signature: unicast ARP request
    kPortSecurity,       // switch port-security violation
    kRogueDhcp,          // DHCP server traffic on an untrusted port
    kRateAnomaly,        // ARP rate limit exceeded
};

[[nodiscard]] std::string to_string(AlertKind k);

/// One alert raised by a scheme. `claimed_mac` is the MAC the suspicious
/// packet asserted; the harness classifies alerts as true/false positives
/// against attack ground truth.
struct Alert {
    common::SimTime at;
    std::string scheme;
    AlertKind kind = AlertKind::kSpoofSuspected;
    wire::Ipv4Address ip;
    wire::MacAddress claimed_mac;
    wire::MacAddress previous_mac;
    std::string detail;

    [[nodiscard]] std::string to_string() const;
};

/// Collects alerts from the scheme under test (the "syslog/email" channel
/// every analyzed tool reports through).
class AlertSink {
public:
    void report(Alert alert) {
        if (on_alert) on_alert(alert);
        alerts_.push_back(std::move(alert));
    }

    [[nodiscard]] const std::vector<Alert>& alerts() const { return alerts_; }
    [[nodiscard]] std::size_t count() const { return alerts_.size(); }
    void clear() { alerts_.clear(); }

    /// Publishes alert totals into `registry`: `detect.alerts.total`, a
    /// per-kind breakdown under `detect.alerts.kind.<kind>`, a per-scheme
    /// breakdown under `detect.alerts.scheme.<scheme>`, and the time of the
    /// first alert (`detect.first_alert_us` gauge, -1 when none fired).
    void export_metrics(telemetry::MetricsRegistry& registry) const;

    /// Optional live callback (examples print alerts as they happen).
    std::function<void(const Alert&)> on_alert;

private:
    std::vector<Alert> alerts_;
};

}  // namespace arpsec::detect

#pragma once

#include "common/time.hpp"
#include "detect/scheme.hpp"

namespace arpsec::detect {

/// Active-verification detector (XArp-class): keeps an arpwatch-style
/// database, but on a conflicting claim it *probes* the previously known
/// MAC instead of alerting immediately. Two stations answering for one IP
/// confirms an attack; a silent old MAC means a legitimate rebind, which is
/// absorbed without a false alarm. Costs a little active traffic; still
/// detection-only.
class ActiveProbeScheme final : public Scheme {
public:
    struct Options {
        common::Duration probe_timeout = common::Duration::millis(400);
        /// Re-alert backoff: a confirmed-spoofed IP is not re-verified for
        /// this long (keeps alert volume bounded under persistent attack).
        common::Duration realert_backoff = common::Duration::seconds(10);
    };

    ActiveProbeScheme() = default;
    explicit ActiveProbeScheme(Options options) : options_(options) {}

    [[nodiscard]] SchemeTraits traits() const override;
    void attach_monitor(MonitorNode& monitor) override;

private:
    class Prober;
    Options options_;
};

}  // namespace arpsec::detect

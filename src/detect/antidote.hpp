#pragma once

#include "common/time.hpp"
#include "detect/scheme.hpp"

namespace arpsec::detect {

/// Kernel-patch approach #2 (Antidote): when an ARP packet would change an
/// existing binding, hold it and probe the previously known MAC. If the old
/// station still answers, the change is rejected (and the new claimant
/// flagged); if the probe times out, the change is accepted as a legitimate
/// rebind. Fixes Anticap's false-rejection of legitimate changes, but the
/// probe can be defeated (attack while the old station is offline, or race
/// the probe answer) and creations are still unguarded.
class AntidoteScheme final : public Scheme {
public:
    struct Options {
        common::Duration probe_timeout = common::Duration::millis(500);
    };

    AntidoteScheme() = default;
    explicit AntidoteScheme(Options options) : options_(options) {}

    [[nodiscard]] SchemeTraits traits() const override;
    void protect_host(host::Host& host) override;

    [[nodiscard]] const Options& options() const { return options_; }

private:
    Options options_;
};

}  // namespace arpsec::detect

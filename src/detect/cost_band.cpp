#include "detect/scheme.hpp"

namespace arpsec::detect {

std::string to_string(CostBand c) {
    switch (c) {
        case CostBand::kNone: return "none";
        case CostBand::kLow: return "low";
        case CostBand::kMedium: return "medium";
        case CostBand::kHigh: return "high";
    }
    return "?";
}

}  // namespace arpsec::detect

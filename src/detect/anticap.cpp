#include "detect/anticap.hpp"

namespace arpsec::detect {
namespace {

class AnticapHook final : public host::ArpHook {
public:
    explicit AnticapHook(AnticapScheme& scheme, std::function<void(Alert)> raise)
        : scheme_(scheme), raise_(std::move(raise)) {}

    [[nodiscard]] const char* hook_name() const override { return "anticap"; }

    Verdict on_arp_receive(host::Host& host, const wire::ArpPacket& pkt,
                           const host::ArpRxInfo& info) override {
        (void)info;
        if (pkt.sender_ip.is_any() || pkt.sender_mac.is_zero()) return Verdict::kAccept;
        const auto existing = host.arp_cache().peek(pkt.sender_ip);
        if (!existing) return Verdict::kAccept;
        // Honour entry TTL: an expired entry no longer constrains updates.
        const auto age = host.network().now() - existing->updated_at;
        const bool live = existing->state == arp::EntryState::kStatic ||
                          age <= host.arp_cache().policy().entry_ttl;
        if (!live) return Verdict::kAccept;
        if (existing->mac == pkt.sender_mac) return Verdict::kAccept;

        Alert a;
        a.kind = AlertKind::kSpoofSuspected;
        a.ip = pkt.sender_ip;
        a.claimed_mac = pkt.sender_mac;
        a.previous_mac = existing->mac;
        a.detail = "rejected cache overwrite on " + host.name();
        raise_(std::move(a));
        return Verdict::kDrop;
    }

private:
    AnticapScheme& scheme_;
    std::function<void(Alert)> raise_;
};

}  // namespace

SchemeTraits AnticapScheme::traits() const {
    SchemeTraits t;
    t.name = "anticap";
    t.vantage = "host";
    t.detects = true;  // logs rejected overwrites
    t.prevents_poisoning = true;  // overwrite-based poisoning only
    t.requires_per_host_deploy = true;
    t.handles_dynamic_ips = false;  // legit rebinds rejected until TTL expiry
    t.deployment_cost = CostBand::kMedium;  // kernel patch on every host
    t.runtime_cost = CostBand::kNone;
    t.notes = "stops overwrites, not creations; freezes legitimate rebinding";
    return t;
}

void AnticapScheme::protect_host(host::Host& host) {
    host.add_arp_hook(std::make_shared<AnticapHook>(*this, [this](Alert a) {
        alert(std::move(a));
    }));
}

}  // namespace arpsec::detect

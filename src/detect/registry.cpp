#include "detect/registry.hpp"

#include "detect/active_probe.hpp"
#include "detect/anticap.hpp"
#include "detect/antidote.hpp"
#include "detect/arpwatch.hpp"
#include "detect/gossip.hpp"
#include "detect/lease_monitor.hpp"
#include "detect/middleware.hpp"
#include "detect/sarp.hpp"
#include "detect/snort_preprocessor.hpp"
#include "detect/static_entries.hpp"
#include "detect/switch_schemes.hpp"
#include "detect/tarp.hpp"

namespace arpsec::detect {

std::vector<RegisteredScheme> all_schemes() {
    return {
        {"none", [] { return std::make_unique<NullScheme>(); }},
        {"static-entries", [] { return std::make_unique<StaticEntriesScheme>(); }},
        {"arpwatch", [] { return std::make_unique<ArpwatchScheme>(); }},
        {"snort-arpspoof", [] { return std::make_unique<SnortPreprocessorScheme>(); }},
        {"active-probe", [] { return std::make_unique<ActiveProbeScheme>(); }},
        {"anticap", [] { return std::make_unique<AnticapScheme>(); }},
        {"antidote", [] { return std::make_unique<AntidoteScheme>(); }},
        {"middleware", [] { return std::make_unique<MiddlewareScheme>(); }},
        {"port-security", [] { return std::make_unique<PortSecurityScheme>(); }},
        {"dai", [] { return std::make_unique<DaiScheme>(); }},
        {"dai-static",
         [] {
             DaiScheme::Options opt;
             opt.use_dhcp_snooping = false;
             return std::make_unique<DaiScheme>(opt);
         }},
        {"gossip", [] { return std::make_unique<GossipScheme>(); }},
        {"lease-monitor", [] { return std::make_unique<LeaseMonitorScheme>(); }},
        {"s-arp", [] { return std::make_unique<SArpScheme>(); }},
        {"tarp", [] { return std::make_unique<TarpScheme>(); }},
    };
}

std::unique_ptr<Scheme> make_scheme(const std::string& name) {
    for (auto& reg : all_schemes()) {
        if (reg.name == name) return reg.make();
    }
    return nullptr;
}

}  // namespace arpsec::detect

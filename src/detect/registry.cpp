#include "detect/registry.hpp"

#include "detect/active_probe.hpp"
#include "detect/anticap.hpp"
#include "detect/antidote.hpp"
#include "detect/arpwatch.hpp"
#include "detect/gossip.hpp"
#include "detect/lease_monitor.hpp"
#include "detect/middleware.hpp"
#include "detect/sarp.hpp"
#include "detect/snort_preprocessor.hpp"
#include "detect/static_entries.hpp"
#include "detect/switch_schemes.hpp"
#include "detect/tarp.hpp"

namespace arpsec::detect {

std::vector<RegisteredScheme> all_schemes() {
    return {
        {"none", [] { return std::make_unique<NullScheme>(); }},
        {"static-entries", [] { return std::make_unique<StaticEntriesScheme>(); }},
        {"arpwatch", [] { return std::make_unique<ArpwatchScheme>(); }},
        {"snort-arpspoof", [] { return std::make_unique<SnortPreprocessorScheme>(); }},
        {"active-probe", [] { return std::make_unique<ActiveProbeScheme>(); }},
        {"anticap", [] { return std::make_unique<AnticapScheme>(); }},
        {"antidote", [] { return std::make_unique<AntidoteScheme>(); }},
        {"middleware", [] { return std::make_unique<MiddlewareScheme>(); }},
        {"port-security", [] { return std::make_unique<PortSecurityScheme>(); }},
        {"dai", [] { return std::make_unique<DaiScheme>(); }},
        {"dai-static",
         [] {
             DaiScheme::Options opt;
             opt.use_dhcp_snooping = false;
             return std::make_unique<DaiScheme>(opt);
         }},
        {"gossip", [] { return std::make_unique<GossipScheme>(); }},
        {"lease-monitor", [] { return std::make_unique<LeaseMonitorScheme>(); }},
        {"s-arp", [] { return std::make_unique<SArpScheme>(); }},
        {"tarp", [] { return std::make_unique<TarpScheme>(); }},
    };
}

std::unique_ptr<Scheme> make_scheme(const std::string& name) {
    for (auto& reg : all_schemes()) {
        if (reg.name == name) return reg.make();
    }
    return nullptr;
}

Registry::Registry() : entries_(all_schemes()) {}

common::Expected<bool> Registry::add(RegisteredScheme entry) {
    if (entry.name.empty()) {
        return common::Expected<bool>::failure("scheme name must not be empty");
    }
    if (entry.make == nullptr) {
        return common::Expected<bool>::failure("scheme '" + entry.name + "' has no factory");
    }
    if (contains(entry.name)) {
        return common::Expected<bool>::failure("scheme '" + entry.name +
                                               "' is already registered");
    }
    entries_.push_back(std::move(entry));
    return true;
}

bool Registry::contains(const std::string& name) const {
    for (const auto& reg : entries_) {
        if (reg.name == name) return true;
    }
    return false;
}

std::unique_ptr<Scheme> Registry::make(const std::string& name) const {
    for (const auto& reg : entries_) {
        if (reg.name == name) return reg.make();
    }
    return nullptr;
}

}  // namespace arpsec::detect

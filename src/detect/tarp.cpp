#include "detect/tarp.hpp"

#include <set>

namespace arpsec::detect {

using common::Duration;
using crypto::KeyPair;
using crypto::PublicKey;
using crypto::Signature;
using wire::ArpPacket;
using wire::Bytes;
using wire::ByteReader;
using wire::ByteWriter;

wire::Bytes TarpScheme::Ticket::signed_region() const {
    Bytes msg;
    ByteWriter w{msg};
    w.bytes(Bytes{'t', 'a', 'r', 'p', '.', 'v', '1'});
    w.ipv4(ip);
    w.mac(mac);
    w.u64(expiry_ns);
    return msg;
}

wire::Bytes TarpScheme::Ticket::serialize() const {
    Bytes out;
    ByteWriter w{out};
    w.u8(kAuthTag);
    w.ipv4(ip);
    w.mac(mac);
    w.u64(expiry_ns);
    w.bytes(sig.serialize());
    return out;
}

std::optional<TarpScheme::Ticket> TarpScheme::Ticket::parse(
    std::span<const std::uint8_t> data) {
    ByteReader r{data};
    if (r.u8() != kAuthTag) return std::nullopt;
    Ticket t;
    t.ip = r.ipv4();
    t.mac = r.mac();
    t.expiry_ns = r.u64();
    t.sig = Signature::deserialize(r.bytes(Signature::kWireSize));
    if (!r.ok()) return std::nullopt;
    return t;
}

TarpScheme::Ticket TarpScheme::issue_ticket(wire::Ipv4Address ip, wire::MacAddress mac,
                                            common::SimTime now) const {
    Ticket t;
    t.ip = ip;
    t.mac = mac;
    t.expiry_ns = static_cast<std::uint64_t>((now + options_.ticket_lifetime).nanos());
    t.sig = lta_key_->sign(t.signed_region());
    return t;
}

// ---------------------------------------------------------------------------
// Per-host hook
// ---------------------------------------------------------------------------

class TarpScheme::Hook final : public host::ArpHook,
                               public std::enable_shared_from_this<Hook> {
public:
    Hook(TarpScheme& scheme, Ticket own_ticket)
        : scheme_(scheme), own_ticket_(std::move(own_ticket)) {}

    [[nodiscard]] const char* hook_name() const override { return "tarp"; }

    /// Installs a freshly issued ticket (LTA reissue on address change).
    void set_ticket(Ticket t) { own_ticket_ = std::move(t); }

    Duration on_arp_transmit(host::Host& host, ArpPacket& pkt) override {
        // Renew at the LTA when the ticket has expired (stations hold a
        // standing relationship with the LTA; the issuance cost is a sign).
        const auto now = host.network().now();
        if (host.has_ip() &&
            static_cast<std::int64_t>(own_ticket_.expiry_ns) <= now.nanos()) {
            own_ticket_ = scheme_.issue_ticket(host.ip(), host.mac(), now);
            if (scheme_.ctx_.ops != nullptr) ++scheme_.ctx_.ops->signs;
        }
        pkt.auth = own_ticket_.serialize();
        return Duration::zero();  // tickets are pre-signed: no runtime signing
    }

    Verdict on_arp_receive(host::Host& host, const ArpPacket& pkt,
                           const host::ArpRxInfo& info) override {
        if (pkt.auth.empty() || pkt.auth[0] != kAuthTag) {
            if (!scheme_.options_.strict) return Verdict::kAccept;
            Alert a;
            a.kind = AlertKind::kUnsignedArp;
            a.ip = pkt.sender_ip;
            a.claimed_mac = pkt.sender_mac;
            a.detail = "ticketless ARP dropped on " + host.name();
            scheme_.alert(std::move(a));
            return Verdict::kDrop;
        }
        const auto ticket = Ticket::parse(pkt.auth);
        if (!ticket) return Verdict::kDrop;

        // The ticket must attest exactly the binding the packet claims.
        if (ticket->ip != pkt.sender_ip || ticket->mac != pkt.sender_mac) {
            Alert a;
            a.kind = AlertKind::kBindingViolation;
            a.ip = pkt.sender_ip;
            a.claimed_mac = pkt.sender_mac;
            a.previous_mac = ticket->mac;
            a.detail = "ticket does not cover claimed binding";
            scheme_.alert(std::move(a));
            return Verdict::kDrop;
        }
        const auto now = host.network().now();
        if (static_cast<std::int64_t>(ticket->expiry_ns) < now.nanos()) {
            Alert a;
            a.kind = AlertKind::kBindingViolation;
            a.ip = pkt.sender_ip;
            a.claimed_mac = pkt.sender_mac;
            a.detail = "expired ticket";
            scheme_.alert(std::move(a));
            return Verdict::kDrop;
        }

        if (scheme_.options_.cache_verified_tickets) {
            const std::uint64_t fp = fingerprint(*ticket);
            if (verified_.count(fp) != 0) {
                // Already cryptographically verified: accept synchronously.
                finish(host, pkt, info);
                return Verdict::kDefer;
            }
        }

        auto self = shared_from_this();
        host::Host* h = &host;
        const ArpPacket copy = pkt;
        const host::ArpRxInfo info_copy = info;
        const Ticket tk = *ticket;
        host.network().scheduler().schedule_after(scheme_.ctx_.cost.verify,
                                                  [self, h, copy, info_copy, tk] {
            if (self->scheme_.ctx_.ops != nullptr) ++self->scheme_.ctx_.ops->verifies;
            if (!self->scheme_.lta_key_->public_key().verify(tk.signed_region(), tk.sig)) {
                Alert a;
                a.kind = AlertKind::kBindingViolation;
                a.ip = copy.sender_ip;
                a.claimed_mac = copy.sender_mac;
                a.detail = "invalid LTA signature on ticket";
                self->scheme_.alert(std::move(a));
                return;  // drop
            }
            if (self->scheme_.options_.cache_verified_tickets) {
                self->verified_.insert(self->fingerprint(tk));
            }
            self->finish(*h, copy, info_copy);
        });
        return Verdict::kDefer;
    }

private:
    void finish(host::Host& host, const ArpPacket& pkt, const host::ArpRxInfo& info) {
        // Ticket verified; normal cache-policy processing resumes.
        host.resume_arp_processing(pkt, info, this);
    }

    [[nodiscard]] std::uint64_t fingerprint(const Ticket& t) const {
        return t.ip.value() ^ (t.mac.to_u64() << 8) ^ t.expiry_ns ^ t.sig.e;
    }

    TarpScheme& scheme_;
    Ticket own_ticket_;
    std::set<std::uint64_t> verified_;
};

// ---------------------------------------------------------------------------
// Scheme
// ---------------------------------------------------------------------------

SchemeTraits TarpScheme::traits() const {
    SchemeTraits t;
    t.name = "tarp";
    t.vantage = "host+server";
    t.detects = true;
    t.prevents_poisoning = true;
    t.requires_protocol_change = true;
    t.requires_infrastructure = true;  // the LTA (often co-located with DHCP)
    t.requires_per_host_deploy = true;
    t.uses_cryptography = true;
    t.handles_dynamic_ips = true;  // LTA reissues tickets on lease changes
    t.deployment_cost = CostBand::kHigh;
    t.runtime_cost = CostBand::kMedium;  // one verify per new ticket, cached after
    t.notes = "signed (IP,MAC) tickets; replayable until expiry (MAC-spoof window)";
    return t;
}

void TarpScheme::deploy(const DeploymentContext& ctx) {
    Scheme::deploy(ctx);
    lta_key_ = std::make_unique<KeyPair>(KeyPair::derive(0x17A0));
    const auto now = ctx_.net != nullptr ? ctx_.net->now() : common::SimTime::zero();
    for (const HostRecord& rec : ctx_.directory) {
        tickets_by_mac_[rec.mac.to_u64()] = issue_ticket(rec.ip, rec.mac, now);
        if (ctx_.ops != nullptr) ++ctx_.ops->signs;  // one-time issuance cost
    }
}

void TarpScheme::protect_host(host::Host& host) {
    Ticket initial;
    if (auto it = tickets_by_mac_.find(host.mac().to_u64()); it != tickets_by_mac_.end()) {
        initial = it->second;
    }
    auto hook = std::make_shared<Hook>(*this, initial);
    host.add_arp_hook(hook);
    // The LTA (co-located with address administration) issues a fresh
    // ticket whenever the station (re)acquires an address — covering DHCP
    // rebinds and NIC replacements.
    host::Host* h = &host;
    host.add_ip_listener([this, hook, h](wire::Ipv4Address ip) {
        Ticket fresh = issue_ticket(ip, h->mac(), h->network().now());
        if (ctx_.ops != nullptr) ++ctx_.ops->signs;
        tickets_by_mac_[h->mac().to_u64()] = fresh;
        hook->set_ticket(std::move(fresh));
    });
}

}  // namespace arpsec::detect

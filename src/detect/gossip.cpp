#include "detect/gossip.hpp"

#include <map>
#include <memory>

#include "wire/buffer.hpp"

namespace arpsec::detect {

using common::Duration;
using wire::Bytes;
using wire::ByteReader;
using wire::ByteWriter;
using wire::Ipv4Address;
using wire::MacAddress;

namespace {

constexpr std::uint32_t kDigestMagic = 0x41474F53;  // "AGOS"
constexpr std::size_t kMaxDigestEntries = 64;

Bytes encode_digest(const std::vector<std::pair<Ipv4Address, MacAddress>>& entries) {
    Bytes out;
    ByteWriter w{out};
    w.u32(kDigestMagic);
    w.u16(static_cast<std::uint16_t>(entries.size()));
    for (const auto& [ip, mac] : entries) {
        w.ipv4(ip);
        w.mac(mac);
    }
    return out;
}

std::vector<std::pair<Ipv4Address, MacAddress>> decode_digest(const Bytes& data) {
    ByteReader r{data};
    if (r.u32() != kDigestMagic) return {};
    const std::uint16_t n = r.u16();
    if (n > kMaxDigestEntries) return {};
    std::vector<std::pair<Ipv4Address, MacAddress>> out;
    out.reserve(n);
    for (std::uint16_t i = 0; i < n; ++i) {
        const Ipv4Address ip = r.ipv4();
        const MacAddress mac = r.mac();
        if (!r.ok()) return {};
        out.emplace_back(ip, mac);
    }
    return out;
}

}  // namespace

/// Per-host gossip agent: periodically publishes the cache digest and
/// cross-checks digests received from peers.
class GossipScheme::Agent {
public:
    Agent(GossipScheme& scheme, host::Host& host, GossipScheme::Options options)
        : scheme_(scheme), host_(host), options_(options) {
        host_.bind_udp(options_.udp_port,
                       [this](host::Host&, const host::UdpRxInfo& info, const Bytes& data) {
                           on_digest(info, data);
                       });
        host_.every(options_.gossip_period, [this] { publish(); });
    }

private:
    void publish() {
        if (!host_.has_ip()) return;
        std::vector<std::pair<Ipv4Address, MacAddress>> entries;
        for (const auto& [ip, entry] : host_.arp_cache().snapshot()) {
            if (entries.size() >= kMaxDigestEntries) break;
            entries.emplace_back(ip, entry.mac);
        }
        if (entries.empty()) return;
        host_.send_udp(Ipv4Address::broadcast(), options_.udp_port, options_.udp_port,
                       encode_digest(entries));
    }

    void on_digest(const host::UdpRxInfo& info, const Bytes& data) {
        (void)info;
        if (!host_.has_ip()) return;
        const auto now = host_.network().now();
        for (const auto& [ip, peer_mac] : decode_digest(data)) {
            if (ip == host_.ip()) {
                // A peer maps *our* IP to a foreign MAC: someone is
                // impersonating us (or the peer is poisoned about us).
                if (peer_mac != host_.mac()) {
                    raise(ip, peer_mac, host_.mac(), now,
                          "peer maps our address to a foreign MAC");
                }
                continue;
            }
            const auto mine = host_.arp_cache().peek(ip);
            if (!mine || mine->mac == peer_mac) continue;
            raise(ip, peer_mac, mine->mac, now, "cache disagreement with peer digest");
            if (options_.evict_on_conflict && mine->state != arp::EntryState::kStatic) {
                // Self-heal: drop the contested entry and re-resolve on
                // next use (the legitimate owner will answer).
                host_.arp_cache().evict(ip);
            }
        }
    }

    void raise(Ipv4Address ip, MacAddress claimed, MacAddress prev, common::SimTime now,
               const char* why) {
        const std::uint64_t key = ip.value() ^ (claimed.to_u64() << 8);
        if (auto it = last_alert_.find(key);
            it != last_alert_.end() && now - it->second < options_.realert_backoff) {
            return;
        }
        last_alert_[key] = now;
        Alert a;
        a.kind = AlertKind::kSpoofSuspected;
        a.ip = ip;
        a.claimed_mac = claimed;
        a.previous_mac = prev;
        a.detail = std::string(why) + " (on " + host_.name() + ")";
        scheme_.alert(std::move(a));
    }

    GossipScheme& scheme_;
    host::Host& host_;
    GossipScheme::Options options_;
    std::map<std::uint64_t, common::SimTime> last_alert_;
};

GossipScheme::GossipScheme() = default;
GossipScheme::GossipScheme(Options options) : options_(options) {}
GossipScheme::~GossipScheme() = default;

SchemeTraits GossipScheme::traits() const {
    SchemeTraits t;
    t.name = "gossip";
    t.vantage = "host (cooperative)";
    t.detects = true;
    t.prevents_poisoning = false;  // self-healing eviction mitigates, not prevents
    t.requires_per_host_deploy = true;
    t.handles_dynamic_ips = false;  // transient disagreement during rebinds
    t.deployment_cost = CostBand::kMedium;
    t.runtime_cost = CostBand::kLow;  // one broadcast digest per host per period
    t.best_effort = true;  // needs a digest round and a peer that knows the truth
    t.notes = "peers cross-check cache digests; a poisoned victim's divergent "
              "view is visible to the whole LAN; gossip itself unauthenticated";
    return t;
}

void GossipScheme::protect_host(host::Host& host) {
    agents_.push_back(std::make_unique<Agent>(*this, host, options_));
}

}  // namespace arpsec::detect

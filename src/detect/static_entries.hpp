#pragma once

#include "detect/scheme.hpp"

namespace arpsec::detect {

/// Prevention by configuration: every host pins a static ARP entry for
/// every other station. Immune to poisoning by construction, but O(n^2)
/// administration, incompatible with DHCP churn, and silent (no detection).
class StaticEntriesScheme final : public Scheme {
public:
    [[nodiscard]] SchemeTraits traits() const override;
    void protect_host(host::Host& host) override;
};

}  // namespace arpsec::detect

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "crypto/cost_model.hpp"
#include "detect/alert.hpp"
#include "detect/monitor.hpp"
#include "host/host.hpp"
#include "l2/switch.hpp"
#include "sim/network.hpp"
#include "telemetry/json.hpp"

namespace arpsec::detect {

/// Ground-truth directory entry the harness hands to schemes that require
/// a priori knowledge (static entries, Snort's table, S-ARP/TARP
/// enrollment, DAI static bindings).
struct HostRecord {
    std::string name;
    wire::Ipv4Address ip;
    wire::MacAddress mac;
};

enum class CostBand { kNone, kLow, kMedium, kHigh };
[[nodiscard]] std::string to_string(CostBand c);

/// Qualitative attributes of a scheme — the columns of the paper's
/// comparison matrix (experiment T2). Quantitative columns are measured by
/// the harness.
struct SchemeTraits {
    std::string name;
    std::string vantage;                   // "host", "switch", "monitor", "host+server"
    bool detects = false;                  // raises alerts
    bool prevents_poisoning = false;       // stops the cache from being poisoned
    bool prevents_flooding = false;        // stops CAM-exhaustion attacks
    bool requires_protocol_change = false; // non-RFC826 ARP on the wire
    bool requires_infrastructure = false;  // managed switch / key server / agent
    bool requires_per_host_deploy = false; // software on every protected host
    bool uses_cryptography = false;
    bool depends_on_dhcp = false;
    /// The scheme's guarantees hinge on a runtime race it can lose (a
    /// verification probe answered in time, a gossip round reaching a
    /// knowledgeable peer): frame loss or CAM interference can silently
    /// defeat it. The DST checker holds only non-best-effort schemes to
    /// the hard never-admit-poison / always-alert invariants.
    bool best_effort = false;
    bool handles_dynamic_ips = true;       // tolerates legitimate rebinding
    CostBand deployment_cost = CostBand::kLow;
    CostBand runtime_cost = CostBand::kNone;
    std::string notes;
};

/// Everything a scheme may use when deployed into a scenario.
struct DeploymentContext {
    sim::Network* net = nullptr;
    l2::Switch* fabric = nullptr;
    AlertSink* alerts = nullptr;
    crypto::CostModel cost;
    crypto::OpCounters* ops = nullptr;
    /// Ground-truth bindings of all legitimate stations (incl. gateway).
    std::vector<HostRecord> directory;
    /// Connects a freshly added infra node's port 0 to a free fabric port
    /// and returns that fabric port. The port is marked trusted.
    std::function<sim::PortId(sim::NodeId)> attach_infra;
    /// Allocates an unused IP for infrastructure nodes (key server etc.).
    std::function<wire::Ipv4Address()> alloc_infra_ip;
};

/// A detection/prevention scheme from the paper's analysis, behind one
/// interface so the evaluation harness can sweep all of them uniformly.
/// Lifecycle per scenario: deploy() once, then protect_host() for every
/// participating host, configure_switch() for the fabric, and
/// attach_monitor() for the mirror-port station.
class Scheme {
public:
    virtual ~Scheme() = default;

    [[nodiscard]] virtual SchemeTraits traits() const = 0;

    virtual void deploy(const DeploymentContext& ctx) { ctx_ = ctx; }
    virtual void protect_host(host::Host& host) { (void)host; }
    virtual void configure_switch(l2::Switch& fabric) { (void)fabric; }
    virtual void attach_monitor(MonitorNode& monitor) { (void)monitor; }

    /// Serializable learned state for serve-mode snapshot/restore
    /// (`arpsec.serve-snapshot.v1`). Schemes whose verdicts depend on
    /// accumulated observations (arpwatch's station DB, lease tables)
    /// override both so a restarted daemon resumes without re-learning —
    /// or re-alerting on — bindings it already saw. Stateless schemes keep
    /// the default empty object. Call restore_state() only after the full
    /// lifecycle (deploy/configure_switch/attach_monitor) has run.
    [[nodiscard]] virtual telemetry::Json snapshot_state() const {
        return telemetry::Json::object();
    }
    virtual void restore_state(const telemetry::Json& state) { (void)state; }

protected:
    void alert(Alert a) {
        if (ctx_.alerts != nullptr) {
            a.scheme = traits().name;
            a.at = ctx_.net != nullptr ? ctx_.net->now() : common::SimTime::zero();
            ctx_.alerts->report(std::move(a));
        }
    }

    DeploymentContext ctx_;
};

/// The degenerate baseline: classic ARP with nothing added.
class NullScheme final : public Scheme {
public:
    [[nodiscard]] SchemeTraits traits() const override {
        SchemeTraits t;
        t.name = "none (classic ARP)";
        t.notes = "baseline: stateless, unauthenticated RFC 826";
        return t;
    }
};

}  // namespace arpsec::detect

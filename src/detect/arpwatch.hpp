#pragma once

#include "common/time.hpp"
#include "detect/scheme.hpp"

namespace arpsec::detect {

/// Passive database detector (arpwatch): learns (IP, MAC) pairings from
/// observed ARP traffic and alerts when a known IP moves to a different
/// MAC ("changed ethernet address") or oscillates ("flip flop"). Zero
/// runtime overhead and no host changes, but it cannot prevent anything
/// and legitimate DHCP reassignment raises the same alerts as an attack.
class ArpwatchScheme final : public Scheme {
public:
    struct Options {
        /// A change back to a recently seen MAC within this window is
        /// reported as a flip-flop instead of a plain change.
        common::Duration flipflop_window = common::Duration::seconds(60);
    };

    ArpwatchScheme() = default;
    explicit ArpwatchScheme(Options options) : options_(options) {}

    [[nodiscard]] SchemeTraits traits() const override;
    void attach_monitor(MonitorNode& monitor) override;

    /// The station database round-trips through `snapshot_state`, so a
    /// restarted serve shard neither re-alerts on bindings it already
    /// accepted nor misses a change that straddles the restart.
    [[nodiscard]] telemetry::Json snapshot_state() const override;
    void restore_state(const telemetry::Json& state) override;

    /// Number of stations currently in the database (for tests/examples).
    [[nodiscard]] std::size_t stations() const;

private:
    class Watcher;
    Options options_;
    std::shared_ptr<Watcher> watcher_;
};

}  // namespace arpsec::detect

#include "detect/antidote.hpp"

#include <unordered_map>

namespace arpsec::detect {
namespace {

class AntidoteHook final : public host::ArpHook,
                           public std::enable_shared_from_this<AntidoteHook> {
public:
    AntidoteHook(AntidoteScheme::Options options, std::function<void(Alert)> raise)
        : options_(options), raise_(std::move(raise)) {}

    [[nodiscard]] const char* hook_name() const override { return "antidote"; }

    Verdict on_arp_receive(host::Host& host, const wire::ArpPacket& pkt,
                           const host::ArpRxInfo& info) override {
        if (pkt.sender_ip.is_any() || pkt.sender_mac.is_zero()) return Verdict::kAccept;

        // A reply from the probed (old) MAC confirms the old station lives:
        // reject the held change and flag the challenger.
        if (auto it = pending_.find(pkt.sender_ip); it != pending_.end()) {
            if (pkt.sender_mac == it->second.old_mac) {
                host.network().scheduler().cancel(it->second.timeout_event);
                Alert a;
                a.kind = AlertKind::kSpoofSuspected;
                a.ip = pkt.sender_ip;
                a.claimed_mac = it->second.held.sender_mac;
                a.previous_mac = it->second.old_mac;
                a.detail = "old station answered verification probe on " + host.name();
                raise_(std::move(a));
                pending_.erase(it);
                return Verdict::kAccept;  // the old station's reply refreshes the entry
            }
            // Another claim for an IP under verification: hold judgement by
            // dropping it; the persistent attacker will resend.
            return Verdict::kDrop;
        }

        const auto existing = host.arp_cache().peek(pkt.sender_ip);
        if (!existing) return Verdict::kAccept;  // creations are not guarded
        const auto age = host.network().now() - existing->updated_at;
        const bool live = existing->state == arp::EntryState::kStatic ||
                          age <= host.arp_cache().policy().entry_ttl;
        if (!live || existing->mac == pkt.sender_mac) return Verdict::kAccept;

        // Conflicting change: hold the packet and probe the old MAC.
        Pending p;
        p.held = pkt;
        p.held_info = info;
        p.old_mac = existing->mac;
        const wire::Ipv4Address ip = pkt.sender_ip;
        auto self = shared_from_this();
        p.timeout_event = host.network().scheduler().schedule_after(
            options_.probe_timeout, [self, &host, ip] { self->probe_timed_out(host, ip); });
        pending_[ip] = std::move(p);

        host.send_arp(wire::ArpPacket::request(host.mac(), host.ip(), ip), existing->mac);
        return Verdict::kDefer;
    }

private:
    struct Pending {
        wire::ArpPacket held;
        host::ArpRxInfo held_info;
        wire::MacAddress old_mac;
        sim::EventId timeout_event = 0;
    };

    void probe_timed_out(host::Host& host, wire::Ipv4Address ip) {
        auto it = pending_.find(ip);
        if (it == pending_.end()) return;
        // No answer from the old MAC: treat as a legitimate rebind and let
        // the held packet continue down the pipeline.
        const Pending p = std::move(it->second);
        pending_.erase(it);
        host.resume_arp_processing(p.held, p.held_info, this);
    }

    AntidoteScheme::Options options_;
    std::function<void(Alert)> raise_;
    std::unordered_map<wire::Ipv4Address, Pending> pending_;
};

}  // namespace

SchemeTraits AntidoteScheme::traits() const {
    SchemeTraits t;
    t.name = "antidote";
    t.vantage = "host";
    t.detects = true;
    t.prevents_poisoning = true;  // overwrite-based poisoning, when the victim host is up
    t.requires_per_host_deploy = true;
    t.handles_dynamic_ips = true;  // legit rebinds pass after the probe times out
    t.deployment_cost = CostBand::kMedium;
    t.runtime_cost = CostBand::kLow;  // one probe per conflicting update
    t.best_effort = true;  // the probe exchange itself rides the attacked LAN
    t.notes = "probe-verified overwrites; defeated if the old station is offline "
              "or the attacker answers the probe";
    return t;
}

void AntidoteScheme::protect_host(host::Host& host) {
    host.add_arp_hook(std::make_shared<AntidoteHook>(options_, [this](Alert a) {
        alert(std::move(a));
    }));
}

}  // namespace arpsec::detect

#pragma once

#include <memory>
#include <unordered_map>

#include "crypto/schnorr.hpp"
#include "detect/scheme.hpp"

namespace arpsec::detect {

/// TARP (Lootah et al.): a Local Ticketing Agent (LTA) issues each station
/// a signed *ticket* attesting its (IP, MAC) binding; stations attach the
/// ticket to their ARP messages, and receivers verify it with the LTA's
/// public key alone. Compared with S-ARP this removes the per-message
/// signing and the key-server round trip (one verify per new ticket, cached
/// afterwards), at the cost of a replay window until ticket expiry.
class TarpScheme final : public Scheme {
public:
    struct Options {
        common::Duration ticket_lifetime = common::Duration::seconds(3600);
        bool strict = true;  // drop ticketless ARP
        /// Cache verified tickets so repeats skip the public-key operation.
        bool cache_verified_tickets = true;
    };

    static constexpr std::uint8_t kAuthTag = 2;

    TarpScheme() = default;
    explicit TarpScheme(Options options) : options_(options) {}

    [[nodiscard]] SchemeTraits traits() const override;
    void deploy(const DeploymentContext& ctx) override;
    void protect_host(host::Host& host) override;

    /// A ticket as carried in the ARP auth trailer.
    struct Ticket {
        wire::Ipv4Address ip;
        wire::MacAddress mac;
        std::uint64_t expiry_ns = 0;
        crypto::Signature sig;

        [[nodiscard]] wire::Bytes serialize() const;
        static std::optional<Ticket> parse(std::span<const std::uint8_t> data);
        [[nodiscard]] wire::Bytes signed_region() const;
    };

    /// Issues a ticket signed by the LTA (exposed for the replay ablation).
    [[nodiscard]] Ticket issue_ticket(wire::Ipv4Address ip, wire::MacAddress mac,
                                      common::SimTime now) const;
    [[nodiscard]] const crypto::PublicKey& lta_public_key() const {
        return lta_key_->public_key();
    }

private:
    class Hook;

    Options options_;
    std::unique_ptr<crypto::KeyPair> lta_key_;
    std::unordered_map<std::uint64_t, Ticket> tickets_by_mac_;
};

}  // namespace arpsec::detect

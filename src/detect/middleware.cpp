#include "detect/middleware.hpp"

#include <set>
#include <unordered_map>
#include <vector>

namespace arpsec::detect {

using wire::ArpPacket;
using wire::Ipv4Address;
using wire::MacAddress;

class MiddlewareScheme::Hook final : public host::ArpHook,
                                     public std::enable_shared_from_this<Hook> {
public:
    Hook(MiddlewareScheme::Options options, std::function<void(Alert)> raise)
        : options_(options), raise_(std::move(raise)) {}

    [[nodiscard]] const char* hook_name() const override { return "middleware"; }

    Verdict on_arp_receive(host::Host& host, const ArpPacket& pkt,
                           const host::ArpRxInfo& info) override {
        if (pkt.sender_ip.is_any() || pkt.sender_mac.is_zero()) return Verdict::kAccept;
        const Ipv4Address ip = pkt.sender_ip;
        const MacAddress mac = pkt.sender_mac;

        // Claims for an IP under quarantine are folded into the open
        // verification instead of reaching the cache.
        if (auto it = quarantine_.find(ip); it != quarantine_.end()) {
            it->second.claims.insert(mac.to_u64());
            it->second.held.push_back(Held{pkt, info});
            return Verdict::kDefer;
        }

        if (auto v = verified_.find(ip); v != verified_.end() && v->second == mac) {
            return Verdict::kAccept;  // matches the admitted binding
        }

        // New or changed binding: quarantine and verify by asking the LAN.
        Quarantine q;
        q.claims.insert(mac.to_u64());
        q.held.push_back(Held{pkt, info});
        auto self = shared_from_this();
        host::Host* h = &host;
        q.window_event = host.network().scheduler().schedule_after(
            options_.verification_window, [self, h, ip] { self->window_closed(*h, ip); });
        quarantine_[ip] = std::move(q);

        host.send_arp(ArpPacket::request(host.mac(), host.ip(), ip), MacAddress::broadcast());
        return Verdict::kDefer;
    }

private:
    struct Held {
        ArpPacket pkt;
        host::ArpRxInfo info;
    };
    struct Quarantine {
        std::set<std::uint64_t> claims;
        std::vector<Held> held;
        sim::EventId window_event = 0;
    };

    void window_closed(host::Host& host, Ipv4Address ip) {
        auto it = quarantine_.find(ip);
        if (it == quarantine_.end()) return;
        Quarantine q = std::move(it->second);
        quarantine_.erase(it);

        if (q.claims.size() != 1) {
            Alert a;
            a.kind = AlertKind::kSpoofSuspected;
            a.ip = ip;
            // Report the first two distinct claimants.
            auto claim_it = q.claims.begin();
            a.previous_mac = mac_from(*claim_it++);
            a.claimed_mac = mac_from(*claim_it);
            a.detail = std::to_string(q.claims.size()) + " stations claimed one IP during "
                                                         "verification on " + host.name();
            raise_(std::move(a));
            return;  // all held packets dropped; nothing admitted
        }

        const MacAddress winner = mac_from(*q.claims.begin());
        verified_[ip] = winner;
        // Admit the held packets carrying the winning claim (at most one
        // resume per packet; later packets for the same binding now match
        // verified_ and flow through normally).
        for (const Held& h : q.held) {
            if (h.pkt.sender_mac == winner) {
                host.resume_arp_processing(h.pkt, h.info, this);
            }
        }
    }

    static MacAddress mac_from(std::uint64_t v) {
        return MacAddress{static_cast<std::uint8_t>(v >> 40), static_cast<std::uint8_t>(v >> 32),
                          static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
                          static_cast<std::uint8_t>(v >> 8),  static_cast<std::uint8_t>(v)};
    }

    MiddlewareScheme::Options options_;
    std::function<void(Alert)> raise_;
    std::unordered_map<Ipv4Address, MacAddress> verified_;
    std::unordered_map<Ipv4Address, Quarantine> quarantine_;
};

SchemeTraits MiddlewareScheme::traits() const {
    SchemeTraits t;
    t.name = "middleware";
    t.vantage = "host";
    t.detects = true;
    t.prevents_poisoning = true;
    t.requires_per_host_deploy = true;
    t.handles_dynamic_ips = true;
    t.deployment_cost = CostBand::kMedium;
    t.runtime_cost = CostBand::kLow;  // one broadcast verification per new binding
    t.best_effort = true;  // the vote is forfeit if the true owner's answer is lost
    t.notes = "quarantines new/changed bindings behind an active LAN vote; "
              "guards creations too, at the cost of first-contact latency";
    return t;
}

void MiddlewareScheme::protect_host(host::Host& host) {
    host.add_arp_hook(std::make_shared<Hook>(options_, [this](Alert a) {
        alert(std::move(a));
    }));
}

}  // namespace arpsec::detect

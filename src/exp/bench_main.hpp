#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "core/scenario.hpp"
#include "exp/executor.hpp"
#include "exp/sweep.hpp"

namespace arpsec::exp {

/// Shared CLI surface of every bench binary. Tables go to stdout and must
/// be byte-identical for any --jobs value; timing and failure reports go
/// to stderr so the determinism gate can diff stdout + artifacts.
struct BenchOptions {
    std::size_t jobs = 1;
    bool smoke = false;          // ctest smoke variant: tiny net, short run
    std::string artifact_path;   // --out FILE (or positional, legacy)
    /// Replay-pipeline prime workers (--pipeline N; 0 = synchronous).
    /// Only the replay bench consumes these; other benches ignore them.
    std::size_t pipeline = 0;
    /// Frames per pipeline batch (--batch B).
    std::size_t batch_frames = 1024;
};

/// Parses --jobs N / --smoke / --out FILE / --pipeline N / --batch B plus
/// one optional positional artifact path (kept for callers of the
/// pre-engine benches, e.g. `fig3_detection_latency f3.runs.json`). Exits
/// on --help or bad usage.
[[nodiscard]] BenchOptions parse_bench_args(int argc, char** argv);

/// Shrinks a scenario to smoke proportions: 2 hosts, 12 s simulated with
/// the attack window at 4–9 s. Call from configure() when opts.smoke.
void apply_smoke(core::ScenarioConfig& cfg);

/// run_sweep + wall-clock and per-point failure report on stderr.
[[nodiscard]] SweepOutcome run_bench_sweep(const SweepSpec& spec, const BenchOptions& opt);

/// Writes the artifact when an output path was given, then maps failed
/// points to the exit code: 0 clean, 1 on any failure or write error.
[[nodiscard]] int finish_bench(const BenchOptions& opt, const SweepArtifact& artifact,
                               std::size_t failures);
/// Same exit-code policy for benches that produce no artifact.
[[nodiscard]] int finish_bench(std::size_t failures);

/// Failure report for case-map benches: prints every failed slot to
/// stderr, returns the failure count.
template <typename T>
std::size_t report_case_failures(std::string_view label, const std::vector<Outcome<T>>& outs) {
    std::size_t failures = 0;
    for (std::size_t i = 0; i < outs.size(); ++i) {
        if (!outs[i].failed) continue;
        ++failures;
        std::fprintf(stderr, "[bench] %.*s: case %zu failed: %s\n",
                     static_cast<int>(label.size()), label.data(), i, outs[i].error.c_str());
    }
    return failures;
}

}  // namespace arpsec::exp

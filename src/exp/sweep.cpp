#include "exp/sweep.hpp"

#include <cstdio>
#include <stdexcept>

#include "core/artifact.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"
#include "detect/registry.hpp"
#include "exp/executor.hpp"

namespace arpsec::exp {

namespace {

std::vector<std::string> effective_schemes(const SweepSpec& spec) {
    return spec.schemes.empty() ? std::vector<std::string>{""} : spec.schemes;
}

std::vector<std::uint64_t> effective_seeds(const SweepSpec& spec) {
    return spec.seeds.empty() ? std::vector<std::uint64_t>{1} : spec.seeds;
}

telemetry::Json axes_json(const std::vector<std::pair<std::string, std::string>>& values) {
    telemetry::Json obj = telemetry::Json::object();
    for (const auto& [name, value] : values) obj[name] = value;
    return obj;
}

telemetry::Json summary_json(const common::Summary& s) {
    telemetry::Json obj = telemetry::Json::object();
    obj["count"] = static_cast<std::int64_t>(s.count());
    obj["mean"] = s.mean();
    obj["stddev"] = s.stddev();
    obj["min"] = s.min();
    obj["max"] = s.max();
    return obj;
}

}  // namespace

// ---- Point ----------------------------------------------------------------

const std::string& Point::at(std::string_view axis) const {
    for (const auto& [name, value] : axis_values) {
        if (name == axis) return value;
    }
    throw std::out_of_range("sweep point has no axis '" + std::string{axis} + "'");
}

double Point::at_double(std::string_view axis) const { return std::stod(at(axis)); }

std::int64_t Point::at_int(std::string_view axis) const { return std::stoll(at(axis)); }

// ---- SweepSpec ------------------------------------------------------------

std::size_t SweepSpec::points_per_scheme() const {
    std::size_t n = effective_seeds(*this).size();
    for (const auto& axis : axes) n *= axis.values.size();
    return n;
}

std::size_t SweepSpec::point_count() const {
    return effective_schemes(*this).size() * points_per_scheme();
}

std::vector<Point> SweepSpec::enumerate() const {
    std::vector<Point> out;
    for (const auto& axis : axes) {
        if (axis.values.empty()) return out;  // empty cross product
    }
    const auto schemes_eff = effective_schemes(*this);
    const auto seeds_eff = effective_seeds(*this);
    out.reserve(point_count());

    std::size_t index = 0;
    for (const auto& scheme_name : schemes_eff) {
        std::vector<std::size_t> pos(axes.size(), 0);
        bool done = false;
        while (!done) {
            for (std::size_t r = 0; r < seeds_eff.size(); ++r) {
                Point p;
                p.index = index++;
                p.scheme = scheme_name;
                p.seed = seeds_eff[r];
                p.replicate = r;
                p.axis_values.reserve(axes.size());
                for (std::size_t a = 0; a < axes.size(); ++a) {
                    p.axis_values.emplace_back(axes[a].name, axes[a].values[pos[a]]);
                }
                out.push_back(std::move(p));
            }
            // Mixed-radix increment, last axis fastest (row-major).
            done = true;
            for (std::size_t a = axes.size(); a-- > 0;) {
                if (++pos[a] < axes[a].values.size()) {
                    done = false;
                    break;
                }
                pos[a] = 0;
            }
        }
    }
    return out;
}

telemetry::Json SweepSpec::to_json() const {
    telemetry::Json doc = telemetry::Json::object();
    doc["name"] = name;
    telemetry::Json scheme_list = telemetry::Json::array();
    for (const auto& s : schemes) scheme_list.push_back(s);
    doc["schemes"] = std::move(scheme_list);
    telemetry::Json axis_list = telemetry::Json::array();
    for (const auto& axis : axes) {
        telemetry::Json a = telemetry::Json::object();
        a["name"] = axis.name;
        telemetry::Json vals = telemetry::Json::array();
        for (const auto& v : axis.values) vals.push_back(v);
        a["values"] = std::move(vals);
        axis_list.push_back(std::move(a));
    }
    doc["axes"] = std::move(axis_list);
    telemetry::Json seed_list = telemetry::Json::array();
    for (const auto s : seeds) seed_list.push_back(static_cast<std::int64_t>(s));
    doc["seeds"] = std::move(seed_list);
    return doc;
}

// ---- Measures -------------------------------------------------------------

std::vector<std::pair<std::string, double>> standard_measures(const core::ScenarioResult& r) {
    std::vector<std::pair<std::string, double>> m = {
        {"attack_succeeded", r.attack_succeeded ? 1.0 : 0.0},
        {"poisoned_at_end", r.victim_poisoned_at_end ? 1.0 : 0.0},
        {"detected", r.alerts.true_positives > 0 ? 1.0 : 0.0},
        {"true_positives", static_cast<double>(r.alerts.true_positives)},
        {"false_positives", static_cast<double>(r.alerts.false_positives)},
        {"interception", r.attack_window.interception_ratio()},
        {"delivery", r.attack_window.delivery_ratio()},
        {"benign_delivery", r.benign_window.delivery_ratio()},
        {"resolve_p50_us", r.resolution_latency_us.median()},
        {"total_bytes", static_cast<double>(r.total_bytes)},
        {"arp_bytes", static_cast<double>(r.arp_bytes)},
        {"crypto_ops", static_cast<double>(r.crypto_ops.total())},
        {"events_executed", static_cast<double>(r.events_executed)},
    };
    if (r.alerts.detection_latency) {
        m.emplace_back("detection_latency_ms", r.alerts.detection_latency->to_millis());
    }
    return m;
}

const common::Summary* Aggregate::measure(std::string_view name) const {
    for (const auto& [key, summary] : measures) {
        if (key == name) return &summary;
    }
    return nullptr;
}

// ---- Execution ------------------------------------------------------------

SweepOutcome run_sweep(const SweepSpec& spec, const SweepOptions& opt) {
    SweepOutcome out;
    out.spec = spec;
    auto points = spec.enumerate();
    out.points.resize(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        out.points[i].point = std::move(points[i]);
    }

    const auto errors = run_indexed(out.points.size(), opt.jobs, [&](std::size_t i) {
        PointRun& pr = out.points[i];
        if (!spec.configure) throw std::runtime_error("sweep spec has no configure function");
        core::ScenarioConfig cfg = spec.configure(pr.point);
        std::unique_ptr<detect::Scheme> scheme;
        if (spec.factory) {
            scheme = spec.factory(pr.point);
        } else if (pr.point.scheme.empty()) {
            scheme = std::make_unique<detect::NullScheme>();
        } else {
            scheme = detect::make_scheme(pr.point.scheme);
        }
        if (scheme == nullptr) {
            throw std::runtime_error("unknown scheme '" + pr.point.scheme + "'");
        }
        core::ScenarioRunner runner(cfg);
        pr.result = runner.run(*scheme);
        pr.run = core::run_json(pr.result, &runner.metrics());
    });
    for (std::size_t i = 0; i < errors.size(); ++i) {
        if (errors[i].empty()) continue;
        out.points[i].failed = true;
        out.points[i].error = errors[i];
    }

    // Replicate aggregation: each group of |seeds| consecutive points is
    // one (scheme × axis point). Built post-hoc from the ordered runs, so
    // the aggregates are independent of worker scheduling too.
    const std::size_t nseeds = effective_seeds(spec).size();
    for (std::size_t base = 0; base + nseeds <= out.points.size(); base += nseeds) {
        Aggregate agg;
        agg.scheme = out.points[base].point.scheme;
        agg.axis_values = out.points[base].point.axis_values;
        for (std::size_t r = 0; r < nseeds; ++r) {
            const PointRun& pr = out.points[base + r];
            if (pr.failed) continue;
            ++agg.replicates;
            for (const auto& [name, value] : standard_measures(pr.result)) {
                common::Summary* summary = nullptr;
                for (auto& [key, s] : agg.measures) {
                    if (key == name) {
                        summary = &s;
                        break;
                    }
                }
                if (summary == nullptr) {
                    agg.measures.emplace_back(name, common::Summary{});
                    summary = &agg.measures.back().second;
                }
                summary->add(value);
            }
        }
        out.aggregates.push_back(std::move(agg));
    }
    return out;
}

// ---- SweepOutcome ---------------------------------------------------------

namespace {

std::size_t scheme_index(const SweepSpec& spec, std::string_view scheme) {
    const auto schemes_eff = effective_schemes(spec);
    for (std::size_t i = 0; i < schemes_eff.size(); ++i) {
        if (schemes_eff[i] == scheme) return i;
    }
    throw std::out_of_range("sweep has no scheme '" + std::string{scheme} + "'");
}

std::size_t axis_offset(const SweepSpec& spec, const std::vector<std::string>& values) {
    if (values.size() != spec.axes.size()) {
        throw std::out_of_range("axis value count does not match the spec");
    }
    std::size_t offset = 0;
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
        std::size_t vi = spec.axes[a].values.size();
        for (std::size_t v = 0; v < spec.axes[a].values.size(); ++v) {
            if (spec.axes[a].values[v] == values[a]) {
                vi = v;
                break;
            }
        }
        if (vi == spec.axes[a].values.size()) {
            throw std::out_of_range("axis '" + spec.axes[a].name + "' has no value '" +
                                    values[a] + "'");
        }
        offset = offset * spec.axes[a].values.size() + vi;
    }
    return offset;
}

}  // namespace

const PointRun& SweepOutcome::at(std::string_view scheme,
                                 const std::vector<std::string>& values,
                                 std::size_t replicate) const {
    const std::size_t nseeds = effective_seeds(spec).size();
    const std::size_t index = scheme_index(spec, scheme) * spec.points_per_scheme() +
                              axis_offset(spec, values) * nseeds + replicate;
    return points.at(index);
}

const Aggregate& SweepOutcome::aggregate_at(std::string_view scheme,
                                            const std::vector<std::string>& values) const {
    const std::size_t nseeds = effective_seeds(spec).size();
    const std::size_t per_scheme = spec.points_per_scheme() / nseeds;
    return aggregates.at(scheme_index(spec, scheme) * per_scheme + axis_offset(spec, values));
}

std::size_t SweepOutcome::failures() const {
    std::size_t n = 0;
    for (const auto& pr : points) n += pr.failed ? 1 : 0;
    return n;
}

telemetry::Json SweepOutcome::to_json() const {
    telemetry::Json doc = telemetry::Json::object();
    doc["spec"] = spec.to_json();

    telemetry::Json point_list = telemetry::Json::array();
    for (const auto& pr : points) {
        telemetry::Json p = telemetry::Json::object();
        p["index"] = static_cast<std::int64_t>(pr.point.index);
        if (!pr.point.scheme.empty()) p["scheme"] = pr.point.scheme;
        p["seed"] = static_cast<std::int64_t>(pr.point.seed);
        p["replicate"] = static_cast<std::int64_t>(pr.point.replicate);
        if (!pr.point.axis_values.empty()) p["axes"] = axes_json(pr.point.axis_values);
        p["failed"] = pr.failed;
        if (pr.failed) {
            p["error"] = pr.error;
        } else {
            p["run"] = pr.run;
        }
        point_list.push_back(std::move(p));
    }
    doc["points"] = std::move(point_list);

    telemetry::Json agg_list = telemetry::Json::array();
    for (const auto& agg : aggregates) {
        telemetry::Json a = telemetry::Json::object();
        if (!agg.scheme.empty()) a["scheme"] = agg.scheme;
        if (!agg.axis_values.empty()) a["axes"] = axes_json(agg.axis_values);
        a["replicates"] = static_cast<std::int64_t>(agg.replicates);
        telemetry::Json measures = telemetry::Json::object();
        for (const auto& [name, summary] : agg.measures) {
            measures[name] = summary_json(summary);
        }
        a["measures"] = std::move(measures);
        agg_list.push_back(std::move(a));
    }
    doc["aggregates"] = std::move(agg_list);
    return doc;
}

// ---- SweepArtifact --------------------------------------------------------

void SweepArtifact::set_meta(const std::string& key, telemetry::Json value) {
    meta_[key] = std::move(value);
}

telemetry::Json SweepArtifact::to_json() const {
    telemetry::Json root = telemetry::Json::object();
    root["schema"] = kSchema;
    root["producer"] = producer_;
    if (meta_.size() > 0) root["meta"] = meta_;
    root["sweeps"] = sweeps_;
    return root;
}

bool SweepArtifact::write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string text = to_json().dump(2) + "\n";
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return std::fclose(f) == 0 && ok;
}

std::string fmt_mean_sd(const common::Summary* s, int precision) {
    if (s == nullptr || s->empty()) return "n/a";
    if (s->count() < 2) return core::fmt_double(s->mean(), precision);
    return core::fmt_double(s->mean(), precision) + " ±" +
           core::fmt_double(s->stddev(), precision);
}

}  // namespace arpsec::exp

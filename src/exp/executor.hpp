#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace arpsec::exp {

/// Outcome slot of one task in a parallel map: either a value or the
/// message of the exception that aborted the task.
template <typename T>
struct Outcome {
    T value{};
    bool failed = false;
    std::string error;
};

/// Runs body(i) for every i in [0, n) on a pool of `jobs` std::thread
/// workers (inline when jobs <= 1), capturing any exception per index.
/// Returns per-index error strings ("" = success) in index order.
///
/// Workers pull indices from a shared atomic counter, so scheduling is
/// dynamic — but the output is positionally stable: as long as body(i) is
/// deterministic and touches no state shared across indices, results are
/// byte-identical for every job count. That independence is what the
/// no-threads-in-sim lint rule protects: each index builds its own
/// Network/Rng from its seed, and nothing below src/exp/ may spawn threads.
std::vector<std::string> run_indexed(std::size_t n, std::size_t jobs,
                                     const std::function<void(std::size_t)>& body);

/// Yields the calling thread's timeslice (std::this_thread::yield). Spin
/// loops in test code must call this instead of including <thread> — exp is
/// the sanctioned concurrency site, and a spin without a yield can pin a
/// single-core runner for an entire scheduling quantum per iteration.
void yield_thread() noexcept;

/// Sleeps the calling thread (std::this_thread::sleep_for) — the exp-routed
/// alternative to including <thread> for a wall-clock pause in test code.
void sleep_millis(unsigned ms);

/// Runs `peer` on a dedicated thread while `body` runs on the calling
/// thread, then joins — the sanctioned entry point for two-role
/// (client/server) concurrency in serve tests and benches. run_indexed
/// cannot express this: its workers pull from a shared counter, so one
/// worker may run both roles sequentially, deadlocking a peer that blocks
/// on the body's output. Returns the peer's exception message ("" when it
/// completed cleanly); a `body` exception propagates on the caller after
/// the peer is joined.
std::string run_pair(const std::function<void()>& peer,
                     const std::function<void()>& body);

/// Deterministic parallel map: out[i] = fn(i). T must be default- and
/// move-constructible; a throwing fn marks only its own slot failed.
template <typename T, typename Fn>
std::vector<Outcome<T>> map_indexed(std::size_t n, std::size_t jobs, Fn&& fn) {
    std::vector<Outcome<T>> out(n);
    auto errors = run_indexed(n, jobs, [&](std::size_t i) { out[i].value = fn(i); });
    for (std::size_t i = 0; i < n; ++i) {
        if (errors[i].empty()) continue;
        out[i].failed = true;
        out[i].error = std::move(errors[i]);
    }
    return out;
}

/// Declarative case map for benches whose points are not ScenarioRunner
/// sweeps (taxonomy cells, custom topologies): out[i] = fn(cases[i]).
template <typename T, typename Case, typename Fn>
std::vector<Outcome<T>> map_cases(const std::vector<Case>& cases, std::size_t jobs,
                                  Fn&& fn) {
    return map_indexed<T>(cases.size(), jobs, [&](std::size_t i) { return fn(cases[i]); });
}

/// Row-major cross product (a outer, b inner) — the declarative
/// replacement for the benches' hand-rolled nested loops.
template <typename A, typename B>
std::vector<std::pair<A, B>> cross(const std::vector<A>& as, const std::vector<B>& bs) {
    std::vector<std::pair<A, B>> out;
    out.reserve(as.size() * bs.size());
    for (const auto& a : as) {
        for (const auto& b : bs) out.emplace_back(a, b);
    }
    return out;
}

}  // namespace arpsec::exp

#include "exp/bench_main.hpp"

#include <cstdlib>
#include <cstring>

#include "common/time.hpp"

namespace arpsec::exp {

namespace {

[[noreturn]] void usage(const char* prog, int code) {
    std::FILE* out = code == 0 ? stdout : stderr;
    std::fprintf(out,
                 "usage: %s [--jobs N] [--smoke] [--out FILE] [--pipeline N] [--batch B] [FILE]\n"
                 "  --jobs N     worker threads for the sweep (default 1; output is\n"
                 "               byte-identical for every N)\n"
                 "  --smoke      tiny fast variant for ctest (2 hosts, 12s window)\n"
                 "  --out FILE   write the arpsec.sweep-artifact.v1 JSON to FILE\n"
                 "               (a bare positional FILE is accepted too)\n"
                 "  --pipeline N replay prime-stage workers (default 0 = synchronous;\n"
                 "               output is byte-identical for every N)\n"
                 "  --batch B    frames per replay pipeline batch (default 1024)\n",
                 prog);
    std::exit(code);
}

std::size_t parse_count(const char* prog, const char* text) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || v == 0) {
        std::fprintf(stderr, "%s: bad count '%s'\n", prog, text);
        std::exit(2);
    }
    return static_cast<std::size_t>(v);
}

}  // namespace

BenchOptions parse_bench_args(int argc, char** argv) {
    BenchOptions opt;
    const char* prog = argc > 0 ? argv[0] : "bench";
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            opt.jobs = parse_count(prog, argv[++i]);
        } else if (arg == "--pipeline" && i + 1 < argc) {
            // 0 is meaningful here (synchronous priming), so bypass
            // parse_count's zero rejection.
            const char* text = argv[++i];
            char* end = nullptr;
            const unsigned long v = std::strtoul(text, &end, 10);
            if (end == text || *end != '\0') {
                std::fprintf(stderr, "%s: bad count '%s'\n", prog, text);
                std::exit(2);
            }
            opt.pipeline = static_cast<std::size_t>(v);
        } else if (arg == "--batch" && i + 1 < argc) {
            opt.batch_frames = parse_count(prog, argv[++i]);
        } else if (arg == "--smoke") {
            opt.smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            opt.artifact_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            usage(prog, 0);
        } else if (!arg.empty() && arg[0] != '-' && opt.artifact_path.empty()) {
            opt.artifact_path = arg;
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n", prog, argv[i]);
            usage(prog, 2);
        }
    }
    return opt;
}

void apply_smoke(core::ScenarioConfig& cfg) {
    cfg.host_count = 2;
    cfg.duration = common::Duration::seconds(12);
    cfg.attack_start = common::Duration::seconds(4);
    cfg.attack_stop = common::Duration::seconds(9);
}

SweepOutcome run_bench_sweep(const SweepSpec& spec, const BenchOptions& opt) {
    common::Stopwatch sw;
    SweepOutcome outcome = run_sweep(spec, SweepOptions{opt.jobs});
    std::fprintf(stderr, "[bench] sweep '%s': %zu points, jobs=%zu, %.2fs wall\n",
                 spec.name.c_str(), outcome.points.size(), opt.jobs, sw.elapsed_seconds());
    for (const auto& pr : outcome.points) {
        if (!pr.failed) continue;
        std::fprintf(stderr, "[bench] sweep '%s': point %zu (%s seed=%llu) failed: %s\n",
                     spec.name.c_str(), pr.point.index, pr.point.scheme.c_str(),
                     static_cast<unsigned long long>(pr.point.seed), pr.error.c_str());
    }
    return outcome;
}

int finish_bench(const BenchOptions& opt, const SweepArtifact& artifact, std::size_t failures) {
    if (!opt.artifact_path.empty()) {
        if (!artifact.write(opt.artifact_path)) {
            std::fprintf(stderr, "[bench] failed to write artifact %s\n",
                         opt.artifact_path.c_str());
            return 1;
        }
        std::fprintf(stderr, "[bench] wrote %s (%zu sweeps)\n", opt.artifact_path.c_str(),
                     artifact.sweep_count());
    }
    return finish_bench(failures);
}

int finish_bench(std::size_t failures) {
    if (failures > 0) {
        std::fprintf(stderr, "[bench] %zu point(s) failed\n", failures);
        return 1;
    }
    return 0;
}

}  // namespace arpsec::exp

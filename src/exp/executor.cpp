#include "exp/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

namespace arpsec::exp {

std::vector<std::string> run_indexed(std::size_t n, std::size_t jobs,
                                     const std::function<void(std::size_t)>& body) {
    std::vector<std::string> errors(n);
    const auto run_one = [&](std::size_t i) {
        try {
            body(i);
        } catch (const std::exception& e) {
            errors[i] = e.what()[0] != '\0' ? e.what() : "exception";
        } catch (...) {
            errors[i] = "unknown exception";
        }
    };

    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i) run_one(i);
        return errors;
    }

    std::atomic<std::size_t> next{0};
    const std::size_t workers = std::min(jobs, n);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
                run_one(i);
            }
        });
    }
    for (auto& t : pool) t.join();
    return errors;
}

void yield_thread() noexcept { std::this_thread::yield(); }

void sleep_millis(unsigned ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::string run_pair(const std::function<void()>& peer,
                     const std::function<void()>& body) {
    std::string peer_error;
    std::thread t([&] {
        try {
            peer();
        } catch (const std::exception& e) {
            peer_error = e.what()[0] != '\0' ? e.what() : "exception";
        } catch (...) {
            peer_error = "unknown exception";
        }
    });
    try {
        body();
    } catch (...) {
        t.join();
        throw;
    }
    t.join();
    return peer_error;
}

}  // namespace arpsec::exp

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "core/scenario.hpp"
#include "detect/scheme.hpp"
#include "telemetry/json.hpp"

namespace arpsec::exp {

/// One named sweep parameter: an ordered list of printable values. The
/// engine enumerates the cross product of all axes; the spec's configure
/// function gives each value meaning.
struct Axis {
    std::string name;
    std::vector<std::string> values;
};

/// One enumerated grid point: scheme × axis values × seed replicate.
struct Point {
    std::size_t index = 0;      // dense position in enumeration order
    std::string scheme;         // from SweepSpec::schemes ("" when unused)
    std::uint64_t seed = 1;
    std::size_t replicate = 0;  // position in SweepSpec::seeds
    std::vector<std::pair<std::string, std::string>> axis_values;  // axis order

    /// Value of the named axis; throws std::out_of_range on unknown names
    /// (a spec bug — the executor reports the point as failed).
    [[nodiscard]] const std::string& at(std::string_view axis) const;
    [[nodiscard]] double at_double(std::string_view axis) const;
    [[nodiscard]] std::int64_t at_int(std::string_view axis) const;
};

/// Declarative description of a whole table/figure: scheme set × named
/// parameter axes × seed replicates, each point materializing one
/// ScenarioConfig. Enumeration order is schemes (outer), axes in
/// declaration order, seeds (inner) — the row order of the paper's tables.
struct SweepSpec {
    std::string name;
    std::vector<std::string> schemes;  // empty -> one pass with scheme ""
    std::vector<Axis> axes;
    std::vector<std::uint64_t> seeds{1};

    /// Pure point -> config. Called from worker threads: it must not touch
    /// shared mutable state. The config's seed is whatever this sets
    /// (typically `point.seed`, possibly offset per axis value).
    std::function<core::ScenarioConfig(const Point&)> configure;

    /// Optional scheme factory override for non-registry instances (e.g.
    /// TARP with short tickets). Default: detect::make_scheme(point.scheme),
    /// or NullScheme when the spec has no scheme set.
    std::function<std::unique_ptr<detect::Scheme>(const Point&)> factory;

    [[nodiscard]] std::size_t points_per_scheme() const;  // axis product × seeds
    [[nodiscard]] std::size_t point_count() const;
    [[nodiscard]] std::vector<Point> enumerate() const;

    [[nodiscard]] telemetry::Json to_json() const;
};

/// One executed sweep point.
struct PointRun {
    Point point;
    bool failed = false;
    std::string error;           // set when failed
    core::ScenarioResult result; // valid when !failed
    telemetry::Json run;         // core::run_json(config+result+metrics), ditto
};

/// Per-(scheme × axis point) aggregation of the standard scalar measures
/// over the seed replicates, via common::Summary.
struct Aggregate {
    std::string scheme;
    std::vector<std::pair<std::string, std::string>> axis_values;
    std::size_t replicates = 0;  // successful runs aggregated
    std::vector<std::pair<std::string, common::Summary>> measures;

    /// Summary for one measure; nullptr when it never occurred.
    /// detection_latency_ms exists only for runs that detected, so its
    /// count may be below `replicates`.
    [[nodiscard]] const common::Summary* measure(std::string_view name) const;
};

/// The scalar measures extracted from every successful run for replicate
/// aggregation, in artifact order.
[[nodiscard]] std::vector<std::pair<std::string, double>> standard_measures(
    const core::ScenarioResult& r);

/// All points of one executed sweep, in enumeration order (independent of
/// the worker count), plus the replicate aggregates.
struct SweepOutcome {
    SweepSpec spec;  // copied: drives lookups and the artifact spec block
    std::vector<PointRun> points;
    std::vector<Aggregate> aggregates;

    /// Point lookup by (scheme, axis values in axis order, replicate).
    [[nodiscard]] const PointRun& at(std::string_view scheme,
                                     const std::vector<std::string>& values,
                                     std::size_t replicate = 0) const;
    [[nodiscard]] const Aggregate& aggregate_at(
        std::string_view scheme, const std::vector<std::string>& values) const;

    [[nodiscard]] std::size_t failures() const;

    /// {"spec": ..., "points": [...], "aggregates": [...]} — one entry of a
    /// SweepArtifact's "sweeps" array.
    [[nodiscard]] telemetry::Json to_json() const;
};

struct SweepOptions {
    std::size_t jobs = 1;
};

/// Runs every point of `spec` — one independent ScenarioRunner + scheme
/// instance per point — fanned out over `jobs` workers. Results are
/// collected by point index, so tables and artifacts are byte-identical
/// for --jobs 1 and --jobs N (the simulator itself stays single-threaded
/// and deterministic per seed). A point whose worker throws is marked
/// failed; the sweep completes.
[[nodiscard]] SweepOutcome run_sweep(const SweepSpec& spec, const SweepOptions& opt = {});

/// Machine-readable envelope accumulating one or more sweeps from a bench
/// or the CLI: arpsec.sweep-artifact.v1.
class SweepArtifact {
public:
    static constexpr const char* kSchema = "arpsec.sweep-artifact.v1";

    explicit SweepArtifact(std::string producer) : producer_(std::move(producer)) {}

    void set_meta(const std::string& key, telemetry::Json value);
    void add(const SweepOutcome& outcome) { sweeps_.push_back(outcome.to_json()); }
    /// For benches whose points are not ScenarioRunner sweeps (e.g. trace
    /// replay throughput): append a pre-built sweep entry.
    void add_json(telemetry::Json sweep) { sweeps_.push_back(std::move(sweep)); }

    [[nodiscard]] std::size_t sweep_count() const { return sweeps_.size(); }

    [[nodiscard]] telemetry::Json to_json() const;
    /// Writes the artifact (pretty-printed) to `path`; false on I/O error.
    bool write(const std::string& path) const;

private:
    std::string producer_;
    telemetry::Json meta_ = telemetry::Json::object();
    telemetry::Json sweeps_ = telemetry::Json::array();
};

/// "mean ±sd" cell for aggregate tables ("n/a" when empty; plain mean when
/// fewer than two samples).
[[nodiscard]] std::string fmt_mean_sd(const common::Summary* s, int precision = 1);

}  // namespace arpsec::exp

#pragma once

#include <memory>
#include <string>

#include "sim/network.hpp"
#include "wire/pcap_writer.hpp"

namespace arpsec::sim {

/// Global capture tap that records every transmitted frame to a pcap file —
/// the equivalent of running tcpdump on a mirror of the whole fabric.
class PcapTap final : public CaptureTap {
public:
    explicit PcapTap(const std::string& path) : writer_(path) {}

    void on_capture(common::SimTime at, Endpoint from, Endpoint to,
                    const wire::FrameView& view) override {
        (void)from;
        (void)to;
        writer_.write(at, view.bytes());
    }

    [[nodiscard]] std::size_t frames() const { return writer_.frames_written(); }

private:
    wire::PcapWriter writer_;
};

}  // namespace arpsec::sim

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"
#include "telemetry/metrics.hpp"

namespace arpsec::sim {

using EventId = std::uint64_t;

/// Single-threaded discrete-event scheduler. Events at equal timestamps
/// fire in scheduling order (FIFO), which together with the deterministic
/// RNG makes whole simulations bit-for-bit reproducible.
class EventScheduler {
public:
    [[nodiscard]] common::SimTime now() const { return now_; }

    EventId schedule_at(common::SimTime at, std::function<void()> fn);
    EventId schedule_after(common::Duration delay, std::function<void()> fn);

    /// Cancels a pending event. Cancelling an already-fired or unknown id
    /// is a no-op. Returns true if the event was pending.
    bool cancel(EventId id);

    /// Runs the next event, if any. Returns false when the queue is empty.
    bool run_one();

    /// Runs events with timestamp <= deadline; leaves now() == deadline.
    /// Inline fast path: replay calls this once per trace frame, and almost
    /// always nothing is due — the queue is empty or its head (even a
    /// lazily-cancelled one, purged later) lies past the deadline.
    void run_until(common::SimTime deadline) {
        if (queue_.empty() || queue_.top().at > deadline) {
            if (now_ < deadline) now_ = deadline;
            return;
        }
        run_until_slow(deadline);
    }

    /// Runs events for the given duration past the current time.
    void run_for(common::Duration d) { run_until(now_ + d); }

    /// Drains the queue completely (bounded by `max_events` as a runaway
    /// guard). Returns the number of events executed.
    std::size_t run_all(std::size_t max_events = 100'000'000);

    [[nodiscard]] std::size_t pending() const { return queue_.size() - cancelled_.size(); }
    [[nodiscard]] std::uint64_t executed() const { return executed_; }

    /// Publishes scheduler activity into `registry` from now on:
    /// `sim.sched.events_executed` (counter) and `sim.sched.queue_depth`
    /// (gauge whose high-water mark records the deepest queue seen).
    /// Handles are resolved once here; the hot path pays one increment.
    void attach_metrics(telemetry::MetricsRegistry& registry);

private:
    struct Event {
        common::SimTime at;
        EventId id;
        std::function<void()> fn;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.at != b.at) return a.at > b.at;
            return a.id > b.id;
        }
    };

    bool fire_next();
    void run_until_slow(common::SimTime deadline);

    common::SimTime now_;
    EventId next_id_ = 1;
    std::uint64_t executed_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    std::unordered_set<EventId> cancelled_;
    telemetry::Counter* executed_metric_ = nullptr;
    telemetry::Gauge* queue_depth_metric_ = nullptr;
};

}  // namespace arpsec::sim

#include "sim/event_scheduler.hpp"

#include <cassert>
#include <stdexcept>

namespace arpsec::sim {

EventId EventScheduler::schedule_at(common::SimTime at, std::function<void()> fn) {
    if (at < now_) at = now_;  // events cannot fire in the past
    const EventId id = next_id_++;
    queue_.push(Event{at, id, std::move(fn)});
    if (queue_depth_metric_ != nullptr) {
        queue_depth_metric_->set(static_cast<std::int64_t>(pending()));
    }
    return id;
}

void EventScheduler::attach_metrics(telemetry::MetricsRegistry& registry) {
    executed_metric_ = &registry.counter("sim.sched.events_executed");
    queue_depth_metric_ = &registry.gauge("sim.sched.queue_depth");
    queue_depth_metric_->set(static_cast<std::int64_t>(pending()));
}

EventId EventScheduler::schedule_after(common::Duration delay, std::function<void()> fn) {
    assert(delay >= common::Duration::zero());
    return schedule_at(now_ + delay, std::move(fn));
}

bool EventScheduler::cancel(EventId id) {
    if (id == 0 || id >= next_id_) return false;
    return cancelled_.insert(id).second;
}

bool EventScheduler::fire_next() {
    while (!queue_.empty()) {
        Event ev = queue_.top();
        queue_.pop();
        if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        now_ = ev.at;
        ++executed_;
        if (executed_metric_ != nullptr) executed_metric_->inc();
        ev.fn();
        return true;
    }
    return false;
}

bool EventScheduler::run_one() { return fire_next(); }

void EventScheduler::run_until_slow(common::SimTime deadline) {
    while (!queue_.empty()) {
        // Peek past cancelled entries without firing. The hash lookup is
        // guarded by empty(): with nothing cancelled (the common case) it
        // was measurably hot.
        const Event& top = queue_.top();
        if (!cancelled_.empty() && cancelled_.count(top.id) != 0) {
            cancelled_.erase(top.id);
            queue_.pop();
            continue;
        }
        if (top.at > deadline) break;
        fire_next();
    }
    if (now_ < deadline) now_ = deadline;
}

std::size_t EventScheduler::run_all(std::size_t max_events) {
    std::size_t n = 0;
    while (n < max_events && fire_next()) ++n;
    if (n == max_events) {
        throw std::runtime_error("EventScheduler::run_all: event budget exhausted (livelock?)");
    }
    return n;
}

}  // namespace arpsec::sim

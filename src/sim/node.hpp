#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "wire/ethernet.hpp"
#include "wire/frame.hpp"

namespace arpsec::sim {

class Network;

using NodeId = std::uint32_t;
using PortId = std::uint16_t;

constexpr NodeId kInvalidNode = 0xFFFFFFFF;

/// One end of a link.
struct Endpoint {
    NodeId node = kInvalidNode;
    PortId port = 0;
    bool operator==(const Endpoint&) const = default;
};

/// Base class for everything attached to the simulated LAN: hosts,
/// switches, attackers, servers, passive monitors.
class Node {
public:
    explicit Node(std::string name) : name_(std::move(name)) {}
    virtual ~Node() = default;

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] NodeId id() const { return id_; }

    /// Called once, at simulated time zero, after all nodes are wired up.
    virtual void start() {}

    /// A frame arrived on `in_port`. The view shares the origin's
    /// serialized buffer (never a copy) and memoizes header/ARP parses, so
    /// however many nodes inspect the frame, it is decoded at most once.
    /// `view.bytes()` is the exact byte stream as it appeared on the wire.
    virtual void on_frame(PortId in_port, const wire::FrameView& view) = 0;

    /// A frame arrived that failed to parse (corrupted). Default: ignore.
    virtual void on_bad_frame(PortId in_port, std::span<const std::uint8_t> raw) {
        (void)in_port;
        (void)raw;
    }

    /// The network this node is attached to. Valid after attachment.
    /// Public so applications and schemes attached to a node can reach the
    /// scheduler and clock.
    [[nodiscard]] Network& network() const { return *network_; }

protected:
    friend class Network;

    /// Originates a frame out of the given local port: serializes it into
    /// a fresh FrameBuffer exactly once (counted in sim.net.serializations).
    void send(PortId out_port, const wire::EthernetFrame& frame);

    /// Forwards an already-serialized frame verbatim (switch flood/mirror,
    /// replay injection): the receiver shares the same FrameBuffer, zero
    /// re-serialization and zero copies.
    void send(PortId out_port, const wire::FrameView& view);

private:
    std::string name_;
    NodeId id_ = kInvalidNode;
    Network* network_ = nullptr;
};

}  // namespace arpsec::sim

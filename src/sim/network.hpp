#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/event_scheduler.hpp"
#include "sim/node.hpp"
#include "telemetry/metrics.hpp"

namespace arpsec::sim {

/// Physical characteristics of a point-to-point Ethernet link.
struct LinkConfig {
    common::Duration latency = common::Duration::micros(5);  // propagation delay
    std::uint64_t bandwidth_bps = 100'000'000;               // 100 Mbit/s FastEthernet
    double loss_probability = 0.0;                           // iid frame loss

    static LinkConfig fast_ethernet() { return {}; }
    static LinkConfig gigabit() {
        return LinkConfig{common::Duration::micros(2), 1'000'000'000, 0.0};
    }
};

/// Observes every frame as it is put on a wire. Used for pcap capture and
/// for network-wide statistics; *schemes* never use global taps (they see
/// traffic only through their own vantage point). The view shares the
/// transmit buffer — taps read, never copy (view.bytes() is the raw wire
/// stream) — and any header parse a tap performs is memoized for the
/// eventual receiver.
class CaptureTap {
public:
    virtual ~CaptureTap() = default;
    virtual void on_capture(common::SimTime at, Endpoint from, Endpoint to,
                            const wire::FrameView& view) = 0;
};

/// Counts of traffic placed on the wire, by EtherType.
struct TrafficCounters {
    std::uint64_t frames = 0;
    std::uint64_t bytes = 0;
    /// Frames serialized at origin. Forwarded frames (switch flood/mirror,
    /// replay injection) share the origin buffer and do not re-serialize,
    /// so in a flood-heavy run this equals frames *originated*, not frames
    /// placed on wires.
    std::uint64_t serializations = 0;
    std::uint64_t arp_frames = 0;
    std::uint64_t arp_bytes = 0;
    std::uint64_t ipv4_frames = 0;
    std::uint64_t ipv4_bytes = 0;
    std::uint64_t dropped_frames = 0;    // link loss
    std::uint64_t delivered_frames = 0;  // handed to the destination node
    std::uint64_t in_flight_frames = 0;  // scheduled but not yet delivered

    /// Conservation law every run must satisfy at every instant: each frame
    /// put on a wire is delivered, lost, or still propagating. The DST
    /// checker asserts this after every injected event.
    [[nodiscard]] bool conserved() const {
        return frames == delivered_frames + dropped_frames + in_flight_frames;
    }
};

/// The simulated LAN: owns nodes, links, the event scheduler and the
/// per-run RNG. This is the substitution for the paper's physical testbed.
class Network {
public:
    explicit Network(std::uint64_t seed);

    // Non-copyable, non-movable: nodes hold back-pointers.
    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;

    [[nodiscard]] EventScheduler& scheduler() { return scheduler_; }
    [[nodiscard]] common::SimTime now() const { return scheduler_.now(); }
    [[nodiscard]] std::uint64_t seed() const { return seed_; }

    /// Adds a node; the network takes ownership and assigns the id.
    NodeId add_node(std::unique_ptr<Node> node);

    /// Constructs a node in place and returns a reference to it.
    template <class T, class... Args>
    T& emplace_node(Args&&... args) {
        auto owned = std::make_unique<T>(std::forward<Args>(args)...);
        T& ref = *owned;
        add_node(std::move(owned));
        return ref;
    }

    [[nodiscard]] Node& node(NodeId id);
    [[nodiscard]] const Node& node(NodeId id) const;
    [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

    /// Connects two node ports with a full-duplex link.
    void connect(Endpoint a, Endpoint b, LinkConfig config = {});

    /// Originates `frame` out of (from.node, from.port): serializes it into
    /// a refcounted FrameBuffer exactly once, then transmits the shared
    /// view. Models serialization delay, FIFO queueing per link direction,
    /// propagation delay and loss.
    void transmit(Endpoint from, const wire::EthernetFrame& frame);

    /// Forwards an already-serialized frame: the same FrameBuffer flows to
    /// taps, the loss model, and the delivery closure — no copy, no
    /// re-serialization, and the receiver reuses any memoized parse.
    void transmit(Endpoint from, const wire::FrameView& view);

    /// Fork a deterministic RNG stream for an entity.
    [[nodiscard]] common::Rng fork_rng(std::uint64_t stream_id) const {
        return rng_root_.fork(stream_id);
    }

    void add_tap(CaptureTap* tap) { taps_.push_back(tap); }

    /// Schedules start() for every node at the current time and returns.
    void start_all();

    [[nodiscard]] const TrafficCounters& counters() const { return counters_; }

    /// Mirrors wire activity into `registry` from now on (`sim.net.*`
    /// counters) and attaches the scheduler's metrics too. Counter handles
    /// are resolved once; transmit() then pays plain increments.
    void attach_metrics(telemetry::MetricsRegistry& registry);

    /// Deterministic per-transmit loss decisions use this stream.
    [[nodiscard]] common::Rng& loss_rng() { return loss_rng_; }

private:
    struct Wire {
        Endpoint peer;
        LinkConfig config;
        common::SimTime next_free;  // when the transmitter may start the next frame
    };

    [[nodiscard]] Wire* wire_at(Endpoint e);

    std::uint64_t seed_;
    EventScheduler scheduler_;
    common::Rng rng_root_;
    common::Rng loss_rng_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::map<std::pair<NodeId, PortId>, Wire> wires_;
    std::vector<CaptureTap*> taps_;
    TrafficCounters counters_;
    bool started_ = false;

    struct WireMetrics {
        telemetry::Counter* frames = nullptr;
        telemetry::Counter* bytes = nullptr;
        telemetry::Counter* serializations = nullptr;
        telemetry::Counter* arp_frames = nullptr;
        telemetry::Counter* arp_bytes = nullptr;
        telemetry::Counter* ipv4_frames = nullptr;
        telemetry::Counter* ipv4_bytes = nullptr;
        telemetry::Counter* dropped_frames = nullptr;
    };
    WireMetrics metrics_;
};

}  // namespace arpsec::sim

#include "sim/network.hpp"

#include <cassert>
#include <stdexcept>

#include "common/log.hpp"

namespace arpsec::sim {

Network::Network(std::uint64_t seed)
    : seed_(seed), rng_root_(seed), loss_rng_(rng_root_.fork(0x1055)) {}

NodeId Network::add_node(std::unique_ptr<Node> node) {
    const NodeId id = static_cast<NodeId>(nodes_.size());
    node->id_ = id;
    node->network_ = this;
    nodes_.push_back(std::move(node));
    if (started_) {
        // Late joiners (e.g. hosts arriving mid-scenario) start immediately.
        Node* raw = nodes_.back().get();
        scheduler_.schedule_after(common::Duration::zero(), [raw] { raw->start(); });
    }
    return id;
}

Node& Network::node(NodeId id) {
    if (id >= nodes_.size()) throw std::out_of_range("Network::node: bad id");
    return *nodes_[id];
}

const Node& Network::node(NodeId id) const {
    if (id >= nodes_.size()) throw std::out_of_range("Network::node: bad id");
    return *nodes_[id];
}

void Network::connect(Endpoint a, Endpoint b, LinkConfig config) {
    if (a.node >= nodes_.size() || b.node >= nodes_.size()) {
        throw std::out_of_range("Network::connect: unknown node");
    }
    const auto key_a = std::make_pair(a.node, a.port);
    const auto key_b = std::make_pair(b.node, b.port);
    if (wires_.count(key_a) != 0 || wires_.count(key_b) != 0) {
        throw std::logic_error("Network::connect: port already wired");
    }
    wires_[key_a] = Wire{b, config, common::SimTime::zero()};
    wires_[key_b] = Wire{a, config, common::SimTime::zero()};
}

Network::Wire* Network::wire_at(Endpoint e) {
    auto it = wires_.find(std::make_pair(e.node, e.port));
    return it == wires_.end() ? nullptr : &it->second;
}

void Network::transmit(Endpoint from, const wire::EthernetFrame& frame) {
    if (wire_at(from) == nullptr) return;  // unplugged: don't serialize into the void
    counters_.serializations += 1;
    if (metrics_.serializations != nullptr) metrics_.serializations->inc();
    transmit(from, wire::FrameView{wire::FrameBuffer::serialize(frame)});
}

void Network::transmit(Endpoint from, const wire::FrameView& view) {
    Wire* w = wire_at(from);
    if (w == nullptr) return;  // unplugged port: frame vanishes, like real hardware

    const std::size_t raw_size = view.bytes().size();

    counters_.frames += 1;
    counters_.bytes += raw_size;
    if (metrics_.frames != nullptr) {
        metrics_.frames->inc();
        metrics_.bytes->inc(raw_size);
    }
    if (view.ok() && view.ether_type() == wire::EtherType::kArp) {
        counters_.arp_frames += 1;
        counters_.arp_bytes += raw_size;
        if (metrics_.arp_frames != nullptr) {
            metrics_.arp_frames->inc();
            metrics_.arp_bytes->inc(raw_size);
        }
    } else {
        counters_.ipv4_frames += 1;
        counters_.ipv4_bytes += raw_size;
        if (metrics_.ipv4_frames != nullptr) {
            metrics_.ipv4_frames->inc();
            metrics_.ipv4_bytes->inc(raw_size);
        }
    }

    // FIFO per link direction: serialization starts when the previous frame
    // has left the NIC.
    const common::SimTime start_tx = std::max(scheduler_.now(), w->next_free);
    const auto tx_ns = static_cast<std::int64_t>(raw_size * 8ULL * 1'000'000'000ULL /
                                                 w->config.bandwidth_bps);
    const common::Duration tx_delay{tx_ns};
    w->next_free = start_tx + tx_delay;
    const common::SimTime arrival = start_tx + tx_delay + w->config.latency;

    for (CaptureTap* tap : taps_) tap->on_capture(scheduler_.now(), from, w->peer, view);

    if (w->config.loss_probability > 0.0 && loss_rng_.chance(w->config.loss_probability)) {
        counters_.dropped_frames += 1;
        if (metrics_.dropped_frames != nullptr) metrics_.dropped_frames->inc();
        return;
    }

    const Endpoint to = w->peer;
    counters_.in_flight_frames += 1;
    // The closure captures the refcounted view — one shared_ptr bump, never
    // a byte copy — and the receiver reuses whatever the taps memoized.
    scheduler_.schedule_at(arrival, [this, to, view] {
        counters_.in_flight_frames -= 1;
        counters_.delivered_frames += 1;
        Node& receiver = node(to.node);
        if (view.ok()) {
            receiver.on_frame(to.port, view);
        } else {
            receiver.on_bad_frame(to.port, view.bytes());
        }
    });
}

void Network::attach_metrics(telemetry::MetricsRegistry& registry) {
    metrics_.frames = &registry.counter("sim.net.frames");
    metrics_.bytes = &registry.counter("sim.net.bytes");
    metrics_.serializations = &registry.counter("sim.net.serializations");
    metrics_.arp_frames = &registry.counter("sim.net.arp_frames");
    metrics_.arp_bytes = &registry.counter("sim.net.arp_bytes");
    metrics_.ipv4_frames = &registry.counter("sim.net.ipv4_frames");
    metrics_.ipv4_bytes = &registry.counter("sim.net.ipv4_bytes");
    metrics_.dropped_frames = &registry.counter("sim.net.dropped_frames");
    scheduler_.attach_metrics(registry);
}

void Network::start_all() {
    started_ = true;
    for (auto& n : nodes_) {
        Node* raw = n.get();
        scheduler_.schedule_after(common::Duration::zero(), [raw] { raw->start(); });
    }
}

void Node::send(PortId out_port, const wire::EthernetFrame& frame) {
    network().transmit(Endpoint{id(), out_port}, frame);
}

void Node::send(PortId out_port, const wire::FrameView& view) {
    network().transmit(Endpoint{id(), out_port}, view);
}

}  // namespace arpsec::sim

#include "crypto/schnorr.hpp"

#include <cassert>

namespace arpsec::crypto {
namespace {

using U128 = unsigned __int128;

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
    return static_cast<std::uint64_t>(static_cast<U128>(a) * b % m);
}

std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
    std::uint64_t result = 1;
    base %= m;
    while (exp > 0) {
        if ((exp & 1) != 0) result = mulmod(result, base, m);
        base = mulmod(base, base, m);
        exp >>= 1;
    }
    return result;
}

/// Hash-to-scalar: H(domain || parts...) reduced mod q.
std::uint64_t hash_to_scalar(const SchnorrGroup& group, std::string_view domain,
                             std::initializer_list<std::span<const std::uint8_t>> parts) {
    Sha256 h;
    h.update(domain);
    for (auto part : parts) h.update(part);
    std::uint64_t v = digest_prefix_u64(h.finish()) % group.q();
    if (v == 0) v = 1;  // scalars must be non-zero
    return v;
}

std::array<std::uint8_t, 8> u64_bytes(std::uint64_t v) {
    std::array<std::uint8_t, 8> b{};
    for (int i = 0; i < 8; ++i) b[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (56 - 8 * i));
    return b;
}

}  // namespace

bool is_prime_u64(std::uint64_t n) {
    if (n < 2) return false;
    for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL, 29ULL,
                            31ULL, 37ULL}) {
        if (n % p == 0) return n == p;
    }
    std::uint64_t d = n - 1;
    int r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }
    // This witness set is deterministic for all n < 2^64.
    for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL, 29ULL,
                            31ULL, 37ULL}) {
        std::uint64_t x = powmod(a, d, n);
        if (x == 1 || x == n - 1) continue;
        bool composite = true;
        for (int i = 1; i < r; ++i) {
            x = mulmod(x, x, n);
            if (x == n - 1) {
                composite = false;
                break;
            }
        }
        if (composite) return false;
    }
    return true;
}

SchnorrGroup::SchnorrGroup() {
    // Safe-prime construction: the largest q < 2^61 with both q and
    // p = 2q + 1 prime (so p < 2^62 and 128-bit mulmod never overflows).
    // The search is deterministic and self-verifying (Miller-Rabin exact
    // for 64-bit inputs); it lands on q = 2305843009213688669.
    for (std::uint64_t q = (1ULL << 61) - 1;; --q) {
        if (is_prime_u64(q) && is_prime_u64(2 * q + 1)) {
            q_ = q;
            p_ = 2 * q + 1;
            break;
        }
    }
    // Any quadratic residue generates the order-q subgroup; 2^2 = 4 works.
    g_ = 4;
    assert(g_ != 1 && powmod(g_, q_, p_) == 1);
}

const SchnorrGroup& SchnorrGroup::standard() {
    static const SchnorrGroup group;
    return group;
}

std::uint64_t SchnorrGroup::pow_mod_p(std::uint64_t base, std::uint64_t exp) const {
    return powmod(base, exp, p_);
}

std::uint64_t SchnorrGroup::mul_mod_p(std::uint64_t a, std::uint64_t b) const {
    return mulmod(a, b, p_);
}

wire::Bytes Signature::serialize() const {
    wire::Bytes out;
    wire::ByteWriter w{out};
    w.u64(e);
    w.u64(s);
    return out;
}

Signature Signature::deserialize(std::span<const std::uint8_t> data) {
    wire::ByteReader r{data};
    Signature sig;
    sig.e = r.u64();
    sig.s = r.u64();
    if (!r.ok()) return Signature{};  // (0,0) never verifies
    return sig;
}

wire::Bytes PublicKey::serialize() const {
    wire::Bytes out;
    wire::ByteWriter w{out};
    w.u64(y_);
    return out;
}

PublicKey PublicKey::deserialize(std::span<const std::uint8_t> data) {
    wire::ByteReader r{data};
    const std::uint64_t y = r.u64();
    return r.ok() ? PublicKey{y} : PublicKey{};
}

KeyPair KeyPair::derive(std::uint64_t seed) {
    const auto& group = SchnorrGroup::standard();
    const auto seed_bytes = u64_bytes(seed);
    const std::uint64_t sk = hash_to_scalar(group, "arpsec.keygen.v1", {seed_bytes});
    const std::uint64_t y = group.pow_mod_p(group.g(), sk);
    return KeyPair{sk, PublicKey{y}};
}

Signature KeyPair::sign(std::span<const std::uint8_t> message) const {
    const auto& group = SchnorrGroup::standard();
    // Deterministic nonce derived from the secret key and the message
    // (RFC 6979 in spirit): never reuses a nonce across messages.
    const auto sk_bytes = u64_bytes(sk_);
    const std::uint64_t k = hash_to_scalar(group, "arpsec.nonce.v1", {sk_bytes, message});
    const std::uint64_t r = group.pow_mod_p(group.g(), k);
    const auto r_bytes = u64_bytes(r);
    const std::uint64_t e = hash_to_scalar(group, "arpsec.challenge.v1", {r_bytes, message});
    // s = k + e * sk (mod q)
    const std::uint64_t es =
        static_cast<std::uint64_t>(static_cast<U128>(e) * sk_ % group.q());
    const std::uint64_t s = (k + es) % group.q();
    return Signature{e, s};
}

bool PublicKey::verify(std::span<const std::uint8_t> message, const Signature& sig) const {
    const auto& group = SchnorrGroup::standard();
    if (!valid() || sig.e == 0 || sig.e >= group.q() || sig.s >= group.q()) return false;
    // r' = g^s * y^(-e) = g^s * y^(q - e)
    const std::uint64_t gs = group.pow_mod_p(group.g(), sig.s);
    const std::uint64_t ye = group.pow_mod_p(y_, group.q() - sig.e);
    const std::uint64_t r = group.mul_mod_p(gs, ye);
    const auto r_bytes = u64_bytes(r);
    Sha256 h;
    h.update("arpsec.challenge.v1");
    h.update(r_bytes);
    h.update(message);
    std::uint64_t e = digest_prefix_u64(h.finish()) % group.q();
    if (e == 0) e = 1;
    return e == sig.e;
}

}  // namespace arpsec::crypto

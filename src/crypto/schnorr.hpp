#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "crypto/sha256.hpp"
#include "wire/buffer.hpp"

namespace arpsec::crypto {

/// Schnorr signatures over a prime-order subgroup of Z_p*.
///
/// SIMULATION-GRADE ONLY: the group order is ~2^61 (chosen so all modular
/// arithmetic fits in unsigned __int128), which gives nowhere near the
/// security of the DSA-1024/RSA keys S-ARP and TARP use in the paper's
/// setting. What the reproduction needs is faithful *protocol* behaviour —
/// real keys, real sign/verify operations that fail on any forged byte, and
/// wire-format signatures of realistic shape — while the *cost* of
/// 2007-class asymmetric crypto is charged through crypto::CostModel.
/// See DESIGN.md §2 for the substitution rationale.
class SchnorrGroup {
public:
    /// The shared group parameters (p, q, g). Constructed deterministically
    /// from a fixed Mersenne prime q = 2^61 - 1 by searching for the
    /// smallest k with p = k*q + 1 prime; self-verified with Miller-Rabin.
    static const SchnorrGroup& standard();

    [[nodiscard]] std::uint64_t p() const { return p_; }
    [[nodiscard]] std::uint64_t q() const { return q_; }
    [[nodiscard]] std::uint64_t g() const { return g_; }

    [[nodiscard]] std::uint64_t pow_mod_p(std::uint64_t base, std::uint64_t exp) const;
    [[nodiscard]] std::uint64_t mul_mod_p(std::uint64_t a, std::uint64_t b) const;
    [[nodiscard]] std::uint64_t reduce_mod_q(std::uint64_t v) const { return v % q_; }

private:
    SchnorrGroup();
    std::uint64_t p_;
    std::uint64_t q_;
    std::uint64_t g_;
};

struct Signature {
    std::uint64_t e = 0;  // challenge
    std::uint64_t s = 0;  // response

    static constexpr std::size_t kWireSize = 16;
    [[nodiscard]] wire::Bytes serialize() const;
    static Signature deserialize(std::span<const std::uint8_t> data);
    bool operator==(const Signature&) const = default;
};

class PublicKey {
public:
    PublicKey() = default;
    explicit PublicKey(std::uint64_t y) : y_(y) {}

    [[nodiscard]] std::uint64_t y() const { return y_; }
    [[nodiscard]] bool valid() const { return y_ != 0; }

    /// Verifies `sig` over `message`.
    [[nodiscard]] bool verify(std::span<const std::uint8_t> message, const Signature& sig) const;

    static constexpr std::size_t kWireSize = 8;
    [[nodiscard]] wire::Bytes serialize() const;
    static PublicKey deserialize(std::span<const std::uint8_t> data);

    bool operator==(const PublicKey&) const = default;

private:
    std::uint64_t y_ = 0;
};

class KeyPair {
public:
    /// Derives a key pair deterministically from a seed (each simulated
    /// principal uses its stable node id as seed material).
    static KeyPair derive(std::uint64_t seed);

    [[nodiscard]] const PublicKey& public_key() const { return pub_; }

    /// Signs `message` with a deterministic (RFC 6979-style) nonce.
    [[nodiscard]] Signature sign(std::span<const std::uint8_t> message) const;

private:
    KeyPair(std::uint64_t sk, PublicKey pub) : sk_(sk), pub_(pub) {}
    std::uint64_t sk_ = 0;
    PublicKey pub_;
};

/// Deterministic 64-bit Miller-Rabin primality test (exact for all 64-bit
/// inputs with the standard witness set). Exposed for tests.
[[nodiscard]] bool is_prime_u64(std::uint64_t n);

}  // namespace arpsec::crypto

#pragma once

#include "common/time.hpp"

namespace arpsec::crypto {

/// Models the *latency* of 2007-class asymmetric cryptography so that the
/// simulated clock reflects what S-ARP/TARP cost on the paper's hardware,
/// even though the simulation-grade Schnorr operations themselves run in
/// microseconds. Defaults follow the published S-ARP measurements
/// (DSA-1024-class signing on ~2 GHz desktop CPUs).
struct CostModel {
    common::Duration sign = common::Duration::millis(2);        // private-key op
    common::Duration verify = common::Duration::micros(2500);   // public-key op + hash
    common::Duration hash = common::Duration::micros(5);        // SHA-256 over one ARP packet
    common::Duration hmac = common::Duration::micros(8);

    /// A free cost model (used to isolate protocol overhead from crypto
    /// cost in the ablation benches).
    static CostModel free() { return CostModel{.sign = common::Duration::zero(),
                                               .verify = common::Duration::zero(),
                                               .hash = common::Duration::zero(),
                                               .hmac = common::Duration::zero()}; }

    /// Uniformly scales all costs (for the F1 cost-sweep bench).
    [[nodiscard]] CostModel scaled(double factor) const {
        auto scale = [factor](common::Duration d) {
            return common::Duration{static_cast<std::int64_t>(
                static_cast<double>(d.count()) * factor)};
        };
        return CostModel{.sign = scale(sign), .verify = scale(verify), .hash = scale(hash),
                         .hmac = scale(hmac)};
    }
};

/// Counts of cryptographic operations performed, for the CPU-cost column of
/// the comparison matrix.
struct OpCounters {
    std::uint64_t signs = 0;
    std::uint64_t verifies = 0;
    std::uint64_t hashes = 0;
    std::uint64_t hmacs = 0;

    OpCounters& operator+=(const OpCounters& o) {
        signs += o.signs;
        verifies += o.verifies;
        hashes += o.hashes;
        hmacs += o.hmacs;
        return *this;
    }
    [[nodiscard]] std::uint64_t total() const { return signs + verifies + hashes + hmacs; }
};

}  // namespace arpsec::crypto

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace arpsec::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 (FIPS 180-4). Implemented from scratch so the
/// framework has no external crypto dependency; validated against the FIPS
/// test vectors in tests/crypto_test.cpp.
class Sha256 {
public:
    Sha256();

    void update(std::span<const std::uint8_t> data);
    void update(std::string_view text);

    /// Finalizes and returns the digest. The object must not be updated
    /// afterwards (reset() starts a new hash).
    Digest finish();

    void reset();

    static Digest hash(std::span<const std::uint8_t> data);
    static Digest hash(std::string_view text);

private:
    void process_block(const std::uint8_t* block);

    std::array<std::uint32_t, 8> state_{};
    std::array<std::uint8_t, 64> buffer_{};
    std::size_t buffer_len_ = 0;
    std::uint64_t total_len_ = 0;
};

/// Digest rendered as lowercase hex.
[[nodiscard]] std::string to_hex(const Digest& d);

/// First 8 bytes of the digest as a big-endian integer (used to derive
/// scalars and short commitments).
[[nodiscard]] std::uint64_t digest_prefix_u64(const Digest& d);

}  // namespace arpsec::crypto

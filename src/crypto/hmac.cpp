#include "crypto/hmac.hpp"

#include <array>

namespace arpsec::crypto {

Digest hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> message) {
    constexpr std::size_t kBlockSize = 64;
    std::array<std::uint8_t, kBlockSize> key_block{};
    if (key.size() > kBlockSize) {
        const Digest kd = Sha256::hash(key);
        std::copy(kd.begin(), kd.end(), key_block.begin());
    } else {
        std::copy(key.begin(), key.end(), key_block.begin());
    }

    std::array<std::uint8_t, kBlockSize> ipad{};
    std::array<std::uint8_t, kBlockSize> opad{};
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        ipad[i] = key_block[i] ^ 0x36;
        opad[i] = key_block[i] ^ 0x5c;
    }

    Sha256 inner;
    inner.update(ipad);
    inner.update(message);
    const Digest inner_digest = inner.finish();

    Sha256 outer;
    outer.update(opad);
    outer.update(inner_digest);
    return outer.finish();
}

bool digest_equal(const Digest& a, const Digest& b) {
    std::uint8_t diff = 0;
    for (std::size_t i = 0; i < a.size(); ++i) diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
    return diff == 0;
}

}  // namespace arpsec::crypto

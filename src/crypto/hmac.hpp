#pragma once

#include <span>

#include "crypto/sha256.hpp"

namespace arpsec::crypto {

/// HMAC-SHA256 (RFC 2104), validated against the RFC 4231 test vectors.
[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message);

/// Constant-pattern comparison helper (simulation code does not need
/// timing resistance, but centralizing the comparison keeps call sites
/// honest about comparing full digests).
[[nodiscard]] bool digest_equal(const Digest& a, const Digest& b);

}  // namespace arpsec::crypto

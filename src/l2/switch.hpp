#pragma once

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "l2/cam_table.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "telemetry/metrics.hpp"
#include "wire/arp_packet.hpp"
#include "wire/dhcp_message.hpp"

namespace arpsec::l2 {

/// Per-port MAC limiting (Cisco "switchport port-security").
struct PortSecurityConfig {
    bool enabled = false;
    std::size_t max_macs_per_port = 1;
    bool shutdown_on_violation = true;  // err-disable the port
    /// Sticky mode: once a MAC is seen on one untrusted port, its
    /// appearance on a different untrusted port is a violation (stops
    /// MAC cloning / port stealing).
    bool sticky = false;
};

/// Dynamic ARP Inspection (Cisco DAI): validate the sender binding of every
/// ARP packet received on an untrusted port against the DHCP snooping table
/// (plus static bindings); drop and log violations; rate-limit ARP.
struct ArpInspectionConfig {
    bool enabled = false;
    bool validate_src_mac = true;       // ARP sender MAC must equal frame source MAC
    std::uint32_t rate_limit_pps = 15;  // Cisco default for untrusted ports
    bool err_disable_on_rate = true;
};

enum class SwitchEventKind {
    kPortSecurityViolation,
    kPortShutdown,
    kDaiDrop,
    kDaiRateLimited,
    kDhcpSnoopDrop,       // rogue DHCP server message on untrusted port
    kBindingAdded,
    kCamFull,
};

[[nodiscard]] std::string to_string(SwitchEventKind k);

struct SwitchEvent {
    common::SimTime at;
    SwitchEventKind kind;
    sim::PortId port = 0;
    wire::MacAddress mac;
    wire::Ipv4Address ip;
    std::string detail;
};

/// DHCP-snooping binding: what the switch believes about (IP, MAC, port).
struct SnoopBinding {
    wire::MacAddress mac;
    sim::PortId port = 0;
    common::SimTime expires;
};

/// A managed learning switch. Baseline behaviour is a plain store-and-
/// forward L2 switch with a bounded CAM; the managed features (mirroring,
/// port security, DHCP snooping, DAI) are enabled by the switch-based
/// prevention schemes.
class Switch final : public sim::Node {
public:
    /// Binding port wildcard: the binding is valid on any port (static
    /// bindings configured without port pinning).
    static constexpr sim::PortId kAnyPort = 0xFFFF;

    Switch(std::string name, std::size_t port_count, CamConfig cam = {});

    void start() override;
    void on_frame(sim::PortId in_port, const wire::FrameView& view) override;

    // ---- Managed features -------------------------------------------------
    /// Mirrors every received frame to `port` (SPAN). The detector node
    /// plugs into this port, like the Raspberry Pi in a lab testbed.
    void set_mirror_port(std::optional<sim::PortId> port) { mirror_port_ = port; }

    void set_port_security(PortSecurityConfig cfg) { port_security_ = cfg; }

    /// Enables DHCP snooping; `trusted_ports` are where legitimate DHCP
    /// servers live (server replies on other ports are dropped as rogue).
    void enable_dhcp_snooping(std::set<sim::PortId> trusted_ports);
    [[nodiscard]] bool dhcp_snooping_enabled() const { return snooping_enabled_; }

    void enable_arp_inspection(ArpInspectionConfig cfg) { dai_ = cfg; }

    /// Ports DAI/port-security treat as trusted (uplinks, servers).
    void set_trusted_port(sim::PortId port, bool trusted);

    /// Adds a static (IP, MAC, port) binding usable by DAI without DHCP.
    void add_static_binding(wire::Ipv4Address ip, wire::MacAddress mac, sim::PortId port);

    /// Assigns an access-port VLAN (default: every port in VLAN 1).
    /// Frames never cross VLANs: broadcast/flooding is confined to the
    /// ingress VLAN, and a CAM hit on a port in another VLAN is treated as
    /// unknown. Segmentation confines the blast radius of every L2 attack
    /// to the attacker's own VLAN. The mirror port sees all VLANs (SPAN).
    void set_port_vlan(sim::PortId port, std::uint16_t vlan);
    [[nodiscard]] std::uint16_t port_vlan(sim::PortId port) const;

    /// Administratively re-enables an err-disabled port.
    void reenable_port(sim::PortId port);
    [[nodiscard]] bool port_shut(sim::PortId port) const { return shut_ports_.count(port) != 0; }

    // ---- Introspection ----------------------------------------------------
    [[nodiscard]] const CamTable& cam() const { return cam_; }
    [[nodiscard]] const std::vector<SwitchEvent>& events() const { return events_; }
    [[nodiscard]] const std::unordered_map<wire::Ipv4Address, SnoopBinding>& bindings() const {
        return bindings_;
    }
    void set_event_listener(std::function<void(const SwitchEvent&)> fn) {
        listener_ = std::move(fn);
    }
    [[nodiscard]] std::size_t port_count() const { return port_count_; }

    struct ForwardStats {
        std::uint64_t received = 0;
        std::uint64_t unicast_forwarded = 0;
        std::uint64_t flooded = 0;
        std::uint64_t dropped = 0;
        std::uint64_t mirrored = 0;
    };
    [[nodiscard]] const ForwardStats& forward_stats() const { return stats_; }

    /// Publishes the switch's forwarding and CAM statistics into `registry`
    /// under `l2.switch.*` / `l2.cam.*` (snapshot at call time).
    void export_metrics(telemetry::MetricsRegistry& registry) const;

private:
    void schedule_cam_sweep();
    void emit(SwitchEventKind kind, sim::PortId port, wire::MacAddress mac, wire::Ipv4Address ip,
              std::string detail);
    void shutdown_port(sim::PortId port, const std::string& why);
    void forward(sim::PortId in_port, const wire::FrameView& view);
    /// Returns true when the frame must be dropped.
    bool apply_port_security(sim::PortId in_port, const wire::FrameView& view);
    bool apply_dhcp_snooping(sim::PortId in_port, const wire::FrameView& view);
    bool apply_arp_inspection(sim::PortId in_port, const wire::FrameView& view);
    [[nodiscard]] bool trusted(sim::PortId port) const { return trusted_ports_.count(port) != 0; }

    std::size_t port_count_;
    CamTable cam_;
    std::optional<sim::PortId> mirror_port_;
    PortSecurityConfig port_security_;
    ArpInspectionConfig dai_;
    bool snooping_enabled_ = false;
    std::set<sim::PortId> trusted_ports_;
    std::set<sim::PortId> shut_ports_;
    std::unordered_map<wire::Ipv4Address, SnoopBinding> bindings_;
    std::unordered_map<std::uint64_t, sim::PortId> last_dhcp_client_port_;  // keyed by MAC
    std::unordered_map<sim::PortId, std::set<std::uint64_t>> port_macs_;    // port security
    std::unordered_map<std::uint64_t, sim::PortId> sticky_owner_;           // sticky mode
    std::unordered_map<sim::PortId, std::uint16_t> port_vlans_;             // default VLAN 1
    struct RateBucket {
        double tokens = 0;
        common::SimTime last;
        bool initialized = false;
    };
    std::unordered_map<sim::PortId, RateBucket> arp_buckets_;
    std::vector<SwitchEvent> events_;
    std::function<void(const SwitchEvent&)> listener_;
    ForwardStats stats_;
};

}  // namespace arpsec::l2

#include "l2/cam_table.hpp"

namespace arpsec::l2 {

LearnResult CamTable::learn(wire::MacAddress mac, sim::PortId port, common::SimTime now) {
    auto it = entries_.find(mac);
    if (it != entries_.end()) {
        if (aged(it->second, now)) {
            entries_.erase(it);
            ++stats_.aged_out;
        } else if (it->second.port == port) {
            it->second.last_seen = now;
            ++stats_.refreshed;
            return LearnResult::kRefreshed;
        } else {
            it->second.port = port;
            it->second.last_seen = now;
            ++stats_.moves;
            return LearnResult::kMoved;
        }
    }
    if (entries_.size() >= config_.capacity) {
        // Try to reclaim space from aged entries before giving up.
        if (purge_aged(now) == 0) {
            ++stats_.full_drops;
            return LearnResult::kTableFull;
        }
    }
    entries_[mac] = Entry{port, now};
    ++stats_.learned;
    return LearnResult::kLearned;
}

std::optional<sim::PortId> CamTable::lookup(wire::MacAddress mac, common::SimTime now) {
    auto it = entries_.find(mac);
    if (it == entries_.end()) return std::nullopt;
    if (aged(it->second, now)) {
        entries_.erase(it);
        ++stats_.aged_out;
        return std::nullopt;
    }
    return it->second.port;
}

std::size_t CamTable::purge_aged(common::SimTime now) {
    std::size_t removed = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (aged(it->second, now)) {
            it = entries_.erase(it);
            ++removed;
            ++stats_.aged_out;
        } else {
            ++it;
        }
    }
    return removed;
}

void CamTable::flush_port(sim::PortId port) {
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->second.port == port) {
            it = entries_.erase(it);
        } else {
            ++it;
        }
    }
}

}  // namespace arpsec::l2

#include "l2/switch.hpp"

#include "common/log.hpp"
#include "wire/ipv4_packet.hpp"
#include "wire/udp_datagram.hpp"

namespace arpsec::l2 {

std::string to_string(SwitchEventKind k) {
    switch (k) {
        case SwitchEventKind::kPortSecurityViolation: return "port-security-violation";
        case SwitchEventKind::kPortShutdown: return "port-shutdown";
        case SwitchEventKind::kDaiDrop: return "dai-drop";
        case SwitchEventKind::kDaiRateLimited: return "dai-rate-limited";
        case SwitchEventKind::kDhcpSnoopDrop: return "dhcp-snoop-drop";
        case SwitchEventKind::kBindingAdded: return "binding-added";
        case SwitchEventKind::kCamFull: return "cam-full";
    }
    return "?";
}

Switch::Switch(std::string name, std::size_t port_count, CamConfig cam)
    : sim::Node(std::move(name)), port_count_(port_count), cam_(cam) {}

void Switch::start() { schedule_cam_sweep(); }

void Switch::schedule_cam_sweep() {
    // Periodic CAM aging sweep so stale stations disappear even on an
    // otherwise idle fabric.
    network().scheduler().schedule_after(common::Duration::seconds(10), [this] {
        cam_.purge_aged(network().now());
        schedule_cam_sweep();
    });
}

void Switch::emit(SwitchEventKind kind, sim::PortId port, wire::MacAddress mac,
                  wire::Ipv4Address ip, std::string detail) {
    SwitchEvent ev{network().now(), kind, port, mac, ip, std::move(detail)};
    events_.push_back(ev);
    if (listener_) listener_(ev);
    common::Log::write(common::LogLevel::kDebug, network().now(), name(),
                       to_string(kind) + " port=" + std::to_string(port) + " " + ev.detail);
}

void Switch::shutdown_port(sim::PortId port, const std::string& why) {
    if (shut_ports_.insert(port).second) {
        cam_.flush_port(port);
        emit(SwitchEventKind::kPortShutdown, port, {}, {}, why);
    }
}

void Switch::reenable_port(sim::PortId port) {
    shut_ports_.erase(port);
    port_macs_[port].clear();
}

void Switch::enable_dhcp_snooping(std::set<sim::PortId> trusted_ports) {
    snooping_enabled_ = true;
    for (sim::PortId p : trusted_ports) trusted_ports_.insert(p);
}

void Switch::set_trusted_port(sim::PortId port, bool trusted) {
    if (trusted) {
        trusted_ports_.insert(port);
    } else {
        trusted_ports_.erase(port);
    }
}

void Switch::add_static_binding(wire::Ipv4Address ip, wire::MacAddress mac, sim::PortId port) {
    bindings_[ip] = SnoopBinding{mac, port, common::SimTime::max()};
    emit(SwitchEventKind::kBindingAdded, port, mac, ip, "static binding");
}

void Switch::on_frame(sim::PortId in_port, const wire::FrameView& view) {
    ++stats_.received;

    if (shut_ports_.count(in_port) != 0) {
        ++stats_.dropped;
        return;  // err-disabled port: ingress is discarded
    }

    if (apply_port_security(in_port, view)) {
        ++stats_.dropped;
        return;
    }
    if (snooping_enabled_ && apply_dhcp_snooping(in_port, view)) {
        ++stats_.dropped;
        return;
    }
    if (dai_.enabled && apply_arp_inspection(in_port, view)) {
        ++stats_.dropped;
        return;
    }

    // Source learning.
    const wire::MacAddress src = view.src();
    if (src.is_unicast() && !src.is_zero()) {
        const LearnResult r = cam_.learn(src, in_port, network().now());
        if (r == LearnResult::kTableFull) {
            emit(SwitchEventKind::kCamFull, in_port, src, {}, "CAM table full");
        }
    }

    // SPAN mirror: the monitor sees the exact ingress buffer — forwarding
    // the view shares the origin's bytes, no re-serialization.
    if (mirror_port_ && *mirror_port_ != in_port) {
        ++stats_.mirrored;
        send(*mirror_port_, view);
    }

    forward(in_port, view);
}

void Switch::set_port_vlan(sim::PortId port, std::uint16_t vlan) { port_vlans_[port] = vlan; }

std::uint16_t Switch::port_vlan(sim::PortId port) const {
    auto it = port_vlans_.find(port);
    return it == port_vlans_.end() ? 1 : it->second;
}

void Switch::forward(sim::PortId in_port, const wire::FrameView& view) {
    const std::uint16_t vlan = port_vlan(in_port);
    // Every egress port shares the same FrameBuffer: an N-port flood costs
    // N refcount bumps, not N serializations.
    const auto flood = [&] {
        ++stats_.flooded;
        for (sim::PortId p = 0; p < port_count_; ++p) {
            if (p == in_port) continue;
            if (shut_ports_.count(p) != 0) continue;
            if (mirror_port_ && p == *mirror_port_) continue;  // mirror already fed
            if (port_vlan(p) != vlan) continue;                // VLAN confinement
            send(p, view);
        }
    };

    const wire::MacAddress dst = view.dst();
    if (!dst.is_unicast() || dst.is_broadcast()) {
        flood();
        return;
    }
    const auto port = cam_.lookup(dst, network().now());
    if (!port || port_vlan(*port) != vlan) {
        flood();  // unknown unicast (or cross-VLAN station) floods in-VLAN
        return;
    }
    if (*port == in_port) {
        ++stats_.dropped;  // destination is on the ingress segment
        return;
    }
    if (shut_ports_.count(*port) != 0) {
        ++stats_.dropped;
        return;
    }
    ++stats_.unicast_forwarded;
    send(*port, view);
}

bool Switch::apply_port_security(sim::PortId in_port, const wire::FrameView& view) {
    if (!port_security_.enabled || trusted(in_port)) return false;
    const wire::MacAddress src = view.src();
    if (src.is_zero() || !src.is_unicast()) return false;
    auto& macs = port_macs_[in_port];
    if (macs.count(src.to_u64()) != 0) return false;
    if (macs.size() >= port_security_.max_macs_per_port) {
        emit(SwitchEventKind::kPortSecurityViolation, in_port, src, {},
             "source MAC limit exceeded");
        if (port_security_.shutdown_on_violation) {
            shutdown_port(in_port, "port-security violation");
        }
        return true;
    }
    if (port_security_.sticky) {
        if (auto it = sticky_owner_.find(src.to_u64());
            it != sticky_owner_.end() && it->second != in_port) {
            emit(SwitchEventKind::kPortSecurityViolation, in_port, src, {},
                 "sticky MAC moved from port " + std::to_string(it->second));
            if (port_security_.shutdown_on_violation) {
                shutdown_port(in_port, "sticky MAC violation");
            }
            return true;
        }
        sticky_owner_[src.to_u64()] = in_port;
    }
    macs.insert(src.to_u64());
    return false;
}

bool Switch::apply_dhcp_snooping(sim::PortId in_port, const wire::FrameView& view) {
    const wire::Ipv4Packet* ip = view.ipv4();  // memoized in the shared buffer
    if (ip == nullptr || ip->protocol != wire::IpProto::kUdp) return false;
    auto udp = wire::UdpDatagram::parse(ip->payload);
    if (!udp.ok()) return false;
    const bool to_server = udp->dst_port == wire::DhcpMessage::kServerPort;
    const bool to_client = udp->dst_port == wire::DhcpMessage::kClientPort;
    if (!to_server && !to_client) return false;
    auto dhcp = wire::DhcpMessage::parse(udp->payload);
    if (!dhcp.ok()) return false;

    if (dhcp->is_reply() && !trusted(in_port)) {
        // Server message arriving on an untrusted port: rogue DHCP server.
        emit(SwitchEventKind::kDhcpSnoopDrop, in_port, view.src(), dhcp->yiaddr,
             "DHCP server message on untrusted port");
        return true;
    }
    if (dhcp->is_request()) {
        last_dhcp_client_port_[dhcp->chaddr.to_u64()] = in_port;
    } else if (dhcp->message_type == wire::DhcpMessageType::kAck && !dhcp->yiaddr.is_any()) {
        sim::PortId client_port = 0;
        if (auto it = last_dhcp_client_port_.find(dhcp->chaddr.to_u64());
            it != last_dhcp_client_port_.end()) {
            client_port = it->second;
        }
        const auto lease = dhcp->lease_seconds.value_or(3600);
        bindings_[dhcp->yiaddr] = SnoopBinding{
            dhcp->chaddr, client_port,
            network().now() + common::Duration::seconds(static_cast<std::int64_t>(lease))};
        emit(SwitchEventKind::kBindingAdded, client_port, dhcp->chaddr, dhcp->yiaddr,
             "snooped DHCP lease");
    }
    return false;
}

bool Switch::apply_arp_inspection(sim::PortId in_port, const wire::FrameView& view) {
    if (view.ether_type() != wire::EtherType::kArp) return false;
    if (trusted(in_port)) return false;

    const wire::MacAddress src = view.src();

    // Rate limiting (token bucket, Cisco-style policing of untrusted ARP).
    auto& bucket = arp_buckets_[in_port];
    const auto now = network().now();
    if (!bucket.initialized) {
        bucket.initialized = true;
        bucket.tokens = dai_.rate_limit_pps;  // buckets start full
        bucket.last = now;
    }
    const double refill = (now - bucket.last).to_seconds() * dai_.rate_limit_pps;
    bucket.tokens = std::min(static_cast<double>(dai_.rate_limit_pps), bucket.tokens + refill);
    bucket.last = now;
    if (bucket.tokens < 1.0) {
        emit(SwitchEventKind::kDaiRateLimited, in_port, src, {}, "ARP rate exceeded");
        if (dai_.err_disable_on_rate) shutdown_port(in_port, "DAI rate limit");
        return true;
    }
    bucket.tokens -= 1.0;

    // Memoized in the shared buffer: whoever parsed this frame's ARP first
    // (tap, monitor, or us) paid the only parse.
    const wire::ArpPacket* arp = view.arp();
    if (arp == nullptr) {
        emit(SwitchEventKind::kDaiDrop, in_port, src, {}, "malformed ARP");
        return true;
    }
    if (dai_.validate_src_mac && arp->sender_mac != src) {
        emit(SwitchEventKind::kDaiDrop, in_port, src, arp->sender_ip,
             "ARP sender MAC does not match frame source");
        return true;
    }
    // Probe packets with a zero sender IP (e.g. DHCP-style duplicate
    // detection) carry no binding claim and pass.
    if (arp->sender_ip.is_any()) return false;

    auto it = bindings_.find(arp->sender_ip);
    if (it == bindings_.end()) {
        emit(SwitchEventKind::kDaiDrop, in_port, src, arp->sender_ip,
             "no snooping binding for sender IP");
        return true;
    }
    const SnoopBinding& b = it->second;
    if (b.expires < now) {
        emit(SwitchEventKind::kDaiDrop, in_port, src, arp->sender_ip,
             "binding expired");
        return true;
    }
    if (b.mac != arp->sender_mac || (b.port != kAnyPort && b.port != in_port)) {
        emit(SwitchEventKind::kDaiDrop, in_port, src, arp->sender_ip,
             "sender binding mismatch (claimed " + arp->sender_mac.to_string() + ")");
        return true;
    }
    return false;
}

void Switch::export_metrics(telemetry::MetricsRegistry& registry) const {
    registry.counter("l2.switch.frames_received").inc(stats_.received);
    registry.counter("l2.switch.unicast_forwarded").inc(stats_.unicast_forwarded);
    registry.counter("l2.switch.flooded").inc(stats_.flooded);
    registry.counter("l2.switch.dropped").inc(stats_.dropped);
    registry.counter("l2.switch.mirrored").inc(stats_.mirrored);
    registry.counter("l2.switch.events").inc(events_.size());
    registry.gauge("l2.switch.shut_ports").set(static_cast<std::int64_t>(shut_ports_.size()));

    const CamStats& cam = cam_.stats();
    registry.counter("l2.cam.inserts").inc(cam.learned);
    registry.counter("l2.cam.refreshes").inc(cam.refreshed);
    registry.counter("l2.cam.moves").inc(cam.moves);
    registry.counter("l2.cam.full_drops").inc(cam.full_drops);
    registry.counter("l2.cam.evictions").inc(cam.aged_out);
    registry.gauge("l2.cam.size").set(static_cast<std::int64_t>(cam_.size()));
}

}  // namespace arpsec::l2

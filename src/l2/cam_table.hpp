#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/time.hpp"
#include "sim/node.hpp"
#include "wire/mac_address.hpp"

namespace arpsec::l2 {

struct CamConfig {
    std::size_t capacity = 1024;                                 // MikroTik-class table
    common::Duration aging = common::Duration::seconds(300);     // IEEE default
};

enum class LearnResult {
    kLearned,    // new entry created
    kRefreshed,  // existing entry, same port, timer reset
    kMoved,      // station moved to a different port
    kTableFull,  // no space: source stays unknown (fail-open behaviour)
};

struct CamStats {
    std::uint64_t learned = 0;
    std::uint64_t refreshed = 0;
    std::uint64_t moves = 0;
    std::uint64_t full_drops = 0;
    std::uint64_t aged_out = 0;
};

/// Content-addressable memory of a learning switch: MAC -> port with aging
/// and bounded capacity. When full, new sources cannot be learned, so
/// frames to them flood — the fail-open behaviour MAC-flooding attacks
/// exploit.
class CamTable {
public:
    explicit CamTable(CamConfig config = {}) : config_(config) {}

    LearnResult learn(wire::MacAddress mac, sim::PortId port, common::SimTime now);

    /// Port for a destination MAC, if known and not aged out.
    std::optional<sim::PortId> lookup(wire::MacAddress mac, common::SimTime now);

    /// Removes entries older than the aging time. Called lazily by learn()
    /// when at capacity, and periodically by the switch.
    std::size_t purge_aged(common::SimTime now);

    /// Removes every entry learned on `port` (port shutdown).
    void flush_port(sim::PortId port);

    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    [[nodiscard]] bool full() const { return entries_.size() >= config_.capacity; }
    [[nodiscard]] const CamConfig& config() const { return config_; }
    [[nodiscard]] const CamStats& stats() const { return stats_; }

private:
    struct Entry {
        sim::PortId port;
        common::SimTime last_seen;
    };

    [[nodiscard]] bool aged(const Entry& e, common::SimTime now) const {
        return now - e.last_seen > config_.aging;
    }

    CamConfig config_;
    std::unordered_map<wire::MacAddress, Entry> entries_;
    CamStats stats_;
};

}  // namespace arpsec::l2

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "common/time.hpp"
#include "detect/alert.hpp"
#include "detect/registry.hpp"
#include "serve/shard.hpp"
#include "serve/transport.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace arpsec::serve {

/// Snapshot artifact schema written by Server::write_snapshot.
inline constexpr const char* kSnapshotSchema = "arpsec.serve-snapshot.v1";
/// Schema of the final kSummary record and of serve() outcome summaries.
inline constexpr const char* kSummarySchema = "arpsec.serve-summary.v1";
/// Schema of the periodic scorecard JSONL lines.
inline constexpr const char* kScorecardSchema = "arpsec.serve-scorecard.v1";

struct ServerOptions {
    /// Scheme names deployed in every shard (each shard owns one
    /// SchemeSession per name).
    std::vector<std::string> schemes{"arpwatch"};
    std::size_t shards = 1;
    std::size_t ring_capacity = 4096;
    std::size_t alert_ring_capacity = 4096;
    /// false = block the intake thread when a shard ring fills (zero
    /// admitted-frame loss); true = count and drop instead.
    bool drop_when_full = false;
    /// Virtual-time grace window run after a clean END record so delayed
    /// alerts (probe timeouts) land — the same knob arpsec-replay uses.
    common::Duration grace = common::Duration::seconds(5);
    /// Per-read timeout. <0 blocks forever; >=0 bounds each read so the
    /// stop flag and the idle clock are polled.
    int read_timeout_ms = -1;
    /// Total quiet time (consecutive timeouts with no data) before the
    /// stream is abandoned. <0 disables.
    int idle_timeout_ms = -1;
    /// Append a scorecard JSONL line to `scorecard_path` every N admitted
    /// frames (0 disables).
    std::uint64_t scorecard_every = 0;
    std::string scorecard_path;
    /// Stream kAlert records back to the client as alerts drain.
    bool stream_alerts = true;
    /// Send the final kSummary record before returning.
    bool send_summary = true;
    /// Load this `arpsec.serve-snapshot.v1` file before serving; the
    /// stream's HELLO seed must then match the snapshot's.
    std::string restore_path;
};

/// What one serve() call produced.
struct ServeOutcome {
    /// Every alert drained from the shards, in drain order (interleaving is
    /// nondeterministic across shards; sort_canonical() for artifacts).
    std::vector<detect::Alert> alerts;
    /// `arpsec.serve-summary.v1` — deterministic fields only.
    telemetry::Json summary;
    bool ended_by_end_record = false;
    /// request_stop() interrupted the stream (snapshot-bound shutdown).
    bool stopped = false;
    /// Idle timeout abandoned the stream.
    bool idled_out = false;
    /// Non-empty when the transport failed or the framing latched fatal;
    /// everything admitted before the failure was still processed.
    std::string transport_error;
};

/// The long-lived streaming detection service. One serve() call owns one
/// client stream end to end:
///
///   intake thread (the caller) — reads the transport, decodes
///     `arpsec.stream.v1` records, primes each frame's FrameView once, and
///     routes it to a shard by subnet key (single producer to every ring);
///   N shard workers — each owns its SchemeSessions and feeds them frames
///     (single consumer of its ring);
///   drain thread — pops alert rings, collects alerts, and writes kAlert
///     records back to the client.
///
/// Backpressure is explicit: a full shard ring either blocks the intake
/// thread (default — the transport then pushes back on the client, so no
/// admitted frame is ever lost) or drops with per-shard accounting.
/// Malformed records are skipped with typed errors; only a corrupt length
/// prefix (framing lost) abandons the stream — the daemon itself survives
/// both.
class Server {
public:
    /// Fails when options name an unknown scheme or shards == 0.
    [[nodiscard]] static common::Expected<std::unique_ptr<Server>> create(
        const detect::Registry& registry, ServerOptions options);

    /// Serves one client stream to completion (END, EOF, error, idle
    /// timeout, or request_stop). Failure only for pre-stream errors
    /// (snapshot restore failure, HELLO protocol violation); transport
    /// failures mid-stream land in ServeOutcome::transport_error instead so
    /// the partial results survive.
    [[nodiscard]] common::Expected<ServeOutcome> serve(Connection& conn);

    /// Asynchronously asks the current serve() to wind down: the intake
    /// loop exits at the next poll, shards drain what was admitted and
    /// freeze (no grace window), so a snapshot captures exactly the fed
    /// state. Safe to call from a signal handler (one relaxed store).
    void request_stop() { stop_.store(true, std::memory_order_relaxed); }

    /// True once request_stop() has been called (the daemon's accept loop
    /// polls this between clients).
    [[nodiscard]] bool stop_requested() const {
        return stop_.load(std::memory_order_relaxed);
    }

    /// Writes `arpsec.serve-snapshot.v1` for the last completed serve().
    /// Call after serve() returns (the workers are joined by then).
    [[nodiscard]] common::Expected<bool> write_snapshot(const std::string& path) const;

    /// Intake-side counters/gauges (`serve.intake.*`, `serve.shard.*`),
    /// complete after serve() returns.
    [[nodiscard]] telemetry::MetricsRegistry& metrics() { return metrics_; }
    [[nodiscard]] const ServerOptions& options() const { return options_; }

    /// Prefer create(): it validates the options first. Public only so
    /// make_unique can reach it.
    Server(const detect::Registry& registry, ServerOptions options);

private:
    struct RestoredState {
        std::uint64_t seed = 1;
        std::vector<detect::HostRecord> directory;
        telemetry::Json shard_states;  // array, one entry per shard
    };

    common::Expected<bool> load_restore_file(RestoredState& out) const;
    common::Expected<bool> build_shards(std::uint64_t seed,
                                        std::vector<detect::HostRecord> directory,
                                        const RestoredState* restored);
    void write_scorecard_line(std::uint64_t frames_total);
    telemetry::Json build_summary(const ServeOutcome& outcome) const;

    const detect::Registry& registry_;
    ServerOptions options_;
    telemetry::MetricsRegistry metrics_;
    common::Stopwatch watch_;
    std::atomic<bool> stop_{false};

    // State of the last serve() (valid after it returns; workers joined).
    std::vector<std::unique_ptr<Shard>> shards_;
    std::uint64_t seed_ = 1;
    std::vector<detect::HostRecord> directory_;
    bool served_ = false;
};

}  // namespace arpsec::serve

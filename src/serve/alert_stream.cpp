#include "serve/alert_stream.hpp"

#include <algorithm>
#include <fstream>
#include <tuple>

#include "telemetry/json.hpp"

namespace arpsec::serve {

std::string alert_stream_header() {
    telemetry::Json j = telemetry::Json::object();
    j["schema"] = std::string{kAlertStreamSchema};
    return j.dump();
}

std::string alert_line(const detect::Alert& alert) {
    // telemetry::Json preserves insertion order, so this fixed sequence of
    // assignments *is* the canonical byte layout.
    telemetry::Json j = telemetry::Json::object();
    j["at_ns"] = alert.at.nanos();
    j["scheme"] = alert.scheme;
    j["kind"] = detect::to_string(alert.kind);
    j["ip"] = alert.ip.to_string();
    j["claimed_mac"] = alert.claimed_mac.to_string();
    j["previous_mac"] = alert.previous_mac.to_string();
    j["detail"] = alert.detail;
    return j.dump();
}

void sort_canonical(std::vector<detect::Alert>& alerts) {
    std::sort(alerts.begin(), alerts.end(), [](const detect::Alert& a, const detect::Alert& b) {
        return std::make_tuple(a.at.nanos(), a.scheme, static_cast<int>(a.kind),
                               a.ip.value(), a.claimed_mac.to_string(),
                               a.previous_mac.to_string(), a.detail) <
               std::make_tuple(b.at.nanos(), b.scheme, static_cast<int>(b.kind),
                               b.ip.value(), b.claimed_mac.to_string(),
                               b.previous_mac.to_string(), b.detail);
    });
}

bool write_alert_file(const std::string& path, std::vector<detect::Alert> alerts) {
    sort_canonical(alerts);
    std::ofstream out{path, std::ios::trunc};
    if (!out) return false;
    out << alert_stream_header() << '\n';
    for (const detect::Alert& a : alerts) out << alert_line(a) << '\n';
    return static_cast<bool>(out);
}

}  // namespace arpsec::serve

#include "serve/server.hpp"

#include <chrono>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "serve/alert_stream.hpp"
#include "wire/stream_codec.hpp"

namespace arpsec::serve {

namespace {

/// sim::Network rejects seed 0; coerce it the same way arpsec-replay does.
std::uint64_t coerce_seed(std::uint64_t seed) { return seed == 0 ? 1 : seed; }

}  // namespace

common::Expected<std::unique_ptr<Server>> Server::create(const detect::Registry& registry,
                                                         ServerOptions options) {
    using Result = common::Expected<std::unique_ptr<Server>>;
    if (options.shards == 0) return Result::failure("serve: shards must be >= 1");
    if (options.schemes.empty()) return Result::failure("serve: no schemes configured");
    for (const std::string& name : options.schemes) {
        if (!registry.contains(name)) {
            return Result::failure("serve: unknown scheme '" + name + "'");
        }
    }
    return Result{std::make_unique<Server>(registry, std::move(options))};
}

Server::Server(const detect::Registry& registry, ServerOptions options)
    : registry_(registry), options_(std::move(options)) {}

common::Expected<bool> Server::build_shards(std::uint64_t seed,
                                            std::vector<detect::HostRecord> directory,
                                            const RestoredState* restored) {
    using Result = common::Expected<bool>;
    seed_ = coerce_seed(seed);
    directory_ = std::move(directory);

    replay::SessionOptions session_options;
    session_options.seed = seed_;
    session_options.directory = directory_;

    Shard::Options shard_options;
    shard_options.ring_capacity = options_.ring_capacity;
    shard_options.alert_ring_capacity = options_.alert_ring_capacity;
    shard_options.drop_when_full = options_.drop_when_full;

    shards_.clear();
    shards_.reserve(options_.shards);
    for (std::size_t i = 0; i < options_.shards; ++i) {
        shards_.push_back(std::make_unique<Shard>(i, registry_, options_.schemes,
                                                  session_options, shard_options));
    }

    if (restored != nullptr && restored->shard_states.is_array()) {
        for (const telemetry::Json& state : restored->shard_states.as_array()) {
            const telemetry::Json* idx = state.find("shard");
            if (idx == nullptr || !idx->is_int()) continue;
            const auto shard_index = static_cast<std::size_t>(idx->as_int());
            if (shard_index >= shards_.size()) {
                return Result::failure("snapshot: shard index out of range");
            }
            Shard& shard = *shards_[shard_index];
            const telemetry::Json* sessions = state.find("sessions");
            if (sessions == nullptr || !sessions->is_array()) continue;
            for (const telemetry::Json& sess : sessions->as_array()) {
                const telemetry::Json* scheme_name = sess.find("scheme");
                if (scheme_name == nullptr || !scheme_name->is_string()) continue;
                for (std::size_t s = 0; s < shard.session_count(); ++s) {
                    if (shard.scheme_names()[s] != scheme_name->as_string()) continue;
                    replay::SchemeSession& session = shard.session(s);
                    if (const telemetry::Json* st = sess.find("state"); st != nullptr) {
                        session.scheme().restore_state(*st);
                    }
                    if (const telemetry::Json* now = sess.find("now_ns");
                        now != nullptr && now->is_int()) {
                        session.advance_to(common::SimTime{now->as_int()});
                    }
                    break;
                }
            }
        }
    }
    return Result{true};
}

common::Expected<bool> Server::load_restore_file(RestoredState& out) const {
    using Result = common::Expected<bool>;
    std::ifstream in{options_.restore_path};
    if (!in) return Result::failure("snapshot: cannot open " + options_.restore_path);
    std::ostringstream text;
    text << in.rdbuf();
    const auto parsed = telemetry::Json::parse(text.str());
    if (!parsed.has_value() || !parsed->is_object()) {
        return Result::failure("snapshot: " + options_.restore_path + " is not a JSON object");
    }
    const telemetry::Json& j = *parsed;

    const telemetry::Json* schema = j.find("schema");
    if (schema == nullptr || !schema->is_string() || schema->as_string() != kSnapshotSchema) {
        return Result::failure(std::string{"snapshot: schema is not "} + kSnapshotSchema);
    }
    if (const telemetry::Json* shards = j.find("shards");
        shards == nullptr || !shards->is_int() ||
        static_cast<std::size_t>(shards->as_int()) != options_.shards) {
        return Result::failure("snapshot: shard count does not match server configuration");
    }
    const telemetry::Json* schemes = j.find("schemes");
    if (schemes == nullptr || !schemes->is_array() ||
        schemes->size() != options_.schemes.size()) {
        return Result::failure("snapshot: scheme list does not match server configuration");
    }
    for (std::size_t i = 0; i < options_.schemes.size(); ++i) {
        if (!schemes->at(i).is_string() || schemes->at(i).as_string() != options_.schemes[i]) {
            return Result::failure("snapshot: scheme list does not match server configuration");
        }
    }
    if (const telemetry::Json* seed = j.find("seed"); seed != nullptr && seed->is_int()) {
        out.seed = coerce_seed(static_cast<std::uint64_t>(seed->as_int()));
    }
    if (const telemetry::Json* dir = j.find("directory"); dir != nullptr && dir->is_array()) {
        for (const telemetry::Json& row : dir->as_array()) {
            const telemetry::Json* name = row.find("name");
            const telemetry::Json* ip = row.find("ip");
            const telemetry::Json* mac = row.find("mac");
            if (ip == nullptr || mac == nullptr || !ip->is_string() || !mac->is_string()) {
                return Result::failure("snapshot: malformed directory entry");
            }
            const auto ip_v = wire::Ipv4Address::parse(ip->as_string());
            const auto mac_v = wire::MacAddress::parse(mac->as_string());
            if (!ip_v.ok() || !mac_v.ok()) {
                return Result::failure("snapshot: malformed directory entry");
            }
            detect::HostRecord rec;
            rec.name = (name != nullptr && name->is_string()) ? name->as_string() : "";
            rec.ip = ip_v.value();
            rec.mac = mac_v.value();
            out.directory.push_back(std::move(rec));
        }
    }
    if (const telemetry::Json* states = j.find("shard_states"); states != nullptr) {
        out.shard_states = *states;
    }
    return Result{true};
}

common::Expected<ServeOutcome> Server::serve(Connection& conn) {
    using Result = common::Expected<ServeOutcome>;
    stop_.store(false, std::memory_order_relaxed);
    shards_.clear();
    directory_.clear();
    served_ = false;

    RestoredState restored;
    bool have_restore = false;
    if (!options_.restore_path.empty()) {
        if (auto r = load_restore_file(restored); !r.ok()) return Result::failure(r.error());
        have_restore = true;
        if (auto b = build_shards(restored.seed, restored.directory, &restored); !b.ok()) {
            return Result::failure(b.error());
        }
    }

    auto& c_bytes = metrics_.counter("serve.intake.bytes");
    auto& c_records = metrics_.counter("serve.intake.records");
    auto& c_frames = metrics_.counter("serve.intake.frames");
    auto& c_bad = metrics_.counter("serve.intake.bad_records");
    auto& c_protocol = metrics_.counter("serve.intake.protocol_errors");

    ServeOutcome outcome;
    wire::StreamDecoder decoder;

    // conn is written by this thread (summary) and by the drain thread
    // (kAlert records); whole records go out under one lock so they never
    // interleave mid-record.
    std::mutex write_mutex;
    const auto write_bytes = [&](const wire::Bytes& data) {
        std::lock_guard<std::mutex> lk(write_mutex);
        (void)conn.write_all(std::span<const std::uint8_t>{data.data(), data.size()});
    };

    // The drain thread starts together with the shard workers; until the
    // first frame (or a snapshot restore) there is nothing to drain.
    std::atomic<bool> workers_done{false};
    std::thread drain_thread;
    bool workers_started = false;
    std::vector<telemetry::Gauge*> depth_gauges;

    const auto start_workers = [&] {
        if (workers_started) return;
        workers_started = true;
        depth_gauges.reserve(shards_.size());
        for (auto& shard : shards_) {
            shard->start(&watch_);
            depth_gauges.push_back(&metrics_.gauge(
                "serve.shard." + std::to_string(shard->index()) + ".queue_depth"));
        }
        drain_thread = std::thread([&] {
            std::vector<detect::Alert> batch;
            for (;;) {
                // Load the flag before sweeping: if the workers were
                // already joined, this sweep observes every alert they
                // pushed, so an empty sweep really means drained.
                const bool done = workers_done.load(std::memory_order_acquire);
                batch.clear();
                for (auto& shard : shards_) shard->drain_alerts(batch, 1024);
                if (!batch.empty()) {
                    if (options_.stream_alerts) {
                        wire::Bytes records;
                        for (const detect::Alert& a : batch) {
                            wire::encode_alert(records, alert_line(a));
                        }
                        write_bytes(records);
                    }
                    for (detect::Alert& a : batch) outcome.alerts.push_back(std::move(a));
                    continue;
                }
                if (done) break;
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
        });
    };

    // Builds the shards lazily: the seed arrives in HELLO and the optional
    // directory record must precede the first frame, so construction happens
    // at the first frame (or at END, so empty streams still snapshot).
    bool got_hello = false;
    std::uint64_t hello_seed = 1;
    std::string hello_error;
    const auto ensure_shards = [&]() -> bool {
        if (!shards_.empty()) {
            start_workers();
            return true;
        }
        if (auto b = build_shards(hello_seed, directory_, nullptr); !b.ok()) {
            hello_error = b.error();
            return false;
        }
        start_workers();
        return true;
    };

    std::vector<std::uint8_t> rbuf(1 << 16);
    bool done_reading = false;
    int quiet_ms = 0;
    std::uint64_t frames_since_scorecard = 0;

    while (!done_reading) {
        if (stop_.load(std::memory_order_relaxed)) {
            outcome.stopped = true;
            break;
        }
        IoResult io = conn.read_some(std::span<std::uint8_t>{rbuf}, options_.read_timeout_ms);
        switch (io.kind) {
            case IoResult::Kind::kTimeout:
                if (options_.read_timeout_ms > 0) quiet_ms += options_.read_timeout_ms;
                if (options_.idle_timeout_ms >= 0 && quiet_ms >= options_.idle_timeout_ms) {
                    outcome.idled_out = true;
                    done_reading = true;
                }
                continue;
            case IoResult::Kind::kEof:
                done_reading = true;
                continue;
            case IoResult::Kind::kError:
                outcome.transport_error = io.error;
                done_reading = true;
                continue;
            case IoResult::Kind::kData:
                break;
        }
        quiet_ms = 0;
        c_bytes.inc(io.bytes);
        decoder.feed(std::span<const std::uint8_t>{rbuf.data(), io.bytes});

        wire::StreamRecord rec;
        while (!done_reading) {
            const wire::StreamDecoder::Status st = decoder.poll(rec);
            if (st == wire::StreamDecoder::Status::kNeedMore) break;
            if (st == wire::StreamDecoder::Status::kBadRecord) {
                c_bad.inc();
                continue;
            }
            if (st == wire::StreamDecoder::Status::kFatal) {
                outcome.transport_error = "stream framing lost: " + decoder.last_error();
                done_reading = true;
                break;
            }
            c_records.inc();
            switch (rec.type) {
                case wire::StreamRecordType::kHello: {
                    if (got_hello) {
                        c_protocol.inc();
                        break;
                    }
                    got_hello = true;
                    if (rec.hello.version != 1) {
                        hello_error = "hello: unsupported stream version " +
                                      std::to_string(rec.hello.version);
                        done_reading = true;
                        break;
                    }
                    if (have_restore && coerce_seed(rec.hello.seed) != seed_) {
                        hello_error = "hello: seed does not match restored snapshot";
                        done_reading = true;
                        break;
                    }
                    hello_seed = coerce_seed(rec.hello.seed);
                    break;
                }
                case wire::StreamRecordType::kDirectory: {
                    // Only meaningful before the shards exist; a restored
                    // server already carries its directory.
                    if (!got_hello || have_restore || !shards_.empty()) {
                        c_protocol.inc();
                        break;
                    }
                    directory_.clear();
                    for (const wire::StreamHostEntry& e : rec.directory) {
                        detect::HostRecord host;
                        host.name = e.name;
                        host.ip = e.ip;
                        host.mac = e.mac;
                        directory_.push_back(std::move(host));
                    }
                    break;
                }
                case wire::StreamRecordType::kFrame: {
                    if (!got_hello) {
                        c_protocol.inc();
                        break;
                    }
                    if (!ensure_shards()) {
                        done_reading = true;
                        break;
                    }
                    c_frames.inc();
                    wire::FrameBuffer buffer =
                        wire::FrameBuffer::capture(std::move(rec.frame.bytes));
                    wire::FrameView view{std::move(buffer)};
                    view.prime();  // memoize on this thread; workers read only
                    const auto at =
                        common::SimTime{static_cast<std::int64_t>(rec.frame.at_nanos)};
                    const std::size_t target = shard_of(view, shards_.size());
                    // Sampled observability (1-in-256 frames): the clock
                    // read for the latency histogram and the cross-thread
                    // queue-depth probe both cost measurable intake
                    // throughput at 1M+ frames/s.
                    const bool sampled = (c_frames.value() & 255u) == 0u;
                    (void)shards_[target]->submit(
                        at, view, sampled ? watch_.elapsed_seconds() : -1.0);
                    if (sampled) {
                        depth_gauges[target]->set(
                            static_cast<std::int64_t>(shards_[target]->queue_depth()));
                    }
                    if (options_.scorecard_every > 0 &&
                        ++frames_since_scorecard >= options_.scorecard_every) {
                        frames_since_scorecard = 0;
                        write_scorecard_line(c_frames.value());
                    }
                    break;
                }
                case wire::StreamRecordType::kEnd: {
                    if (!got_hello) {
                        // Still the end of the stream: waiting for more
                        // data after the client said END would hang.
                        c_protocol.inc();
                        done_reading = true;
                        break;
                    }
                    if (ensure_shards()) outcome.ended_by_end_record = true;
                    done_reading = true;
                    break;
                }
                case wire::StreamRecordType::kAlert:
                case wire::StreamRecordType::kSummary:
                    // Server-to-client record types arriving inbound.
                    c_protocol.inc();
                    break;
            }
        }
    }

    // Wind down: no grace after a stop (the snapshot must capture exactly
    // the fed state) or an abandoned stream (EOF without END).
    const bool run_grace = outcome.ended_by_end_record && !outcome.stopped;
    for (auto& shard : shards_) shard->finish_input(run_grace, options_.grace);
    for (auto& shard : shards_) shard->join();
    workers_done.store(true, std::memory_order_release);
    if (drain_thread.joinable()) drain_thread.join();

    // Fold worker-side stats into the registry now that the threads are gone.
    std::uint64_t backpressure = 0;
    std::uint64_t dropped = 0;
    for (auto& shard : shards_) {
        backpressure += shard->backpressure_waits();
        dropped += shard->dropped();
        const std::string prefix = "serve.shard." + std::to_string(shard->index());
        metrics_.counter(prefix + ".frames").inc(shard->frames());
        metrics_.counter(prefix + ".malformed").inc(shard->malformed());
        metrics_.counter(prefix + ".alerts").inc(shard->alerts_emitted());
        metrics_
            .histogram("serve.shard.drain_latency_seconds", shard->drain_latency().bounds())
            .merge(shard->drain_latency());
    }
    metrics_.counter("serve.intake.backpressure_waits").inc(backpressure);
    metrics_.counter("serve.intake.dropped_frames").inc(dropped);
    metrics_.counter("serve.alerts.streamed").inc(outcome.alerts.size());

    if (!hello_error.empty()) return Result::failure(hello_error);

    served_ = true;
    outcome.summary = build_summary(outcome);
    if (options_.send_summary && outcome.transport_error.empty()) {
        wire::Bytes summary_record;
        wire::encode_summary(summary_record, outcome.summary.dump());
        write_bytes(summary_record);
    }
    if (options_.scorecard_every > 0) write_scorecard_line(c_frames.value());
    return Result{std::move(outcome)};
}

telemetry::Json Server::build_summary(const ServeOutcome& outcome) const {
    // Deterministic fields only: identical streams must produce identical
    // summaries, so wall-clock timings and contention counters (which vary
    // run to run) stay out — they live in the metrics registry instead.
    telemetry::Json j = telemetry::Json::object();
    j["schema"] = kSummarySchema;
    j["seed"] = seed_;
    telemetry::Json schemes = telemetry::Json::array();
    for (const std::string& name : options_.schemes) schemes.push_back(name);
    j["schemes"] = std::move(schemes);
    j["shards"] = static_cast<std::uint64_t>(options_.shards);

    std::uint64_t frames = 0;
    std::uint64_t malformed = 0;
    std::uint64_t dropped = 0;
    telemetry::Json per_shard = telemetry::Json::array();
    for (const auto& shard : shards_) {
        frames += shard->frames();
        malformed += shard->malformed();
        dropped += shard->dropped();
        telemetry::Json row = telemetry::Json::object();
        row["shard"] = static_cast<std::uint64_t>(shard->index());
        row["frames"] = shard->frames();
        row["malformed"] = shard->malformed();
        row["alerts"] = shard->alerts_emitted();
        per_shard.push_back(std::move(row));
    }
    j["frames"] = frames;
    j["malformed"] = malformed;
    j["dropped_frames"] = dropped;
    j["alerts"] = static_cast<std::uint64_t>(outcome.alerts.size());
    j["end_record"] = outcome.ended_by_end_record;
    j["stopped"] = outcome.stopped;
    j["per_shard"] = std::move(per_shard);
    return j;
}

void Server::write_scorecard_line(std::uint64_t frames_total) {
    if (options_.scorecard_path.empty()) return;
    std::ofstream out{options_.scorecard_path, std::ios::app};
    if (!out) return;
    telemetry::Json j = telemetry::Json::object();
    j["schema"] = kScorecardSchema;
    j["frames"] = frames_total;
    std::uint64_t alerts = 0;
    telemetry::Json depths = telemetry::Json::array();
    for (const auto& shard : shards_) {
        alerts += shard->alerts_emitted();
        depths.push_back(static_cast<std::uint64_t>(shard->queue_depth()));
    }
    j["alerts"] = alerts;
    j["queue_depths"] = std::move(depths);
    out << j.dump() << '\n';
}

common::Expected<bool> Server::write_snapshot(const std::string& path) const {
    using Result = common::Expected<bool>;
    if (!served_) return Result::failure("snapshot: no completed serve() to capture");

    telemetry::Json j = telemetry::Json::object();
    j["schema"] = kSnapshotSchema;
    j["seed"] = seed_;
    j["shards"] = static_cast<std::uint64_t>(options_.shards);
    telemetry::Json schemes = telemetry::Json::array();
    for (const std::string& name : options_.schemes) schemes.push_back(name);
    j["schemes"] = std::move(schemes);
    telemetry::Json directory = telemetry::Json::array();
    for (const detect::HostRecord& host : directory_) {
        telemetry::Json row = telemetry::Json::object();
        row["name"] = host.name;
        row["ip"] = host.ip.to_string();
        row["mac"] = host.mac.to_string();
        directory.push_back(std::move(row));
    }
    j["directory"] = std::move(directory);

    telemetry::Json shard_states = telemetry::Json::array();
    for (const auto& shard : shards_) {
        telemetry::Json state = telemetry::Json::object();
        state["shard"] = static_cast<std::uint64_t>(shard->index());
        state["frames"] = shard->frames();
        state["malformed"] = shard->malformed();
        telemetry::Json sessions = telemetry::Json::array();
        for (std::size_t s = 0; s < shard->session_count(); ++s) {
            const replay::SchemeSession& session = shard->session(s);
            telemetry::Json row = telemetry::Json::object();
            row["scheme"] = shard->scheme_names()[s];
            row["alerts"] = static_cast<std::uint64_t>(session.alerts().alerts().size());
            row["last_at_ns"] = session.last_at().nanos();
            row["now_ns"] = session.now().nanos();
            row["state"] = session.scheme().snapshot_state();
            sessions.push_back(std::move(row));
        }
        state["sessions"] = std::move(sessions);
        shard_states.push_back(std::move(state));
    }
    j["shard_states"] = std::move(shard_states);

    std::ofstream out{path, std::ios::trunc};
    if (!out) return Result::failure("snapshot: cannot write " + path);
    out << j.dump(2) << '\n';
    if (!out) return Result::failure("snapshot: write failed for " + path);
    return Result{true};
}

}  // namespace arpsec::serve

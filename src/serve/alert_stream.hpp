#pragma once

#include <string>
#include <vector>

#include "detect/alert.hpp"

namespace arpsec::serve {

/// `arpsec.alert-stream.v1` — one JSON object per line. The same formatter
/// backs the daemon's live kAlert records and arpsec-replay's `--alerts`
/// file, which is what lets the serve<->replay equivalence gate diff the
/// two byte for byte.
inline constexpr const char* kAlertStreamSchema = "arpsec.alert-stream.v1";

/// The stream's first line: `{"schema":"arpsec.alert-stream.v1"}`.
[[nodiscard]] std::string alert_stream_header();

/// One canonical alert line (no trailing newline). Keys are emitted in a
/// fixed order so identical alerts always produce identical bytes.
[[nodiscard]] std::string alert_line(const detect::Alert& alert);

/// Canonical artifact order: by timestamp, then scheme, then the alert's
/// identifying fields. Shard workers interleave nondeterministically, and
/// replay feeds schemes sequentially; sorting both sides onto this one
/// order is what makes the file artifacts comparable.
void sort_canonical(std::vector<detect::Alert>& alerts);

/// Writes header + sorted alert lines to `path`. Returns false on I/O error.
[[nodiscard]] bool write_alert_file(const std::string& path, std::vector<detect::Alert> alerts);

}  // namespace arpsec::serve

#include "serve/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <utility>

namespace arpsec::serve {

namespace {

std::string errno_string(const std::string& what) {
    return what + ": " + std::strerror(errno);
}

/// Waits for readability with poll(); returns 0 on ready, 1 on timeout,
/// -1 on error. Interrupted waits retry.
int wait_readable(int fd, int timeout_ms) {
    for (;;) {
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLIN;
        const int r = ::poll(&pfd, 1, timeout_ms);
        if (r > 0) return 0;
        if (r == 0) return 1;
        if (errno == EINTR) continue;
        return -1;
    }
}

/// Socket-backed Connection shared by the Unix and TCP transports: after
/// the handshake both are just stream fds.
class FdConnection final : public Connection {
public:
    FdConnection(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {}
    ~FdConnection() override { close(); }

    IoResult read_some(std::span<std::uint8_t> buf, int timeout_ms) override {
        IoResult res;
        if (fd_ < 0) {
            res.kind = IoResult::Kind::kEof;
            return res;
        }
        if (timeout_ms >= 0) {
            const int w = wait_readable(fd_, timeout_ms);
            if (w == 1) {
                res.kind = IoResult::Kind::kTimeout;
                return res;
            }
            if (w < 0) {
                res.kind = IoResult::Kind::kError;
                res.error = errno_string("poll");
                return res;
            }
        }
        for (;;) {
            const ssize_t n = ::read(fd_, buf.data(), buf.size());
            if (n > 0) {
                res.kind = IoResult::Kind::kData;
                res.bytes = static_cast<std::size_t>(n);
                return res;
            }
            if (n == 0) {
                res.kind = IoResult::Kind::kEof;
                return res;
            }
            if (errno == EINTR) continue;
            res.kind = IoResult::Kind::kError;
            res.error = errno_string("read");
            return res;
        }
    }

    bool write_all(std::span<const std::uint8_t> data) override {
        if (fd_ < 0) return false;
        std::size_t off = 0;
        while (off < data.size()) {
            const ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
            if (n > 0) {
                off += static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && errno == EINTR) continue;
            return false;
        }
        return true;
    }

    void close() override {
        if (fd_ >= 0) {
            ::shutdown(fd_, SHUT_RDWR);
            ::close(fd_);
            fd_ = -1;
        }
    }

    [[nodiscard]] std::string peer() const override { return peer_; }

private:
    int fd_ = -1;
    std::string peer_;
};

class FdListener final : public Listener {
public:
    FdListener(int fd, std::string address, std::string unlink_path)
        : fd_(fd), address_(std::move(address)), unlink_path_(std::move(unlink_path)) {}
    ~FdListener() override { close(); }

    common::Expected<std::unique_ptr<Connection>> accept(int timeout_ms) override {
        using Result = common::Expected<std::unique_ptr<Connection>>;
        if (fd_ < 0) return Result::failure("listener closed");
        const int w = wait_readable(fd_, timeout_ms);
        if (w == 1) return Result::failure("accept: timed out");
        if (w < 0) return Result::failure(errno_string("poll"));
        for (;;) {
            const int client = ::accept(fd_, nullptr, nullptr);
            if (client >= 0) {
                return Result{std::unique_ptr<Connection>(
                    std::make_unique<FdConnection>(client, address_))};
            }
            if (errno == EINTR) continue;
            return Result::failure(errno_string("accept"));
        }
    }

    void close() override {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
            if (!unlink_path_.empty()) ::unlink(unlink_path_.c_str());
        }
    }

    [[nodiscard]] std::string address() const override { return address_; }

private:
    int fd_ = -1;
    std::string address_;
    std::string unlink_path_;
};

// ---------------------------------------------------------------------------
// In-process pipe
// ---------------------------------------------------------------------------

/// One direction of the pipe: a bounded byte queue with blocking reads and
/// writes. Two of these, crossed over, make a full-duplex connection.
struct PipeChannel {
    explicit PipeChannel(std::size_t cap) : capacity(cap) {}

    std::mutex m;
    std::condition_variable cv;
    std::deque<std::uint8_t> buf;
    std::size_t capacity;
    bool closed = false;

    bool write_all(std::span<const std::uint8_t> data) {
        std::size_t off = 0;
        std::unique_lock<std::mutex> lk(m);
        while (off < data.size()) {
            cv.wait(lk, [&] { return closed || buf.size() < capacity; });
            if (closed) return false;
            while (off < data.size() && buf.size() < capacity) buf.push_back(data[off++]);
            cv.notify_all();
        }
        return true;
    }

    IoResult read_some(std::span<std::uint8_t> out, int timeout_ms) {
        IoResult res;
        std::unique_lock<std::mutex> lk(m);
        const auto ready = [&] { return closed || !buf.empty(); };
        if (timeout_ms < 0) {
            cv.wait(lk, ready);
        } else if (!cv.wait_for(lk, std::chrono::milliseconds(timeout_ms), ready)) {
            res.kind = IoResult::Kind::kTimeout;
            return res;
        }
        if (buf.empty()) {
            res.kind = IoResult::Kind::kEof;  // closed and drained
            return res;
        }
        std::size_t n = 0;
        while (n < out.size() && !buf.empty()) {
            out[n++] = buf.front();
            buf.pop_front();
        }
        cv.notify_all();
        res.kind = IoResult::Kind::kData;
        res.bytes = n;
        return res;
    }

    void close() {
        {
            std::lock_guard<std::mutex> lk(m);
            closed = true;
        }
        cv.notify_all();
    }
};

struct PipeState {
    explicit PipeState(std::size_t cap) : client_to_server(cap), server_to_client(cap) {}
    PipeChannel client_to_server;
    PipeChannel server_to_client;
};

class PipeConnection final : public Connection {
public:
    PipeConnection(std::shared_ptr<PipeState> state, bool is_client)
        : state_(std::move(state)), is_client_(is_client) {}
    ~PipeConnection() override { close(); }

    IoResult read_some(std::span<std::uint8_t> buf, int timeout_ms) override {
        return inbound().read_some(buf, timeout_ms);
    }
    bool write_all(std::span<const std::uint8_t> data) override {
        return outbound().write_all(data);
    }
    void close() override {
        // Closing one endpoint tears down both directions: blocked peers
        // wake with kEof once they drain what was already written.
        state_->client_to_server.close();
        state_->server_to_client.close();
    }
    [[nodiscard]] std::string peer() const override { return "pipe"; }

private:
    PipeChannel& inbound() {
        return is_client_ ? state_->server_to_client : state_->client_to_server;
    }
    PipeChannel& outbound() {
        return is_client_ ? state_->client_to_server : state_->server_to_client;
    }

    std::shared_ptr<PipeState> state_;
    bool is_client_;
};

}  // namespace

common::Expected<std::unique_ptr<Listener>> listen_unix(const std::string& path) {
    using Result = common::Expected<std::unique_ptr<Listener>>;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        return Result::failure("unix socket path too long: " + path);
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Result::failure(errno_string("socket"));
    ::unlink(path.c_str());  // stale socket from a previous run
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        const std::string err = errno_string("bind " + path);
        ::close(fd);
        return Result::failure(err);
    }
    if (::listen(fd, 8) != 0) {
        const std::string err = errno_string("listen");
        ::close(fd);
        return Result::failure(err);
    }
    return Result{std::unique_ptr<Listener>(
        std::make_unique<FdListener>(fd, "unix:" + path, path))};
}

common::Expected<std::unique_ptr<Listener>> listen_tcp(std::uint16_t port) {
    using Result = common::Expected<std::unique_ptr<Listener>>;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Result::failure(errno_string("socket"));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        const std::string err = errno_string("bind");
        ::close(fd);
        return Result::failure(err);
    }
    if (::listen(fd, 8) != 0) {
        const std::string err = errno_string("listen");
        ::close(fd);
        return Result::failure(err);
    }
    // Recover the kernel-assigned port when the caller passed 0.
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
    return Result{std::unique_ptr<Listener>(std::make_unique<FdListener>(
        fd, "tcp:127.0.0.1:" + std::to_string(ntohs(bound.sin_port)), ""))};
}

common::Expected<std::unique_ptr<Connection>> connect_unix(const std::string& path) {
    using Result = common::Expected<std::unique_ptr<Connection>>;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        return Result::failure("unix socket path too long: " + path);
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Result::failure(errno_string("socket"));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        const std::string err = errno_string("connect " + path);
        ::close(fd);
        return Result::failure(err);
    }
    return Result{std::unique_ptr<Connection>(
        std::make_unique<FdConnection>(fd, "unix:" + path))};
}

common::Expected<std::unique_ptr<Connection>> connect_tcp(const std::string& host,
                                                          std::uint16_t port) {
    using Result = common::Expected<std::unique_ptr<Connection>>;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        return Result::failure("connect: '" + host + "' is not a dotted-quad IPv4 address");
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Result::failure(errno_string("socket"));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        const std::string err = errno_string("connect " + host + ":" + std::to_string(port));
        ::close(fd);
        return Result::failure(err);
    }
    return Result{std::unique_ptr<Connection>(std::make_unique<FdConnection>(
        fd, "tcp:" + host + ":" + std::to_string(port)))};
}

PipePair make_pipe(std::size_t capacity) {
    auto state = std::make_shared<PipeState>(capacity);
    PipePair pair;
    pair.client = std::make_unique<PipeConnection>(state, /*is_client=*/true);
    pair.server = std::make_unique<PipeConnection>(std::move(state), /*is_client=*/false);
    return pair;
}

}  // namespace arpsec::serve

#include "serve/shard.hpp"

#include <utility>

#include "wire/arp_packet.hpp"
#include "wire/ipv4_packet.hpp"

namespace arpsec::serve {

namespace {

/// splitmix64 finisher: spreads the low-entropy subnet keys so consecutive
/// /24s don't all collapse onto consecutive shards.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Drain-latency buckets: 1µs .. 1s, decade-spaced. Queueing under load
/// lives in the middle decades; the overflow bucket flags a stalled worker.
std::vector<double> latency_bounds() {
    return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0};
}

}  // namespace

std::size_t shard_of(const wire::FrameView& view, std::size_t shards) {
    if (shards <= 1) return 0;
    std::uint64_t key = 0;
    if (const wire::ArpPacket* arp = view.arp(); arp != nullptr) {
        key = arp->sender_ip.value() >> 8;
    } else if (const wire::Ipv4Packet* ip = view.ipv4(); ip != nullptr) {
        key = ip->src.value() >> 8;
    } else if (view.ok()) {
        key = view.src().to_u64();
    } else {
        return 0;  // malformed: no addresses to key on
    }
    return static_cast<std::size_t>(mix64(key) % shards);
}

Shard::Shard(std::size_t index, const detect::Registry& registry,
             const std::vector<std::string>& schemes,
             const replay::SessionOptions& session_options, const Options& options)
    : index_(index),
      scheme_names_(schemes),
      ring_(options.ring_capacity),
      alert_ring_(options.alert_ring_capacity),
      drop_when_full_(options.drop_when_full),
      latency_(latency_bounds()) {
    sessions_.reserve(schemes.size());
    for (const std::string& name : schemes) {
        auto session =
            std::make_unique<replay::SchemeSession>(registry.make(name), session_options);
        session->alerts().on_alert = [this](const detect::Alert& a) { enqueue_alert(a); };
        sessions_.push_back(std::move(session));
    }
}

Shard::~Shard() { join(); }

void Shard::start(const common::Stopwatch* clock) {
    clock_ = clock;
    joined_ = false;
    thread_ = std::thread([this] { run(); });
}

bool Shard::submit(common::SimTime at, const wire::FrameView& view, double enqueued_s) {
    // A failed try_push leaves the item untouched, so retrying the same
    // object after a yield is safe.
    WorkItem item{at, view, enqueued_s};
    if (ring_.try_push(std::move(item))) return true;
    if (drop_when_full_) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
    while (!ring_.try_push(std::move(item))) std::this_thread::yield();
    return true;
}

void Shard::finish_input(bool run_grace, common::Duration grace) {
    run_grace_ = run_grace;
    grace_ = grace;
    input_done_.store(true, std::memory_order_release);
}

void Shard::join() {
    if (!joined_ && thread_.joinable()) thread_.join();
    joined_ = true;
}

std::size_t Shard::drain_alerts(std::vector<detect::Alert>& out, std::size_t max) {
    std::size_t n = 0;
    detect::Alert alert;
    while (n < max && alert_ring_.try_pop(alert)) {
        out.push_back(std::move(alert));
        ++n;
    }
    return n;
}

void Shard::run() {
    WorkItem item;
    for (;;) {
        if (ring_.try_pop(item)) {
            process(item);
            continue;
        }
        if (input_done_.load(std::memory_order_acquire)) {
            // One more sweep: the producer may have pushed between our
            // failed pop and the flag load.
            while (ring_.try_pop(item)) process(item);
            break;
        }
        std::this_thread::yield();
    }
    if (run_grace_) {
        for (auto& session : sessions_) session->finish(grace_);
    }
    wire::flush_frameview_hits();
}

void Shard::process(const WorkItem& item) {
    frames_.fetch_add(1, std::memory_order_relaxed);
    bool ok = true;
    for (auto& session : sessions_) ok = session->feed(item.at, item.view) && ok;
    if (!ok) malformed_.fetch_add(1, std::memory_order_relaxed);
    // enqueued_s < 0 marks an unsampled frame (the intake thread stamps
    // only a subset to keep two clock reads off the per-frame hot path).
    if (clock_ != nullptr && item.enqueued_s >= 0.0) {
        latency_.observe(clock_->elapsed_seconds() - item.enqueued_s);
    }
}

void Shard::enqueue_alert(detect::Alert alert) {
    alerts_emitted_.fetch_add(1, std::memory_order_relaxed);
    while (!alert_ring_.try_push(std::move(alert))) {
        // The drain thread runs for the whole serve; a full ring is
        // transient. Count the stall and wait for space — alerts are the
        // product, dropping them is never acceptable.
        alert_backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
    }
}

}  // namespace arpsec::serve

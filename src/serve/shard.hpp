#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/ring.hpp"
#include "common/time.hpp"
#include "detect/alert.hpp"
#include "detect/registry.hpp"
#include "replay/session.hpp"
#include "telemetry/metrics.hpp"
#include "wire/frame.hpp"

namespace arpsec::serve {

/// One frame handed from the intake thread to a shard worker. The view
/// must be primed before submission — after priming, the worker's accesses
/// are read-only memo hits (the FrameBuffer cross-thread contract).
struct WorkItem {
    common::SimTime at;
    wire::FrameView view;
    /// Server stopwatch reading at enqueue; the worker's reading at
    /// dequeue minus this is the drain latency sample. Negative means the
    /// intake thread did not stamp this frame (latency is sampled, not
    /// per-frame) and the worker records no sample.
    double enqueued_s = -1.0;
};

/// Picks the shard for a frame: ARP sender subnet (/24) when the frame is
/// ARP, IPv4 source subnet when it is IP, and a hash of the source MAC
/// otherwise. Keyed routing keeps every station's traffic on one shard, so
/// per-station detector state (arpwatch bindings, rate counters) never
/// splits across workers. Malformed frames all land on shard 0 — they
/// carry no addresses, and every session counts them the same way.
[[nodiscard]] std::size_t shard_of(const wire::FrameView& view, std::size_t shards);

/// One detector worker: an intake ring, one SchemeSession per configured
/// scheme, and an outbound alert ring. The intake thread is the only
/// producer, the worker thread the only consumer (and the only toucher of
/// the sessions); alerts flow out through another SPSC ring drained by the
/// server's drain thread. All cross-thread stats are relaxed atomics; the
/// drain-latency histogram is worker-owned and merged after join().
class Shard {
public:
    struct Options {
        std::size_t ring_capacity = 4096;
        std::size_t alert_ring_capacity = 4096;
        /// Admission policy when the intake ring is full: false blocks the
        /// intake thread (zero admitted-frame loss — the transport's own
        /// backpressure pushes back on the client); true counts and drops.
        bool drop_when_full = false;
    };

    /// Builds the sessions eagerly on the constructing thread. `registry`
    /// must resolve every scheme name (the server validates first).
    Shard(std::size_t index, const detect::Registry& registry,
          const std::vector<std::string>& schemes,
          const replay::SessionOptions& session_options, const Options& options);
    ~Shard();

    Shard(const Shard&) = delete;
    Shard& operator=(const Shard&) = delete;

    /// Spawns the worker thread. `clock` must outlive the shard.
    void start(const common::Stopwatch* clock);

    /// Intake thread only. Blocks when the ring is full (or drops, per
    /// options). Returns false iff the frame was dropped.
    bool submit(common::SimTime at, const wire::FrameView& view, double enqueued_s);

    /// Intake thread: no more submissions. The worker drains its ring,
    /// optionally runs each session's grace window (delayed alerts), and
    /// exits. `run_grace` is false on snapshot-bound stops so learned
    /// state freezes at the last fed frame.
    void finish_input(bool run_grace, common::Duration grace);

    /// Joins the worker thread (idempotent).
    void join();

    /// Drain thread only: pops up to `max` pending alerts into `out`.
    std::size_t drain_alerts(std::vector<detect::Alert>& out, std::size_t max);

    // Live stats (any thread; relaxed atomics).
    [[nodiscard]] std::uint64_t frames() const { return frames_.load(std::memory_order_relaxed); }
    [[nodiscard]] std::uint64_t malformed() const {
        return malformed_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t alerts_emitted() const {
        return alerts_emitted_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t dropped() const {
        return dropped_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t backpressure_waits() const {
        return backpressure_waits_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t alert_backpressure_waits() const {
        return alert_backpressure_waits_.load(std::memory_order_relaxed);
    }
    /// Intake-side ring occupancy snapshot (sampled after each submit).
    [[nodiscard]] std::size_t queue_depth() const { return ring_.size(); }
    [[nodiscard]] std::size_t index() const { return index_; }

    /// Post-join only: the worker no longer exists, so these are safe to
    /// read from the server thread.
    [[nodiscard]] const telemetry::Histogram& drain_latency() const { return latency_; }
    [[nodiscard]] const std::vector<std::string>& scheme_names() const { return scheme_names_; }
    [[nodiscard]] replay::SchemeSession& session(std::size_t i) { return *sessions_[i]; }
    [[nodiscard]] const replay::SchemeSession& session(std::size_t i) const {
        return *sessions_[i];
    }
    [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }

private:
    void run();
    void process(const WorkItem& item);
    void enqueue_alert(detect::Alert alert);

    std::size_t index_;
    std::vector<std::string> scheme_names_;
    std::vector<std::unique_ptr<replay::SchemeSession>> sessions_;
    common::SpscRing<WorkItem> ring_;
    common::SpscRing<detect::Alert> alert_ring_;
    bool drop_when_full_;
    const common::Stopwatch* clock_ = nullptr;
    telemetry::Histogram latency_;

    std::atomic<bool> input_done_{false};
    bool run_grace_ = false;          // written before input_done_ release-store
    common::Duration grace_ = common::Duration::zero();

    std::atomic<std::uint64_t> frames_{0};
    std::atomic<std::uint64_t> malformed_{0};
    std::atomic<std::uint64_t> alerts_emitted_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> backpressure_waits_{0};
    std::atomic<std::uint64_t> alert_backpressure_waits_{0};

    std::thread thread_;
    bool joined_ = true;
};

}  // namespace arpsec::serve

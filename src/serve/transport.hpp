#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/expected.hpp"

namespace arpsec::serve {

/// Result of one blocking read attempt on a transport connection.
struct IoResult {
    enum class Kind {
        kData,     ///< `bytes` bytes were read.
        kEof,      ///< Peer closed cleanly; no more data will arrive.
        kTimeout,  ///< `timeout_ms` elapsed with no data.
        kError,    ///< Transport failure; `error` says why.
    };
    Kind kind = Kind::kEof;
    std::size_t bytes = 0;
    std::string error;
};

/// One bidirectional byte stream carrying `arpsec.stream.v1` records.
/// Implementations: Unix-domain socket, TCP socket, and an in-process pipe
/// (deterministic tests, no kernel involved). The framing layer on top is
/// identical for all three — that is the point of the abstraction.
///
/// Thread contract: one thread may read while another writes (the daemon
/// reads frames on the intake thread while the alert drain thread writes),
/// but each direction has a single owner.
class Connection {
public:
    virtual ~Connection() = default;

    /// Reads up to `buf.size()` bytes. `timeout_ms < 0` blocks
    /// indefinitely; `timeout_ms >= 0` returns kTimeout if nothing arrives
    /// in time (the serve read/idle timeout mechanism).
    [[nodiscard]] virtual IoResult read_some(std::span<std::uint8_t> buf, int timeout_ms) = 0;

    /// Writes the whole span (blocking). Returns false when the peer is
    /// gone; a daemon treats that as the client abandoning the stream.
    [[nodiscard]] virtual bool write_all(std::span<const std::uint8_t> data) = 0;

    /// Closes both directions; a blocked read_some on the other thread
    /// returns kEof/kError promptly.
    virtual void close() = 0;

    /// Human-readable peer description for logs ("unix:/tmp/x.sock", "pipe").
    [[nodiscard]] virtual std::string peer() const = 0;
};

/// Accepts connections for the daemon side of socket transports.
class Listener {
public:
    virtual ~Listener() = default;

    /// Waits up to `timeout_ms` (<0 = forever) for one client.
    [[nodiscard]] virtual common::Expected<std::unique_ptr<Connection>> accept(
        int timeout_ms) = 0;

    virtual void close() = 0;

    [[nodiscard]] virtual std::string address() const = 0;
};

/// Unix-domain stream socket bound at `path` (unlinked first if stale).
[[nodiscard]] common::Expected<std::unique_ptr<Listener>> listen_unix(const std::string& path);
/// TCP listener on 127.0.0.1:`port` (port 0 picks a free port; see address()).
[[nodiscard]] common::Expected<std::unique_ptr<Listener>> listen_tcp(std::uint16_t port);

[[nodiscard]] common::Expected<std::unique_ptr<Connection>> connect_unix(
    const std::string& path);
[[nodiscard]] common::Expected<std::unique_ptr<Connection>> connect_tcp(
    const std::string& host, std::uint16_t port);

/// In-process pipe: two connected endpoints backed by bounded buffers.
/// Writes block when the buffer is full (transport-level backpressure),
/// reads block until data or close. No file descriptors, fully
/// deterministic scheduling apart — the equivalence ctest runs on this.
struct PipePair {
    std::unique_ptr<Connection> client;
    std::unique_ptr<Connection> server;
};
[[nodiscard]] PipePair make_pipe(std::size_t capacity = 1 << 16);

}  // namespace arpsec::serve

#include "attack/attacker.hpp"

#include "host/payload.hpp"
#include "wire/dhcp_message.hpp"
#include "wire/tcp_segment.hpp"
#include "wire/udp_datagram.hpp"

namespace arpsec::attack {

using common::Duration;
using wire::ArpOp;
using wire::ArpPacket;
using wire::EthernetFrame;
using wire::EtherType;
using wire::Ipv4Address;
using wire::Ipv4Packet;
using wire::MacAddress;

std::string to_string(PoisonVector v) {
    switch (v) {
        case PoisonVector::kUnsolicitedReply: return "unsolicited-reply";
        case PoisonVector::kForgedRequest: return "forged-request";
        case PoisonVector::kGratuitousRequest: return "gratuitous-request";
        case PoisonVector::kGratuitousReply: return "gratuitous-reply";
        case PoisonVector::kReplyRace: return "reply-race";
    }
    return "?";
}

Attacker::Attacker(Config config) : sim::Node(config.name), config_(std::move(config)) {}

void Attacker::learn_binding(Ipv4Address ip, MacAddress mac) { true_bindings_[ip] = mac; }

std::size_t Attacker::start_poison(PoisonCampaign campaign) {
    const std::size_t id = campaigns_.size();
    campaigns_.push_back(Campaign{campaign, true});
    if (campaign.vector == PoisonVector::kReplyRace) {
        enable_reply_race(campaign.spoofed_ip, campaign.claimed_mac, Duration::micros(50));
    } else {
        run_campaign(id);
    }
    return id;
}

void Attacker::stop_poison(std::size_t campaign_id) {
    if (campaign_id < campaigns_.size()) campaigns_[campaign_id].active = false;
}

void Attacker::stop_all() {
    for (auto& c : campaigns_) c.active = false;
    disable_reply_race();
    relay_enabled_ = false;
    flood_remaining_ = 0;
    starve_remaining_ = 0;
    clone_.reset();
    cache_flood_.reset();
    tcp_rst_injection_ = false;
    probe_spoof_ips_.clear();
}

void Attacker::run_campaign(std::size_t id) {
    if (id >= campaigns_.size() || !campaigns_[id].active) return;
    const Campaign& c = campaigns_[id];
    send_poison(c.spec);
    if (c.spec.period > Duration::zero()) {
        network().scheduler().schedule_after(c.spec.period, [this, id] { run_campaign(id); });
    }
}

void Attacker::send_poison(const PoisonCampaign& c) {
    ArpPacket pkt;
    MacAddress frame_dst = c.victim_mac;
    switch (c.vector) {
        case PoisonVector::kUnsolicitedReply:
            pkt = ArpPacket::reply(c.claimed_mac, c.spoofed_ip, c.victim_mac, c.victim_ip);
            break;
        case PoisonVector::kForgedRequest:
            // A request whose *sender* fields carry the lie; many stacks
            // learn the sender of any request addressed to them.
            pkt = ArpPacket::request(c.claimed_mac, c.spoofed_ip, c.victim_ip);
            break;
        case PoisonVector::kGratuitousRequest:
            pkt = ArpPacket::gratuitous(c.claimed_mac, c.spoofed_ip, /*as_reply=*/false);
            frame_dst = MacAddress::broadcast();
            break;
        case PoisonVector::kGratuitousReply:
            pkt = ArpPacket::gratuitous(c.claimed_mac, c.spoofed_ip, /*as_reply=*/true);
            frame_dst = MacAddress::broadcast();
            break;
        case PoisonVector::kReplyRace:
            return;  // handled reactively in handle_arp()
    }

    EthernetFrame frame;
    frame.dst = frame_dst;
    // The frame-level source is the attacker's own NIC: spoofing the
    // Ethernet source as well is possible but defeats port security, so we
    // model the common tool behaviour (frame src = attacker, ARP sender =
    // lie), which is also what Snort's consistency check keys on.
    frame.src = config_.mac;
    frame.ether_type = EtherType::kArp;
    frame.payload = pkt.serialize();
    ++stats_.poison_frames_sent;
    send(0, frame);
}

void Attacker::start_mitm(Ipv4Address a_ip, MacAddress a_mac, Ipv4Address b_ip,
                          MacAddress b_mac, Duration repoison_period) {
    learn_binding(a_ip, a_mac);
    learn_binding(b_ip, b_mac);
    relay_enabled_ = true;
    // Tell A that B is at the attacker, and B that A is at the attacker.
    start_poison(PoisonCampaign{a_ip, a_mac, b_ip, config_.mac,
                                PoisonVector::kUnsolicitedReply, repoison_period});
    start_poison(PoisonCampaign{b_ip, b_mac, a_ip, config_.mac,
                                PoisonVector::kUnsolicitedReply, repoison_period});
}

void Attacker::enable_reply_race(Ipv4Address spoofed_ip, MacAddress claimed_mac,
                                 Duration reaction_delay) {
    race_ = RaceSpec{spoofed_ip, claimed_mac, reaction_delay};
}

void Attacker::disable_reply_race() { race_.reset(); }

void Attacker::spoof_probe_answers_for(Ipv4Address ip) { probe_spoof_ips_.push_back(ip); }

void Attacker::start_mac_flood(std::uint64_t count, double rate) {
    flood_remaining_ = count;
    flood_interval_ = Duration{static_cast<std::int64_t>(1e9 / rate)};
    if (!flood_rng_) flood_rng_ = network().fork_rng(0xF100D + id());
    flood_tick();
}

void Attacker::flood_tick() {
    if (flood_remaining_ == 0) return;
    --flood_remaining_;
    EthernetFrame frame;
    frame.dst = MacAddress::local(flood_rng_->next_u64() & 0xFFFFFFFFFFULL);
    frame.src = MacAddress::local(flood_rng_->next_u64() & 0xFFFFFFFFFFULL);
    frame.ether_type = EtherType::kIpv4;
    Ipv4Packet p;
    p.src = Ipv4Address{static_cast<std::uint32_t>(flood_rng_->next_u64())};
    p.dst = Ipv4Address{static_cast<std::uint32_t>(flood_rng_->next_u64())};
    frame.payload = p.serialize();
    ++stats_.flood_frames_sent;
    send(0, frame);
    network().scheduler().schedule_after(flood_interval_, [this] { flood_tick(); });
}

void Attacker::start_mac_clone(MacAddress victim_mac, Duration period) {
    clone_ = CloneSpec{victim_mac, period};
    clone_tick();
}

void Attacker::clone_tick() {
    if (!clone_) return;
    // Any frame sourced from the victim's MAC refreshes the switch CAM
    // toward our port; an empty IPv4 packet to a reserved address suffices.
    EthernetFrame frame;
    frame.dst = MacAddress::local(0xC10E);  // sink address nobody owns
    frame.src = clone_->victim_mac;
    frame.ether_type = EtherType::kIpv4;
    Ipv4Packet p;
    p.src = config_.ip.value_or(Ipv4Address::any());
    p.dst = Ipv4Address{203, 0, 113, 1};
    frame.payload = p.serialize();
    ++stats_.clone_frames_sent;
    send(0, frame);
    network().scheduler().schedule_after(clone_->period, [this] { clone_tick(); });
}

void Attacker::start_dhcp_starvation(std::uint64_t count, double rate) {
    starve_remaining_ = count;
    starve_interval_ = Duration{static_cast<std::int64_t>(1e9 / rate)};
    if (!flood_rng_) flood_rng_ = network().fork_rng(0xF100D + id());
    starve_tick();
}

void Attacker::starve_tick() {
    if (starve_remaining_ == 0) return;
    --starve_remaining_;
    // DISCOVER with a random client hardware address; real tools (yersinia)
    // spoof the Ethernet source to match so snooping switches see a
    // consistent client.
    const MacAddress fake = MacAddress::local(flood_rng_->next_u64() & 0xFFFFFFFFFFULL);
    wire::DhcpMessage msg;
    msg.op = 1;
    msg.xid = static_cast<std::uint32_t>(flood_rng_->next_u64());
    msg.flags = wire::DhcpMessage::kFlagBroadcast;
    msg.chaddr = fake;
    msg.message_type = wire::DhcpMessageType::kDiscover;
    wire::UdpDatagram udp;
    udp.src_port = wire::DhcpMessage::kClientPort;
    udp.dst_port = wire::DhcpMessage::kServerPort;
    udp.payload = msg.serialize();
    Ipv4Packet ip;
    ip.src = Ipv4Address::any();
    ip.dst = Ipv4Address::broadcast();
    ip.payload = udp.serialize();
    EthernetFrame frame;
    frame.dst = MacAddress::broadcast();
    frame.src = fake;
    frame.ether_type = EtherType::kIpv4;
    frame.payload = ip.serialize();
    ++stats_.dhcp_discovers_sent;
    send(0, frame);
    network().scheduler().schedule_after(starve_interval_, [this] { starve_tick(); });
}

void Attacker::start_cache_flood(Ipv4Address victim_ip, MacAddress victim_mac,
                                 std::uint64_t count, double rate) {
    cache_flood_ = CacheFloodSpec{victim_ip, victim_mac, count,
                                  Duration{static_cast<std::int64_t>(1e9 / rate)}};
    if (!flood_rng_) flood_rng_ = network().fork_rng(0xF100D + id());
    cache_flood_tick();
}

void Attacker::cache_flood_tick() {
    if (!cache_flood_ || cache_flood_->remaining == 0) return;
    --cache_flood_->remaining;
    // Forged request from a random station asking for the victim's address:
    // most stacks create a neighbor entry for the request's sender.
    const MacAddress fake_mac = MacAddress::local(flood_rng_->next_u64() & 0xFFFFFFFFFFULL);
    const Ipv4Address fake_ip{0xC0A80000u |
                              static_cast<std::uint32_t>(flood_rng_->next_below(0xFFFF))};
    EthernetFrame frame;
    frame.dst = cache_flood_->victim_mac;
    frame.src = config_.mac;
    frame.ether_type = EtherType::kArp;
    frame.payload =
        ArpPacket::request(fake_mac, fake_ip, cache_flood_->victim_ip).serialize();
    ++stats_.cache_flood_sent;
    send(0, frame);
    network().scheduler().schedule_after(cache_flood_->interval,
                                         [this] { cache_flood_tick(); });
}

void Attacker::on_frame(sim::PortId in_port, const wire::FrameView& view) {
    (void)in_port;
    if (view.src() == config_.mac) return;
    if (view.dst() != config_.mac && !view.dst().is_broadcast()) {
        ++stats_.frames_sniffed;  // promiscuous capture of diverted traffic
    }
    switch (view.ether_type()) {
        case EtherType::kArp:
            handle_arp(view);
            break;
        case EtherType::kIpv4:
            handle_ipv4(view);
            break;
    }
}

void Attacker::handle_arp(const wire::FrameView& view) {
    const ArpPacket* parsed = view.arp();
    if (parsed == nullptr) return;
    const ArpPacket& pkt = *parsed;
    if (pkt.op != ArpOp::kRequest) return;

    // Reply-race: answer broadcast requests for the watched IP before the
    // real owner can.
    if (race_ && pkt.target_ip == race_->spoofed_ip && view.dst().is_broadcast() &&
        pkt.sender_mac != config_.mac) {
        const ArpPacket forged = ArpPacket::reply(race_->claimed_mac, race_->spoofed_ip,
                                                  pkt.sender_mac, pkt.sender_ip);
        EthernetFrame out;
        out.dst = pkt.sender_mac;
        out.src = config_.mac;
        out.ether_type = EtherType::kArp;
        out.payload = forged.serialize();
        ++stats_.race_replies_sent;
        ++stats_.poison_frames_sent;
        network().scheduler().schedule_after(race_->reaction_delay,
                                             [this, out] { send(0, out); });
        return;
    }

    // Probe spoofing (Antidote-defeat ablation): answer unicast
    // verification probes for IPs we are impersonating.
    for (const Ipv4Address& ip : probe_spoof_ips_) {
        if (pkt.target_ip == ip && view.dst() == config_.mac) {
            const ArpPacket forged =
                ArpPacket::reply(config_.mac, ip, pkt.sender_mac, pkt.sender_ip);
            EthernetFrame out;
            out.dst = pkt.sender_mac;
            out.src = config_.mac;
            out.ether_type = EtherType::kArp;
            out.payload = forged.serialize();
            ++stats_.poison_frames_sent;
            send(0, out);
            return;
        }
    }

    // Stay reachable at our own address.
    if (config_.answer_own_arp && config_.ip && pkt.target_ip == *config_.ip &&
        !pkt.is_gratuitous()) {
        const ArpPacket legit =
            ArpPacket::reply(config_.mac, *config_.ip, pkt.sender_mac, pkt.sender_ip);
        EthernetFrame out;
        out.dst = pkt.sender_mac;
        out.src = config_.mac;
        out.ether_type = EtherType::kArp;
        out.payload = legit.serialize();
        send(0, out);
    }
}

void Attacker::handle_ipv4(const wire::FrameView& view) {
    // Traffic that reaches our NIC but is addressed elsewhere is loot —
    // ARP-diverted (frame dst = our MAC, IP dst = someone else), L2-diverted
    // (MAC cloning / fail-open flooding: frame dst = victim), or broadcast
    // frames carrying *unicast* IP destinations (the broadcast-MAC
    // poisoning vector). Genuine broadcasts (DHCP etc.) are not loot.
    const bool l2_diverted = view.dst() != config_.mac;
    const Ipv4Packet* ip_pkt = view.ipv4();  // memoized in the shared buffer
    if (ip_pkt == nullptr) return;
    if (config_.ip && ip_pkt->dst == *config_.ip) return;  // genuinely ours
    if (ip_pkt->dst.is_broadcast()) return;
    if (view.dst().is_broadcast() && ip_pkt->dst.is_any()) return;

    ++stats_.frames_intercepted;
    if (ledger_ != nullptr && ip_pkt->protocol == wire::IpProto::kUdp) {
        if (auto udp = wire::UdpDatagram::parse(ip_pkt->payload); udp.ok()) {
            if (auto payload = host::Payload::parse(udp->payload)) {
                ledger_->note_intercepted(*payload);
            }
        }
    }

    if (!relay_enabled_) return;  // pure DoS / eavesdrop-only stance
    if (l2_diverted) return;      // relaying would loop through our own port

    auto it = true_bindings_.find(ip_pkt->dst);
    if (it == true_bindings_.end()) return;  // cannot forward: traffic blackholes
    // The relay rewrites the header, so this is a new origin frame, not a
    // zero-copy forward of the intercepted buffer.
    EthernetFrame out = view.frame();
    out.dst = it->second;
    out.src = config_.mac;
    ++stats_.frames_relayed;
    send(0, out);

    if (tcp_rst_injection_ && ip_pkt->protocol == wire::IpProto::kTcp) {
        inject_rsts_for(*ip_pkt);
    }
}

void Attacker::inject_rsts_for(const Ipv4Packet& relayed) {
    auto seg = wire::TcpSegment::parse(relayed.payload);
    if (!seg.ok()) return;
    // Only segments that move the window are worth shadowing.
    std::uint32_t advance = static_cast<std::uint32_t>(seg->payload.size());
    if (seg->has(wire::TcpSegment::kSyn) || seg->has(wire::TcpSegment::kFin)) advance += 1;
    if (advance == 0 && !seg->has(wire::TcpSegment::kAck)) return;

    const auto send_rst = [this](Ipv4Address src_ip, Ipv4Address dst_ip,
                                 std::uint16_t src_port, std::uint16_t dst_port,
                                 std::uint32_t seq) {
        auto dst_mac = true_bindings_.find(dst_ip);
        if (dst_mac == true_bindings_.end()) return;
        wire::TcpSegment rst;
        rst.src_port = src_port;
        rst.dst_port = dst_port;
        rst.seq = seq;
        rst.flags = wire::TcpSegment::kRst;
        Ipv4Packet ip;
        ip.protocol = wire::IpProto::kTcp;
        ip.src = src_ip;  // spoofed: appears to come from the peer
        ip.dst = dst_ip;
        ip.payload = rst.serialize();
        EthernetFrame frame;
        frame.dst = dst_mac->second;
        frame.src = config_.mac;
        frame.ether_type = EtherType::kIpv4;
        frame.payload = ip.serialize();
        ++stats_.tcp_rsts_injected;
        send(0, frame);
    };

    // Reset the receiver: after the relayed segment lands, its rcv_nxt is
    // exactly seq + advance.
    send_rst(relayed.src, relayed.dst, seg->src_port, seg->dst_port, seg->seq + advance);
    // Reset the sender: its rcv_nxt is the segment's ack field.
    if (seg->has(wire::TcpSegment::kAck)) {
        send_rst(relayed.dst, relayed.src, seg->dst_port, seg->src_port, seg->ack);
    }
}

}  // namespace arpsec::attack

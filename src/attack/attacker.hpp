#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "host/ledger.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "wire/arp_packet.hpp"
#include "wire/ipv4_packet.hpp"

namespace arpsec::attack {

/// Which ARP message shape the poisoner uses. These are the classic attack
/// vectors the paper's taxonomy covers; their effectiveness differs per OS
/// cache policy (experiment T1).
enum class PoisonVector {
    kUnsolicitedReply,   // forged reply out of the blue
    kForgedRequest,      // forged request (poisons via the sender fields)
    kGratuitousRequest,  // gratuitous announcement, request form
    kGratuitousReply,    // gratuitous announcement, reply form
    kReplyRace,          // wait for the victim's request, answer first
};

[[nodiscard]] std::string to_string(PoisonVector v);

/// One poisoning campaign: make `victim` believe `spoofed_ip` is at
/// `claimed_mac`.
struct PoisonCampaign {
    wire::Ipv4Address victim_ip;
    wire::MacAddress victim_mac;  // where to address the forged frames
    wire::Ipv4Address spoofed_ip;
    wire::MacAddress claimed_mac;  // attacker MAC for MITM, garbage for DoS
    PoisonVector vector = PoisonVector::kUnsolicitedReply;
    /// Re-poison interval; zero means a single shot. Persistent campaigns
    /// keep the cache poisoned past entry TTLs and across legit refreshes.
    common::Duration period = common::Duration::zero();
};

struct AttackerStats {
    std::uint64_t poison_frames_sent = 0;
    std::uint64_t race_replies_sent = 0;
    std::uint64_t frames_intercepted = 0;
    std::uint64_t frames_relayed = 0;
    std::uint64_t flood_frames_sent = 0;
    std::uint64_t clone_frames_sent = 0;
    std::uint64_t dhcp_discovers_sent = 0;
    std::uint64_t tcp_rsts_injected = 0;
    std::uint64_t cache_flood_sent = 0;
    /// Unicast frames for *other* stations that reached our promiscuous
    /// NIC — the loot of fail-open flooding and MAC cloning.
    std::uint64_t frames_sniffed = 0;
};

/// The adversary: crafts raw frames, intercepts and relays traffic. It does
/// not run the cooperative host stack — it lies at will. The ground-truth
/// bindings an attacker would learn by sniffing the LAN are injected via
/// learn_binding() by the harness.
class Attacker : public sim::Node {
public:
    struct Config {
        std::string name = "attacker";
        wire::MacAddress mac;
        /// The attacker's own legitimate address, if it has one.
        std::optional<wire::Ipv4Address> ip;
        /// Answer ARP requests for the attacker's own IP (a stealthy
        /// attacker stays reachable).
        bool answer_own_arp = true;
    };

    explicit Attacker(Config config);

    void start() override {}
    void on_frame(sim::PortId in_port, const wire::FrameView& view) override;

    [[nodiscard]] wire::MacAddress mac() const { return config_.mac; }
    [[nodiscard]] const AttackerStats& stats() const { return stats_; }

    /// Records a true (IP -> MAC) binding (as learned by pre-attack
    /// sniffing); used by the MITM relay to forward intercepted traffic.
    void learn_binding(wire::Ipv4Address ip, wire::MacAddress mac);

    // ---- Campaigns ---------------------------------------------------------
    /// Starts poisoning. Returns a campaign id usable with stop().
    std::size_t start_poison(PoisonCampaign campaign);
    void stop_poison(std::size_t campaign_id);
    void stop_all();

    /// Classic full-duplex MITM between two stations: poisons both ends and
    /// relays intercepted traffic so neither notices.
    void start_mitm(wire::Ipv4Address a_ip, wire::MacAddress a_mac, wire::Ipv4Address b_ip,
                    wire::MacAddress b_mac, common::Duration repoison_period);

    /// Enables interception accounting and relaying of traffic that arrives
    /// at the attacker but is addressed (at the IP layer) to someone else.
    void enable_relay(host::DeliveryLedger* ledger) {
        ledger_ = ledger;
        relay_enabled_ = true;
    }
    void disable_relay() { relay_enabled_ = false; }

    /// Reply-race: watch for broadcast ARP requests asking for `spoofed_ip`
    /// and answer with `claimed_mac` after `reaction_delay`.
    void enable_reply_race(wire::Ipv4Address spoofed_ip, wire::MacAddress claimed_mac,
                           common::Duration reaction_delay);
    void disable_reply_race();

    /// MAC flooding (CAM exhaustion): sends `count` frames with random
    /// source MACs at `rate` frames/second.
    void start_mac_flood(std::uint64_t count, double rate);

    /// MAC cloning (CAM poisoning): periodically transmits frames whose
    /// Ethernet *source* is the victim's MAC, so the switch learns the
    /// victim's address on the attacker's port and diverts its unicast
    /// traffic here. Orthogonal to ARP — defeats ARP-layer schemes' scope.
    void start_mac_clone(wire::MacAddress victim_mac, common::Duration period);
    void stop_mac_clone() { clone_.reset(); }

    /// DHCP starvation: floods DISCOVERs with random client MACs until the
    /// server's pool is exhausted (`count` requests at `rate` per second).
    void start_dhcp_starvation(std::uint64_t count, double rate);

    /// Neighbor-table exhaustion: floods the victim with forged ARP
    /// requests from `count` random (IP, MAC) pairs at `rate` per second.
    /// Most stacks create an entry per request sender, so a bounded cache
    /// churns out its legitimate entries under LRU pressure.
    void start_cache_flood(wire::Ipv4Address victim_ip, wire::MacAddress victim_mac,
                           std::uint64_t count, double rate);

    /// Answer Antidote-style verification probes for `ip` (ablation: the
    /// attacker races the probe to defeat active verification).
    void spoof_probe_answers_for(wire::Ipv4Address ip);

    /// With the MITM relay active, kill every TCP connection flowing
    /// through us by injecting in-window RSTs toward both endpoints,
    /// spoofed from the respective peer — the classic "what ARP poisoning
    /// buys you" session attack.
    void enable_tcp_rst_injection() { tcp_rst_injection_ = true; }
    void disable_tcp_rst_injection() { tcp_rst_injection_ = false; }

    /// Transmits an arbitrary pre-built frame verbatim (replay attacks:
    /// the adversary re-injects bytes captured earlier, auth trailers and
    /// all).
    void inject_raw(const wire::EthernetFrame& frame) {
        ++stats_.poison_frames_sent;
        send(0, frame);
    }

    /// Replays captured bytes exactly: the view's shared buffer goes back
    /// on the wire verbatim — zero re-serialization, byte-for-byte what the
    /// original capture carried.
    void inject_raw(const wire::FrameView& view) {
        ++stats_.poison_frames_sent;
        send(0, view);
    }

private:
    void run_campaign(std::size_t id);
    void send_poison(const PoisonCampaign& c);
    void handle_arp(const wire::FrameView& view);
    void handle_ipv4(const wire::FrameView& view);
    void flood_tick();

    Config config_;
    AttackerStats stats_;
    std::unordered_map<wire::Ipv4Address, wire::MacAddress> true_bindings_;
    struct Campaign {
        PoisonCampaign spec;
        bool active = false;
    };
    std::vector<Campaign> campaigns_;
    bool relay_enabled_ = false;
    host::DeliveryLedger* ledger_ = nullptr;

    struct RaceSpec {
        wire::Ipv4Address spoofed_ip;
        wire::MacAddress claimed_mac;
        common::Duration reaction_delay;
    };
    std::optional<RaceSpec> race_;
    std::vector<wire::Ipv4Address> probe_spoof_ips_;

    std::uint64_t flood_remaining_ = 0;
    common::Duration flood_interval_ = common::Duration::millis(1);
    std::optional<common::Rng> flood_rng_;

    struct CloneSpec {
        wire::MacAddress victim_mac;
        common::Duration period;
    };
    std::optional<CloneSpec> clone_;
    void clone_tick();

    std::uint64_t starve_remaining_ = 0;
    common::Duration starve_interval_ = common::Duration::millis(1);
    void starve_tick();

    bool tcp_rst_injection_ = false;
    void inject_rsts_for(const wire::Ipv4Packet& relayed);

    struct CacheFloodSpec {
        wire::Ipv4Address victim_ip;
        wire::MacAddress victim_mac;
        std::uint64_t remaining = 0;
        common::Duration interval;
    };
    std::optional<CacheFloodSpec> cache_flood_;
    void cache_flood_tick();
};

}  // namespace arpsec::attack

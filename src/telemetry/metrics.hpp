#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/json.hpp"

namespace arpsec::telemetry {

/// Monotonically increasing event count. Handles are stable for the life of
/// the registry: look the counter up once, keep the reference, and the hot
/// path pays a single increment.
class Counter {
public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    [[nodiscard]] std::uint64_t value() const { return value_; }

private:
    std::uint64_t value_ = 0;
};

/// Point-in-time level that also tracks its high-water mark (e.g. event
/// queue depth).
class Gauge {
public:
    void set(std::int64_t v) {
        value_ = v;
        if (v > high_water_) high_water_ = v;
    }
    [[nodiscard]] std::int64_t value() const { return value_; }
    [[nodiscard]] std::int64_t high_water() const { return high_water_; }

private:
    std::int64_t value_ = 0;
    std::int64_t high_water_ = 0;
};

/// Fixed-bucket histogram with Prometheus "le" semantics: a sample lands in
/// the first bucket whose upper bound is >= the sample; samples above the
/// last bound land in the implicit overflow bucket. Bounds are fixed at
/// creation so observe() is a branchless-ish linear scan over a small array.
class Histogram {
public:
    explicit Histogram(std::vector<double> upper_bounds);

    void observe(double v);

    [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
    /// bucket_counts().size() == bounds().size() + 1 (last = overflow).
    [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] double sum() const { return sum_; }
    [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
    [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }

    /// Folds `other` into this histogram. Both must share identical bucket
    /// bounds (std::logic_error otherwise — mixing scales would corrupt the
    /// distribution). This is how per-worker histograms, observed without
    /// locks on their own threads, combine into one series after join.
    void merge(const Histogram& other);

private:
    std::vector<double> bounds_;        // ascending
    std::vector<std::uint64_t> counts_; // bounds_.size() + 1
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Flat snapshot row (for programmatic consumers and tests).
struct MetricSample {
    enum class Kind { kCounter, kGauge, kHistogram };
    std::string name;
    Kind kind;
    double value = 0.0;  // counter value / gauge value / histogram count
};

/// Named metric store shared by one simulation run. Names are dotted paths
/// ("arp.cache.overwrites"). Re-requesting an existing name of the same
/// type returns the same instance; requesting it as a different type (or a
/// histogram with different bounds) throws std::logic_error — silent
/// aliasing would corrupt both series.
class MetricsRegistry {
public:
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name, std::vector<double> upper_bounds);

    /// Lookup without creation (nullptr when absent or of another type).
    [[nodiscard]] const Counter* find_counter(const std::string& name) const;
    [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
    [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

    [[nodiscard]] std::size_t size() const { return metrics_.size(); }

    [[nodiscard]] std::vector<MetricSample> samples() const;

    /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with names
    /// sorted; the run-artifact "metrics" section.
    [[nodiscard]] Json snapshot_json() const;

private:
    struct Entry {
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    // std::map: stable handle addresses via unique_ptr and sorted export.
    std::map<std::string, Entry> metrics_;
};

}  // namespace arpsec::telemetry

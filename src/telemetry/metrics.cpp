#include "telemetry/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace arpsec::telemetry {

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
    if (bounds_.empty()) throw std::logic_error("Histogram: at least one bucket bound required");
    if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
        throw std::logic_error("Histogram: bucket bounds must be ascending");
    }
    counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    ++counts_[i];
    sum_ += v;
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
    }
    ++count_;
}

void Histogram::merge(const Histogram& other) {
    if (other.bounds_ != bounds_) {
        throw std::logic_error("Histogram: merge requires identical bucket bounds");
    }
    if (other.count_ == 0) return;
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    sum_ += other.sum_;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        if (other.min_ < min_) min_ = other.min_;
        if (other.max_ > max_) max_ = other.max_;
    }
    count_ += other.count_;
}

namespace {

[[noreturn]] void type_collision(const std::string& name, const char* wanted) {
    throw std::logic_error("MetricsRegistry: '" + name + "' already registered as a different "
                           "metric type (wanted " + wanted + ")");
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
    Entry& e = metrics_[name];
    if (e.counter == nullptr) {
        if (e.gauge != nullptr || e.histogram != nullptr) type_collision(name, "counter");
        e.counter = std::make_unique<Counter>();
    }
    return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    Entry& e = metrics_[name];
    if (e.gauge == nullptr) {
        if (e.counter != nullptr || e.histogram != nullptr) type_collision(name, "gauge");
        e.gauge = std::make_unique<Gauge>();
    }
    return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> upper_bounds) {
    Entry& e = metrics_[name];
    if (e.histogram == nullptr) {
        if (e.counter != nullptr || e.gauge != nullptr) type_collision(name, "histogram");
        e.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
    } else if (e.histogram->bounds() != upper_bounds) {
        throw std::logic_error("MetricsRegistry: histogram '" + name +
                               "' re-registered with different bucket bounds");
    }
    return *e.histogram;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
    auto it = metrics_.find(name);
    return it == metrics_.end() ? nullptr : it->second.counter.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
    auto it = metrics_.find(name);
    return it == metrics_.end() ? nullptr : it->second.gauge.get();
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
    auto it = metrics_.find(name);
    return it == metrics_.end() ? nullptr : it->second.histogram.get();
}

std::vector<MetricSample> MetricsRegistry::samples() const {
    std::vector<MetricSample> out;
    out.reserve(metrics_.size());
    for (const auto& [name, e] : metrics_) {
        if (e.counter != nullptr) {
            out.push_back({name, MetricSample::Kind::kCounter,
                           static_cast<double>(e.counter->value())});
        } else if (e.gauge != nullptr) {
            out.push_back({name, MetricSample::Kind::kGauge,
                           static_cast<double>(e.gauge->value())});
        } else if (e.histogram != nullptr) {
            out.push_back({name, MetricSample::Kind::kHistogram,
                           static_cast<double>(e.histogram->count())});
        }
    }
    return out;
}

Json MetricsRegistry::snapshot_json() const {
    Json counters = Json::object();
    Json gauges = Json::object();
    Json histograms = Json::object();
    for (const auto& [name, e] : metrics_) {
        if (e.counter != nullptr) {
            counters[name] = e.counter->value();
        } else if (e.gauge != nullptr) {
            Json g = Json::object();
            g["value"] = e.gauge->value();
            g["high_water"] = e.gauge->high_water();
            gauges[name] = std::move(g);
        } else if (e.histogram != nullptr) {
            const Histogram& h = *e.histogram;
            Json hj = Json::object();
            Json bounds = Json::array();
            for (const double b : h.bounds()) bounds.push_back(b);
            Json counts = Json::array();
            for (const std::uint64_t c : h.bucket_counts()) counts.push_back(c);
            hj["bounds"] = std::move(bounds);
            hj["bucket_counts"] = std::move(counts);
            hj["count"] = h.count();
            hj["sum"] = h.sum();
            hj["min"] = h.min();
            hj["max"] = h.max();
            histograms[name] = std::move(hj);
        }
    }
    Json out = Json::object();
    out["counters"] = std::move(counters);
    out["gauges"] = std::move(gauges);
    out["histograms"] = std::move(histograms);
    return out;
}

}  // namespace arpsec::telemetry

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "telemetry/json.hpp"

namespace arpsec::telemetry {

/// One structured trace record in simulated time. `dur` is meaningful only
/// for complete (span) events.
struct TraceEvent {
    enum class Phase { kComplete, kInstant };

    std::string name;
    std::string category;
    Phase phase = Phase::kInstant;
    common::SimTime ts;
    common::Duration dur;
    std::vector<std::pair<std::string, std::string>> args;
};

/// Records timestamped spans and instants against the simulated clock and
/// exports them as Chrome trace_event JSON (load in chrome://tracing or
/// Perfetto) and/or a JSONL event log (one JSON object per line, for
/// jq-style pipelines). The caller supplies timestamps explicitly because
/// simulated time is owned by the scheduler, not the wall clock.
class EventTracer {
public:
    using SpanId = std::size_t;

    /// Zero-duration marker ("attack launched", "alert raised").
    void instant(std::string name, std::string category, common::SimTime at,
                 std::vector<std::pair<std::string, std::string>> args = {});

    /// Closed interval recorded in one call.
    void complete(std::string name, std::string category, common::SimTime start,
                  common::Duration dur,
                  std::vector<std::pair<std::string, std::string>> args = {});

    /// Open a span now, close it later with end_span(). Ids stay valid for
    /// the tracer's lifetime; ending twice is a no-op.
    SpanId begin_span(std::string name, std::string category, common::SimTime at,
                      std::vector<std::pair<std::string, std::string>> args = {});
    void end_span(SpanId id, common::SimTime at);

    [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
    [[nodiscard]] std::size_t size() const { return events_.size(); }

    /// {"traceEvents": [...], "displayTimeUnit": "ms"}; timestamps in
    /// microseconds as the trace_event format requires.
    [[nodiscard]] Json chrome_trace_json() const;

    /// Writes chrome_trace_json() to `path`; false on I/O failure.
    bool write_chrome_trace(const std::string& path) const;

    /// Writes one compact JSON object per event per line; false on failure.
    bool write_jsonl(const std::string& path) const;

private:
    std::vector<TraceEvent> events_;
    std::vector<bool> open_;  // parallel to events_: span still open?
};

}  // namespace arpsec::telemetry

#include "telemetry/run_artifact.hpp"

#include <cstdio>

namespace arpsec::telemetry {

void RunArtifact::set_meta(const std::string& key, Json value) {
    meta_[key] = std::move(value);
}

Json RunArtifact::to_json() const {
    Json root = Json::object();
    root["schema"] = kSchema;
    root["producer"] = producer_;
    if (meta_.size() > 0) root["meta"] = meta_;
    root["runs"] = runs_;
    return root;
}

bool RunArtifact::write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string text = to_json().dump(2);
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                    std::fputc('\n', f) != EOF;
    std::fclose(f);
    return ok;
}

}  // namespace arpsec::telemetry

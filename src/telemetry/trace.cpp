#include "telemetry/trace.hpp"

#include <cstdio>

namespace arpsec::telemetry {

void EventTracer::instant(std::string name, std::string category, common::SimTime at,
                          std::vector<std::pair<std::string, std::string>> args) {
    events_.push_back(TraceEvent{std::move(name), std::move(category),
                                 TraceEvent::Phase::kInstant, at, common::Duration::zero(),
                                 std::move(args)});
    open_.push_back(false);
}

void EventTracer::complete(std::string name, std::string category, common::SimTime start,
                           common::Duration dur,
                           std::vector<std::pair<std::string, std::string>> args) {
    events_.push_back(TraceEvent{std::move(name), std::move(category),
                                 TraceEvent::Phase::kComplete, start, dur, std::move(args)});
    open_.push_back(false);
}

EventTracer::SpanId EventTracer::begin_span(std::string name, std::string category,
                                            common::SimTime at,
                                            std::vector<std::pair<std::string, std::string>> args) {
    const SpanId id = events_.size();
    events_.push_back(TraceEvent{std::move(name), std::move(category),
                                 TraceEvent::Phase::kComplete, at, common::Duration::zero(),
                                 std::move(args)});
    open_.push_back(true);
    return id;
}

void EventTracer::end_span(SpanId id, common::SimTime at) {
    if (id >= events_.size() || !open_[id]) return;
    events_[id].dur = at - events_[id].ts;
    open_[id] = false;
}

namespace {

Json event_json(const TraceEvent& e) {
    Json j = Json::object();
    j["name"] = e.name;
    j["cat"] = e.category;
    j["ph"] = e.phase == TraceEvent::Phase::kComplete ? "X" : "i";
    j["ts"] = static_cast<double>(e.ts.nanos()) / 1e3;  // microseconds
    if (e.phase == TraceEvent::Phase::kComplete) {
        j["dur"] = static_cast<double>(e.dur.count()) / 1e3;
    } else {
        j["s"] = "g";  // instant scope: global
    }
    j["pid"] = 1;
    j["tid"] = 1;
    if (!e.args.empty()) {
        Json args = Json::object();
        for (const auto& [k, v] : e.args) args[k] = v;
        j["args"] = std::move(args);
    }
    return j;
}

}  // namespace

Json EventTracer::chrome_trace_json() const {
    Json events = Json::array();
    for (const TraceEvent& e : events_) events.push_back(event_json(e));
    Json root = Json::object();
    root["traceEvents"] = std::move(events);
    root["displayTimeUnit"] = "ms";
    return root;
}

bool EventTracer::write_chrome_trace(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string text = chrome_trace_json().dump(2);
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                    std::fputc('\n', f) != EOF;
    std::fclose(f);
    return ok;
}

bool EventTracer::write_jsonl(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    bool ok = true;
    for (const TraceEvent& e : events_) {
        const std::string line = event_json(e).dump();
        ok = ok && std::fwrite(line.data(), 1, line.size(), f) == line.size() &&
             std::fputc('\n', f) != EOF;
    }
    std::fclose(f);
    return ok;
}

}  // namespace arpsec::telemetry

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace arpsec::telemetry {

/// Minimal JSON document value: build, serialize, parse. Powers the
/// telemetry exports (run artifacts, trace files) and lets tests parse the
/// emitted files back without an external dependency. Object keys preserve
/// insertion order so artifacts diff cleanly across runs.
class Json {
public:
    using Array = std::vector<Json>;
    using Object = std::vector<std::pair<std::string, Json>>;

    Json() : value_(nullptr) {}
    Json(std::nullptr_t) : value_(nullptr) {}
    Json(bool b) : value_(b) {}
    Json(int v) : value_(static_cast<std::int64_t>(v)) {}
    Json(unsigned v) : value_(static_cast<std::int64_t>(v)) {}
    Json(std::int64_t v) : value_(v) {}
    Json(std::uint64_t v) : value_(static_cast<std::int64_t>(v)) {}
    Json(double v) : value_(v) {}
    Json(const char* s) : value_(std::string(s)) {}
    Json(std::string s) : value_(std::move(s)) {}

    static Json object() { Json j; j.value_ = Object{}; return j; }
    static Json array() { Json j; j.value_ = Array{}; return j; }

    [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
    [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(value_); }
    [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
    [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(value_); }
    [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
    [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(value_); }
    [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(value_); }
    [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(value_); }

    [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
    [[nodiscard]] std::int64_t as_int() const {
        if (is_double()) return static_cast<std::int64_t>(std::get<double>(value_));
        return std::get<std::int64_t>(value_);
    }
    [[nodiscard]] double as_double() const {
        if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
        return std::get<double>(value_);
    }
    [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(value_); }
    [[nodiscard]] const Array& as_array() const { return std::get<Array>(value_); }
    [[nodiscard]] const Object& as_object() const { return std::get<Object>(value_); }

    /// Object accessor: find-or-append (turns a null value into an object).
    Json& operator[](const std::string& key);
    /// Array element access (must be an array).
    [[nodiscard]] const Json& at(std::size_t i) const { return as_array().at(i); }

    /// Object lookup without insertion; nullptr when absent or not an object.
    [[nodiscard]] const Json* find(const std::string& key) const;

    /// Array append (turns a null value into an array).
    void push_back(Json v);

    [[nodiscard]] std::size_t size() const;

    /// Serializes; `indent` < 0 means compact single-line output.
    [[nodiscard]] std::string dump(int indent = -1) const;

    /// Strict-ish recursive-descent parse; nullopt on malformed input.
    static std::optional<Json> parse(std::string_view text);

private:
    void dump_to(std::string& out, int indent, int depth) const;

    std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array, Object> value_;
};

/// Quotes and escapes `s` as a JSON string literal (including the quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace arpsec::telemetry

#pragma once

#include <string>

#include "telemetry/json.hpp"

namespace arpsec::telemetry {

/// Accumulates one machine-readable artifact per invocation of a tool or
/// bench: a schema tag, producer name, free-form metadata, and one JSON
/// object per run (a single scenario for the CLI; a whole sweep for a
/// bench). Layer-specific serialization (ScenarioConfig/ScenarioResult)
/// lives with those types; this class only owns the envelope and the file.
class RunArtifact {
public:
    /// Schema identifier stamped into every artifact; consumers should
    /// check it before reading further.
    static constexpr const char* kSchema = "arpsec.run-artifact.v1";

    explicit RunArtifact(std::string producer) : producer_(std::move(producer)) {}

    /// Attaches top-level metadata (e.g. sweep axis description).
    void set_meta(const std::string& key, Json value);

    /// Appends one run object (typically core::run_json(...)).
    void add_run(Json run) { runs_.push_back(std::move(run)); }

    [[nodiscard]] std::size_t run_count() const { return runs_.size(); }

    [[nodiscard]] Json to_json() const;

    /// Writes the artifact (pretty-printed) to `path`; false on I/O error.
    bool write(const std::string& path) const;

private:
    std::string producer_;
    Json meta_ = Json::object();
    Json runs_ = Json::array();
};

}  // namespace arpsec::telemetry

#include "telemetry/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace arpsec::telemetry {

Json& Json::operator[](const std::string& key) {
    if (is_null()) value_ = Object{};
    auto& obj = std::get<Object>(value_);
    for (auto& [k, v] : obj) {
        if (k == key) return v;
    }
    obj.emplace_back(key, Json{});
    return obj.back().second;
}

const Json* Json::find(const std::string& key) const {
    if (!is_object()) return nullptr;
    for (const auto& [k, v] : as_object()) {
        if (k == key) return &v;
    }
    return nullptr;
}

void Json::push_back(Json v) {
    if (is_null()) value_ = Array{};
    std::get<Array>(value_).push_back(std::move(v));
}

std::size_t Json::size() const {
    if (is_array()) return as_array().size();
    if (is_object()) return as_object().size();
    return 0;
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
    return out;
}

namespace {

void append_newline_indent(std::string& out, int indent, int depth) {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
    if (is_null()) {
        out += "null";
    } else if (is_bool()) {
        out += as_bool() ? "true" : "false";
    } else if (is_int()) {
        out += std::to_string(std::get<std::int64_t>(value_));
    } else if (is_double()) {
        const double v = std::get<double>(value_);
        if (!std::isfinite(v)) {
            out += "null";  // JSON has no Inf/NaN
        } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.17g", v);
            out += buf;
        }
    } else if (is_string()) {
        out += json_escape(as_string());
    } else if (is_array()) {
        const auto& arr = as_array();
        if (arr.empty()) {
            out += "[]";
            return;
        }
        out.push_back('[');
        for (std::size_t i = 0; i < arr.size(); ++i) {
            if (i > 0) out.push_back(',');
            append_newline_indent(out, indent, depth + 1);
            arr[i].dump_to(out, indent, depth + 1);
        }
        append_newline_indent(out, indent, depth);
        out.push_back(']');
    } else {
        const auto& obj = as_object();
        if (obj.empty()) {
            out += "{}";
            return;
        }
        out.push_back('{');
        for (std::size_t i = 0; i < obj.size(); ++i) {
            if (i > 0) out.push_back(',');
            append_newline_indent(out, indent, depth + 1);
            out += json_escape(obj[i].first);
            out += indent < 0 ? ":" : ": ";
            obj[i].second.dump_to(out, indent, depth + 1);
        }
        append_newline_indent(out, indent, depth);
        out.push_back('}');
    }
}

std::string Json::dump(int indent) const {
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    std::optional<Json> run() {
        skip_ws();
        auto v = parse_value();
        if (!v) return std::nullopt;
        skip_ws();
        if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
        return v;
    }

private:
    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
    [[nodiscard]] char peek() const { return text_[pos_]; }

    bool consume(char c) {
        if (eof() || text_[pos_] != c) return false;
        ++pos_;
        return true;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    std::optional<Json> parse_value() {
        if (eof()) return std::nullopt;
        switch (peek()) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': {
                auto s = parse_string();
                if (!s) return std::nullopt;
                return Json(std::move(*s));
            }
            case 't': return consume_literal("true") ? std::optional<Json>(Json(true))
                                                     : std::nullopt;
            case 'f': return consume_literal("false") ? std::optional<Json>(Json(false))
                                                      : std::nullopt;
            case 'n': return consume_literal("null") ? std::optional<Json>(Json(nullptr))
                                                     : std::nullopt;
            default: return parse_number();
        }
    }

    std::optional<Json> parse_object() {
        if (!consume('{')) return std::nullopt;
        Json obj = Json::object();
        skip_ws();
        if (consume('}')) return obj;
        while (true) {
            skip_ws();
            auto key = parse_string();
            if (!key) return std::nullopt;
            skip_ws();
            if (!consume(':')) return std::nullopt;
            skip_ws();
            auto val = parse_value();
            if (!val) return std::nullopt;
            obj[*key] = std::move(*val);
            skip_ws();
            if (consume(',')) continue;
            if (consume('}')) return obj;
            return std::nullopt;
        }
    }

    std::optional<Json> parse_array() {
        if (!consume('[')) return std::nullopt;
        Json arr = Json::array();
        skip_ws();
        if (consume(']')) return arr;
        while (true) {
            skip_ws();
            auto val = parse_value();
            if (!val) return std::nullopt;
            arr.push_back(std::move(*val));
            skip_ws();
            if (consume(',')) continue;
            if (consume(']')) return arr;
            return std::nullopt;
        }
    }

    std::optional<std::string> parse_string() {
        if (!consume('"')) return std::nullopt;
        std::string out;
        while (!eof()) {
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c == '\\') {
                if (eof()) return std::nullopt;
                const char esc = text_[pos_++];
                switch (esc) {
                    case '"': out.push_back('"'); break;
                    case '\\': out.push_back('\\'); break;
                    case '/': out.push_back('/'); break;
                    case 'b': out.push_back('\b'); break;
                    case 'f': out.push_back('\f'); break;
                    case 'n': out.push_back('\n'); break;
                    case 'r': out.push_back('\r'); break;
                    case 't': out.push_back('\t'); break;
                    case 'u': {
                        if (pos_ + 4 > text_.size()) return std::nullopt;
                        unsigned cp = 0;
                        for (int i = 0; i < 4; ++i) {
                            const char h = text_[pos_++];
                            cp <<= 4;
                            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
                            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
                            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
                            else return std::nullopt;
                        }
                        // Basic-plane UTF-8 encoding (surrogate pairs land as
                        // two 3-byte sequences; fine for telemetry payloads).
                        if (cp < 0x80) {
                            out.push_back(static_cast<char>(cp));
                        } else if (cp < 0x800) {
                            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
                            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
                        } else {
                            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
                            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
                            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
                        }
                        break;
                    }
                    default: return std::nullopt;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return std::nullopt;  // raw control character
            } else {
                out.push_back(c);
            }
        }
        return std::nullopt;  // unterminated
    }

    std::optional<Json> parse_number() {
        const std::size_t start = pos_;
        if (consume('-')) {}
        if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return std::nullopt;
        while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        bool is_floating = false;
        if (!eof() && peek() == '.') {
            is_floating = true;
            ++pos_;
            if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return std::nullopt;
            while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            is_floating = true;
            ++pos_;
            if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
            if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return std::nullopt;
            while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        }
        const std::string token(text_.substr(start, pos_ - start));
        if (is_floating) return Json(std::strtod(token.c_str(), nullptr));
        return Json(static_cast<std::int64_t>(std::strtoll(token.c_str(), nullptr, 10)));
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace arpsec::telemetry

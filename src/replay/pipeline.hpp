#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/ring.hpp"
#include "replay/trace.hpp"
#include "telemetry/metrics.hpp"
#include "wire/frame.hpp"

namespace arpsec::replay {

/// Intra-trace pipeline configuration. `workers == 0` disables the pipeline
/// entirely: views are built and primed inline on the calling thread (the
/// exact pre-pipeline code path), which is what the `--pipeline 0` vs
/// `--pipeline N` byte-identity gates compare against.
struct PipelineOptions {
    /// Prime-stage worker threads (0 = synchronous, no threads spawned).
    std::size_t workers = 0;
    /// Frames per batch — the unit of prime work and of lane gating. Batch
    /// boundaries MUST NOT affect scores: batching only changes when a memo
    /// gets written, never what it contains.
    std::size_t batch_frames = 1024;
    /// Per-worker ring capacity in batches. Bounds how far a prime worker
    /// may run ahead of the slowest consumer-visible frontier (backpressure
    /// keeps the primed working set near cache size).
    std::size_t ring_slots = 8;
};

/// Stage-parallel FrameView priming for the replay engine.
///
/// The trace is split into fixed-size frame batches. Prime workers build
/// each batch's views (`FrameBuffer::capture` + `FrameView::prime()`) so
/// the Ethernet/ARP/IPv4 memos are populated off the evaluation hot path;
/// batches are statically sharded worker w <- {k : k % workers == w}, and
/// each worker pushes finished batch indices, in increasing order, into its
/// own bounded SPSC ring (`common::SpscRing`). A collector thread — the
/// single consumer of every ring — pops batch 0 from ring 0, batch 1 from
/// ring 1, ... and advances the publication frontier strictly in batch
/// order. Evaluation lanes (one per scheme, fanned out by Engine::run_all)
/// block on `wait_batch()` until the frontier passes the batch they need,
/// so every lane consumes primed batches in order.
///
/// Memory-safety contract: views_[i] is written by exactly one prime
/// worker, whose writes are published to the collector by the ring push
/// (release) and to lanes by the frontier store (release); lanes read only
/// after a frontier acquire, so the unsynchronized FrameBuffer memo is
/// never written concurrently with a read. Priming completes regardless of
/// consumers (the collector drains every ring), so destruction never
/// deadlocks on an abandoned lane.
///
/// Determinism contract: the frontier only controls *when* a lane may read
/// a view, never what the view contains — scores, stdout, and the
/// arpsec.replay-artifact.v1 envelope are byte-identical for every
/// (workers, batch_frames, ring_slots, jobs) combination.
class Pipeline {
public:
    /// Builds the pipeline over `trace` (which must outlive it) and starts
    /// priming: inline (returns with everything primed) when
    /// options.workers == 0, on background threads otherwise.
    Pipeline(const LabeledTrace& trace, PipelineOptions options);

    /// Joins all prime/collector threads. Safe when already joined.
    ~Pipeline();

    Pipeline(const Pipeline&) = delete;
    Pipeline& operator=(const Pipeline&) = delete;

    [[nodiscard]] const std::vector<wire::FrameView>& views() const { return views_; }
    [[nodiscard]] std::size_t batch_frames() const { return options_.batch_frames; }
    [[nodiscard]] std::size_t batch_count() const { return batch_count_; }

    /// Blocks until batch `index` (and every batch before it) is primed.
    /// Returns immediately once the frontier has passed it; out-of-range
    /// indices clamp to the last batch.
    void wait_batch(std::size_t index) const;

    /// Frames currently safe to read: monotone, reaches views().size() once
    /// priming finishes. A lane that cached this value may read any view
    /// below it without further synchronization.
    [[nodiscard]] std::size_t ready_frames() const;

    /// Blocks until every batch is primed and all pipeline threads have
    /// exited. Called by the destructor; call earlier to bound the
    /// pipeline's lifetime explicitly (e.g. before exporting metrics).
    void join();

    /// Publishes pipeline observability counters into `registry`:
    /// `replay.pipeline.workers`, `replay.pipeline.batches`,
    /// `replay.pipeline.batch_frames`, `replay.pipeline.frames_primed`, and
    /// the per-run ring occupancy high-water gauge
    /// `replay.pipeline.ring_occupancy_highwater`. Requires join() first.
    /// These are observability-only — like the FrameView parse counters,
    /// they are timing-dependent and must never feed per-run artifacts,
    /// which are byte-identical across --pipeline/--jobs by contract.
    void export_metrics(telemetry::MetricsRegistry& registry) const;

private:
    void prime_batch(std::size_t batch);
    void worker_main(std::size_t worker);
    void collector_main();

    const LabeledTrace* trace_;
    PipelineOptions options_;
    std::size_t batch_count_ = 0;
    std::vector<wire::FrameView> views_;

    using BatchRing = common::SpscRing<std::uint32_t>;
    std::vector<std::unique_ptr<BatchRing>> rings_;       // one per worker
    std::vector<std::size_t> ring_highwater_;             // worker-local, read after join
    std::vector<std::thread> threads_;                    // workers + collector
    bool joined_ = false;
    std::atomic<std::size_t> frontier_{0};                // batches published, in order
};

}  // namespace arpsec::replay

#include "replay/source.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "check/harness.hpp"
#include "detect/registry.hpp"
#include "exp/executor.hpp"
#include "wire/pcap_writer.hpp"

namespace arpsec::replay {

namespace {

/// Accumulates the mirror-port stream of one harness run.
class CaptureRecorder final : public check::FrameRecorder {
public:
    void on_monitor_frame(common::SimTime at, bool attacker_origin,
                          std::span<const std::uint8_t> raw) override {
        frames.push_back({at, wire::Bytes{raw.begin(), raw.end()}, attacker_origin});
    }

    std::vector<TraceFrame> frames;
};

struct Epoch {
    std::vector<TraceFrame> frames;
    std::vector<detect::HostRecord> directory;
};

Epoch render_epoch(const check::GenOptions& gen, std::uint64_t seed) {
    check::GenOptions opts = gen;
    opts.schemes = {"none"};  // record raw attacks; schemes are applied at replay time
    check::CheckScenario scenario = check::ScenarioGen{opts}.generate(seed);

    const detect::Registry registry;
    const std::vector<std::unique_ptr<check::Oracle>> no_oracles;
    check::Harness harness{registry, no_oracles};
    CaptureRecorder recorder;
    harness.set_recorder(&recorder);
    (void)harness.run(scenario);

    return {std::move(recorder.frames), check::lan_directory(scenario)};
}

}  // namespace

common::Expected<LabeledTrace> PcapFileSource::load() {
    using Result = common::Expected<LabeledTrace>;
    auto pcap = wire::PcapReader::read_file(pcap_path_);
    if (!pcap.ok()) return Result::failure(pcap.error());

    std::ifstream in{labels_path_};
    if (!in) return Result::failure("labels: cannot open '" + labels_path_ + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    auto labels = TraceLabels::parse(buf.str());
    if (!labels.ok()) return Result::failure(labels.error());

    return join_labels(pcap.value(), labels.value(), pcap_path_);
}

common::Expected<LabeledTrace> ScenarioTraceSource::load() {
    using Result = common::Expected<LabeledTrace>;
    LabeledTrace trace;
    trace.seed = options_.first_seed;
    trace.origin = "scenario-gen";

    // Ground-truth bindings, merged across epochs. Static addressing is
    // deterministic per host index, so epochs agree on every shared IP.
    std::map<std::uint32_t, detect::HostRecord> directory;

    const std::size_t jobs = options_.jobs == 0 ? 1 : options_.jobs;
    common::SimTime offset = common::SimTime::zero();
    std::size_t next_epoch = 0;
    bool done = options_.target_frames == 0;
    while (!done && next_epoch < options_.max_epochs) {
        const std::size_t batch =
            std::min(jobs, options_.max_epochs - next_epoch);
        const std::uint64_t batch_first = options_.first_seed + next_epoch;
        auto epochs = exp::map_indexed<Epoch>(batch, jobs, [&](std::size_t i) {
            return render_epoch(options_.gen, batch_first + i);
        });
        for (auto& outcome : epochs) {
            if (outcome.failed) return Result::failure("trace: " + outcome.error);
            Epoch& epoch = outcome.value;
            for (const detect::HostRecord& r : epoch.directory) {
                directory.emplace(r.ip.value(), r);
            }
            for (TraceFrame& f : epoch.frames) {
                f.at = common::SimTime{offset.nanos() + f.at.nanos()};
                trace.frames.push_back(std::move(f));
            }
            if (!trace.frames.empty()) {
                offset = trace.frames.back().at + options_.epoch_gap;
            }
            ++next_epoch;
            if (trace.frames.size() >= options_.target_frames) {
                done = true;
                break;
            }
        }
    }
    if (!done) {
        return Result::failure("trace: target_frames " +
                               std::to_string(options_.target_frames) + " not reached after " +
                               std::to_string(next_epoch) + " epochs");
    }
    for (auto& [ip, record] : directory) trace.directory.push_back(record);
    return trace;
}

common::Expected<bool> write_trace(const LabeledTrace& trace, const std::string& pcap_path,
                                   const std::string& labels_path,
                                   const std::string& producer) {
    using Result = common::Expected<bool>;
    try {
        wire::PcapWriter writer{pcap_path};
        for (const TraceFrame& f : trace.frames) writer.write(f.at, f.bytes);
    } catch (const std::exception& e) {
        return Result::failure(std::string{"trace: "} + e.what());
    }
    std::ofstream out{labels_path};
    if (!out) return Result::failure("trace: cannot write '" + labels_path + "'");
    out << labels_of(trace).to_json(producer).dump(2) << "\n";
    if (!out) return Result::failure("trace: write to '" + labels_path + "' failed");
    return true;
}

}  // namespace arpsec::replay

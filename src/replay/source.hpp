#pragma once

#include <cstdint>
#include <string>

#include "check/scenario_gen.hpp"
#include "common/expected.hpp"
#include "common/time.hpp"
#include "replay/trace.hpp"

namespace arpsec::replay {

/// Produces labeled traces for the replay engine, either recorded (pcap +
/// sidecar) or synthesized from the DST checker's scenario generator.
class TraceSource {
public:
    virtual ~TraceSource() = default;
    [[nodiscard]] virtual common::Expected<LabeledTrace> load() = 0;
};

/// Loads a classic pcap plus its `arpsec.trace-labels.v1` sidecar.
class PcapFileSource final : public TraceSource {
public:
    PcapFileSource(std::string pcap_path, std::string labels_path)
        : pcap_path_(std::move(pcap_path)), labels_path_(std::move(labels_path)) {}

    [[nodiscard]] common::Expected<LabeledTrace> load() override;

private:
    std::string pcap_path_;
    std::string labels_path_;
};

/// Renders check::ScenarioGen scenarios through the full simulator and
/// records the mirror-port frame stream with attacker-origin ground truth.
/// Epochs (one scenario each, seeds first_seed, first_seed+1, ...) are
/// concatenated on a shifted timeline until the trace reaches
/// target_frames. Epoch rendering fans out over exp::map_indexed, but the
/// resulting trace is byte-identical for every `jobs` value: epochs are
/// appended strictly in seed order and the stop condition only looks at
/// cumulative frame counts at epoch boundaries.
class ScenarioTraceSource final : public TraceSource {
public:
    struct Options {
        std::uint64_t first_seed = 1;
        std::size_t target_frames = 10000;
        std::size_t jobs = 1;
        check::GenOptions gen;  // scheme pool is ignored; epochs run "none"
        /// Idle gap inserted between consecutive epochs on the timeline.
        common::Duration epoch_gap = common::Duration::millis(100);
        /// Safety valve against unreachable targets.
        std::size_t max_epochs = 4096;
    };

    explicit ScenarioTraceSource(Options options) : options_(std::move(options)) {}

    [[nodiscard]] common::Expected<LabeledTrace> load() override;

private:
    Options options_;
};

/// Writes `trace` as a pcap plus its sidecar; fails on I/O errors.
[[nodiscard]] common::Expected<bool> write_trace(const LabeledTrace& trace,
                                                 const std::string& pcap_path,
                                                 const std::string& labels_path,
                                                 const std::string& producer);

}  // namespace arpsec::replay

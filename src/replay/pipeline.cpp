#include "replay/pipeline.hpp"

#include <algorithm>

namespace arpsec::replay {

namespace {

std::size_t div_ceil(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace

Pipeline::Pipeline(const LabeledTrace& trace, PipelineOptions options)
    : trace_(&trace), options_(options) {
    if (options_.batch_frames == 0) options_.batch_frames = 1;
    if (options_.ring_slots == 0) options_.ring_slots = 1;
    const std::size_t nframes = trace.frames.size();
    batch_count_ = div_ceil(nframes, options_.batch_frames);
    views_.resize(nframes);

    if (options_.workers == 0 || batch_count_ <= 1) {
        // Synchronous mode: the exact pre-pipeline code path (build + prime
        // on the calling thread), then publish everything at once. No
        // threads, no rings — this is the --pipeline 0 baseline the
        // byte-identity gates compare against.
        options_.workers = 0;
        for (std::size_t k = 0; k < batch_count_; ++k) prime_batch(k);
        frontier_.store(batch_count_, std::memory_order_release);
        joined_ = true;
        return;
    }

    options_.workers = std::min(options_.workers, batch_count_);
    rings_.reserve(options_.workers);
    ring_highwater_.assign(options_.workers, 0);
    for (std::size_t w = 0; w < options_.workers; ++w) {
        rings_.push_back(std::make_unique<BatchRing>(options_.ring_slots));
    }
    threads_.reserve(options_.workers + 1);
    for (std::size_t w = 0; w < options_.workers; ++w) {
        threads_.emplace_back([this, w] { worker_main(w); });
    }
    threads_.emplace_back([this] { collector_main(); });
}

Pipeline::~Pipeline() { join(); }

void Pipeline::prime_batch(std::size_t batch) {
    const std::size_t begin = batch * options_.batch_frames;
    const std::size_t end = std::min(begin + options_.batch_frames, trace_->frames.size());
    for (std::size_t i = begin; i < end; ++i) {
        wire::FrameView view{wire::FrameBuffer::capture(
            std::span<const std::uint8_t>(trace_->frames[i].bytes))};
        view.prime();
        views_[i] = std::move(view);
    }
}

void Pipeline::worker_main(std::size_t worker) {
    BatchRing& ring = *rings_[worker];
    std::size_t highwater = 0;
    // Static shard: worker w primes batches w, w+P, w+2P, ... in increasing
    // order, so its ring carries a strictly increasing batch sequence and
    // the collector can pop each ring exactly when that ring's next batch
    // is due. One producer (this thread), one consumer (the collector):
    // a genuine SPSC pairing.
    for (std::size_t k = worker; k < batch_count_; k += options_.workers) {
        prime_batch(k);
        // The release store inside try_push publishes this batch's memo
        // writes to the collector; a full ring is the backpressure that
        // stops this worker from running unboundedly ahead.
        while (!ring.try_push(static_cast<std::uint32_t>(k))) std::this_thread::yield();
        highwater = std::max(highwater, ring.size());
    }
    ring_highwater_[worker] = highwater;  // read by export_metrics after join
    // Prime parses tallied on this thread must reach the process-wide
    // counters before the thread exits (prime-stage hit ratio telemetry).
    wire::flush_frameview_hits();
}

void Pipeline::collector_main() {
    // Single consumer of every ring. Batch k always sits in ring k % P and
    // each ring is FIFO over an increasing batch sequence, so popping in
    // global batch order recovers exactly k at each step; the frontier
    // therefore advances strictly in order no matter how workers interleave.
    for (std::size_t k = 0; k < batch_count_; ++k) {
        BatchRing& ring = *rings_[k % options_.workers];
        std::uint32_t batch = 0;
        while (!ring.try_pop(batch)) std::this_thread::yield();
        // The acquire load inside try_pop synchronizes with the worker's
        // push; the release store here republishes the whole prefix to the
        // evaluation lanes waiting in wait_batch().
        frontier_.store(k + 1, std::memory_order_release);
        frontier_.notify_all();
    }
}

void Pipeline::wait_batch(std::size_t index) const {
    if (batch_count_ == 0) return;
    const std::size_t need = std::min(index, batch_count_ - 1) + 1;
    std::size_t cur = frontier_.load(std::memory_order_acquire);
    while (cur < need) {
        frontier_.wait(cur, std::memory_order_acquire);
        cur = frontier_.load(std::memory_order_acquire);
    }
}

std::size_t Pipeline::ready_frames() const {
    const std::size_t published = frontier_.load(std::memory_order_acquire);
    return std::min(published * options_.batch_frames, views_.size());
}

void Pipeline::join() {
    if (joined_) return;
    for (std::thread& t : threads_) {
        if (t.joinable()) t.join();
    }
    joined_ = true;
}

void Pipeline::export_metrics(telemetry::MetricsRegistry& registry) const {
    registry.counter("replay.pipeline.workers").inc(options_.workers);
    registry.counter("replay.pipeline.batches").inc(batch_count_);
    registry.counter("replay.pipeline.batch_frames").inc(options_.batch_frames);
    registry.counter("replay.pipeline.frames_primed").inc(views_.size());
    std::size_t highwater = 0;
    for (const std::size_t hw : ring_highwater_) highwater = std::max(highwater, hw);
    registry.gauge("replay.pipeline.ring_occupancy_highwater")
        .set(static_cast<std::int64_t>(highwater));
}

}  // namespace arpsec::replay

#pragma once

#include <cstddef>
#include <vector>

#include "common/time.hpp"
#include "detect/alert.hpp"

namespace arpsec::replay {

/// Alert<->attack matching totals under the window rule shared by every
/// scorer (batch replay, serve loadgen): an alert is justified by any
/// attack frame in the window before it, and an attack is detected by any
/// alert in the window after it.
struct MatchCounts {
    std::size_t true_positive_alerts = 0;
    std::size_t false_positive_alerts = 0;
    std::size_t detected_attacks = 0;
};

/// Scores `alerts` against ground-truth attack timestamps. Neither input
/// needs to be sorted (pcap capture order can interleave); `attack_times`
/// is taken by value because matching sorts it internally.
[[nodiscard]] MatchCounts match_alerts(std::vector<common::SimTime> attack_times,
                                       const std::vector<detect::Alert>& alerts,
                                       common::Duration window);

}  // namespace arpsec::replay

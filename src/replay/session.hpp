#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.hpp"
#include "detect/alert.hpp"
#include "detect/monitor.hpp"
#include "detect/scheme.hpp"
#include "sim/network.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "wire/frame.hpp"

namespace arpsec::replay {

struct SessionOptions {
    /// Simulation seed; callers coerce 0 to 1 (sim::Network rejects 0).
    std::uint64_t seed = 1;
    /// Ground-truth (IP, MAC) directory handed to schemes that need a
    /// priori bindings (static entries, S-ARP enrollment, DAI).
    std::vector<detect::HostRecord> directory;
};

/// One live scheme instance behind the offline monitor vantage: a minimal
/// LAN (switch + mirror-port monitor, no hosts) with the scheme deployed,
/// consuming a frame stream one FrameView at a time. This is the single
/// code path behind both the batch replay engine and the streaming serve
/// shards — the serve<->replay alert-equivalence gate holds by construction
/// because both feed the same object the same frames.
///
/// Virtual time advances monotonically to each frame's capture timestamp;
/// frames that fail Ethernet parsing are counted and skipped, exactly as
/// the mirror port would drop undeliverable bytes. The session is
/// single-threaded by contract (see the no-threads-in-sim rule): callers
/// that shard sessions across workers must confine each session to one
/// thread.
class SchemeSession {
public:
    /// Deploys `scheme` (must be non-null) into a fresh offline LAN:
    /// deploy() with the directory and infra hooks, configure_switch(),
    /// attach_monitor(), then start_all().
    SchemeSession(std::unique_ptr<detect::Scheme> scheme, SessionOptions options);
    ~SchemeSession();

    SchemeSession(const SchemeSession&) = delete;
    SchemeSession& operator=(const SchemeSession&) = delete;

    /// Delivers one captured frame: advances virtual time to `at` (never
    /// backwards), then hands the view to the monitor. Returns false when
    /// the frame failed Ethernet parsing and was counted as malformed.
    bool feed(common::SimTime at, const wire::FrameView& view);

    /// Runs virtual time forward past the last fed frame so delayed alerts
    /// (probe timeouts, gossip rounds) land. Idempotent.
    void finish(common::Duration grace);

    /// Advances virtual time to `at` without delivering a frame (snapshot
    /// restore re-aligns the clock this way; no-op when `at` is in the past).
    void advance_to(common::SimTime at);

    [[nodiscard]] detect::AlertSink& alerts() { return alerts_; }
    [[nodiscard]] const detect::AlertSink& alerts() const { return alerts_; }
    [[nodiscard]] detect::Scheme& scheme() { return *scheme_; }
    [[nodiscard]] const detect::Scheme& scheme() const { return *scheme_; }
    [[nodiscard]] telemetry::MetricsRegistry& metrics() { return metrics_; }

    [[nodiscard]] std::uint64_t frames() const { return frames_; }
    [[nodiscard]] std::uint64_t malformed() const { return malformed_; }
    /// Timestamp of the latest frame fed so far (zero before any frame).
    [[nodiscard]] common::SimTime last_at() const { return last_at_; }
    [[nodiscard]] common::SimTime now() const;

private:
    SessionOptions options_;
    telemetry::MetricsRegistry metrics_;
    std::unique_ptr<sim::Network> net_;
    l2::Switch* fabric_ = nullptr;
    detect::MonitorNode* monitor_ = nullptr;
    detect::AlertSink alerts_;
    crypto::OpCounters ops_;
    std::unique_ptr<detect::Scheme> scheme_;
    sim::PortId next_port_ = 1;
    std::uint8_t infra_ips_ = 0;
    std::uint64_t frames_ = 0;
    std::uint64_t malformed_ = 0;
    common::SimTime last_at_ = common::SimTime::zero();
};

}  // namespace arpsec::replay

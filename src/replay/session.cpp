#include "replay/session.hpp"

#include <utility>

#include "l2/switch.hpp"

namespace arpsec::replay {

SchemeSession::SchemeSession(std::unique_ptr<detect::Scheme> scheme, SessionOptions options)
    : options_(std::move(options)), scheme_(std::move(scheme)) {
    // Minimal offline LAN: a switch whose mirror port feeds the monitor.
    // No hosts — the stream already contains everything the mirror port
    // saw, so protect_host() never applies at this vantage (documented in
    // docs/REPLAY.md: active-verification probes cannot be answered by a
    // recording, which costs best-effort schemes recall here).
    net_ = std::make_unique<sim::Network>(options_.seed == 0 ? 1 : options_.seed);
    net_->attach_metrics(metrics_);
    fabric_ = &net_->emplace_node<l2::Switch>("switch", std::size_t{16});
    monitor_ =
        &net_->emplace_node<detect::MonitorNode>("monitor", wire::MacAddress::local(0x999));
    net_->connect(sim::Endpoint{monitor_->id(), 0}, sim::Endpoint{fabric_->id(), 0});
    fabric_->set_mirror_port(0);
    fabric_->set_trusted_port(0, true);

    detect::DeploymentContext ctx;
    ctx.net = net_.get();
    ctx.fabric = fabric_;
    ctx.alerts = &alerts_;
    ctx.ops = &ops_;
    ctx.directory = options_.directory;
    ctx.attach_infra = [this](sim::NodeId id) {
        const sim::PortId port = next_port_++;
        net_->connect(sim::Endpoint{id, 0}, sim::Endpoint{fabric_->id(), port});
        fabric_->set_trusted_port(port, true);
        return port;
    };
    ctx.alloc_infra_ip = [this] {
        return wire::Ipv4Address{192, 168, 1, static_cast<std::uint8_t>(240 + infra_ips_++)};
    };
    scheme_->deploy(ctx);
    scheme_->configure_switch(*fabric_);
    scheme_->attach_monitor(*monitor_);
    net_->start_all();
}

SchemeSession::~SchemeSession() = default;

bool SchemeSession::feed(common::SimTime at, const wire::FrameView& view) {
    if (at > net_->now()) net_->scheduler().run_until(at);
    if (at > last_at_) last_at_ = at;
    ++frames_;
    // The view was parsed (and memoized) once when it was built; this is a
    // memo read, not a parse, no matter how many sessions see the frame.
    if (!view.ok()) {
        ++malformed_;
        return false;
    }
    monitor_->on_frame(0, view);
    return true;
}

void SchemeSession::finish(common::Duration grace) {
    const common::SimTime until = last_at_ + grace;
    if (until > net_->now()) net_->scheduler().run_until(until);
}

void SchemeSession::advance_to(common::SimTime at) {
    if (at > last_at_) last_at_ = at;
    if (at > net_->now()) net_->scheduler().run_until(at);
}

common::SimTime SchemeSession::now() const { return net_->now(); }

}  // namespace arpsec::replay

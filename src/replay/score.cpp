#include "replay/score.hpp"

#include <algorithm>

namespace arpsec::replay {

MatchCounts match_alerts(std::vector<common::SimTime> attack_times,
                         const std::vector<detect::Alert>& alerts, common::Duration window) {
    using common::SimTime;
    std::sort(attack_times.begin(), attack_times.end());

    MatchCounts counts;
    for (const detect::Alert& a : alerts) {
        const auto it = std::lower_bound(attack_times.begin(), attack_times.end(),
                                         SimTime{a.at.nanos() - window.count()});
        if (it != attack_times.end() && *it <= a.at) {
            ++counts.true_positive_alerts;
        } else {
            ++counts.false_positive_alerts;
        }
    }

    std::vector<SimTime> alert_times;
    alert_times.reserve(alerts.size());
    for (const detect::Alert& a : alerts) alert_times.push_back(a.at);
    std::sort(alert_times.begin(), alert_times.end());
    for (const SimTime at : attack_times) {
        const auto it = std::lower_bound(alert_times.begin(), alert_times.end(), at);
        if (it != alert_times.end() && *it <= at + window) ++counts.detected_attacks;
    }
    return counts;
}

}  // namespace arpsec::replay

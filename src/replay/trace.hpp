#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "common/time.hpp"
#include "detect/scheme.hpp"
#include "telemetry/json.hpp"
#include "wire/buffer.hpp"
#include "wire/pcap_reader.hpp"

namespace arpsec::replay {

/// One frame of a replayable trace: capture timestamp, raw bytes, and the
/// ground-truth label (true when the frame is a poisoning attempt).
struct TraceFrame {
    common::SimTime at;
    wire::Bytes bytes;
    bool attack = false;
};

/// A trace plus everything the scoring side needs: ground-truth labels and
/// the (IP, MAC) directory the recorded LAN actually used, so schemes that
/// require a priori bindings (static entries, S-ARP enrollment, DAI) can be
/// deployed against the capture.
struct LabeledTrace {
    std::vector<TraceFrame> frames;
    std::vector<detect::HostRecord> directory;
    std::uint64_t seed = 0;
    std::string origin;  // "scenario-gen" or the source pcap path

    [[nodiscard]] std::size_t attack_count() const;
    [[nodiscard]] common::SimTime last_at() const;
};

/// The ground-truth sidecar of a pcap (`arpsec.trace-labels.v1`): which
/// record indices are poisoning attempts, plus the LAN directory.
struct TraceLabels {
    static constexpr const char* kSchema = "arpsec.trace-labels.v1";

    std::uint64_t seed = 0;
    std::size_t frame_count = 0;
    std::vector<std::size_t> attack_frames;  // ascending pcap record indices
    std::vector<detect::HostRecord> directory;

    [[nodiscard]] telemetry::Json to_json(const std::string& producer) const;
    static common::Expected<TraceLabels> parse(const std::string& text);
};

/// Extracts the sidecar view of an in-memory labeled trace.
[[nodiscard]] TraceLabels labels_of(const LabeledTrace& trace);

/// Joins a parsed pcap with its sidecar; fails when the label document
/// disagrees with the capture (frame count mismatch, index out of range).
[[nodiscard]] common::Expected<LabeledTrace> join_labels(const wire::PcapTrace& pcap,
                                                         const TraceLabels& labels,
                                                         std::string origin);

}  // namespace arpsec::replay

#include "replay/trace.hpp"

#include <algorithm>

namespace arpsec::replay {

using telemetry::Json;

std::size_t LabeledTrace::attack_count() const {
    return static_cast<std::size_t>(
        std::count_if(frames.begin(), frames.end(),
                      [](const TraceFrame& f) { return f.attack; }));
}

common::SimTime LabeledTrace::last_at() const {
    return frames.empty() ? common::SimTime::zero() : frames.back().at;
}

Json TraceLabels::to_json(const std::string& producer) const {
    Json j = Json::object();
    j["schema"] = kSchema;
    j["producer"] = producer;
    j["seed"] = seed;
    j["frame_count"] = static_cast<std::uint64_t>(frame_count);
    Json attacks = Json::array();
    for (const std::size_t idx : attack_frames) {
        attacks.push_back(static_cast<std::uint64_t>(idx));
    }
    j["attack_frames"] = std::move(attacks);
    Json dir = Json::array();
    for (const detect::HostRecord& r : directory) {
        Json entry = Json::object();
        entry["name"] = r.name;
        entry["ip"] = r.ip.to_string();
        entry["mac"] = r.mac.to_string();
        dir.push_back(std::move(entry));
    }
    j["directory"] = std::move(dir);
    return j;
}

common::Expected<TraceLabels> TraceLabels::parse(const std::string& text) {
    using Result = common::Expected<TraceLabels>;
    const auto doc = Json::parse(text);
    if (!doc || !doc->is_object()) {
        return Result::failure("labels: not a JSON object");
    }
    const Json* schema = doc->find("schema");
    if (schema == nullptr || !schema->is_string() || schema->as_string() != kSchema) {
        return Result::failure(std::string{"labels: missing or unexpected schema (want "} +
                               kSchema + ")");
    }
    TraceLabels out;
    if (const Json* seed = doc->find("seed"); seed != nullptr && seed->is_int()) {
        out.seed = static_cast<std::uint64_t>(seed->as_int());
    }
    const Json* count = doc->find("frame_count");
    if (count == nullptr || !count->is_int() || count->as_int() < 0) {
        return Result::failure("labels: missing frame_count");
    }
    out.frame_count = static_cast<std::size_t>(count->as_int());
    const Json* attacks = doc->find("attack_frames");
    if (attacks == nullptr || !attacks->is_array()) {
        return Result::failure("labels: missing attack_frames array");
    }
    for (const Json& idx : attacks->as_array()) {
        if (!idx.is_int() || idx.as_int() < 0) {
            return Result::failure("labels: attack_frames entries must be non-negative ints");
        }
        out.attack_frames.push_back(static_cast<std::size_t>(idx.as_int()));
    }
    if (const Json* dir = doc->find("directory"); dir != nullptr && dir->is_array()) {
        for (const Json& entry : dir->as_array()) {
            const Json* name = entry.find("name");
            const Json* ip = entry.find("ip");
            const Json* mac = entry.find("mac");
            if (name == nullptr || ip == nullptr || mac == nullptr || !name->is_string() ||
                !ip->is_string() || !mac->is_string()) {
                return Result::failure("labels: malformed directory entry");
            }
            auto parsed_ip = wire::Ipv4Address::parse(ip->as_string());
            if (!parsed_ip.ok()) return Result::failure("labels: " + parsed_ip.error());
            auto parsed_mac = wire::MacAddress::parse(mac->as_string());
            if (!parsed_mac.ok()) return Result::failure("labels: " + parsed_mac.error());
            out.directory.push_back(
                {name->as_string(), parsed_ip.value(), parsed_mac.value()});
        }
    }
    return out;
}

TraceLabels labels_of(const LabeledTrace& trace) {
    TraceLabels labels;
    labels.seed = trace.seed;
    labels.frame_count = trace.frames.size();
    for (std::size_t i = 0; i < trace.frames.size(); ++i) {
        if (trace.frames[i].attack) labels.attack_frames.push_back(i);
    }
    labels.directory = trace.directory;
    return labels;
}

common::Expected<LabeledTrace> join_labels(const wire::PcapTrace& pcap,
                                           const TraceLabels& labels, std::string origin) {
    using Result = common::Expected<LabeledTrace>;
    if (labels.frame_count != pcap.records.size()) {
        return Result::failure("labels: frame_count " + std::to_string(labels.frame_count) +
                               " does not match pcap record count " +
                               std::to_string(pcap.records.size()));
    }
    LabeledTrace trace;
    trace.seed = labels.seed;
    trace.origin = std::move(origin);
    trace.directory = labels.directory;
    trace.frames.reserve(pcap.records.size());
    for (const wire::PcapRecord& rec : pcap.records) {
        trace.frames.push_back({rec.at, rec.bytes, false});
    }
    for (const std::size_t idx : labels.attack_frames) {
        if (idx >= trace.frames.size()) {
            return Result::failure("labels: attack frame index " + std::to_string(idx) +
                                   " out of range (" + std::to_string(trace.frames.size()) +
                                   " frames)");
        }
        trace.frames[idx].attack = true;
    }
    return trace;
}

}  // namespace arpsec::replay

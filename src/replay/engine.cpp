#include "replay/engine.hpp"

#include <memory>
#include <stdexcept>

#include "replay/score.hpp"
#include "replay/session.hpp"
#include "telemetry/metrics.hpp"
#include "wire/ethernet.hpp"

namespace arpsec::replay {

using common::Duration;
using common::SimTime;
using telemetry::Json;

Json SchemeScore::to_json() const {
    Json j = Json::object();
    j["scheme"] = scheme;
    j["frames"] = frames;
    j["malformed"] = malformed;
    j["attack_frames"] = static_cast<std::uint64_t>(attack_frames);
    j["alerts"] = static_cast<std::uint64_t>(alerts);
    j["true_positive_alerts"] = static_cast<std::uint64_t>(true_positive_alerts);
    j["false_positive_alerts"] = static_cast<std::uint64_t>(false_positive_alerts);
    j["detected_attacks"] = static_cast<std::uint64_t>(detected_attacks);
    j["precision"] = precision;
    j["recall"] = recall;
    j["wall_seconds"] = wall_seconds;
    j["frames_per_second"] = frames_per_second;
    j["metrics"] = metrics;
    return j;
}

std::vector<wire::FrameView> Engine::make_views(const LabeledTrace& trace) {
    std::vector<wire::FrameView> views;
    views.reserve(trace.frames.size());
    for (const TraceFrame& f : trace.frames) {
        wire::FrameView view{wire::FrameBuffer::capture(std::span<const std::uint8_t>(f.bytes))};
        view.prime();
        views.push_back(std::move(view));
    }
    return views;
}

common::Expected<SchemeScore> Engine::run(const LabeledTrace& trace,
                                          const std::string& scheme_name) const {
    return run(trace, make_views(trace), scheme_name);
}

common::Expected<SchemeScore> Engine::run(const LabeledTrace& trace,
                                          std::span<const wire::FrameView> views,
                                          const std::string& scheme_name) const {
    return run_impl(trace, views, scheme_name, nullptr);
}

common::Expected<SchemeScore> Engine::run(const LabeledTrace& trace, const Pipeline& pipeline,
                                          const std::string& scheme_name) const {
    return run_impl(trace, std::span<const wire::FrameView>(pipeline.views()), scheme_name,
                    &pipeline);
}

common::Expected<SchemeScore> Engine::run_impl(const LabeledTrace& trace,
                                               std::span<const wire::FrameView> views,
                                               const std::string& scheme_name,
                                               const Pipeline* gate) const {
    using Result = common::Expected<SchemeScore>;
    if (views.size() != trace.frames.size()) {
        return Result::failure("replay: views/frames size mismatch");
    }
    std::unique_ptr<detect::Scheme> scheme = registry_->make(scheme_name);
    if (scheme == nullptr) {
        return Result::failure("replay: unknown scheme '" + scheme_name + "'");
    }

    // The offline LAN, scheme deployment, and feed loop live in
    // SchemeSession — the same object the serve shards stream into, which
    // is what makes the serve<->replay equivalence gate hold by
    // construction.
    SessionOptions session_options;
    session_options.seed = trace.seed == 0 ? 1 : trace.seed;
    session_options.directory = trace.directory;
    SchemeSession session{std::move(scheme), session_options};

    SchemeScore score;
    score.scheme = scheme_name;
    score.attack_frames = trace.attack_count();

    // The Rep allocations behind the views are scattered on the heap and
    // the working set of a 100k-frame trace exceeds cache; prefetching a
    // few frames ahead hides the streaming miss for every scheme.
    constexpr std::size_t kPrefetchAhead = 8;

    // Ungated, every view is primed and readable up front. Behind a
    // pipeline gate, only frames below the priming frontier are safe to
    // touch — reads wait at batch boundaries, and prefetch (which is just a
    // cache hint, not a synchronization point) clamps to the same bound so
    // it never races a prime worker writing the view slot.
    const std::size_t batch_frames = gate != nullptr ? gate->batch_frames() : 0;
    std::size_t ready = gate != nullptr ? gate->ready_frames() : views.size();

    common::Stopwatch watch;
    for (std::size_t i = 0; i < trace.frames.size(); ++i) {
        if (i >= ready) {
            gate->wait_batch(i / batch_frames);
            ready = gate->ready_frames();
        }
        if (i + kPrefetchAhead < ready) views[i + kPrefetchAhead].prefetch();
        const TraceFrame& f = trace.frames[i];
        session.feed(f.at, views[i]);
    }
    // The session tracks the max timestamp it saw, which equals
    // trace.last_at() after a full feed.
    session.finish(options_.grace);
    const double elapsed = watch.elapsed_seconds();
    score.frames = session.frames();
    score.malformed = session.malformed();

    std::vector<SimTime> attack_times;
    for (const TraceFrame& f : trace.frames) {
        if (f.attack) attack_times.push_back(f.at);
    }
    const detect::AlertSink& alerts = session.alerts();
    const MatchCounts match =
        match_alerts(std::move(attack_times), alerts.alerts(), options_.match_window);
    score.true_positive_alerts = match.true_positive_alerts;
    score.false_positive_alerts = match.false_positive_alerts;
    score.detected_attacks = match.detected_attacks;

    score.alerts = alerts.count();
    score.alert_list = alerts.alerts();
    score.precision = score.alerts == 0
                          ? 1.0
                          : static_cast<double>(score.true_positive_alerts) /
                                static_cast<double>(score.alerts);
    score.recall = score.attack_frames == 0
                       ? 1.0
                       : static_cast<double>(score.detected_attacks) /
                             static_cast<double>(score.attack_frames);
    if (options_.timing && elapsed > 0.0) {
        score.wall_seconds = elapsed;
        score.frames_per_second = static_cast<double>(score.frames) / elapsed;
    }

    telemetry::MetricsRegistry& metrics = session.metrics();
    metrics.counter("replay.frames").inc(score.frames);
    metrics.counter("replay.frames.malformed").inc(score.malformed);
    metrics.counter("replay.frames.attack").inc(score.attack_frames);
    alerts.export_metrics(metrics);
    score.metrics = metrics.snapshot_json();
    // This may be a short-lived worker thread (run_all fan-out): drain its
    // batched FrameView hit tallies before it exits.
    wire::flush_frameview_hits();
    return score;
}

std::vector<exp::Outcome<SchemeScore>> Engine::run_all(const LabeledTrace& trace,
                                                       const std::vector<std::string>& schemes,
                                                       std::size_t jobs) const {
    // Parse the whole trace once, before any worker thread exists: priming
    // writes every memo on this thread, so workers only ever read the
    // shared buffers (no synchronization needed on the memo fields).
    const std::vector<wire::FrameView> views = make_views(trace);
    return exp::map_indexed<SchemeScore>(schemes.size(), jobs, [&](std::size_t i) {
        auto result = run(trace, views, schemes[i]);
        if (!result.ok()) throw std::runtime_error(result.error());
        return std::move(result).value();
    });
}

std::vector<exp::Outcome<SchemeScore>> Engine::run_all(
    const LabeledTrace& trace, const std::vector<std::string>& schemes, std::size_t jobs,
    const PipelineOptions& pipeline_options, telemetry::MetricsRegistry* pipeline_metrics) const {
    if (pipeline_options.workers == 0) return run_all(trace, schemes, jobs);
    // Priming overlaps evaluation: lanes start consuming batch 0 while the
    // prime workers are still parsing the tail of the trace. Lane outputs
    // depend only on the (deterministic) memo contents and the unchanged
    // iteration order, so scores are byte-identical to the ungated path.
    Pipeline pipeline(trace, pipeline_options);
    auto results = exp::map_indexed<SchemeScore>(schemes.size(), jobs, [&](std::size_t i) {
        auto result = run(trace, pipeline, schemes[i]);
        if (!result.ok()) throw std::runtime_error(result.error());
        return std::move(result).value();
    });
    pipeline.join();
    if (pipeline_metrics != nullptr) pipeline.export_metrics(*pipeline_metrics);
    return results;
}

Json Engine::artifact(const LabeledTrace& trace, const std::vector<SchemeScore>& scores,
                      const std::string& producer) {
    Json j = Json::object();
    j["schema"] = kSchema;
    j["producer"] = producer;
    Json t = Json::object();
    t["origin"] = trace.origin;
    t["seed"] = trace.seed;
    t["frames"] = static_cast<std::uint64_t>(trace.frames.size());
    t["attack_frames"] = static_cast<std::uint64_t>(trace.attack_count());
    t["duration_seconds"] = trace.last_at().to_seconds();
    j["trace"] = std::move(t);
    Json rows = Json::array();
    for (const SchemeScore& s : scores) rows.push_back(s.to_json());
    j["schemes"] = std::move(rows);
    return j;
}

}  // namespace arpsec::replay

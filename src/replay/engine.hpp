#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "common/time.hpp"
#include "detect/registry.hpp"
#include "exp/executor.hpp"
#include "replay/pipeline.hpp"
#include "replay/trace.hpp"
#include "telemetry/json.hpp"
#include "wire/frame.hpp"

namespace arpsec::replay {

struct EngineOptions {
    /// An alert counts as true positive when an attack frame precedes it
    /// within this window; an attack counts as detected when an alert
    /// follows it within the same window.
    common::Duration match_window = common::Duration::seconds(1);
    /// Extra virtual time after the last frame so delayed alerts land.
    common::Duration grace = common::Duration::seconds(2);
    /// Measure wall clock and report frames/sec. Timing is inherently
    /// nondeterministic; turn it off when output must be byte-identical
    /// (wall_seconds and frames_per_second then report as 0).
    bool timing = true;
};

/// One scheme's scorecard for one trace.
struct SchemeScore {
    std::string scheme;
    std::uint64_t frames = 0;
    std::uint64_t malformed = 0;      // frames that failed Ethernet parsing
    std::size_t attack_frames = 0;    // ground-truth poisoning attempts
    std::size_t alerts = 0;
    std::size_t true_positive_alerts = 0;
    std::size_t false_positive_alerts = 0;
    std::size_t detected_attacks = 0;
    double precision = 1.0;  // TP alerts / alerts (1.0 when no alerts fired)
    double recall = 1.0;     // detected attacks / attacks (1.0 when no attacks)
    double wall_seconds = 0.0;
    double frames_per_second = 0.0;
    telemetry::Json metrics = telemetry::Json::object();
    /// The raw alerts behind the counts above, in emission order. Not part
    /// of the JSON artifact; arpsec-replay's `--alerts` export and the
    /// serve<->replay equivalence gate consume them.
    std::vector<detect::Alert> alert_list;

    [[nodiscard]] telemetry::Json to_json() const;
};

/// Replays a labeled trace through registered schemes from the offline
/// monitor vantage: a minimal LAN (switch + mirror-port monitor, no hosts)
/// is stood up per scheme, virtual time advances to each frame's capture
/// timestamp, and the raw bytes are fed to the monitor exactly as the
/// mirror port delivered them. Alerts are scored against the ground-truth
/// sidecar into precision/recall, plus frames/sec throughput.
class Engine {
public:
    static constexpr const char* kSchema = "arpsec.replay-artifact.v1";

    explicit Engine(const detect::Registry& registry, EngineOptions options = {})
        : registry_(&registry), options_(options) {}

    /// Wraps every trace frame in a primed FrameView: the Ethernet header
    /// and (for ARP frames) the payload are parsed exactly once, here, and
    /// memoized in the shared buffer. Priming on the calling thread is what
    /// makes the views safe to share across run_all's worker threads — the
    /// memo is written before any fan-out and only read after.
    [[nodiscard]] static std::vector<wire::FrameView> make_views(const LabeledTrace& trace);

    /// Fails when `scheme` is not registered. Parses each frame itself;
    /// prefer the pre-built-views overload when replaying the same trace
    /// through more than one scheme.
    [[nodiscard]] common::Expected<SchemeScore> run(const LabeledTrace& trace,
                                                    const std::string& scheme) const;

    /// Same, but feeds pre-built views (`views[i]` must wrap
    /// `trace.frames[i]`, as produced by make_views) so the per-frame parse
    /// cost is paid once per trace instead of once per (trace, scheme).
    [[nodiscard]] common::Expected<SchemeScore> run(const LabeledTrace& trace,
                                                    std::span<const wire::FrameView> views,
                                                    const std::string& scheme) const;

    /// Pipelined lane: consumes `pipeline.views()` gated on the priming
    /// frontier — the scoring loop waits at batch boundaries until the
    /// prime stage has published the batch, then proceeds exactly as the
    /// span overload does. Gating changes only *when* a view is first read,
    /// never what it contains, so the score is byte-identical to the
    /// ungated overloads.
    [[nodiscard]] common::Expected<SchemeScore> run(const LabeledTrace& trace,
                                                    const Pipeline& pipeline,
                                                    const std::string& scheme) const;

    /// Fans schemes out over exp::map_indexed; scores come back in input
    /// order, so reports are byte-identical for every `jobs` value. The
    /// trace is parsed into shared views once, up front — every scheme and
    /// every worker replays the same immutable buffers.
    [[nodiscard]] std::vector<exp::Outcome<SchemeScore>> run_all(
        const LabeledTrace& trace, const std::vector<std::string>& schemes,
        std::size_t jobs) const;

    /// Pipelined sweep: overlaps FrameView priming with scheme evaluation.
    /// With `pipeline.workers == 0` this delegates to the synchronous
    /// run_all above (prime everything, then fan out). Otherwise a Pipeline
    /// primes batches on worker threads while evaluation lanes consume them
    /// in order behind the frontier. Scores and artifacts are byte-identical
    /// either way; only wall time differs. When `pipeline_metrics` is
    /// non-null and the pipeline ran threaded, its observability counters
    /// (replay.pipeline.*) are exported there after the lanes join — they
    /// are timing-dependent and must never feed per-run artifacts.
    [[nodiscard]] std::vector<exp::Outcome<SchemeScore>> run_all(
        const LabeledTrace& trace, const std::vector<std::string>& schemes, std::size_t jobs,
        const PipelineOptions& pipeline,
        telemetry::MetricsRegistry* pipeline_metrics = nullptr) const;

    /// Builds the arpsec.replay-artifact.v1 envelope for a finished run.
    [[nodiscard]] static telemetry::Json artifact(const LabeledTrace& trace,
                                                  const std::vector<SchemeScore>& scores,
                                                  const std::string& producer);

private:
    /// The one scoring loop behind every run() overload. `gate == nullptr`
    /// means all views are already primed (the pre-pipeline path); a
    /// non-null gate bounds both reads and prefetches to the primed
    /// frontier, waiting at batch boundaries.
    [[nodiscard]] common::Expected<SchemeScore> run_impl(const LabeledTrace& trace,
                                                         std::span<const wire::FrameView> views,
                                                         const std::string& scheme,
                                                         const Pipeline* gate) const;

    const detect::Registry* registry_;
    EngineOptions options_;
};

}  // namespace arpsec::replay

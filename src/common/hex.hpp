#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace arpsec::common {

/// Lowercase hex encoding of a byte span, no separators ("deadbeef").
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);

/// Parses a hex string (even length, no separators). Returns empty on any
/// malformed input.
[[nodiscard]] std::vector<std::uint8_t> from_hex(std::string_view hex);

/// Multi-line hexdump with offsets and an ASCII gutter, for diagnostics.
[[nodiscard]] std::string hexdump(std::span<const std::uint8_t> bytes);

}  // namespace arpsec::common

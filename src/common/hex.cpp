#include "common/hex.hpp"

#include <cctype>
#include <cstdio>

namespace arpsec::common {
namespace {

int nibble(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

}  // namespace

std::string to_hex(std::span<const std::uint8_t> bytes) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (std::uint8_t b : bytes) {
        out.push_back(kDigits[b >> 4]);
        out.push_back(kDigits[b & 0xF]);
    }
    return out;
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
    if (hex.size() % 2 != 0) return {};
    std::vector<std::uint8_t> out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        const int hi = nibble(hex[i]);
        const int lo = nibble(hex[i + 1]);
        if (hi < 0 || lo < 0) return {};
        out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    return out;
}

std::string hexdump(std::span<const std::uint8_t> bytes) {
    std::string out;
    char line[128];
    for (std::size_t off = 0; off < bytes.size(); off += 16) {
        int n = std::snprintf(line, sizeof(line), "%06zx  ", off);
        out.append(line, static_cast<std::size_t>(n));
        std::string ascii;
        for (std::size_t i = 0; i < 16; ++i) {
            if (off + i < bytes.size()) {
                const std::uint8_t b = bytes[off + i];
                n = std::snprintf(line, sizeof(line), "%02x ", b);
                out.append(line, static_cast<std::size_t>(n));
                ascii.push_back(std::isprint(b) != 0 ? static_cast<char>(b) : '.');
            } else {
                out.append("   ");
            }
            if (i == 7) out.push_back(' ');
        }
        out.append(" |").append(ascii).append("|\n");
    }
    return out;
}

}  // namespace arpsec::common

#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace arpsec::common {

/// Duration of simulated time, in nanoseconds. A strong type so that raw
/// integers cannot be confused with times or byte counts.
class Duration {
public:
    constexpr Duration() = default;
    constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

    static constexpr Duration nanos(std::int64_t v) { return Duration{v}; }
    static constexpr Duration micros(std::int64_t v) { return Duration{v * 1'000}; }
    static constexpr Duration millis(std::int64_t v) { return Duration{v * 1'000'000}; }
    static constexpr Duration seconds(std::int64_t v) { return Duration{v * 1'000'000'000}; }
    static constexpr Duration zero() { return Duration{0}; }

    [[nodiscard]] constexpr std::int64_t count() const { return ns_; }
    [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
    [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }
    [[nodiscard]] constexpr double to_micros() const { return static_cast<double>(ns_) / 1e3; }

    constexpr auto operator<=>(const Duration&) const = default;

    constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
    constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
    constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
    constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
    constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
    constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

    [[nodiscard]] std::string to_string() const;

private:
    std::int64_t ns_ = 0;
};

/// A point in simulated time (nanoseconds since the start of the run).
class SimTime {
public:
    constexpr SimTime() = default;
    constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

    static constexpr SimTime zero() { return SimTime{0}; }
    static constexpr SimTime max() { return SimTime{INT64_MAX}; }

    [[nodiscard]] constexpr std::int64_t nanos() const { return ns_; }
    [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
    [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }

    constexpr auto operator<=>(const SimTime&) const = default;

    constexpr SimTime operator+(Duration d) const { return SimTime{ns_ + d.count()}; }
    constexpr Duration operator-(SimTime o) const { return Duration{ns_ - o.ns_}; }
    constexpr SimTime& operator+=(Duration d) { ns_ += d.count(); return *this; }

    [[nodiscard]] std::string to_string() const;

private:
    std::int64_t ns_ = 0;
};

/// Wall-clock stopwatch for benchmark timing. common/time.* is the one
/// module allowed to touch the host clock (see the sim-determinism lint
/// rule); simulation code measures time exclusively in SimTime.
class Stopwatch {
public:
    Stopwatch() : start_ns_(now_ns()) {}

    void restart() { start_ns_ = now_ns(); }

    [[nodiscard]] std::int64_t elapsed_nanos() const { return now_ns() - start_ns_; }
    [[nodiscard]] double elapsed_seconds() const {
        return static_cast<double>(elapsed_nanos()) / 1e9;
    }

private:
    static std::int64_t now_ns();

    std::int64_t start_ns_ = 0;
};

}  // namespace arpsec::common

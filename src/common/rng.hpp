#pragma once

#include <cstdint>
#include <limits>

#include "common/time.hpp"

namespace arpsec::common {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. Deterministic across platforms, unlike std::mt19937 paired
/// with std::uniform_int_distribution whose outputs are
/// implementation-defined. Every simulation entity derives its own stream
/// from (run seed, entity id), so adding an entity does not perturb the
/// random numbers other entities observe.
class Rng {
public:
    explicit Rng(std::uint64_t seed);

    /// Derives an independent child stream; `stream_id` distinguishes
    /// siblings derived from the same parent.
    [[nodiscard]] Rng fork(std::uint64_t stream_id) const;

    std::uint64_t next_u64();

    /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling,
    /// so the distribution is exactly uniform.
    std::uint64_t next_below(std::uint64_t bound);

    /// Uniform in [lo, hi] inclusive.
    std::int64_t next_in(std::int64_t lo, std::int64_t hi);

    /// Uniform double in [0, 1).
    double next_double();

    /// Bernoulli trial.
    bool chance(double p);

    /// Exponentially distributed duration with the given mean (for Poisson
    /// arrival processes).
    Duration next_exponential(Duration mean);

    /// Uniform duration in [lo, hi].
    Duration next_duration(Duration lo, Duration hi);

    // UniformRandomBitGenerator interface, so the Rng is usable with
    // std::shuffle and friends.
    using result_type = std::uint64_t;
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }
    result_type operator()() { return next_u64(); }

private:
    std::uint64_t s_[4];
    std::uint64_t seed_;
};

}  // namespace arpsec::common

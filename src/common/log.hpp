#pragma once

#include <atomic>
#include <cstdio>
#include <string>
#include <string_view>

#include "common/time.hpp"

namespace arpsec::common {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log configuration. The simulator itself is single-threaded,
/// but the sweep engine (src/exp/) runs many independent scenarios on a
/// worker pool, so the sink is mutex-guarded (one line is written atomically,
/// never interleaved) and the level is an atomic; output goes to stderr by
/// default.
class Log {
public:
    static void set_level(LogLevel level);
    static LogLevel level();
    static void set_sink(std::FILE* sink);

    /// Writes one line: "[ 1.234567s] WARN component: message".
    static void write(LogLevel level, SimTime now, std::string_view component,
                      std::string_view message);

    static bool enabled(LogLevel level) {
        return level >= level_.load(std::memory_order_relaxed);
    }

private:
    static std::atomic<LogLevel> level_;
    static std::FILE* sink_;  // guards: sink_mutex (the file-local mutex in log.cpp)
};

}  // namespace arpsec::common

#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "common/time.hpp"

namespace arpsec::common {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log configuration. Simulations are single-threaded, so no
/// synchronization is needed; output goes to stderr by default.
class Log {
public:
    static void set_level(LogLevel level);
    static LogLevel level();
    static void set_sink(std::FILE* sink);

    /// Writes one line: "[ 1.234567s] WARN component: message".
    static void write(LogLevel level, SimTime now, std::string_view component,
                      std::string_view message);

    static bool enabled(LogLevel level) { return level >= level_; }

private:
    static LogLevel level_;
    static std::FILE* sink_;
};

}  // namespace arpsec::common

#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace arpsec::common {

/// Bounded single-producer / single-consumer ring buffer.
///
/// Exactly one thread may call the push side and exactly one thread the pop
/// side; under that contract every operation is lock-free (one relaxed load,
/// one acquire load, one release store per call) and the queue delivers
/// items in strict FIFO order. The replay pipeline uses one ring per prime
/// worker (producer: the worker, consumer: the frontier collector), and the
/// bounded capacity is what gives the pipeline backpressure: a producer
/// whose ring is full cannot run unboundedly ahead of the consumer.
///
/// Capacity is rounded up to a power of two so index wrapping is a mask,
/// and one slot is sacrificed to distinguish full from empty — a ring asked
/// for capacity N accepts at least N items before try_push fails.
///
/// T must be default-constructible and movable. This lives in common/ by
/// design (see the no-threads-in-sim lint rule): the ring itself spawns no
/// threads and takes no locks; only src/exp/ and src/replay/ may put
/// threads on either end.
template <typename T>
class SpscRing {
public:
    explicit SpscRing(std::size_t capacity) {
        std::size_t cap = 2;
        while (cap < capacity + 1) cap *= 2;  // +1: one slot stays empty
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    SpscRing(const SpscRing&) = delete;
    SpscRing& operator=(const SpscRing&) = delete;

    /// Usable capacity (>= the constructor argument).
    [[nodiscard]] std::size_t capacity() const { return slots_.size() - 1; }

    /// Producer side. Returns false when the ring is full (item untouched).
    [[nodiscard]] bool try_push(T&& item) {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        const std::size_t next = (head + 1) & mask_;
        if (next == tail_.load(std::memory_order_acquire)) return false;
        slots_[head] = std::move(item);
        head_.store(next, std::memory_order_release);
        return true;
    }
    [[nodiscard]] bool try_push(const T& item) {
        T copy = item;
        return try_push(std::move(copy));
    }

    /// Consumer side. Returns false when the ring is empty (out untouched).
    [[nodiscard]] bool try_pop(T& out) {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        if (tail == head_.load(std::memory_order_acquire)) return false;
        out = std::move(slots_[tail]);
        tail_.store((tail + 1) & mask_, std::memory_order_release);
        return true;
    }

    /// Item count. Exact from the producer or consumer thread between its
    /// own operations; a snapshot (may be stale by in-flight operations)
    /// from anywhere else. The pipeline samples this after each push for
    /// its occupancy high-water gauge.
    [[nodiscard]] std::size_t size() const {
        const std::size_t head = head_.load(std::memory_order_acquire);
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        return (head - tail) & mask_;
    }

    [[nodiscard]] bool empty() const { return size() == 0; }
    [[nodiscard]] bool full() const { return size() == capacity(); }

private:
    std::vector<T> slots_;
    std::size_t mask_ = 0;
    alignas(64) std::atomic<std::size_t> head_{0};  // next write (producer-owned)
    alignas(64) std::atomic<std::size_t> tail_{0};  // next read (consumer-owned)
};

}  // namespace arpsec::common

#include "common/version.hpp"

#ifndef ARPSEC_GIT_DESCRIBE
#define ARPSEC_GIT_DESCRIBE "unknown"
#endif

namespace arpsec::common {

const char* version_string() { return ARPSEC_GIT_DESCRIBE; }

std::string tool_version_line(const std::string& tool) {
    return "arpsec-" + tool + " " + version_string();
}

}  // namespace arpsec::common

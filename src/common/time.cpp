#include "common/time.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace arpsec::common {

std::string Duration::to_string() const {
    char buf[64];
    const std::int64_t abs = ns_ < 0 ? -ns_ : ns_;
    if (ns_ % 1'000'000'000 == 0) {
        std::snprintf(buf, sizeof(buf), "%" PRId64 "s", ns_ / 1'000'000'000);
    } else if (ns_ % 1'000'000 == 0) {
        std::snprintf(buf, sizeof(buf), "%" PRId64 "ms", ns_ / 1'000'000);
    } else if (ns_ % 1'000 == 0) {
        std::snprintf(buf, sizeof(buf), "%" PRId64 "us", ns_ / 1'000);
    } else if (abs >= 1'000'000'000) {
        std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds());
    } else if (abs >= 1'000'000) {
        std::snprintf(buf, sizeof(buf), "%.2fms", to_millis());
    } else if (abs >= 1'000) {
        std::snprintf(buf, sizeof(buf), "%.2fus", to_micros());
    } else {
        std::snprintf(buf, sizeof(buf), "%" PRId64 "ns", ns_);
    }
    return buf;
}

std::string SimTime::to_string() const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6fs", to_seconds());
    return buf;
}

std::int64_t Stopwatch::now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace arpsec::common

#include "common/rng.hpp"

#include <cmath>

namespace arpsec::common {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97f4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
    // xoshiro must not be seeded with all zeros; splitmix64 output of any
    // seed is astronomically unlikely to be all zero, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork(std::uint64_t stream_id) const {
    std::uint64_t mix = seed_;
    std::uint64_t a = splitmix64(mix);
    std::uint64_t b = stream_id;
    std::uint64_t c = splitmix64(b);
    return Rng{a ^ rotl(c, 17) ^ (stream_id * 0x9E3779B97f4A7C15ULL)};
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
    // Lemire-style rejection to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next_u64();
        if (r >= threshold) return r % bound;
    }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
}

Duration Rng::next_exponential(Duration mean) {
    double u = next_double();
    // Avoid log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    const double ns = -std::log(u) * static_cast<double>(mean.count());
    return Duration{static_cast<std::int64_t>(ns)};
}

Duration Rng::next_duration(Duration lo, Duration hi) {
    return Duration{next_in(lo.count(), hi.count())};
}

}  // namespace arpsec::common

#include "common/log.hpp"

namespace arpsec::common {

LogLevel Log::level_ = LogLevel::kWarn;
std::FILE* Log::sink_ = nullptr;

namespace {

const char* level_name(LogLevel l) {
    switch (l) {
        case LogLevel::kTrace: return "TRACE";
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}

}  // namespace

void Log::set_level(LogLevel level) { level_ = level; }
LogLevel Log::level() { return level_; }
void Log::set_sink(std::FILE* sink) { sink_ = sink; }

void Log::write(LogLevel level, SimTime now, std::string_view component,
                std::string_view message) {
    if (!enabled(level)) return;
    std::FILE* out = sink_ != nullptr ? sink_ : stderr;
    std::fprintf(out, "[%12.6fs] %-5s %.*s: %.*s\n", now.to_seconds(), level_name(level),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
}

}  // namespace arpsec::common

#include "common/log.hpp"

#include <mutex>

namespace arpsec::common {

std::atomic<LogLevel> Log::level_{LogLevel::kWarn};
std::FILE* Log::sink_ = nullptr;

namespace {

/// Serializes sink reconfiguration against in-flight writes from sweep
/// workers; also keeps each log line contiguous in the output.
std::mutex& sink_mutex() {
    static std::mutex m;
    return m;
}

const char* level_name(LogLevel l) {
    switch (l) {
        case LogLevel::kTrace: return "TRACE";
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}

}  // namespace

void Log::set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
LogLevel Log::level() { return level_.load(std::memory_order_relaxed); }

void Log::set_sink(std::FILE* sink) {
    const std::lock_guard<std::mutex> lock{sink_mutex()};
    sink_ = sink;
}

void Log::write(LogLevel level, SimTime now, std::string_view component,
                std::string_view message) {
    if (!enabled(level)) return;
    const std::lock_guard<std::mutex> lock{sink_mutex()};
    std::FILE* out = sink_ != nullptr ? sink_ : stderr;
    std::fprintf(out, "[%12.6fs] %-5s %.*s: %.*s\n", now.to_seconds(), level_name(level),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
}

}  // namespace arpsec::common

#pragma once

#include <string>

namespace arpsec::common {

/// The build's `git describe --always --dirty --tags` string, captured at
/// configure time (falls back to the project version outside a checkout).
/// Every CLI's --version flag prints this through tool_version_line().
[[nodiscard]] const char* version_string();

/// "arpsec-<tool> <describe>" — the shared --version output format.
[[nodiscard]] std::string tool_version_line(const std::string& tool);

}  // namespace arpsec::common

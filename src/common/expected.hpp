#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace arpsec::common {

/// Minimal expected/result type (C++23's std::expected is not yet available
/// on this toolchain). The error type is a human-readable string: parse
/// failures in this codebase are diagnostics, not control flow a caller
/// dispatches on.
template <class T>
class [[nodiscard]] Expected {
public:
    Expected(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

    static Expected failure(std::string message) {
        return Expected{Err{std::move(message)}};
    }

    [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }
    explicit operator bool() const { return ok(); }

    [[nodiscard]] const T& value() const& {
        assert(ok());
        return std::get<T>(v_);
    }
    [[nodiscard]] T& value() & {
        assert(ok());
        return std::get<T>(v_);
    }
    [[nodiscard]] T&& value() && {
        assert(ok());
        return std::get<T>(std::move(v_));
    }

    [[nodiscard]] const std::string& error() const& {
        assert(!ok());
        return std::get<Err>(v_).message;
    }
    [[nodiscard]] std::string&& error() && {
        assert(!ok());
        return std::move(std::get<Err>(v_).message);
    }

    const T* operator->() const { return &value(); }
    T* operator->() { return &value(); }
    const T& operator*() const& { return value(); }
    T& operator*() & { return value(); }
    T&& operator*() && { return std::move(*this).value(); }

private:
    struct Err {
        std::string message;
    };
    explicit Expected(Err e) : v_(std::move(e)) {}
    std::variant<T, Err> v_;
};

}  // namespace arpsec::common

#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace arpsec::common {

/// Accumulates scalar samples and reports summary statistics. Used for
/// latency distributions in the evaluation harness and benches.
class Summary {
public:
    void add(double v) { samples_.push_back(v); }

    [[nodiscard]] std::size_t count() const { return samples_.size(); }
    [[nodiscard]] bool empty() const { return samples_.empty(); }

    [[nodiscard]] double mean() const {
        if (samples_.empty()) return 0.0;
        double s = 0.0;
        for (double v : samples_) s += v;
        return s / static_cast<double>(samples_.size());
    }

    [[nodiscard]] double min() const {
        return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
    }

    [[nodiscard]] double max() const {
        return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
    }

    /// q in [0,1]; nearest-rank on the sorted samples.
    [[nodiscard]] double percentile(double q) const {
        if (samples_.empty()) return 0.0;
        std::vector<double> sorted = samples_;
        std::sort(sorted.begin(), sorted.end());
        const auto n = sorted.size();
        auto idx = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
        if (idx > 0) --idx;
        if (idx >= n) idx = n - 1;
        return sorted[idx];
    }

    [[nodiscard]] double median() const { return percentile(0.5); }

    [[nodiscard]] double stddev() const {
        if (samples_.size() < 2) return 0.0;
        const double m = mean();
        double acc = 0.0;
        for (double v : samples_) acc += (v - m) * (v - m);
        return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
    }

    [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

    void merge(const Summary& other) {
        samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    }

private:
    std::vector<double> samples_;
};

}  // namespace arpsec::common

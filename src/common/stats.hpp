#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace arpsec::common {

/// Accumulates scalar samples and reports summary statistics. Used for
/// latency distributions in the evaluation harness and benches.
class Summary {
public:
    void add(double v) {
        samples_.push_back(v);
        sorted_dirty_ = true;
    }

    /// Benches know their sweep size up front; avoid regrowth in add().
    void reserve(std::size_t n) { samples_.reserve(n); }

    [[nodiscard]] std::size_t count() const { return samples_.size(); }
    [[nodiscard]] bool empty() const { return samples_.empty(); }

    [[nodiscard]] double mean() const {
        if (samples_.empty()) return 0.0;
        double s = 0.0;
        for (double v : samples_) s += v;
        return s / static_cast<double>(samples_.size());
    }

    [[nodiscard]] double min() const {
        return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
    }

    [[nodiscard]] double max() const {
        return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
    }

    /// q in [0,1]; nearest-rank on the sorted samples. The sorted view is
    /// cached and only rebuilt after new samples arrive, so sweeping many
    /// percentiles over one distribution sorts once, not per call.
    [[nodiscard]] double percentile(double q) const {
        if (samples_.empty()) return 0.0;
        ensure_sorted();
        const auto n = sorted_.size();
        auto idx = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
        if (idx > 0) --idx;
        if (idx >= n) idx = n - 1;
        return sorted_[idx];
    }

    [[nodiscard]] double median() const { return percentile(0.5); }

    [[nodiscard]] double stddev() const {
        if (samples_.size() < 2) return 0.0;
        const double m = mean();
        double acc = 0.0;
        for (double v : samples_) acc += (v - m) * (v - m);
        return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
    }

    [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

    void merge(const Summary& other) {
        samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
        sorted_dirty_ = true;
    }

private:
    void ensure_sorted() const {
        if (!sorted_dirty_) return;
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        sorted_dirty_ = false;
    }

    std::vector<double> samples_;
    // Lazily maintained sorted copy (percentile cache); mutable because
    // percentile() is logically const.
    mutable std::vector<double> sorted_;
    mutable bool sorted_dirty_ = true;
};

}  // namespace arpsec::common

#include <gtest/gtest.h>

#include "host/apps.hpp"
#include "host/dhcp_server.hpp"
#include "host/host.hpp"
#include "l2/switch.hpp"
#include "sim/network.hpp"

namespace arpsec::host {
namespace {

using common::Duration;
using common::SimTime;
using wire::Ipv4Address;
using wire::MacAddress;

/// A two-or-more-host LAN around one switch.
struct Lan {
    explicit Lan(std::uint64_t seed = 1) : net(seed) {
        sw = &net.emplace_node<l2::Switch>("switch", 8);
    }

    Host& add_host(const std::string& name, std::uint64_t mac_id,
                   std::optional<Ipv4Address> ip,
                   arp::CachePolicy policy = arp::CachePolicy::linux26()) {
        HostConfig cfg;
        cfg.name = name;
        cfg.mac = MacAddress::local(mac_id);
        cfg.static_ip = ip;
        cfg.arp_policy = std::move(policy);
        Host& h = net.emplace_node<Host>(cfg);
        net.connect({h.id(), 0}, {sw->id(), next_port++});
        return h;
    }

    void start_and_run(Duration d) {
        net.start_all();
        net.scheduler().run_until(SimTime::zero() + d);
    }
    void run_more(Duration d) { net.scheduler().run_until(net.now() + d); }

    sim::Network net;
    l2::Switch* sw;
    sim::PortId next_port = 0;
};

// ---------------------------------------------------------------------------
// ARP engine
// ---------------------------------------------------------------------------

TEST(HostArpTest, ResolvesPeerViaRequestReply) {
    Lan lan;
    Host& a = lan.add_host("a", 1, Ipv4Address{192, 168, 1, 10});
    Host& b = lan.add_host("b", 2, Ipv4Address{192, 168, 1, 20});
    (void)b;
    std::optional<MacAddress> resolved;
    lan.net.scheduler().schedule_at(SimTime::zero() + Duration::seconds(1), [&] {
        a.resolve(Ipv4Address{192, 168, 1, 20}, [&](auto mac) { resolved = mac; });
    });
    lan.start_and_run(Duration::seconds(2));
    ASSERT_TRUE(resolved.has_value());
    EXPECT_EQ(*resolved, MacAddress::local(2));
    EXPECT_EQ(a.stats().resolutions_ok, 1u);
    EXPECT_EQ(a.stats().resolution_latency_us.count(), 1u);
    // Sub-millisecond on an idle 100 Mbit/s LAN.
    EXPECT_LT(a.stats().resolution_latency_us.max(), 1000.0);
}

TEST(HostArpTest, CacheHitResolvesWithoutTraffic) {
    Lan lan;
    Host& a = lan.add_host("a", 1, Ipv4Address{192, 168, 1, 10});
    lan.add_host("b", 2, Ipv4Address{192, 168, 1, 20});
    lan.net.scheduler().schedule_at(SimTime::zero() + Duration::seconds(1), [&] {
        a.resolve(Ipv4Address{192, 168, 1, 20}, [](auto) {});
    });
    lan.start_and_run(Duration::seconds(2));
    const auto requests_before = a.stats().arp_requests_sent;
    bool hit = false;
    a.resolve(Ipv4Address{192, 168, 1, 20}, [&](auto mac) { hit = mac.has_value(); });
    EXPECT_TRUE(hit);  // synchronous on warm cache
    EXPECT_EQ(a.stats().arp_requests_sent, requests_before);
}

TEST(HostArpTest, ResolutionFailsAfterRetries) {
    Lan lan;
    Host& a = lan.add_host("a", 1, Ipv4Address{192, 168, 1, 10});
    std::optional<std::optional<MacAddress>> outcome;
    lan.net.scheduler().schedule_at(SimTime::zero() + Duration::seconds(1), [&] {
        a.resolve(Ipv4Address{192, 168, 1, 99}, [&](auto mac) { outcome = mac; });
    });
    lan.start_and_run(Duration::seconds(10));
    ASSERT_TRUE(outcome.has_value());
    EXPECT_FALSE(outcome->has_value());
    EXPECT_EQ(a.stats().resolutions_failed, 1u);
    // 3 tries, 1 second apart.
    EXPECT_EQ(a.stats().arp_requests_sent, 3u);
}

TEST(HostArpTest, ConcurrentResolutionsShareOneRequest) {
    Lan lan;
    Host& a = lan.add_host("a", 1, Ipv4Address{192, 168, 1, 10});
    lan.add_host("b", 2, Ipv4Address{192, 168, 1, 20});
    int callbacks = 0;
    lan.net.scheduler().schedule_at(SimTime::zero() + Duration::seconds(1), [&] {
        for (int i = 0; i < 5; ++i) {
            a.resolve(Ipv4Address{192, 168, 1, 20}, [&](auto) { ++callbacks; });
        }
    });
    lan.start_and_run(Duration::seconds(2));
    EXPECT_EQ(callbacks, 5);
    EXPECT_EQ(a.stats().arp_requests_sent, 1u);
}

TEST(HostArpTest, AnswersRequestsForOwnAddressOnly) {
    Lan lan;
    Host& a = lan.add_host("a", 1, Ipv4Address{192, 168, 1, 10});
    Host& b = lan.add_host("b", 2, Ipv4Address{192, 168, 1, 20});
    lan.net.scheduler().schedule_at(SimTime::zero() + Duration::seconds(1), [&] {
        b.resolve(Ipv4Address{192, 168, 1, 10}, [](auto) {});
        b.resolve(Ipv4Address{192, 168, 1, 77}, [](auto) {});
    });
    lan.start_and_run(Duration::seconds(8));
    EXPECT_EQ(a.stats().arp_replies_sent, 1u);
}

TEST(HostArpTest, GratuitousAnnounceOnStart) {
    Lan lan;
    Host& a = lan.add_host("a", 1, Ipv4Address{192, 168, 1, 10});
    (void)a;
    lan.start_and_run(Duration::seconds(1));
    EXPECT_GE(lan.net.counters().arp_frames, 1u);
}

TEST(HostArpTest, HookCanDropEverything) {
    class DropAll final : public ArpHook {
    public:
        const char* hook_name() const override { return "drop-all"; }
        Verdict on_arp_receive(Host&, const wire::ArpPacket&, const ArpRxInfo&) override {
            return Verdict::kDrop;
        }
    };
    Lan lan;
    Host& a = lan.add_host("a", 1, Ipv4Address{192, 168, 1, 10});
    lan.add_host("b", 2, Ipv4Address{192, 168, 1, 20});
    a.add_arp_hook(std::make_shared<DropAll>());
    std::optional<std::optional<MacAddress>> outcome;
    lan.net.scheduler().schedule_at(SimTime::zero() + Duration::seconds(1), [&] {
        a.resolve(Ipv4Address{192, 168, 1, 20}, [&](auto mac) { outcome = mac; });
    });
    lan.start_and_run(Duration::seconds(10));
    ASSERT_TRUE(outcome.has_value());
    EXPECT_FALSE(outcome->has_value());  // replies never reached the cache
    EXPECT_GT(a.stats().arp_dropped_by_hook, 0u);
}

TEST(HostArpTest, TransmitHookDelaysAndMutates) {
    class Tagger final : public ArpHook {
    public:
        const char* hook_name() const override { return "tagger"; }
        Duration on_arp_transmit(Host&, wire::ArpPacket& pkt) override {
            pkt.auth = {0x42};
            return Duration::millis(5);
        }
    };
    Lan lan;
    Host& a = lan.add_host("a", 1, Ipv4Address{192, 168, 1, 10});
    Host& b = lan.add_host("b", 2, Ipv4Address{192, 168, 1, 20});
    a.add_arp_hook(std::make_shared<Tagger>());

    // Observe what b receives.
    class Observer final : public ArpHook {
    public:
        const char* hook_name() const override { return "observer"; }
        Verdict on_arp_receive(Host&, const wire::ArpPacket& pkt, const ArpRxInfo&) override {
            if (!pkt.auth.empty()) saw_auth = true;
            return Verdict::kAccept;
        }
        bool saw_auth = false;
    };
    auto obs = std::make_shared<Observer>();
    b.add_arp_hook(obs);

    lan.net.scheduler().schedule_at(SimTime::zero() + Duration::seconds(1), [&] {
        a.resolve(Ipv4Address{192, 168, 1, 20}, [](auto) {});
    });
    lan.start_and_run(Duration::seconds(2));
    EXPECT_TRUE(obs->saw_auth);
    // The resolution took at least the 2x5ms signing delays (request+reply
    // direction from a's hook applies to a's request only => at least 5ms).
    EXPECT_GT(a.stats().resolution_latency_us.min(), 5000.0);
}

TEST(HostArpTest, VerifiedBindingBypassesPolicy) {
    Lan lan;
    Host& a = lan.add_host("a", 1, Ipv4Address{192, 168, 1, 10},
                           arp::CachePolicy::strict());
    lan.start_and_run(Duration::seconds(1));
    a.apply_verified_binding(Ipv4Address{192, 168, 1, 55}, MacAddress::local(55));
    EXPECT_EQ(a.arp_cache().lookup(Ipv4Address{192, 168, 1, 55}, lan.net.now()),
              MacAddress::local(55));
}

// ---------------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------------

TEST(HostUdpTest, SendReceiveRoundTrip) {
    Lan lan;
    Host& a = lan.add_host("a", 1, Ipv4Address{192, 168, 1, 10});
    Host& b = lan.add_host("b", 2, Ipv4Address{192, 168, 1, 20});
    std::optional<wire::Bytes> got;
    std::optional<UdpRxInfo> info;
    b.bind_udp(5000, [&](Host&, const UdpRxInfo& i, const wire::Bytes& data) {
        got = data;
        info = i;
    });
    lan.net.scheduler().schedule_at(SimTime::zero() + Duration::seconds(1), [&] {
        a.send_udp(Ipv4Address{192, 168, 1, 20}, 4000, 5000, {1, 2, 3});
    });
    lan.start_and_run(Duration::seconds(2));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, (wire::Bytes{1, 2, 3}));
    EXPECT_EQ(info->src_ip, (Ipv4Address{192, 168, 1, 10}));
    EXPECT_EQ(info->src_port, 4000);
    EXPECT_EQ(b.stats().udp_received, 1u);
}

TEST(HostUdpTest, BroadcastReachesEveryHost) {
    Lan lan;
    Host& a = lan.add_host("a", 1, Ipv4Address{192, 168, 1, 10});
    Host& b = lan.add_host("b", 2, Ipv4Address{192, 168, 1, 20});
    Host& c = lan.add_host("c", 3, Ipv4Address{192, 168, 1, 30});
    int received = 0;
    const auto handler = [&](Host&, const UdpRxInfo&, const wire::Bytes&) { ++received; };
    b.bind_udp(5000, handler);
    c.bind_udp(5000, handler);
    lan.net.scheduler().schedule_at(SimTime::zero() + Duration::seconds(1), [&] {
        a.send_udp(Ipv4Address::broadcast(), 4000, 5000, {9});
    });
    lan.start_and_run(Duration::seconds(2));
    EXPECT_EQ(received, 2);
}

TEST(HostUdpTest, SendToUnresolvableFails) {
    Lan lan;
    Host& a = lan.add_host("a", 1, Ipv4Address{192, 168, 1, 10});
    lan.net.scheduler().schedule_at(SimTime::zero() + Duration::seconds(1), [&] {
        a.send_udp(Ipv4Address{192, 168, 1, 99}, 4000, 5000, {1});
    });
    lan.start_and_run(Duration::seconds(10));
    EXPECT_EQ(a.stats().udp_send_failed, 1u);
    EXPECT_EQ(a.stats().udp_sent, 0u);
}

TEST(HostUdpTest, OffSubnetTrafficGoesToGateway) {
    Lan lan;
    Host& a = lan.add_host("a", 1, Ipv4Address{192, 168, 1, 10});
    Host& gw = lan.add_host("gw", 9, Ipv4Address{192, 168, 1, 1});
    int at_gateway = 0;
    gw.bind_udp(5000, [&](Host&, const UdpRxInfo& i, const wire::Bytes&) {
        // The gateway NIC accepted the frame even though the IP
        // destination is elsewhere? No: our stack drops non-local IP.
        (void)i;
        ++at_gateway;
    });
    lan.net.scheduler().schedule_at(SimTime::zero() + Duration::seconds(1), [&] {
        a.send_udp(Ipv4Address{8, 8, 8, 8}, 4000, 5000, {1});
    });
    lan.start_and_run(Duration::seconds(3));
    // The frame was addressed (at L2) to the gateway MAC: resolution of the
    // gateway succeeded and the datagram left the host.
    EXPECT_EQ(a.stats().udp_sent, 1u);
    EXPECT_EQ(at_gateway, 0);  // gateway IP stack rejects foreign dst IP
}

// ---------------------------------------------------------------------------
// DHCP
// ---------------------------------------------------------------------------

TEST(DhcpTest, ClientAcquiresLease) {
    Lan lan;
    Host& gw = lan.add_host("gw", 9, Ipv4Address{192, 168, 1, 1});
    DhcpServer::Config cfg;
    cfg.pool_start = Ipv4Address{192, 168, 1, 100};
    cfg.pool_size = 10;
    DhcpServer server(gw, cfg);
    Host& client = lan.add_host("client", 1, std::nullopt);
    std::optional<Ipv4Address> acquired;
    client.add_ip_listener([&](Ipv4Address ip) { acquired = ip; });
    lan.start_and_run(Duration::seconds(5));
    ASSERT_TRUE(acquired.has_value());
    EXPECT_EQ(*acquired, (Ipv4Address{192, 168, 1, 100}));
    EXPECT_TRUE(client.has_ip());
    EXPECT_EQ(server.stats().acks, 1u);
    EXPECT_EQ(server.leases().size(), 1u);
}

TEST(DhcpTest, MultipleClientsGetDistinctAddresses) {
    Lan lan;
    Host& gw = lan.add_host("gw", 9, Ipv4Address{192, 168, 1, 1});
    DhcpServer server(gw, {});
    Host& c1 = lan.add_host("c1", 1, std::nullopt);
    Host& c2 = lan.add_host("c2", 2, std::nullopt);
    Host& c3 = lan.add_host("c3", 3, std::nullopt);
    lan.start_and_run(Duration::seconds(10));
    ASSERT_TRUE(c1.has_ip());
    ASSERT_TRUE(c2.has_ip());
    ASSERT_TRUE(c3.has_ip());
    EXPECT_NE(c1.ip(), c2.ip());
    EXPECT_NE(c2.ip(), c3.ip());
    EXPECT_NE(c1.ip(), c3.ip());
    EXPECT_EQ(server.stats().acks, 3u);
}

TEST(DhcpTest, PoolExhaustionLeavesClientUnbound) {
    Lan lan;
    Host& gw = lan.add_host("gw", 9, Ipv4Address{192, 168, 1, 1});
    DhcpServer::Config cfg;
    cfg.pool_size = 1;
    DhcpServer server(gw, cfg);
    Host& c1 = lan.add_host("c1", 1, std::nullopt);
    Host& c2 = lan.add_host("c2", 2, std::nullopt);
    lan.start_and_run(Duration::seconds(12));
    EXPECT_NE(c1.has_ip(), c2.has_ip());  // exactly one wins
    EXPECT_GT(server.stats().pool_exhausted, 0u);
}

TEST(DhcpTest, RenewalKeepsSameAddress) {
    Lan lan;
    Host& gw = lan.add_host("gw", 9, Ipv4Address{192, 168, 1, 1});
    DhcpServer::Config cfg;
    cfg.lease_seconds = 10;  // renew at ~5s
    DhcpServer server(gw, cfg);
    Host& client = lan.add_host("client", 1, std::nullopt);
    lan.start_and_run(Duration::seconds(30));
    ASSERT_TRUE(client.has_ip());
    EXPECT_EQ(client.ip(), (Ipv4Address{192, 168, 1, 100}));
    EXPECT_GE(server.stats().acks, 3u);  // initial + several renewals
}

TEST(DhcpTest, ReleaseFreesAddressForReuse) {
    Lan lan;
    Host& gw = lan.add_host("gw", 9, Ipv4Address{192, 168, 1, 1});
    DhcpServer::Config cfg;
    cfg.pool_size = 1;
    DhcpServer server(gw, cfg);
    Host& c1 = lan.add_host("c1", 1, std::nullopt);
    lan.start_and_run(Duration::seconds(5));
    ASSERT_TRUE(c1.has_ip());
    c1.dhcp_release();
    lan.run_more(Duration::seconds(1));
    EXPECT_FALSE(c1.has_ip());
    EXPECT_EQ(server.stats().releases, 1u);

    // A new machine joining now receives the recycled address.
    Host& c2 = lan.add_host("c2", 2, std::nullopt);
    lan.run_more(Duration::seconds(6));
    ASSERT_TRUE(c2.has_ip());
    EXPECT_EQ(c2.ip(), (Ipv4Address{192, 168, 1, 100}));
}

// ---------------------------------------------------------------------------
// Power / apps / ledger
// ---------------------------------------------------------------------------

TEST(HostPowerTest, PoweredOffHostIsSilent) {
    Lan lan;
    Host& a = lan.add_host("a", 1, Ipv4Address{192, 168, 1, 10});
    Host& b = lan.add_host("b", 2, Ipv4Address{192, 168, 1, 20});
    lan.start_and_run(Duration::seconds(1));
    b.power_off();
    std::optional<std::optional<MacAddress>> outcome;
    a.resolve(Ipv4Address{192, 168, 1, 20}, [&](auto mac) { outcome = mac; });
    lan.run_more(Duration::seconds(10));
    ASSERT_TRUE(outcome.has_value());
    EXPECT_FALSE(outcome->has_value());
    // Power back on: reachable again.
    b.power_on();
    lan.run_more(Duration::seconds(1));
    std::optional<MacAddress> again;
    a.resolve(Ipv4Address{192, 168, 1, 20}, [&](auto mac) { again = mac.value_or(MacAddress{}); });
    lan.run_more(Duration::seconds(5));
    EXPECT_EQ(again, MacAddress::local(2));
}

TEST(HostListenerTest, MultipleIpListenersAllFire) {
    Lan lan;
    Host& a = lan.add_host("a", 1, Ipv4Address{192, 168, 1, 10});
    int first = 0;
    int second = 0;
    a.add_ip_listener([&](Ipv4Address) { ++first; });
    a.add_ip_listener([&](Ipv4Address) { ++second; });
    lan.start_and_run(Duration::seconds(1));
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 1);
    // Power cycling re-acquires and re-notifies.
    a.power_off();
    a.power_on();
    lan.run_more(Duration::seconds(1));
    EXPECT_EQ(first, 2);
    EXPECT_EQ(second, 2);
}

TEST(HostProtoTest, RawIpv4ProtocolDispatch) {
    Lan lan;
    Host& a = lan.add_host("a", 1, Ipv4Address{192, 168, 1, 10});
    Host& b = lan.add_host("b", 2, Ipv4Address{192, 168, 1, 20});
    std::optional<wire::Bytes> got;
    b.bind_ipv4_proto(wire::IpProto::kIcmp,
                      [&](Host&, const wire::Ipv4Packet& pkt, MacAddress) {
                          got = pkt.payload;
                      });
    lan.net.scheduler().schedule_at(SimTime::zero() + Duration::seconds(1), [&] {
        a.send_ipv4(Ipv4Address{192, 168, 1, 20}, wire::IpProto::kIcmp, {8, 0, 1, 2});
    });
    lan.start_and_run(Duration::seconds(2));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, (wire::Bytes{8, 0, 1, 2}));
}

TEST(AppsTest, TrafficFlowsIntoLedger) {
    Lan lan;
    Host& a = lan.add_host("a", 1, Ipv4Address{192, 168, 1, 10});
    Host& b = lan.add_host("b", 2, Ipv4Address{192, 168, 1, 20});
    DeliveryLedger ledger;
    UdpSinkApp sink(b, 7000, &ledger);
    TrafficApp traffic(a, ledger,
                       {{1, Ipv4Address{192, 168, 1, 20}, 7000, Duration::millis(100)}});
    lan.start_and_run(Duration::seconds(5));
    EXPECT_GT(ledger.sent(), 40u);
    EXPECT_GT(ledger.delivery_ratio(), 0.95);
    EXPECT_EQ(ledger.intercepted(), 0u);
    EXPECT_EQ(sink.received(), ledger.delivered());
}

TEST(AppsTest, EchoSinkSendsBack) {
    Lan lan;
    Host& a = lan.add_host("a", 1, Ipv4Address{192, 168, 1, 10});
    Host& b = lan.add_host("b", 2, Ipv4Address{192, 168, 1, 20});
    DeliveryLedger ledger;
    UdpSinkApp echo(b, 7000, &ledger, /*echo=*/true);
    int back_at_a = 0;
    a.bind_udp(4000, [&](Host&, const UdpRxInfo&, const wire::Bytes&) { ++back_at_a; });
    lan.net.scheduler().schedule_at(SimTime::zero() + Duration::seconds(1), [&] {
        Payload p{1, 1};
        ledger.note_sent(p, lan.net.now());
        a.send_udp(Ipv4Address{192, 168, 1, 20}, 4000, 7000, p.serialize());
    });
    lan.start_and_run(Duration::seconds(3));
    EXPECT_EQ(back_at_a, 1);
}

TEST(LedgerTest, CountsDistinctOutcomes) {
    DeliveryLedger ledger;
    Payload p1{1, 1};
    Payload p2{1, 2};
    ledger.note_sent(p1, SimTime::zero());
    ledger.note_sent(p2, SimTime::zero());
    ledger.note_delivered(p1, SimTime::zero());
    ledger.note_intercepted(p1);
    EXPECT_EQ(ledger.sent(), 2u);
    EXPECT_EQ(ledger.delivered(), 1u);
    EXPECT_EQ(ledger.intercepted(), 1u);
    EXPECT_DOUBLE_EQ(ledger.delivery_ratio(), 0.5);
    // Unknown payloads are ignored.
    ledger.note_delivered(Payload{9, 9}, SimTime::zero());
    EXPECT_EQ(ledger.delivered(), 1u);
    // Duplicate notes don't double-count.
    ledger.note_delivered(p1, SimTime::zero());
    EXPECT_EQ(ledger.delivered(), 1u);
}

}  // namespace
}  // namespace arpsec::host

#include "lint/linter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint/baseline.hpp"
#include "lint/index.hpp"
#include "lint/lexer.hpp"
#include "lint/sarif.hpp"
#include "telemetry/json.hpp"

namespace arpsec::lint {
namespace {

std::vector<Violation> run(std::string_view path, std::string_view text) {
    return Linter{}.lint_source(path, text);
}

bool has_rule(const std::vector<Violation>& vs, std::string_view rule) {
    for (const auto& v : vs) {
        if (v.rule == rule) return true;
    }
    return false;
}

// ---------------------------------------------------------------------------
// sim-determinism
// ---------------------------------------------------------------------------

TEST(LintDeterminismTest, FlagsWallClockOutsideCommonTime) {
    const auto vs = run("src/sim/bad.cpp",
                        "auto now = std::chrono::system_clock::now();\n");
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "sim-determinism");
    EXPECT_EQ(vs[0].line, 1u);
    EXPECT_EQ(vs[0].file, "src/sim/bad.cpp");
}

TEST(LintDeterminismTest, FlagsGlobalPrng) {
    EXPECT_TRUE(has_rule(run("src/detect/bad.cpp", "int x = std::rand();\n"),
                         "sim-determinism"));
    EXPECT_TRUE(has_rule(run("src/host/bad.cpp", "std::mt19937 gen{42};\n"),
                         "sim-determinism"));
}

TEST(LintDeterminismTest, AllowsCommonTimeItself) {
    EXPECT_TRUE(run("src/common/time.cpp",
                    "auto t = std::chrono::steady_clock::now();\n")
                    .empty());
}

TEST(LintDeterminismTest, IgnoresCommentsAndStrings) {
    EXPECT_TRUE(run("src/sim/ok.cpp",
                    "// system_clock is banned here\n"
                    "const char* msg = \"uses system_clock\";\n")
                    .empty());
}

TEST(LintDeterminismTest, TokenBoundariesRespected) {
    // "strand" contains "rand" but is not the banned token.
    EXPECT_TRUE(run("src/sim/ok.cpp", "int strand = 3; use(strand);\n").empty());
}

// ---------------------------------------------------------------------------
// no-threads-in-sim
// ---------------------------------------------------------------------------

TEST(LintNoThreadsTest, FlagsThreadHeadersOutsideExp) {
    const auto vs = run("src/sim/bad.cpp", "#include <thread>\n");
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "no-threads-in-sim");
    EXPECT_EQ(vs[0].line, 1u);
    EXPECT_TRUE(has_rule(run("src/detect/bad.cpp", "#include <mutex>\n"),
                         "no-threads-in-sim"));
    EXPECT_TRUE(has_rule(run("bench/bad.cpp", "#include <future>\n"),
                         "no-threads-in-sim"));
}

TEST(LintNoThreadsTest, FlagsConcurrencySpellings) {
    EXPECT_TRUE(has_rule(run("src/host/bad.cpp", "std::thread t{work};\n"),
                         "no-threads-in-sim"));
    EXPECT_TRUE(has_rule(run("tools/bad.cpp", "auto f = std::async(work);\n"),
                         "no-threads-in-sim"));
    EXPECT_TRUE(has_rule(run("src/core/bad.cpp", "std::mutex m;\n"),
                         "no-threads-in-sim"));
}

TEST(LintNoThreadsTest, AllowsSweepExecutorAndLogger) {
    EXPECT_TRUE(run("src/exp/executor.cpp",
                    "#include <thread>\n"
                    "std::thread t{work};\n")
                    .empty());
    EXPECT_TRUE(run("src/common/log.cpp",
                    "#include <mutex>\n"
                    "std::mutex m;\n")
                    .empty());
}

TEST(LintNoThreadsTest, AllowsReplayPipelineAndRing) {
    // The replay pipeline's prime workers and frontier collector are a
    // sanctioned concurrency site (deterministic by construction).
    EXPECT_TRUE(run("src/replay/pipeline.cpp",
                    "#include <thread>\n"
                    "std::thread t{work};\n")
                    .empty());
    EXPECT_TRUE(run("src/replay/pipeline.hpp",
                    "#pragma once\n"
                    "#include <thread>\n"
                    "std::vector<std::thread> threads_;\n")
                    .empty());
    // The SPSC ring is atomics-only but lives on the exemption list so its
    // documentation and future lock-free additions don't trip token scans.
    EXPECT_TRUE(run("src/common/ring.hpp",
                    "#pragma once\n"
                    "#include <atomic>\n"
                    "#include <condition_variable>\n")
                    .empty());
}

TEST(LintNoThreadsTest, ReplayExemptionDoesNotLeakToNeighbors) {
    // Only src/replay/ and the named common files are exempt: sim stays
    // flagged, and so does a hypothetical common/ring_utils.cpp that does
    // not match the common/ring.* path pin.
    EXPECT_TRUE(has_rule(run("src/sim/bad.cpp", "std::thread t{work};\n"),
                         "no-threads-in-sim"));
    EXPECT_TRUE(has_rule(run("src/common/buffer.cpp", "#include <thread>\n"),
                         "no-threads-in-sim"));
}

TEST(LintNoThreadsTest, IgnoresProseAndLookalikes) {
    EXPECT_TRUE(run("src/sim/ok.cpp",
                    "// a mutex would deadlock here; threads are banned\n"
                    "int single_threaded = 1;\n"
                    "#include <cstdio>\n")
                    .empty());
}

TEST(LintNoThreadsTest, AllowsServeWorkers) {
    // The serving shards and their drain thread are a sanctioned
    // concurrency site, like the sweep executor and replay pipeline.
    EXPECT_TRUE(run("src/serve/shard.cpp",
                    "#include <thread>\n"
                    "#include <atomic>\n"
                    "std::thread t{work};\n")
                    .empty());
}

// ---------------------------------------------------------------------------
// no-sockets-outside-serve
// ---------------------------------------------------------------------------

TEST(LintNoSocketsTest, FlagsSocketHeadersOutsideServe) {
    const auto vs = run("src/sim/bad.cpp", "#include <sys/socket.h>\n");
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "no-sockets-outside-serve");
    EXPECT_EQ(vs[0].line, 1u);
    EXPECT_TRUE(has_rule(run("src/wire/bad.cpp", "#include <netinet/in.h>\n"),
                         "no-sockets-outside-serve"));
    EXPECT_TRUE(has_rule(run("src/replay/bad.cpp", "#include <arpa/inet.h>\n"),
                         "no-sockets-outside-serve"));
    EXPECT_TRUE(has_rule(run("src/detect/bad.cpp", "#include <netdb.h>\n"),
                         "no-sockets-outside-serve"));
}

TEST(LintNoSocketsTest, AllowsServeTransport) {
    EXPECT_TRUE(run("src/serve/transport.cpp",
                    "#include <sys/socket.h>\n"
                    "#include <sys/un.h>\n"
                    "#include <netinet/in.h>\n"
                    "#include <netinet/tcp.h>\n"
                    "#include <arpa/inet.h>\n")
                    .empty());
}

TEST(LintNoSocketsTest, IgnoresProse) {
    EXPECT_TRUE(run("src/sim/ok.cpp",
                    "// real traffic goes through <sys/socket.h> in serve/\n"
                    "int x = 1;\n")
                    .empty());
}

TEST(LintLayeringTest, ServeMayIncludeReplayButNotViceVersa) {
    // serve sits at the top of the stack: it may pull in replay sessions,
    // but nothing below may reach back up into serve/.
    EXPECT_TRUE(run("src/serve/server.cpp",
                    "#include \"replay/session.hpp\"\n"
                    "#include \"detect/registry.hpp\"\n")
                    .empty());
    EXPECT_TRUE(has_rule(run("src/replay/engine.cpp",
                             "#include \"serve/server.hpp\"\n"),
                         "include-layering"));
    EXPECT_TRUE(has_rule(run("src/sim/net.cpp",
                             "#include \"serve/transport.hpp\"\n"),
                         "include-layering"));
}

// ---------------------------------------------------------------------------
// discarded-expected
// ---------------------------------------------------------------------------

TEST(LintDiscardedExpectedTest, FlagsStatementLevelDiscard) {
    const auto vs = run("src/host/bad.cpp", "    ArpPacket::parse(data);\n");
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "discarded-expected");
}

TEST(LintDiscardedExpectedTest, FlagsQualifiedDiscard) {
    EXPECT_TRUE(has_rule(run("tests/bad.cpp", "wire::DhcpMessage::parse(buf);\n"),
                         "discarded-expected"));
}

TEST(LintDiscardedExpectedTest, AllowsConsumedResults) {
    EXPECT_TRUE(run("src/host/ok.cpp",
                    "auto p = ArpPacket::parse(data);\n"
                    "if (!Ipv4Packet::parse(raw).ok()) return;\n"
                    "EXPECT_FALSE(TcpSegment::parse(seg).ok());\n"
                    "return MacAddress::parse(text);\n")
                    .empty());
}

// ---------------------------------------------------------------------------
// naked-new
// ---------------------------------------------------------------------------

TEST(LintNakedNewTest, FlagsNewAndMalloc) {
    EXPECT_TRUE(has_rule(run("src/l2/bad.cpp", "auto* s = new Switch{};\n"),
                         "naked-new"));
    EXPECT_TRUE(has_rule(run("src/l2/bad.cpp", "void* p = malloc(64);\n"),
                         "naked-new"));
}

TEST(LintNakedNewTest, IgnoresProseAndIdentifiers) {
    EXPECT_TRUE(run("src/arp/ok.cpp",
                    "// a new entry was created\n"
                    "int new_count = renew(news);\n")
                    .empty());
}

// ---------------------------------------------------------------------------
// assert-in-parser
// ---------------------------------------------------------------------------

TEST(LintAssertInParserTest, FlagsAssertOnlyInWire) {
    const auto vs = run("src/wire/bad_parser.cpp", "    assert(len >= 4);\n");
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "assert-in-parser");
    // The same line outside src/wire/ is fine (Expected itself asserts).
    EXPECT_TRUE(run("src/common/expected_like.cpp", "assert(len >= 4);\n").empty());
}

TEST(LintAssertInParserTest, StaticAssertIsFine) {
    EXPECT_TRUE(run("src/wire/ok.cpp", "static_assert(kSize == 28);\n").empty());
}

// ---------------------------------------------------------------------------
// pragma-once
// ---------------------------------------------------------------------------

TEST(LintPragmaOnceTest, FlagsMissingGuard) {
    const auto vs = run("src/arp/naked.hpp", "struct S {};\n");
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "pragma-once");
    EXPECT_EQ(vs[0].line, 1u);
}

TEST(LintPragmaOnceTest, GuardedHeaderAndSourcesPass) {
    EXPECT_TRUE(run("src/arp/ok.hpp", "#pragma once\nstruct S {};\n").empty());
    EXPECT_TRUE(run("src/arp/ok.cpp", "struct S {};\n").empty());
}

// ---------------------------------------------------------------------------
// include-layering
// ---------------------------------------------------------------------------

TEST(LintLayeringTest, FlagsUpwardInclude) {
    const auto vs =
        run("src/common/bad.hpp", "#pragma once\n#include \"sim/node.hpp\"\n");
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "include-layering");
    EXPECT_EQ(vs[0].line, 2u);
}

TEST(LintLayeringTest, TelemetryDependsOnlyOnCommon) {
    EXPECT_TRUE(has_rule(run("src/telemetry/bad.cpp",
                             "#include \"wire/ethernet.hpp\"\n"),
                         "include-layering"));
    EXPECT_TRUE(run("src/telemetry/ok.cpp",
                    "#include \"common/time.hpp\"\n"
                    "#include \"telemetry/json.hpp\"\n")
                    .empty());
}

TEST(LintLayeringTest, CheckMayDriveSimDetectAndExp) {
    // The DST checker sits above the stack: fan-out via exp, scheme
    // deployment via detect, LAN construction via sim/l2/host.
    EXPECT_TRUE(run("src/check/ok.cpp",
                    "#include \"check/scenario.hpp\"\n"
                    "#include \"exp/executor.hpp\"\n"
                    "#include \"detect/registry.hpp\"\n"
                    "#include \"sim/network.hpp\"\n"
                    "#include \"host/host.hpp\"\n"
                    "#include \"l2/switch.hpp\"\n")
                    .empty());
    // ...but not core: the checker builds its own harness.
    EXPECT_TRUE(has_rule(run("src/check/bad.cpp", "#include \"core/runner.hpp\"\n"),
                         "include-layering"));
}

TEST(LintLayeringTest, ReplaySitsBesideCheckAtTheTop) {
    // The replay engine may drive the whole stack below it...
    EXPECT_TRUE(run("src/replay/ok.cpp",
                    "#include \"replay/engine.hpp\"\n"
                    "#include \"check/scenario_gen.hpp\"\n"
                    "#include \"exp/executor.hpp\"\n"
                    "#include \"detect/registry.hpp\"\n"
                    "#include \"sim/network.hpp\"\n"
                    "#include \"wire/pcap_reader.hpp\"\n"
                    "#include \"telemetry/json.hpp\"\n"
                    "#include \"common/expected.hpp\"\n")
                    .empty());
    // ...but, like check, not core.
    EXPECT_TRUE(has_rule(run("src/replay/bad.cpp", "#include \"core/runner.hpp\"\n"),
                         "include-layering"));
}

TEST(LintLayeringTest, NothingDependsBackOnReplay) {
    for (const char* path : {"src/sim/bad.cpp", "src/detect/bad.cpp", "src/exp/bad.cpp",
                             "src/wire/bad.cpp", "src/check/bad.cpp"}) {
        EXPECT_TRUE(has_rule(run(path, "#include \"replay/trace.hpp\"\n"),
                             "include-layering"))
            << path;
    }
}

TEST(LintLayeringTest, NothingDependsBackOnCheck) {
    // No production module may include the checker — it is a leaf consumer,
    // so a sim/detect/exp refactor can never be blocked by test machinery.
    for (const char* path : {"src/sim/bad.cpp", "src/detect/bad.cpp", "src/exp/bad.cpp",
                             "src/core/bad.cpp", "src/host/bad.cpp"}) {
        EXPECT_TRUE(has_rule(run(path, "#include \"check/oracle.hpp\"\n"),
                             "include-layering"))
            << path;
    }
}

TEST(LintLayeringTest, DownwardAndExternalIncludesPass) {
    EXPECT_TRUE(run("src/l2/ok.cpp",
                    "#include \"sim/network.hpp\"\n"
                    "#include <vector>\n")
                    .empty());
    // tests/ may include anything.
    EXPECT_TRUE(run("tests/ok.cpp", "#include \"core/runner.hpp\"\n").empty());
}

// ---------------------------------------------------------------------------
// lint:allow escape hatch
// ---------------------------------------------------------------------------

TEST(LintAllowTest, SameLineMarkerSuppresses) {
    EXPECT_TRUE(run("src/sim/ok.cpp",
                    "auto t = std::chrono::system_clock::now();  "
                    "// lint:allow(sim-determinism)\n")
                    .empty());
}

TEST(LintAllowTest, PreviousLineMarkerSuppresses) {
    EXPECT_TRUE(run("src/l2/ok.cpp",
                    "// lint:allow(naked-new): arena owns this\n"
                    "auto* s = new Switch{};\n")
                    .empty());
}

TEST(LintAllowTest, WrongRuleIdDoesNotSuppress) {
    EXPECT_TRUE(has_rule(run("src/l2/bad.cpp",
                             "auto* s = new Switch{};  // lint:allow(pragma-once)\n"),
                         "naked-new"));
}

// ---------------------------------------------------------------------------
// no-frame-copy
// ---------------------------------------------------------------------------

TEST(LintNoFrameCopyTest, FlagsEthernetFrameParseOutsideWire) {
    EXPECT_TRUE(has_rule(run("src/host/bad.cpp",
                             "void f(std::span<const std::uint8_t> raw) {\n"
                             "  auto frame = wire::EthernetFrame::parse(raw);\n"
                             "}\n"),
                         "no-frame-copy"));
}

TEST(LintNoFrameCopyTest, FlagsSerializeOnFrameLocal) {
    EXPECT_TRUE(has_rule(run("src/detect/bad.cpp",
                             "void f() {\n"
                             "  wire::EthernetFrame out;\n"
                             "  auto raw = out.serialize();\n"
                             "}\n"),
                         "no-frame-copy"));
}

TEST(LintNoFrameCopyTest, FlagsSerializeOnFrameParameter) {
    EXPECT_TRUE(has_rule(run("src/l2/bad.cpp",
                             "void relay(const wire::EthernetFrame& frame) {\n"
                             "  sink(frame.serialize());\n"
                             "}\n"),
                         "no-frame-copy"));
}

TEST(LintNoFrameCopyTest, FlagsSerializingAViewsMaterializedFrame) {
    EXPECT_TRUE(has_rule(run("src/attack/bad.cpp",
                             "void f(const wire::FrameView& view) {\n"
                             "  auto raw = view.frame().serialize();\n"
                             "}\n"),
                         "no-frame-copy"));
}

TEST(LintNoFrameCopyTest, WireModuleOwnsTheCodec) {
    EXPECT_TRUE(run("src/wire/frame.cpp",
                    "void f(std::span<const std::uint8_t> raw) {\n"
                    "  require(raw.size() >= 14);\n"
                    "  auto frame = EthernetFrame::parse(raw);\n"
                    "}\n")
                    .empty());
}

TEST(LintNoFrameCopyTest, PayloadSerializationIsNotAFrameCopy) {
    EXPECT_TRUE(run("src/host/ok.cpp",
                    "void f() {\n"
                    "  wire::ArpPacket pkt;\n"
                    "  wire::EthernetFrame frame;\n"
                    "  frame.payload = pkt.serialize();\n"
                    "}\n")
                    .empty());
}

TEST(LintNoFrameCopyTest, AllowMarkerSuppresses) {
    EXPECT_TRUE(run("src/host/ok.cpp",
                    "void f(const wire::EthernetFrame& frame) {\n"
                    "  // lint:allow(no-frame-copy): golden bytes for the codec bench\n"
                    "  sink(frame.serialize());\n"
                    "}\n")
                    .empty());
}

// ---------------------------------------------------------------------------
// clean file, catalog, report shape
// ---------------------------------------------------------------------------

TEST(LintReportTest, CleanFileProducesNoViolations) {
    EXPECT_TRUE(run("src/arp/clean.cpp",
                    "#include \"arp/cache.hpp\"\n"
                    "\n"
                    "namespace arpsec::arp {\n"
                    "int answer() { return 42; }\n"
                    "}  // namespace arpsec::arp\n")
                    .empty());
}

TEST(LintReportTest, CatalogCoversEveryEmittedRule) {
    const auto& catalog = rule_catalog();
    EXPECT_EQ(catalog.size(), 13u);
    // Three deliberately terrible fixtures: one in src/wire/ (where the
    // parser and bounds rules apply), one in src/common/ (where lock
    // discipline applies), and one in src/host/ (where the frame-copy rule
    // applies). Together they trip every rule in the catalog.
    std::vector<Violation> vs;
    auto add = [&](std::string_view path, std::string_view text) {
        const auto found = run(path, text);
        vs.insert(vs.end(), found.begin(), found.end());
    };
    add("src/wire/bad.hpp",
        "#include \"core/runner.hpp\"\n"
        "#include <thread>\n"
        "#include <sys/socket.h>\n"
        "auto t = std::chrono::system_clock::now();\n"
        "auto* p = new int;\n"
        "assert(true);\n"
        "ArpPacket::parse(d);\n"
        "core::Runner r;\n"
        "std::uint8_t f(std::span<const std::uint8_t> d) { return d[0]; }\n"
        "enum class K { kA, kB };\n"
        "int g(K k) {\n"
        "    switch (k) { case K::kA: return 1; }\n"
        "    return 0;\n"
        "}\n");
    add("src/common/bad.cpp",
        "class S {\n"
        "    static int sink_;  // guards: mu_\n"
        "};\n"
        "void touch() { sink_ = 1; }\n");
    add("src/host/bad.cpp",
        "void f(const wire::EthernetFrame& frame) { sink(frame.serialize()); }\n");
    for (const auto& v : vs) {
        bool known = false;
        for (const auto& info : catalog) {
            if (info.id == v.rule) known = true;
        }
        EXPECT_TRUE(known) << "unknown rule id: " << v.rule;
    }
    // Every rule fires across the two fixtures.
    for (const auto& info : catalog) {
        EXPECT_TRUE(has_rule(vs, info.id)) << "rule did not fire: " << info.id;
    }
}

TEST(LintReportTest, JsonReportShape) {
    const auto vs = run("src/sim/bad.cpp", "int x = std::rand();\n");
    ASSERT_EQ(vs.size(), 1u);
    const telemetry::Json report = Linter::report(vs, "/repo", 151);

    // Round-trips through the telemetry JSON parser.
    const auto parsed = telemetry::Json::parse(report.dump(2));
    ASSERT_TRUE(parsed.has_value());

    EXPECT_EQ(parsed->find("schema")->as_string(), "arpsec.lint-report.v1");
    EXPECT_EQ(parsed->find("root")->as_string(), "/repo");
    EXPECT_EQ(parsed->find("files_scanned")->as_int(), 151);
    EXPECT_EQ(parsed->find("violation_count")->as_int(), 1);

    const auto* counts = parsed->find("counts");
    ASSERT_NE(counts, nullptr);
    EXPECT_EQ(counts->find("sim-determinism")->as_int(), 1);
    EXPECT_EQ(counts->find("naked-new")->as_int(), 0);

    const auto* list = parsed->find("violations");
    ASSERT_NE(list, nullptr);
    ASSERT_EQ(list->size(), 1u);
    const auto& item = list->at(0);
    EXPECT_EQ(item.find("file")->as_string(), "src/sim/bad.cpp");
    EXPECT_EQ(item.find("line")->as_int(), 1);
    EXPECT_EQ(item.find("rule")->as_string(), "sim-determinism");
    EXPECT_FALSE(item.find("message")->as_string().empty());
    EXPECT_EQ(item.find("snippet")->as_string(), "int x = std::rand();");
}

// ---------------------------------------------------------------------------
// comment/string stripping
// ---------------------------------------------------------------------------

TEST(LintStripTest, PreservesLineStructure) {
    const std::string in =
        "int a; // trailing\n"
        "/* block\n"
        "   spanning */ int b;\n"
        "const char* s = \"new malloc(1)\";\n";
    const std::string out = strip_comments_and_strings(in);
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
              std::count(in.begin(), in.end(), '\n'));
    EXPECT_EQ(out.find("trailing"), std::string::npos);
    EXPECT_EQ(out.find("spanning"), std::string::npos);
    EXPECT_EQ(out.find("malloc"), std::string::npos);
    EXPECT_NE(out.find("int a;"), std::string::npos);
    EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(LintStripTest, HandlesEscapesAndRawStrings) {
    const std::string out = strip_comments_and_strings(
        "auto s = \"escaped \\\" quote new\";\n"
        "auto r = R\"(raw new malloc())\";\n"
        "int after = 1;\n");
    EXPECT_EQ(out.find("new"), std::string::npos);
    EXPECT_EQ(out.find("malloc"), std::string::npos);
    EXPECT_NE(out.find("int after = 1;"), std::string::npos);
}

TEST(LintStripTest, RawStringCustomDelimiter) {
    // Regression: the old stripper only understood R"( and would treat the
    // delimiter's ')' as the terminator.
    const std::string in =
        "auto r = R\"x(new malloc() )\" still raw)x\"; int alive = 1;\n";
    const std::string out = strip_comments_and_strings(in);
    EXPECT_EQ(out.find("malloc"), std::string::npos);
    EXPECT_EQ(out.find("still raw"), std::string::npos);
    EXPECT_NE(out.find("int alive = 1;"), std::string::npos);
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
              std::count(in.begin(), in.end(), '\n'));
}

TEST(LintStripTest, RawStringEncodingPrefixes) {
    // Regression: u8R/uR/LR/UR prefixes did not open a raw string before.
    for (const char* prefix : {"u8R", "uR", "LR", "UR"}) {
        const std::string in =
            std::string{"auto r = "} + prefix + "\"y(new malloc())y\"; int alive = 1;\n";
        const std::string out = strip_comments_and_strings(in);
        EXPECT_EQ(out.find("malloc"), std::string::npos) << prefix;
        EXPECT_NE(out.find("int alive = 1;"), std::string::npos) << prefix;
    }
}

TEST(LintStripTest, DigitSeparatorIsNotACharLiteral) {
    // Regression: 1'000 used to open a bogus char literal and swallow the
    // rest of the line (including real code) as "literal contents".
    const std::string in = "int big = 1'000'000; auto* p = new int;\n";
    const std::string out = strip_comments_and_strings(in);
    EXPECT_NE(out.find("1'000'000"), std::string::npos);
    EXPECT_NE(out.find("new"), std::string::npos);  // still visible to rules
    EXPECT_TRUE(has_rule(run("src/arp/sep.cpp", in), "naked-new"));
}

TEST(LintStripTest, CharLiteralsStillBlank) {
    const std::string out =
        strip_comments_and_strings("char c = 'n'; char q = '\\''; int k = 1;\n");
    EXPECT_EQ(out.find("'n'"), std::string::npos);
    EXPECT_NE(out.find("int k = 1;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// lexer: golden token streams per token class
// ---------------------------------------------------------------------------

std::vector<TokenKind> kinds_of(std::string_view text) {
    std::vector<TokenKind> out;
    for (const Token& t : lex(text)) out.push_back(t.kind);
    return out;
}

std::vector<std::string> texts_of(std::string_view text) {
    std::vector<std::string> out;
    for (const Token& t : lex(text)) out.emplace_back(t.text);
    return out;
}

TEST(LexTest, IdentifiersAndKeywords) {
    const auto toks = texts_of("int _x y2 return");
    EXPECT_EQ(toks, (std::vector<std::string>{"int", "_x", "y2", "return"}));
    for (const auto k : kinds_of("int _x y2 return")) {
        EXPECT_EQ(k, TokenKind::kIdentifier);
    }
}

TEST(LexTest, NumbersIncludingSeparatorsAndExponents) {
    const auto toks = lex("1'000 0xFF'AAu 3.14e-2 .5f 0b1010");
    ASSERT_EQ(toks.size(), 5u);
    const std::vector<std::string> want = {"1'000", "0xFF'AAu", "3.14e-2", ".5f", "0b1010"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
        EXPECT_EQ(toks[i].kind, TokenKind::kNumber) << i;
        EXPECT_EQ(std::string{toks[i].text}, want[i]) << i;
    }
}

TEST(LexTest, StringLiteralsWithEscapes) {
    const auto toks = lex("auto s = \"a\\\"b\";");
    ASSERT_EQ(toks.size(), 5u);
    EXPECT_EQ(toks[3].kind, TokenKind::kString);
    EXPECT_EQ(std::string{toks[3].text}, "\"a\\\"b\"");
}

TEST(LexTest, RawStringsWithCustomDelimiter) {
    const auto toks = lex("auto r = u8R\"x(quote \" close) x)x\"; int z;");
    bool saw_raw = false;
    for (const Token& t : toks) {
        if (t.kind == TokenKind::kRawString) {
            saw_raw = true;
            EXPECT_EQ(std::string{t.text}, "u8R\"x(quote \" close) x)x\"");
        }
    }
    EXPECT_TRUE(saw_raw);
    EXPECT_EQ(std::string{toks.back().text}, ";");
}

TEST(LexTest, CharLiterals) {
    const auto toks = lex("char c = '\\n';");
    ASSERT_EQ(toks.size(), 5u);
    EXPECT_EQ(toks[3].kind, TokenKind::kCharLiteral);
    EXPECT_EQ(std::string{toks[3].text}, "'\\n'");
}

TEST(LexTest, PunctuationMaximalMunch) {
    const auto toks = texts_of("a::b->c; x <<= 1; p ->* q; v != w;");
    EXPECT_NE(std::find(toks.begin(), toks.end(), "::"), toks.end());
    EXPECT_NE(std::find(toks.begin(), toks.end(), "->"), toks.end());
    EXPECT_NE(std::find(toks.begin(), toks.end(), "<<="), toks.end());
    EXPECT_NE(std::find(toks.begin(), toks.end(), "->*"), toks.end());
    EXPECT_NE(std::find(toks.begin(), toks.end(), "!="), toks.end());
    // '::' must never split into ':' ':' — qualified-name analysis depends
    // on it.
    EXPECT_EQ(std::find(toks.begin(), toks.end(), ":"), toks.end());
}

TEST(LexTest, PreprocessorDirectives) {
    const auto toks = lex("#include <thread>\n#  define X 1\nint y;\n");
    ASSERT_GE(toks.size(), 2u);
    EXPECT_EQ(toks[0].kind, TokenKind::kPreprocessor);
    EXPECT_EQ(std::string{toks[0].text}, "#include");
    bool saw_define = false;
    for (const Token& t : toks) {
        if (t.kind == TokenKind::kPreprocessor && t.text.find("define") != std::string_view::npos) {
            saw_define = true;
        }
    }
    EXPECT_TRUE(saw_define);
}

TEST(LexTest, CommentsAreTokens) {
    const auto toks = lex("int a; // guards: mu_\n/* block */ int b;");
    std::size_t comments = 0;
    for (const Token& t : toks) {
        if (t.kind == TokenKind::kComment) ++comments;
    }
    EXPECT_EQ(comments, 2u);
}

TEST(LexTest, SpansAreAccurate) {
    const std::string text = "int a;\n  foo(bar);\n";
    for (const Token& t : lex(text)) {
        ASSERT_LE(t.offset + t.text.size(), text.size());
        EXPECT_EQ(text.substr(t.offset, t.text.size()), t.text);
        EXPECT_GE(t.line, 1u);
        EXPECT_GE(t.col, 1u);
    }
    const auto toks = lex(text);
    EXPECT_EQ(toks[3].line, 2u);  // foo
    EXPECT_EQ(toks[3].col, 3u);
}

// ---------------------------------------------------------------------------
// symbol index
// ---------------------------------------------------------------------------

TEST(LintIndexTest, FindsEnumsFunctionsAndGuards) {
    const TuIndex idx = build_index(
        "enum class Kind { kA, kB = 1 << 3, kC };\n"
        "class S {\n"
        "    static int sink_;  // guards: mu_\n"
        "};\n"
        "std::uint8_t S::first(std::span<const std::uint8_t> data) {\n"
        "    return data.size() != 0U ? data[0] : 0U;\n"
        "}\n");
    ASSERT_EQ(idx.enums.size(), 1u);
    EXPECT_EQ(idx.enums[0].name, "Kind");
    EXPECT_EQ(idx.enums[0].enumerators, (std::vector<std::string>{"kA", "kB", "kC"}));

    ASSERT_EQ(idx.functions.size(), 1u);
    EXPECT_EQ(idx.functions[0].name, "first");
    EXPECT_EQ(idx.functions[0].qualifier, "S");
    ASSERT_EQ(idx.functions[0].params.size(), 1u);
    EXPECT_EQ(idx.functions[0].params[0].name, "data");

    ASSERT_EQ(idx.guarded_fields.size(), 1u);
    EXPECT_EQ(idx.guarded_fields[0].field, "sink_");
    EXPECT_EQ(idx.guarded_fields[0].mutex_name, "mu_");

    EXPECT_NE(idx.symbols.count("Kind"), 0u);
    EXPECT_NE(idx.symbols.count("kB"), 0u);
    EXPECT_NE(idx.symbols.count("S"), 0u);
    EXPECT_NE(idx.symbols.count("first"), 0u);
}

// ---------------------------------------------------------------------------
// untrusted-read-bounds
// ---------------------------------------------------------------------------

TEST(LintBoundsTest, FlagsUncheckedIndexedRead) {
    const auto vs = run("src/wire/bad.cpp",
                        "std::uint8_t first(std::span<const std::uint8_t> data) {\n"
                        "    return data[0];\n"
                        "}\n");
    ASSERT_TRUE(has_rule(vs, "untrusted-read-bounds"));
    EXPECT_EQ(vs[0].line, 2u);
}

TEST(LintBoundsTest, SizeCheckDominates) {
    EXPECT_TRUE(run("src/wire/ok.cpp",
                    "std::uint8_t first(std::span<const std::uint8_t> data) {\n"
                    "    if (data.size() < 1U) return 0U;\n"
                    "    return data[0];\n"
                    "}\n")
                    .empty());
}

TEST(LintBoundsTest, RequireCountsAsCheck) {
    EXPECT_TRUE(run("src/wire/ok.cpp",
                    "std::uint8_t next() {\n"
                    "    if (!require(1)) return 0U;\n"
                    "    return data_[pos_++];\n"
                    "}\n"
                    "class R { std::span<const std::uint8_t> data_; };\n")
                    .empty());
}

TEST(LintBoundsTest, MultiByteAccessorsFlagged) {
    EXPECT_TRUE(has_rule(run("src/wire/bad.cpp",
                             "std::uint8_t head(std::span<const std::uint8_t> data) {\n"
                             "    return *data.data();\n"
                             "}\n"),
                         "untrusted-read-bounds"));
}

TEST(LintBoundsTest, OnlyEnforcedInWire) {
    EXPECT_TRUE(run("src/host/ok.cpp",
                    "std::uint8_t first(std::span<const std::uint8_t> data) {\n"
                    "    return data[0];\n"
                    "}\n")
                    .empty());
}

TEST(LintBoundsTest, AllowMarkerSuppresses) {
    EXPECT_TRUE(run("src/wire/ok.cpp",
                    "std::uint8_t first(std::span<const std::uint8_t> data) {\n"
                    "    // lint:allow(untrusted-read-bounds): caller bounds it\n"
                    "    return data[0];\n"
                    "}\n")
                    .empty());
}

// ---------------------------------------------------------------------------
// exhaustive-switch
// ---------------------------------------------------------------------------

TEST(LintSwitchTest, FlagsMissingEnumeratorWithoutDefault) {
    const auto vs = run("src/arp/sw.cpp",
                        "enum class Kind { kA, kB };\n"
                        "int f(Kind k) {\n"
                        "    switch (k) {\n"
                        "        case Kind::kA:\n"
                        "            return 1;\n"
                        "    }\n"
                        "    return 0;\n"
                        "}\n");
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "exhaustive-switch");
    EXPECT_EQ(vs[0].line, 3u);
    EXPECT_NE(vs[0].message.find("kB"), std::string::npos);
    // Carries a mechanical fix: an annotated default before the close brace.
    EXPECT_EQ(vs[0].fix_line, 6u);
    EXPECT_NE(vs[0].fix_insert.find("default:"), std::string::npos);
    EXPECT_NE(vs[0].fix_insert.find("lint:allow(exhaustive-switch)"), std::string::npos);
}

TEST(LintSwitchTest, FullCoveragePasses) {
    EXPECT_TRUE(run("src/arp/sw.cpp",
                    "enum class Kind { kA, kB };\n"
                    "int f(Kind k) {\n"
                    "    switch (k) {\n"
                    "        case Kind::kA: return 1;\n"
                    "        case Kind::kB: return 2;\n"
                    "    }\n"
                    "    return 0;\n"
                    "}\n")
                    .empty());
}

TEST(LintSwitchTest, BareDefaultOverEnumFlagged) {
    const auto vs = run("src/arp/sw.cpp",
                        "enum class Kind { kA, kB, kC };\n"
                        "int f(Kind k) {\n"
                        "    switch (k) {\n"
                        "        case Kind::kA: return 1;\n"
                        "        default:\n"
                        "            return 0;\n"
                        "    }\n"
                        "}\n");
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "exhaustive-switch");
    EXPECT_EQ(vs[0].line, 5u);  // the default, not the switch
}

TEST(LintSwitchTest, AnnotatedDefaultPasses) {
    EXPECT_TRUE(run("src/arp/sw.cpp",
                    "enum class Kind { kA, kB, kC };\n"
                    "int f(Kind k) {\n"
                    "    switch (k) {\n"
                    "        case Kind::kA: return 1;\n"
                    "        default:  // lint:allow(exhaustive-switch): rest are no-ops\n"
                    "            return 0;\n"
                    "    }\n"
                    "}\n")
                    .empty());
}

TEST(LintSwitchTest, NonEnumSwitchesIgnored) {
    EXPECT_TRUE(run("src/arp/sw.cpp",
                    "enum class Kind { kA, kB };\n"
                    "int f(int x) {\n"
                    "    switch (x) {\n"
                    "        case 3: return 1;\n"
                    "        default: return 0;\n"
                    "    }\n"
                    "}\n")
                    .empty());
}

// ---------------------------------------------------------------------------
// lock-discipline
// ---------------------------------------------------------------------------

TEST(LintLockTest, FlagsUnlockedTouch) {
    const auto vs = run("src/common/sink.cpp",
                        "class S {\n"
                        "    static int sink_;  // guards: mu_\n"
                        "};\n"
                        "void touch() { sink_ = 1; }\n");
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "lock-discipline");
    EXPECT_EQ(vs[0].line, 4u);
    EXPECT_NE(vs[0].message.find("mu_"), std::string::npos);
}

TEST(LintLockTest, LockGuardSatisfies) {
    EXPECT_TRUE(run("src/common/sink.cpp",
                    "class S {\n"
                    "    static int sink_;  // guards: mu_\n"
                    "};\n"
                    "void touch() {\n"
                    "    const std::lock_guard<SpinLock> lock{mu_};\n"
                    "    sink_ = 1;\n"
                    "}\n")
                    .empty());
}

TEST(LintLockTest, ScopedAndUniqueLockAlsoSatisfy) {
    for (const char* lock : {"std::scoped_lock lk(mu_);", "std::unique_lock<M> lk{mu_};"}) {
        EXPECT_TRUE(run("src/telemetry/sink.cpp",
                        std::string{"class S {\n"
                                    "    static int sink_;  // guards: mu_\n"
                                    "};\n"
                                    "void touch() {\n    "} +
                            lock + "\n    sink_ = 1;\n}\n")
                        .empty())
            << lock;
    }
}

TEST(LintLockTest, OnlyEnforcedInConcurrencyModules) {
    // Modules that may not lock at all are covered by no-threads-in-sim;
    // lock-discipline only patrols where locking is legitimate.
    EXPECT_TRUE(run("src/arp/sink.cpp",
                    "class S {\n"
                    "    static int sink_;  // guards: mu_\n"
                    "};\n"
                    "void touch() { sink_ = 1; }\n")
                    .empty());
}

// ---------------------------------------------------------------------------
// symbol-layering
// ---------------------------------------------------------------------------

TEST(LintSymbolLayeringTest, FlagsUpwardSymbolUse) {
    const auto vs = run("src/common/bad.cpp", "int n = sim::Network::node_count();\n");
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "symbol-layering");
    EXPECT_NE(vs[0].message.find("sim::Network"), std::string::npos);
}

TEST(LintSymbolLayeringTest, SelfAndAllowedModulesPass) {
    EXPECT_TRUE(run("src/sim/ok.cpp",
                    "int n = sim::Network::node_count();\n"
                    "auto m = wire::MacAddress{};\n")
                    .empty());
}

TEST(LintSymbolLayeringTest, ForeignNamespacesIgnored) {
    EXPECT_TRUE(run("src/common/ok.cpp",
                    "std::vector<int> v;\n"
                    "foo::Bar b;\n"
                    "int k = arpsec::common::answer();\n")
                    .empty());
}

// ---------------------------------------------------------------------------
// autofixes
// ---------------------------------------------------------------------------

TEST(LintFixTest, PragmaOnceAutofix) {
    const std::string text = "struct S {};\n";
    const auto vs = run("src/arp/naked.hpp", text);
    ASSERT_EQ(vs.size(), 1u);
    ASSERT_EQ(vs[0].fix_line, 1u);
    const std::string fixed = Linter::apply_fixes(text, vs);
    EXPECT_EQ(fixed.rfind("#pragma once\n", 0), 0u);
    EXPECT_TRUE(run("src/arp/naked.hpp", fixed).empty());
}

TEST(LintFixTest, ExhaustiveSwitchAutofix) {
    const std::string text =
        "enum class Kind { kA, kB };\n"
        "int f(Kind k) {\n"
        "    switch (k) {\n"
        "        case Kind::kA:\n"
        "            return 1;\n"
        "    }\n"
        "    return 0;\n"
        "}\n";
    const auto vs = run("src/arp/sw.cpp", text);
    ASSERT_EQ(vs.size(), 1u);
    const std::string fixed = Linter::apply_fixes(text, vs);
    EXPECT_NE(fixed.find("default:"), std::string::npos);
    EXPECT_TRUE(run("src/arp/sw.cpp", fixed).empty()) << fixed;
}

TEST(LintFixTest, FixesApplyBottomUpAcrossOneFile) {
    const std::string text =
        "enum class A { kX, kY };\n"
        "enum class B { kP, kQ };\n"
        "int f(A a, B b) {\n"
        "    switch (a) {\n"
        "        case A::kX: return 1;\n"
        "    }\n"
        "    switch (b) {\n"
        "        case B::kP: return 2;\n"
        "    }\n"
        "    return 0;\n"
        "}\n";
    const auto vs = run("src/arp/sw.cpp", text);
    ASSERT_EQ(vs.size(), 2u);
    const std::string fixed = Linter::apply_fixes(text, vs);
    EXPECT_TRUE(run("src/arp/sw.cpp", fixed).empty()) << fixed;
}

// ---------------------------------------------------------------------------
// SARIF export
// ---------------------------------------------------------------------------

TEST(SarifTest, ShapeMatchesSarif210) {
    const auto vs = run("src/sim/bad.cpp", "int x = std::rand();\n");
    ASSERT_EQ(vs.size(), 1u);
    const auto parsed = telemetry::Json::parse(sarif_report(vs).dump(2));
    ASSERT_TRUE(parsed.has_value());

    EXPECT_EQ(parsed->find("version")->as_string(), "2.1.0");
    EXPECT_NE(parsed->find("$schema")->as_string().find("sarif-2.1.0"), std::string::npos);

    const auto* runs = parsed->find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->size(), 1u);
    const auto& run0 = runs->at(0);

    const auto* driver = run0.find("tool")->find("driver");
    ASSERT_NE(driver, nullptr);
    EXPECT_EQ(driver->find("name")->as_string(), "arpsec-lint");
    EXPECT_EQ(driver->find("rules")->size(), rule_catalog().size());
    EXPECT_FALSE(driver->find("rules")->at(0).find("id")->as_string().empty());

    const auto* results = run0.find("results");
    ASSERT_NE(results, nullptr);
    ASSERT_EQ(results->size(), 1u);
    const auto& res = results->at(0);
    EXPECT_EQ(res.find("ruleId")->as_string(), "sim-determinism");
    EXPECT_EQ(res.find("level")->as_string(), "error");
    EXPECT_FALSE(res.find("message")->find("text")->as_string().empty());
    const auto& loc = res.find("locations")->at(0);
    const auto* phys = loc.find("physicalLocation");
    ASSERT_NE(phys, nullptr);
    EXPECT_EQ(phys->find("artifactLocation")->find("uri")->as_string(), "src/sim/bad.cpp");
    EXPECT_EQ(phys->find("region")->find("startLine")->as_int(), 1);
}

TEST(SarifTest, EmptyResultsStillWellFormed) {
    const auto parsed = telemetry::Json::parse(sarif_report({}).dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("runs")->at(0).find("results")->size(), 0u);
}

// ---------------------------------------------------------------------------
// baseline gating
// ---------------------------------------------------------------------------

TEST(BaselineTest, RoundTripAndFiltering) {
    const auto old_vs = run("src/sim/bad.cpp", "int x = std::rand();\n");
    ASSERT_EQ(old_vs.size(), 1u);
    const auto snapshot = Baseline::from_violations(old_vs);
    EXPECT_EQ(snapshot.size(), 1u);

    // Round-trips through its JSON form.
    const auto reloaded = Baseline::parse(snapshot.to_json().dump(2));
    ASSERT_TRUE(reloaded.ok());
    EXPECT_TRUE(reloaded->contains(old_vs[0]));

    // Known findings are filtered; new ones survive.
    auto new_vs = run("src/sim/bad.cpp",
                      "int x = std::rand();\n"
                      "auto* p = new int;\n");
    ASSERT_EQ(new_vs.size(), 2u);
    const auto fresh = reloaded->filter_new(new_vs);
    ASSERT_EQ(fresh.size(), 1u);
    EXPECT_EQ(fresh[0].rule, "naked-new");
}

TEST(BaselineTest, KeyedOnSnippetNotLine) {
    auto vs = run("src/sim/bad.cpp", "int x = std::rand();\n");
    ASSERT_EQ(vs.size(), 1u);
    const auto snapshot = Baseline::from_violations(vs);
    // The same finding, shifted three lines down, is still baselined.
    const auto shifted = run("src/sim/bad.cpp", "\n\n\nint x = std::rand();\n");
    ASSERT_EQ(shifted.size(), 1u);
    EXPECT_TRUE(snapshot.contains(shifted[0]));
}

TEST(BaselineTest, RejectsWrongSchemaAndShape) {
    EXPECT_FALSE(Baseline::parse("{\"schema\":\"something.else\",\"entries\":[]}").ok());
    EXPECT_FALSE(Baseline::parse("[1,2,3]").ok());
    EXPECT_FALSE(Baseline::parse("not json").ok());
    EXPECT_FALSE(
        Baseline::parse("{\"schema\":\"arpsec.lint-baseline.v1\",\"entries\":[{\"file\":1}]}")
            .ok());
    EXPECT_FALSE(Baseline::load("/nonexistent/baseline.json").ok());
}

// ---------------------------------------------------------------------------
// lint_tree: cross-file facts, skip reporting
// ---------------------------------------------------------------------------

class LintTreeTest : public ::testing::Test {
protected:
    void SetUp() override {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        root_ = std::filesystem::temp_directory_path() /
                (std::string{"arpsec_lint_"} + info->name());
        std::filesystem::remove_all(root_);
        std::filesystem::create_directories(root_);
    }
    void TearDown() override { std::filesystem::remove_all(root_); }

    void write(const std::string& rel, std::string_view content) {
        const std::filesystem::path p = root_ / rel;
        std::filesystem::create_directories(p.parent_path());
        std::ofstream out{p, std::ios::binary};
        out << content;
    }

    std::filesystem::path root_;
};

TEST_F(LintTreeTest, ReportsUnreadableFilesAsSkipped) {
    write("src/arp/ok.cpp", "int x = 1;\n");
    write("src/arp/bad.cpp", "int y = 1;\n\xFF\xFE\n");
    Linter linter;
    const auto vs = linter.lint_tree(root_.string());
    EXPECT_TRUE(vs.empty());
    EXPECT_EQ(linter.files_scanned(), 1u);
    ASSERT_EQ(linter.skipped().size(), 1u);
    EXPECT_EQ(linter.skipped()[0].file, "src/arp/bad.cpp");
    EXPECT_NE(linter.skipped()[0].reason.find("UTF-8"), std::string::npos);

    // The skip surfaces in the report envelope.
    const auto report =
        Linter::report(vs, root_.string(), linter.files_scanned(), linter.skipped());
    const auto parsed = telemetry::Json::parse(report.dump(2));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("files_skipped")->as_int(), 1);
    EXPECT_EQ(parsed->find("skipped")->at(0).find("file")->as_string(), "src/arp/bad.cpp");
    EXPECT_FALSE(parsed->find("skipped")->at(0).find("reason")->as_string().empty());
}

TEST_F(LintTreeTest, EnumDefinedInHeaderBindsSwitchInOtherFile) {
    write("src/arp/kind.hpp", "#pragma once\nenum class Kind { kA, kB };\n");
    write("src/arp/use.cpp",
          "#include \"arp/kind.hpp\"\n"
          "int f(Kind k) {\n"
          "    switch (k) {\n"
          "        case Kind::kA: return 1;\n"
          "    }\n"
          "    return 0;\n"
          "}\n");
    Linter linter;
    const auto vs = linter.lint_tree(root_.string());
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "exhaustive-switch");
    EXPECT_EQ(vs[0].file, "src/arp/use.cpp");
}

TEST_F(LintTreeTest, GuardAnnotationInHeaderEnforcedInCpp) {
    write("src/common/s.hpp",
          "#pragma once\n"
          "class S {\n"
          "    static int sink_;  // guards: mu_\n"
          "};\n");
    write("src/common/s.cpp",
          "#include \"common/s.hpp\"\n"
          "void touch() { sink_ = 2; }\n");
    Linter linter;
    const auto vs = linter.lint_tree(root_.string());
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "lock-discipline");
    EXPECT_EQ(vs[0].file, "src/common/s.cpp");
}

TEST_F(LintTreeTest, SymbolLayeringConfirmedByTreeIndex) {
    write("src/sim/network.hpp", "#pragma once\nclass Network {};\n");
    write("src/common/bad.cpp", "void f(sim::Network& n);\nint g(sim::Unknown u);\n");
    Linter linter;
    const auto vs = linter.lint_tree(root_.string());
    // Network is a real sim symbol -> flagged; Unknown is not in the index
    // -> conservatively silent.
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "symbol-layering");
    EXPECT_NE(vs[0].message.find("sim::Network"), std::string::npos);
}

}  // namespace
}  // namespace arpsec::lint

#include "lint/linter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "telemetry/json.hpp"

namespace arpsec::lint {
namespace {

std::vector<Violation> run(std::string_view path, std::string_view text) {
    return Linter{}.lint_source(path, text);
}

bool has_rule(const std::vector<Violation>& vs, std::string_view rule) {
    for (const auto& v : vs) {
        if (v.rule == rule) return true;
    }
    return false;
}

// ---------------------------------------------------------------------------
// sim-determinism
// ---------------------------------------------------------------------------

TEST(LintDeterminismTest, FlagsWallClockOutsideCommonTime) {
    const auto vs = run("src/sim/bad.cpp",
                        "auto now = std::chrono::system_clock::now();\n");
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "sim-determinism");
    EXPECT_EQ(vs[0].line, 1u);
    EXPECT_EQ(vs[0].file, "src/sim/bad.cpp");
}

TEST(LintDeterminismTest, FlagsGlobalPrng) {
    EXPECT_TRUE(has_rule(run("src/detect/bad.cpp", "int x = std::rand();\n"),
                         "sim-determinism"));
    EXPECT_TRUE(has_rule(run("src/host/bad.cpp", "std::mt19937 gen{42};\n"),
                         "sim-determinism"));
}

TEST(LintDeterminismTest, AllowsCommonTimeItself) {
    EXPECT_TRUE(run("src/common/time.cpp",
                    "auto t = std::chrono::steady_clock::now();\n")
                    .empty());
}

TEST(LintDeterminismTest, IgnoresCommentsAndStrings) {
    EXPECT_TRUE(run("src/sim/ok.cpp",
                    "// system_clock is banned here\n"
                    "const char* msg = \"uses system_clock\";\n")
                    .empty());
}

TEST(LintDeterminismTest, TokenBoundariesRespected) {
    // "strand" contains "rand" but is not the banned token.
    EXPECT_TRUE(run("src/sim/ok.cpp", "int strand = 3; use(strand);\n").empty());
}

// ---------------------------------------------------------------------------
// no-threads-in-sim
// ---------------------------------------------------------------------------

TEST(LintNoThreadsTest, FlagsThreadHeadersOutsideExp) {
    const auto vs = run("src/sim/bad.cpp", "#include <thread>\n");
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "no-threads-in-sim");
    EXPECT_EQ(vs[0].line, 1u);
    EXPECT_TRUE(has_rule(run("src/detect/bad.cpp", "#include <mutex>\n"),
                         "no-threads-in-sim"));
    EXPECT_TRUE(has_rule(run("bench/bad.cpp", "#include <future>\n"),
                         "no-threads-in-sim"));
}

TEST(LintNoThreadsTest, FlagsConcurrencySpellings) {
    EXPECT_TRUE(has_rule(run("src/host/bad.cpp", "std::thread t{work};\n"),
                         "no-threads-in-sim"));
    EXPECT_TRUE(has_rule(run("tools/bad.cpp", "auto f = std::async(work);\n"),
                         "no-threads-in-sim"));
    EXPECT_TRUE(has_rule(run("src/core/bad.cpp", "std::mutex m;\n"),
                         "no-threads-in-sim"));
}

TEST(LintNoThreadsTest, AllowsSweepExecutorAndLogger) {
    EXPECT_TRUE(run("src/exp/executor.cpp",
                    "#include <thread>\n"
                    "std::thread t{work};\n")
                    .empty());
    EXPECT_TRUE(run("src/common/log.cpp",
                    "#include <mutex>\n"
                    "std::mutex m;\n")
                    .empty());
}

TEST(LintNoThreadsTest, IgnoresProseAndLookalikes) {
    EXPECT_TRUE(run("src/sim/ok.cpp",
                    "// a mutex would deadlock here; threads are banned\n"
                    "int single_threaded = 1;\n"
                    "#include <cstdio>\n")
                    .empty());
}

// ---------------------------------------------------------------------------
// discarded-expected
// ---------------------------------------------------------------------------

TEST(LintDiscardedExpectedTest, FlagsStatementLevelDiscard) {
    const auto vs = run("src/host/bad.cpp", "    ArpPacket::parse(data);\n");
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "discarded-expected");
}

TEST(LintDiscardedExpectedTest, FlagsQualifiedDiscard) {
    EXPECT_TRUE(has_rule(run("tests/bad.cpp", "wire::DhcpMessage::parse(buf);\n"),
                         "discarded-expected"));
}

TEST(LintDiscardedExpectedTest, AllowsConsumedResults) {
    EXPECT_TRUE(run("src/host/ok.cpp",
                    "auto p = ArpPacket::parse(data);\n"
                    "if (!Ipv4Packet::parse(raw).ok()) return;\n"
                    "EXPECT_FALSE(TcpSegment::parse(seg).ok());\n"
                    "return MacAddress::parse(text);\n")
                    .empty());
}

// ---------------------------------------------------------------------------
// naked-new
// ---------------------------------------------------------------------------

TEST(LintNakedNewTest, FlagsNewAndMalloc) {
    EXPECT_TRUE(has_rule(run("src/l2/bad.cpp", "auto* s = new Switch{};\n"),
                         "naked-new"));
    EXPECT_TRUE(has_rule(run("src/l2/bad.cpp", "void* p = malloc(64);\n"),
                         "naked-new"));
}

TEST(LintNakedNewTest, IgnoresProseAndIdentifiers) {
    EXPECT_TRUE(run("src/arp/ok.cpp",
                    "// a new entry was created\n"
                    "int new_count = renew(news);\n")
                    .empty());
}

// ---------------------------------------------------------------------------
// assert-in-parser
// ---------------------------------------------------------------------------

TEST(LintAssertInParserTest, FlagsAssertOnlyInWire) {
    const auto vs = run("src/wire/bad_parser.cpp", "    assert(len >= 4);\n");
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "assert-in-parser");
    // The same line outside src/wire/ is fine (Expected itself asserts).
    EXPECT_TRUE(run("src/common/expected_like.cpp", "assert(len >= 4);\n").empty());
}

TEST(LintAssertInParserTest, StaticAssertIsFine) {
    EXPECT_TRUE(run("src/wire/ok.cpp", "static_assert(kSize == 28);\n").empty());
}

// ---------------------------------------------------------------------------
// pragma-once
// ---------------------------------------------------------------------------

TEST(LintPragmaOnceTest, FlagsMissingGuard) {
    const auto vs = run("src/arp/naked.hpp", "struct S {};\n");
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "pragma-once");
    EXPECT_EQ(vs[0].line, 1u);
}

TEST(LintPragmaOnceTest, GuardedHeaderAndSourcesPass) {
    EXPECT_TRUE(run("src/arp/ok.hpp", "#pragma once\nstruct S {};\n").empty());
    EXPECT_TRUE(run("src/arp/ok.cpp", "struct S {};\n").empty());
}

// ---------------------------------------------------------------------------
// include-layering
// ---------------------------------------------------------------------------

TEST(LintLayeringTest, FlagsUpwardInclude) {
    const auto vs =
        run("src/common/bad.hpp", "#pragma once\n#include \"sim/node.hpp\"\n");
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "include-layering");
    EXPECT_EQ(vs[0].line, 2u);
}

TEST(LintLayeringTest, TelemetryDependsOnlyOnCommon) {
    EXPECT_TRUE(has_rule(run("src/telemetry/bad.cpp",
                             "#include \"wire/ethernet.hpp\"\n"),
                         "include-layering"));
    EXPECT_TRUE(run("src/telemetry/ok.cpp",
                    "#include \"common/time.hpp\"\n"
                    "#include \"telemetry/json.hpp\"\n")
                    .empty());
}

TEST(LintLayeringTest, CheckMayDriveSimDetectAndExp) {
    // The DST checker sits above the stack: fan-out via exp, scheme
    // deployment via detect, LAN construction via sim/l2/host.
    EXPECT_TRUE(run("src/check/ok.cpp",
                    "#include \"check/scenario.hpp\"\n"
                    "#include \"exp/executor.hpp\"\n"
                    "#include \"detect/registry.hpp\"\n"
                    "#include \"sim/network.hpp\"\n"
                    "#include \"host/host.hpp\"\n"
                    "#include \"l2/switch.hpp\"\n")
                    .empty());
    // ...but not core: the checker builds its own harness.
    EXPECT_TRUE(has_rule(run("src/check/bad.cpp", "#include \"core/runner.hpp\"\n"),
                         "include-layering"));
}

TEST(LintLayeringTest, ReplaySitsBesideCheckAtTheTop) {
    // The replay engine may drive the whole stack below it...
    EXPECT_TRUE(run("src/replay/ok.cpp",
                    "#include \"replay/engine.hpp\"\n"
                    "#include \"check/scenario_gen.hpp\"\n"
                    "#include \"exp/executor.hpp\"\n"
                    "#include \"detect/registry.hpp\"\n"
                    "#include \"sim/network.hpp\"\n"
                    "#include \"wire/pcap_reader.hpp\"\n"
                    "#include \"telemetry/json.hpp\"\n"
                    "#include \"common/expected.hpp\"\n")
                    .empty());
    // ...but, like check, not core.
    EXPECT_TRUE(has_rule(run("src/replay/bad.cpp", "#include \"core/runner.hpp\"\n"),
                         "include-layering"));
}

TEST(LintLayeringTest, NothingDependsBackOnReplay) {
    for (const char* path : {"src/sim/bad.cpp", "src/detect/bad.cpp", "src/exp/bad.cpp",
                             "src/wire/bad.cpp", "src/check/bad.cpp"}) {
        EXPECT_TRUE(has_rule(run(path, "#include \"replay/trace.hpp\"\n"),
                             "include-layering"))
            << path;
    }
}

TEST(LintLayeringTest, NothingDependsBackOnCheck) {
    // No production module may include the checker — it is a leaf consumer,
    // so a sim/detect/exp refactor can never be blocked by test machinery.
    for (const char* path : {"src/sim/bad.cpp", "src/detect/bad.cpp", "src/exp/bad.cpp",
                             "src/core/bad.cpp", "src/host/bad.cpp"}) {
        EXPECT_TRUE(has_rule(run(path, "#include \"check/oracle.hpp\"\n"),
                             "include-layering"))
            << path;
    }
}

TEST(LintLayeringTest, DownwardAndExternalIncludesPass) {
    EXPECT_TRUE(run("src/l2/ok.cpp",
                    "#include \"sim/network.hpp\"\n"
                    "#include <vector>\n")
                    .empty());
    // tests/ may include anything.
    EXPECT_TRUE(run("tests/ok.cpp", "#include \"core/runner.hpp\"\n").empty());
}

// ---------------------------------------------------------------------------
// lint:allow escape hatch
// ---------------------------------------------------------------------------

TEST(LintAllowTest, SameLineMarkerSuppresses) {
    EXPECT_TRUE(run("src/sim/ok.cpp",
                    "auto t = std::chrono::system_clock::now();  "
                    "// lint:allow(sim-determinism)\n")
                    .empty());
}

TEST(LintAllowTest, PreviousLineMarkerSuppresses) {
    EXPECT_TRUE(run("src/l2/ok.cpp",
                    "// lint:allow(naked-new): arena owns this\n"
                    "auto* s = new Switch{};\n")
                    .empty());
}

TEST(LintAllowTest, WrongRuleIdDoesNotSuppress) {
    EXPECT_TRUE(has_rule(run("src/l2/bad.cpp",
                             "auto* s = new Switch{};  // lint:allow(pragma-once)\n"),
                         "naked-new"));
}

// ---------------------------------------------------------------------------
// clean file, catalog, report shape
// ---------------------------------------------------------------------------

TEST(LintReportTest, CleanFileProducesNoViolations) {
    EXPECT_TRUE(run("src/arp/clean.cpp",
                    "#include \"arp/cache.hpp\"\n"
                    "\n"
                    "namespace arpsec::arp {\n"
                    "int answer() { return 42; }\n"
                    "}  // namespace arpsec::arp\n")
                    .empty());
}

TEST(LintReportTest, CatalogCoversEveryEmittedRule) {
    const auto& catalog = rule_catalog();
    EXPECT_EQ(catalog.size(), 7u);
    const auto vs = run("src/wire/bad.hpp",
                        "#include \"core/runner.hpp\"\n"
                        "#include <thread>\n"
                        "auto t = std::chrono::system_clock::now();\n"
                        "auto* p = new int;\n"
                        "assert(true);\n"
                        "ArpPacket::parse(d);\n");
    for (const auto& v : vs) {
        bool known = false;
        for (const auto& info : catalog) {
            if (info.id == v.rule) known = true;
        }
        EXPECT_TRUE(known) << "unknown rule id: " << v.rule;
    }
    // Every rule fires on this deliberately terrible header.
    for (const auto& info : catalog) {
        EXPECT_TRUE(has_rule(vs, info.id)) << "rule did not fire: " << info.id;
    }
}

TEST(LintReportTest, JsonReportShape) {
    const auto vs = run("src/sim/bad.cpp", "int x = std::rand();\n");
    ASSERT_EQ(vs.size(), 1u);
    const telemetry::Json report = Linter::report(vs, "/repo", 151);

    // Round-trips through the telemetry JSON parser.
    const auto parsed = telemetry::Json::parse(report.dump(2));
    ASSERT_TRUE(parsed.has_value());

    EXPECT_EQ(parsed->find("schema")->as_string(), "arpsec.lint-report.v1");
    EXPECT_EQ(parsed->find("root")->as_string(), "/repo");
    EXPECT_EQ(parsed->find("files_scanned")->as_int(), 151);
    EXPECT_EQ(parsed->find("violation_count")->as_int(), 1);

    const auto* counts = parsed->find("counts");
    ASSERT_NE(counts, nullptr);
    EXPECT_EQ(counts->find("sim-determinism")->as_int(), 1);
    EXPECT_EQ(counts->find("naked-new")->as_int(), 0);

    const auto* list = parsed->find("violations");
    ASSERT_NE(list, nullptr);
    ASSERT_EQ(list->size(), 1u);
    const auto& item = list->at(0);
    EXPECT_EQ(item.find("file")->as_string(), "src/sim/bad.cpp");
    EXPECT_EQ(item.find("line")->as_int(), 1);
    EXPECT_EQ(item.find("rule")->as_string(), "sim-determinism");
    EXPECT_FALSE(item.find("message")->as_string().empty());
    EXPECT_EQ(item.find("snippet")->as_string(), "int x = std::rand();");
}

// ---------------------------------------------------------------------------
// comment/string stripping
// ---------------------------------------------------------------------------

TEST(LintStripTest, PreservesLineStructure) {
    const std::string in =
        "int a; // trailing\n"
        "/* block\n"
        "   spanning */ int b;\n"
        "const char* s = \"new malloc(1)\";\n";
    const std::string out = strip_comments_and_strings(in);
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
              std::count(in.begin(), in.end(), '\n'));
    EXPECT_EQ(out.find("trailing"), std::string::npos);
    EXPECT_EQ(out.find("spanning"), std::string::npos);
    EXPECT_EQ(out.find("malloc"), std::string::npos);
    EXPECT_NE(out.find("int a;"), std::string::npos);
    EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(LintStripTest, HandlesEscapesAndRawStrings) {
    const std::string out = strip_comments_and_strings(
        "auto s = \"escaped \\\" quote new\";\n"
        "auto r = R\"(raw new malloc())\";\n"
        "int after = 1;\n");
    EXPECT_EQ(out.find("new"), std::string::npos);
    EXPECT_EQ(out.find("malloc"), std::string::npos);
    EXPECT_NE(out.find("int after = 1;"), std::string::npos);
}

}  // namespace
}  // namespace arpsec::lint

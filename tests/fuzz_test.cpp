// Robustness / fuzz tests across the receive pipelines: hosts, switches
// and monitors must survive arbitrary byte streams on the wire (malformed
// frames, truncated packets, random auth trailers) without crashing or
// corrupting state. The adversary controls every byte of its frames, so
// parser hardening is part of the threat model. The byte generator itself
// lives in check::FuzzerNode so the DST checker and these tests exercise
// the same adversarial distribution.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>

#include "check/fuzzer_node.hpp"
#include "detect/monitor.hpp"
#include "lint/lexer.hpp"
#include "lint/linter.hpp"
#include "detect/registry.hpp"
#include "host/host.hpp"
#include "host/tcp.hpp"
#include "l2/switch.hpp"
#include "sim/network.hpp"
#include "wire/pcap_reader.hpp"
#include "wire/stream_codec.hpp"

namespace arpsec {
namespace {

using check::FuzzerNode;
using common::Duration;
using common::SimTime;
using wire::Bytes;
using wire::Ipv4Address;
using wire::MacAddress;

class PipelineFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzzTest, HostAndSwitchSurviveGarbage) {
    sim::Network net(GetParam());
    auto& sw = net.emplace_node<l2::Switch>("switch", 6);

    host::HostConfig cfg;
    cfg.name = "victim";
    cfg.mac = MacAddress::local(10);
    cfg.static_ip = Ipv4Address{192, 168, 1, 10};
    auto& victim = net.emplace_node<host::Host>(cfg);
    net.connect({victim.id(), 0}, {sw.id(), 0});
    host::TcpStack tcp(victim);
    tcp.listen(80, [](host::TcpStack::Connection&) {});

    auto& fuzzer = net.emplace_node<FuzzerNode>("fuzzer", GetParam() ^ 0xF0, victim.mac());
    net.connect({fuzzer.id(), 0}, {sw.id(), 1});

    net.start_all();
    net.scheduler().run_until(SimTime::zero() + Duration::seconds(2));

    // Nothing crashed; the victim is still functional.
    EXPECT_GT(sw.forward_stats().received, 1000u);
    EXPECT_GT(fuzzer.frames_sent(), 1000u);
    bool alive = false;
    victim.bind_udp(9, [&](host::Host&, const host::UdpRxInfo&, const Bytes&) {});
    victim.resolve(Ipv4Address{192, 168, 1, 10}, [&](auto) { alive = true; });
    // Self-resolution is a no-op, but the engine should still answer a
    // fresh resolve toward a live peer.
    host::HostConfig pcfg;
    pcfg.name = "peer";
    pcfg.mac = MacAddress::local(11);
    pcfg.static_ip = Ipv4Address{192, 168, 1, 11};
    auto& peer = net.emplace_node<host::Host>(pcfg);
    net.connect({peer.id(), 0}, {sw.id(), 2});
    net.scheduler().run_until(net.now() + Duration::seconds(1));
    std::optional<MacAddress> resolved;
    victim.resolve(Ipv4Address{192, 168, 1, 11}, [&](auto mac) { resolved = mac; });
    net.scheduler().run_until(net.now() + Duration::seconds(5));
    EXPECT_EQ(resolved, peer.mac());
    (void)alive;
}

TEST_P(PipelineFuzzTest, SchemesSurviveGarbageAtEveryVantage) {
    // Deploy each scheme on a fuzzed LAN; no scheme may crash, whatever it
    // alerts on is its own business.
    for (const auto& reg : detect::all_schemes()) {
        sim::Network net(GetParam() ^ 0xABCD);
        auto& sw = net.emplace_node<l2::Switch>("switch", 8);

        host::HostConfig cfg;
        cfg.name = "h0";
        cfg.mac = MacAddress::local(10);
        cfg.static_ip = Ipv4Address{192, 168, 1, 10};
        auto& h0 = net.emplace_node<host::Host>(cfg);
        net.connect({h0.id(), 0}, {sw.id(), 0});

        auto& monitor =
            net.emplace_node<detect::MonitorNode>("monitor", MacAddress::local(0x999));
        net.connect({monitor.id(), 0}, {sw.id(), 1});
        sw.set_mirror_port(1);

        auto& fuzzer =
            net.emplace_node<FuzzerNode>("fuzzer", GetParam() ^ 0xF1, h0.mac());
        net.connect({fuzzer.id(), 0}, {sw.id(), 2});

        auto scheme = reg.make();
        detect::AlertSink alerts;
        crypto::OpCounters ops;
        sim::PortId next_port = 3;
        detect::DeploymentContext ctx;
        ctx.net = &net;
        ctx.fabric = &sw;
        ctx.alerts = &alerts;
        ctx.ops = &ops;
        ctx.directory = {{"h0", Ipv4Address{192, 168, 1, 10}, h0.mac()}};
        ctx.attach_infra = [&](sim::NodeId id) {
            const sim::PortId port = next_port++;
            net.connect({id, 0}, {sw.id(), port});
            sw.set_trusted_port(port, true);
            return port;
        };
        std::uint32_t infra = 0;
        ctx.alloc_infra_ip = [&] {
            return Ipv4Address{192, 168, 1, static_cast<std::uint8_t>(240 + infra++)};
        };
        scheme->deploy(ctx);
        scheme->configure_switch(sw);
        scheme->protect_host(h0);
        scheme->attach_monitor(monitor);

        net.start_all();
        net.scheduler().run_until(SimTime::zero() + Duration::seconds(1));
        SUCCEED() << reg.name;  // reaching here without crashing is the test
    }
}

TEST(FuzzerNodeTest, DeterministicPerSeed) {
    // Two fuzzers with the same seed against identical topologies drive the
    // switch to identical counters — the generator is a pure function of
    // its seed, which is what lets the DST checker replay fuzzed runs.
    auto run = [](std::uint64_t seed) {
        sim::Network net(7);
        auto& sw = net.emplace_node<l2::Switch>("switch", 4);
        host::HostConfig cfg;
        cfg.name = "victim";
        cfg.mac = MacAddress::local(10);
        cfg.static_ip = Ipv4Address{192, 168, 1, 10};
        auto& victim = net.emplace_node<host::Host>(cfg);
        net.connect({victim.id(), 0}, {sw.id(), 0});
        auto& fuzzer = net.emplace_node<FuzzerNode>("fuzzer", seed, victim.mac());
        net.connect({fuzzer.id(), 0}, {sw.id(), 1});
        net.start_all();
        net.scheduler().run_until(SimTime::zero() + Duration::seconds(1));
        // flooded/unicast split depends on the fuzzer's dst choices, so it
        // is sensitive to the generated byte stream, not just the count.
        return std::tuple{sw.forward_stats().received, sw.forward_stats().flooded,
                          fuzzer.frames_sent()};
    };
    EXPECT_EQ(run(99), run(99));
    EXPECT_NE(std::get<1>(run(99)), std::get<1>(run(100)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzzTest, ::testing::Values(1, 42, 777, 31337));

// ---------------------------------------------------------------------------
// PcapReader fuzz: the replay ingestion path parses attacker-controlled
// files, so it gets the same adversarial corpus as the wire parsers.
// ---------------------------------------------------------------------------

namespace {

void le32(Bytes& out, std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

/// A structurally valid pcap carrying FuzzerNode-generated frames.
Bytes fuzzed_capture(common::Rng& rng, std::size_t records) {
    FuzzerNode::Options opts;
    opts.target = MacAddress::local(10);
    Bytes data;
    le32(data, 0xa1b2c3d4u);
    le32(data, 0x00040002u);  // version 2.4 (LE)
    le32(data, 0);
    le32(data, 0);
    le32(data, 65535);
    le32(data, 1);
    for (std::size_t i = 0; i < records; ++i) {
        const Bytes frame = FuzzerNode::generate_frame(rng, opts).serialize();
        le32(data, static_cast<std::uint32_t>(i));  // ts_sec
        le32(data, static_cast<std::uint32_t>(rng.next_below(1000000)));
        le32(data, static_cast<std::uint32_t>(frame.size()));
        le32(data, static_cast<std::uint32_t>(frame.size()));
        data.insert(data.end(), frame.begin(), frame.end());
    }
    return data;
}

}  // namespace

class PcapReaderFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PcapReaderFuzzTest, ParsesWellFormedFuzzedCaptures) {
    common::Rng rng(GetParam());
    const Bytes data = fuzzed_capture(rng, 50);
    const auto trace = wire::PcapReader::parse(data);
    ASSERT_TRUE(trace.ok()) << trace.error();
    EXPECT_EQ(trace->records.size(), 50u);
}

TEST_P(PcapReaderFuzzTest, SurvivesTruncationAtEveryLength) {
    // Every prefix of a valid capture must parse or fail with a typed
    // error — never crash, never read past the end (ASan/UBSan enforce).
    common::Rng rng(GetParam() ^ 0x7137);
    const Bytes data = fuzzed_capture(rng, 8);
    for (std::size_t len = 0; len <= data.size(); ++len) {
        const auto trace =
            wire::PcapReader::parse(std::span<const std::uint8_t>{data.data(), len});
        if (!trace.ok()) EXPECT_FALSE(trace.error().empty()) << "length " << len;
    }
}

TEST_P(PcapReaderFuzzTest, SurvivesByteMutations) {
    common::Rng rng(GetParam() ^ 0xBEEF);
    Bytes data = fuzzed_capture(rng, 20);
    for (int round = 0; round < 200; ++round) {
        Bytes mutated = data;
        // Flip a handful of bytes anywhere — headers, lengths, bodies.
        const std::size_t flips = 1 + rng.next_below(8);
        for (std::size_t i = 0; i < flips; ++i) {
            mutated[rng.next_below(mutated.size())] =
                static_cast<std::uint8_t>(rng.next_u64());
        }
        const auto trace = wire::PcapReader::parse(mutated);
        if (!trace.ok()) EXPECT_FALSE(trace.error().empty());
    }
}

TEST_P(PcapReaderFuzzTest, SurvivesPureGarbage) {
    common::Rng rng(GetParam() ^ 0x6A6A);
    for (int round = 0; round < 100; ++round) {
        Bytes garbage(rng.next_below(512));
        for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_u64());
        const auto trace = wire::PcapReader::parse(garbage);
        if (!trace.ok()) EXPECT_FALSE(trace.error().empty());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcapReaderFuzzTest,
                         ::testing::Values(1, 42, 777, 31337));

// ---------------------------------------------------------------------------
// Lexer fuzz: arpsec-lint's lexer runs over every file in the tree, including
// whatever a contributor manages to commit, so it gets the same adversarial
// corpus. Invariants: never crash, every token span stays inside the input
// and round-trips through substr.
// ---------------------------------------------------------------------------

void check_lex_invariants(const std::string& input) {
    const auto tokens = lint::lex(input);
    for (const lint::Token& t : tokens) {
        ASSERT_LE(t.offset, input.size());
        ASSERT_LE(t.text.size(), input.size() - t.offset);
        ASSERT_EQ(std::string_view{input}.substr(t.offset, t.text.size()), t.text);
        ASSERT_GE(t.line, 1u);
        ASSERT_GE(t.col, 1u);
        ASSERT_FALSE(t.text.empty());
    }
    // The stripper shares the region scanner; it must preserve length and
    // line structure on any input.
    const std::string stripped = lint::strip_comments_and_strings(input);
    ASSERT_EQ(stripped.size(), input.size());
    ASSERT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
              std::count(input.begin(), input.end(), '\n'));
}

class LexerFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LexerFuzzTest, SurvivesFuzzerNodeCorpus) {
    // Raw adversarial frames reinterpreted as "source text": arbitrary
    // bytes, embedded NULs, no trailing newline.
    common::Rng rng(GetParam() ^ 0x1E0);
    FuzzerNode::Options opts;
    opts.target = MacAddress::local(10);
    for (int round = 0; round < 200; ++round) {
        const Bytes frame = FuzzerNode::generate_frame(rng, opts).serialize();
        check_lex_invariants(std::string{frame.begin(), frame.end()});
    }
}

TEST_P(LexerFuzzTest, SurvivesMutatedSource) {
    // Start from plausible C++ and corrupt it: unterminated literals, raw
    // strings with mangled delimiters, stray quotes and separators.
    const std::string seedling =
        "#include <vector>\n"
        "auto r = u8R\"x(raw \" text)x\"; int n = 1'000;\n"
        "const char* s = \"esc \\\" ape\"; char c = '\\n';\n"
        "int f(std::span<const std::uint8_t> d) { return d[0] << 8; } // tail\n";
    common::Rng rng(GetParam() ^ 0x1E1);
    for (int round = 0; round < 300; ++round) {
        std::string mutated = seedling;
        const std::size_t flips = 1 + rng.next_below(6);
        for (std::size_t i = 0; i < flips; ++i) {
            mutated[rng.next_below(mutated.size())] =
                static_cast<char>(rng.next_u64());
        }
        check_lex_invariants(mutated);
    }
}

TEST_P(LexerFuzzTest, SurvivesTruncationAtEveryLength) {
    const std::string source =
        "auto a = R\"delim(body)delim\"; /* block */ auto b = 0x1'F2p3; // eol\n";
    for (std::size_t len = 0; len <= source.size(); ++len) {
        check_lex_invariants(source.substr(0, len));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LexerFuzzTest, ::testing::Values(1, 42, 777, 31337));

// ---------------------------------------------------------------------------
// Stream codec fuzz: arpsec-served decodes `arpsec.stream.v1` records from
// whatever a client puts on the socket, so the decoder gets the same
// adversarial corpus as the wire parsers. Invariants: never crash, never
// read past the input (ASan/UBSan enforce), bad bodies are skipped with
// typed errors, and only a corrupt length prefix latches fatal.
// ---------------------------------------------------------------------------

namespace {

/// A fully valid conversation: HELLO, DIRECTORY, FuzzerNode frames, an
/// alert/summary pair (the server->client direction), and END.
Bytes fuzzed_stream(common::Rng& rng, std::size_t frames) {
    FuzzerNode::Options opts;
    opts.target = MacAddress::local(10);
    Bytes out;
    wire::StreamHello hello;
    hello.seed = rng.next_u64() | 1;
    wire::encode_hello(out, hello);
    std::vector<wire::StreamHostEntry> entries;
    entries.push_back({"h0", Ipv4Address{192, 168, 1, 1}, MacAddress::local(1)});
    entries.push_back({"h1", Ipv4Address{192, 168, 1, 2}, MacAddress::local(2)});
    wire::encode_directory(out, entries);
    for (std::size_t i = 0; i < frames; ++i) {
        const Bytes frame = FuzzerNode::generate_frame(rng, opts).serialize();
        wire::encode_frame(out, i * 1000,
                           std::span<const std::uint8_t>{frame.data(), frame.size()});
    }
    wire::encode_alert(out, "{\"at_ns\":1,\"scheme\":\"arpwatch\"}");
    wire::encode_summary(out, "{\"schema\":\"arpsec.serve-summary.v1\"}");
    wire::encode_end(out);
    return out;
}

/// Drains the decoder, asserting the typed-error contract on every status.
/// Returns the number of good records.
std::uint64_t drain_stream_decoder(wire::StreamDecoder& decoder) {
    wire::StreamRecord rec;
    std::uint64_t records = 0;
    for (;;) {
        const auto st = decoder.poll(rec);
        if (st == wire::StreamDecoder::Status::kNeedMore) break;
        if (st == wire::StreamDecoder::Status::kRecord) {
            ++records;
            continue;
        }
        EXPECT_FALSE(decoder.last_error().empty());
        if (st == wire::StreamDecoder::Status::kFatal) {
            EXPECT_TRUE(decoder.fatal());
            break;
        }
    }
    return records;
}

}  // namespace

class StreamCodecFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamCodecFuzzTest, DecodesWellFormedFuzzedStreams) {
    common::Rng rng(GetParam());
    const Bytes data = fuzzed_stream(rng, 40);
    wire::StreamDecoder decoder;
    decoder.feed(data);
    // hello + directory + 40 frames + alert + summary + end
    EXPECT_EQ(drain_stream_decoder(decoder), 45u);
    EXPECT_FALSE(decoder.fatal());
    EXPECT_EQ(decoder.buffered(), 0u);
}

TEST_P(StreamCodecFuzzTest, ChunkSizeNeverChangesTheRecords) {
    // Transport chunking is arbitrary; any slicing of the byte stream must
    // reassemble to the same record sequence.
    common::Rng rng(GetParam() ^ 0xC4A7);
    const Bytes data = fuzzed_stream(rng, 20);
    wire::StreamDecoder decoder;
    std::uint64_t records = 0;
    std::size_t pos = 0;
    while (pos < data.size()) {
        const std::size_t chunk =
            std::min<std::size_t>(1 + rng.next_below(97), data.size() - pos);
        decoder.feed(std::span<const std::uint8_t>{data.data() + pos, chunk});
        pos += chunk;
        records += drain_stream_decoder(decoder);
    }
    EXPECT_EQ(records, 25u);
    EXPECT_FALSE(decoder.fatal());
}

TEST_P(StreamCodecFuzzTest, SurvivesTruncationAtEveryLength) {
    // Every prefix of a valid stream decodes some whole records and then
    // reports kNeedMore — truncation is never a crash or a fatal.
    common::Rng rng(GetParam() ^ 0x7137);
    const Bytes data = fuzzed_stream(rng, 6);
    for (std::size_t len = 0; len <= data.size(); ++len) {
        wire::StreamDecoder decoder;
        decoder.feed(std::span<const std::uint8_t>{data.data(), len});
        (void)drain_stream_decoder(decoder);
        EXPECT_FALSE(decoder.fatal()) << "length " << len;
    }
}

TEST_P(StreamCodecFuzzTest, SurvivesByteMutations) {
    common::Rng rng(GetParam() ^ 0xBEEF);
    const Bytes data = fuzzed_stream(rng, 12);
    for (int round = 0; round < 200; ++round) {
        Bytes mutated = data;
        const std::size_t flips = 1 + rng.next_below(8);
        for (std::size_t i = 0; i < flips; ++i) {
            mutated[rng.next_below(mutated.size())] =
                static_cast<std::uint8_t>(rng.next_u64());
        }
        wire::StreamDecoder decoder;
        decoder.feed(mutated);
        (void)drain_stream_decoder(decoder);
    }
}

TEST_P(StreamCodecFuzzTest, OversizedLengthPrefixLatchesFatal) {
    common::Rng rng(GetParam() ^ 0x0F5E);
    Bytes data = fuzzed_stream(rng, 3);
    // A length prefix beyond kMaxRecordBytes means framing is gone.
    const std::uint32_t huge = wire::StreamDecoder::kMaxRecordBytes + 1 +
                               static_cast<std::uint32_t>(rng.next_below(1 << 20));
    data.push_back(static_cast<std::uint8_t>(huge >> 24));
    data.push_back(static_cast<std::uint8_t>(huge >> 16));
    data.push_back(static_cast<std::uint8_t>(huge >> 8));
    data.push_back(static_cast<std::uint8_t>(huge));
    wire::StreamDecoder decoder;
    decoder.feed(data);
    EXPECT_EQ(drain_stream_decoder(decoder), 8u);
    EXPECT_TRUE(decoder.fatal());
    // Fatal is latched: more bytes never resurrect the stream.
    decoder.feed(data);
    wire::StreamRecord rec;
    EXPECT_EQ(decoder.poll(rec), wire::StreamDecoder::Status::kFatal);
}

TEST_P(StreamCodecFuzzTest, SurvivesPureGarbage) {
    common::Rng rng(GetParam() ^ 0x6A6A);
    for (int round = 0; round < 100; ++round) {
        Bytes garbage(rng.next_below(512));
        for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_u64());
        wire::StreamDecoder decoder;
        decoder.feed(garbage);
        (void)drain_stream_decoder(decoder);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamCodecFuzzTest,
                         ::testing::Values(1, 42, 777, 31337));

}  // namespace
}  // namespace arpsec

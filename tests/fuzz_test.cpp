// Robustness / fuzz tests across the receive pipelines: hosts, switches
// and monitors must survive arbitrary byte streams on the wire (malformed
// frames, truncated packets, random auth trailers) without crashing or
// corrupting state. The adversary controls every byte of its frames, so
// parser hardening is part of the threat model.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "detect/monitor.hpp"
#include "detect/registry.hpp"
#include "host/host.hpp"
#include "host/tcp.hpp"
#include "l2/switch.hpp"
#include "sim/network.hpp"

namespace arpsec {
namespace {

using common::Duration;
using common::Rng;
using common::SimTime;
using wire::Bytes;
using wire::EthernetFrame;
using wire::Ipv4Address;
using wire::MacAddress;

/// Node that spews attacker-controlled bytes: structurally valid Ethernet
/// frames with randomized payloads (the simulator requires parsable
/// Ethernet framing to deliver at all; everything above L2 is fuzzed).
class FuzzerNode final : public sim::Node {
public:
    FuzzerNode(std::string name, std::uint64_t seed, MacAddress target)
        : sim::Node(std::move(name)), rng_(seed), target_(target) {}

    void start() override { tick(); }

    void on_frame(sim::PortId, const EthernetFrame&, std::span<const std::uint8_t>) override {}

    void tick() {
        if (sent_ >= 2000) return;
        ++sent_;
        EthernetFrame f;
        // Mix of broadcast and unicast-to-target, ARP and IPv4.
        f.dst = rng_.chance(0.5) ? MacAddress::broadcast() : target_;
        f.src = MacAddress::local(rng_.next_u64() & 0xFFFFFFFFFFULL);
        f.ether_type = rng_.chance(0.5) ? wire::EtherType::kArp : wire::EtherType::kIpv4;
        const std::size_t len = rng_.next_below(200);
        f.payload.resize(len);
        for (auto& b : f.payload) b = static_cast<std::uint8_t>(rng_.next_u64());
        // Occasionally wrap random bytes in a valid IPv4 header so the UDP/
        // TCP/DHCP layers get exercised too.
        if (f.ether_type == wire::EtherType::kIpv4 && rng_.chance(0.6)) {
            wire::Ipv4Packet p;
            p.protocol = static_cast<wire::IpProto>(rng_.next_below(20));
            p.src = Ipv4Address{static_cast<std::uint32_t>(rng_.next_u64())};
            p.dst = rng_.chance(0.5) ? Ipv4Address{192, 168, 1, 10}
                                     : Ipv4Address::broadcast();
            p.payload = f.payload;
            f.payload = p.serialize();
        }
        send(0, f);
        network().scheduler().schedule_after(Duration::micros(200), [this] { tick(); });
    }

private:
    Rng rng_;
    MacAddress target_;
    std::uint64_t sent_ = 0;
};

class PipelineFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzzTest, HostAndSwitchSurviveGarbage) {
    sim::Network net(GetParam());
    auto& sw = net.emplace_node<l2::Switch>("switch", 6);

    host::HostConfig cfg;
    cfg.name = "victim";
    cfg.mac = MacAddress::local(10);
    cfg.static_ip = Ipv4Address{192, 168, 1, 10};
    auto& victim = net.emplace_node<host::Host>(cfg);
    net.connect({victim.id(), 0}, {sw.id(), 0});
    host::TcpStack tcp(victim);
    tcp.listen(80, [](host::TcpStack::Connection&) {});

    auto& fuzzer = net.emplace_node<FuzzerNode>("fuzzer", GetParam() ^ 0xF0, victim.mac());
    net.connect({fuzzer.id(), 0}, {sw.id(), 1});

    net.start_all();
    net.scheduler().run_until(SimTime::zero() + Duration::seconds(2));

    // Nothing crashed; the victim is still functional.
    EXPECT_GT(sw.forward_stats().received, 1000u);
    bool alive = false;
    victim.bind_udp(9, [&](host::Host&, const host::UdpRxInfo&, const Bytes&) {});
    victim.resolve(Ipv4Address{192, 168, 1, 10}, [&](auto) { alive = true; });
    // Self-resolution is a no-op, but the engine should still answer a
    // fresh resolve toward a live peer.
    host::HostConfig pcfg;
    pcfg.name = "peer";
    pcfg.mac = MacAddress::local(11);
    pcfg.static_ip = Ipv4Address{192, 168, 1, 11};
    auto& peer = net.emplace_node<host::Host>(pcfg);
    net.connect({peer.id(), 0}, {sw.id(), 2});
    net.scheduler().run_until(net.now() + Duration::seconds(1));
    std::optional<MacAddress> resolved;
    victim.resolve(Ipv4Address{192, 168, 1, 11}, [&](auto mac) { resolved = mac; });
    net.scheduler().run_until(net.now() + Duration::seconds(5));
    EXPECT_EQ(resolved, peer.mac());
    (void)alive;
}

TEST_P(PipelineFuzzTest, SchemesSurviveGarbageAtEveryVantage) {
    // Deploy each scheme on a fuzzed LAN; no scheme may crash, whatever it
    // alerts on is its own business.
    for (const auto& reg : detect::all_schemes()) {
        sim::Network net(GetParam() ^ 0xABCD);
        auto& sw = net.emplace_node<l2::Switch>("switch", 8);

        host::HostConfig cfg;
        cfg.name = "h0";
        cfg.mac = MacAddress::local(10);
        cfg.static_ip = Ipv4Address{192, 168, 1, 10};
        auto& h0 = net.emplace_node<host::Host>(cfg);
        net.connect({h0.id(), 0}, {sw.id(), 0});

        auto& monitor =
            net.emplace_node<detect::MonitorNode>("monitor", MacAddress::local(0x999));
        net.connect({monitor.id(), 0}, {sw.id(), 1});
        sw.set_mirror_port(1);

        auto& fuzzer =
            net.emplace_node<FuzzerNode>("fuzzer", GetParam() ^ 0xF1, h0.mac());
        net.connect({fuzzer.id(), 0}, {sw.id(), 2});

        auto scheme = reg.make();
        detect::AlertSink alerts;
        crypto::OpCounters ops;
        sim::PortId next_port = 3;
        detect::DeploymentContext ctx;
        ctx.net = &net;
        ctx.fabric = &sw;
        ctx.alerts = &alerts;
        ctx.ops = &ops;
        ctx.directory = {{"h0", Ipv4Address{192, 168, 1, 10}, h0.mac()}};
        ctx.attach_infra = [&](sim::NodeId id) {
            const sim::PortId port = next_port++;
            net.connect({id, 0}, {sw.id(), port});
            sw.set_trusted_port(port, true);
            return port;
        };
        std::uint32_t infra = 0;
        ctx.alloc_infra_ip = [&] {
            return Ipv4Address{192, 168, 1, static_cast<std::uint8_t>(240 + infra++)};
        };
        scheme->deploy(ctx);
        scheme->configure_switch(sw);
        scheme->protect_host(h0);
        scheme->attach_monitor(monitor);

        net.start_all();
        net.scheduler().run_until(SimTime::zero() + Duration::seconds(1));
        SUCCEED() << reg.name;  // reaching here without crashing is the test
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzzTest, ::testing::Values(1, 42, 777, 31337));

}  // namespace
}  // namespace arpsec

// Cross-module properties swept over every registered scheme: the axioms
// the comparison matrix rests on. Each scheme runs in its natural habitat
// (DAI needs DHCP-managed addressing; everything else runs static).

#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "detect/registry.hpp"

namespace arpsec {
namespace {

using common::Duration;
using core::Addressing;
using core::AttackKind;
using core::ScenarioConfig;
using core::ScenarioResult;
using core::ScenarioRunner;

Addressing natural_addressing(const std::string& scheme_name) {
    return scheme_name == "dai" || scheme_name == "lease-monitor" ? Addressing::kDhcp
                                                                  : Addressing::kStatic;
}

ScenarioConfig config_for(const std::string& scheme_name, AttackKind attack,
                          std::uint64_t seed = 3) {
    ScenarioConfig cfg;
    cfg.seed = seed;
    cfg.host_count = 4;
    cfg.addressing = natural_addressing(scheme_name);
    cfg.attack = attack;
    cfg.duration = Duration::seconds(30);
    cfg.attack_start = Duration::seconds(10);
    cfg.attack_stop = Duration::seconds(25);
    cfg.repoison_period = Duration::seconds(2);
    return cfg;
}

class SchemeSweepTest : public ::testing::TestWithParam<std::string> {
protected:
    ScenarioResult run(AttackKind attack, std::uint64_t seed = 3) {
        auto scheme = detect::make_scheme(GetParam());
        EXPECT_NE(scheme, nullptr);
        return ScenarioRunner::run_scheme(config_for(GetParam(), attack, seed), *scheme);
    }
};

TEST_P(SchemeSweepTest, PreventionSchemesStopMitm) {
    auto probe = detect::make_scheme(GetParam());
    const auto traits = probe->traits();
    const auto r = run(AttackKind::kMitm);
    if (traits.prevents_poisoning) {
        EXPECT_FALSE(r.attack_succeeded) << r.summary_line();
        EXPECT_FALSE(r.victim_poisoned_at_end) << r.summary_line();
        EXPECT_LT(r.attack_window.interception_ratio(), 0.05) << r.summary_line();
    } else {
        // No prevention claimed: the MITM goes through.
        EXPECT_TRUE(r.attack_succeeded) << r.summary_line();
    }
}

TEST_P(SchemeSweepTest, BenignRunNeverLooksLikeAnAttack) {
    const auto r = run(AttackKind::kNone);
    EXPECT_FALSE(r.attack_succeeded) << r.summary_line();
    EXPECT_EQ(r.alerts.true_positives, 0u) << r.summary_line();
    EXPECT_EQ(r.attack_window.intercepted, 0u);
}

TEST_P(SchemeSweepTest, BenignStableLanRaisesNoFalsePositives) {
    // Without churn, no scheme should cry wolf.
    const auto r = run(AttackKind::kNone);
    EXPECT_EQ(r.alerts.false_positives, 0u) << r.summary_line();
}

TEST_P(SchemeSweepTest, TrafficFlowsOutsideTheAttackWindow) {
    const auto r = run(AttackKind::kMitm);
    EXPECT_GT(r.benign_window.delivery_ratio(), 0.85) << r.summary_line();
}

TEST_P(SchemeSweepTest, DeterministicAcrossIdenticalRuns) {
    const auto a = run(AttackKind::kMitm, 5);
    const auto b = run(AttackKind::kMitm, 5);
    EXPECT_EQ(a.total_frames, b.total_frames);
    EXPECT_EQ(a.alerts.true_positives, b.alerts.true_positives);
    EXPECT_EQ(a.alerts.false_positives, b.alerts.false_positives);
    EXPECT_EQ(a.attack_window.intercepted, b.attack_window.intercepted);
}

TEST_P(SchemeSweepTest, DetectorsRaiseTimelyAlertsUnderMitm) {
    auto probe = detect::make_scheme(GetParam());
    const auto traits = probe->traits();
    const auto r = run(AttackKind::kMitm);
    // Port security legitimately sees nothing: the poisoner uses its own
    // NIC address. Every other detector must notice a persistent MITM.
    if (traits.detects && GetParam() != "port-security") {
        EXPECT_GE(r.alerts.true_positives, 1u) << r.summary_line();
        ASSERT_TRUE(r.alerts.detection_latency.has_value()) << r.summary_line();
        EXPECT_LT(r.alerts.detection_latency->to_seconds(), 10.0) << r.summary_line();
    }
}

namespace {
std::vector<std::string> scheme_names() {
    std::vector<std::string> names;
    for (const auto& reg : detect::all_schemes()) names.push_back(reg.name);
    return names;
}
}  // namespace

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeSweepTest, ::testing::ValuesIn(scheme_names()),
                         [](const auto& param_info) {
                             std::string n = param_info.param;
                             for (char& c : n) {
                                 if (c == '-' || c == '+') c = '_';
                             }
                             return n;
                         });

// ---------------------------------------------------------------------------
// Cross-scheme shape assertions (the qualitative claims of the analysis)
// ---------------------------------------------------------------------------

TEST(CrossSchemeTest, CryptoSchemesCostMoreThanSwitchSchemes) {
    auto sarp = detect::make_scheme("s-arp");
    auto dai = detect::make_scheme("dai");
    const auto rs = ScenarioRunner::run_scheme(config_for("s-arp", AttackKind::kNone), *sarp);
    const auto rd = ScenarioRunner::run_scheme(config_for("dai", AttackKind::kNone), *dai);
    ASSERT_GT(rs.resolution_latency_us.count(), 0u);
    ASSERT_GT(rd.resolution_latency_us.count(), 0u);
    EXPECT_GT(rs.resolution_latency_us.median(), 10.0 * rd.resolution_latency_us.median());
}

TEST(CrossSchemeTest, PassiveDetectorsAddNoWireOverhead) {
    auto none = detect::make_scheme("none");
    auto watch = detect::make_scheme("arpwatch");
    const auto r0 = ScenarioRunner::run_scheme(config_for("none", AttackKind::kNone), *none);
    const auto r1 =
        ScenarioRunner::run_scheme(config_for("arpwatch", AttackKind::kNone), *watch);
    EXPECT_EQ(r0.arp_bytes, r1.arp_bytes);
}

TEST(CrossSchemeTest, SignedArpInflatesArpBytes) {
    auto none = detect::make_scheme("none");
    auto sarp = detect::make_scheme("s-arp");
    const auto r0 = ScenarioRunner::run_scheme(config_for("none", AttackKind::kNone), *none);
    const auto r1 = ScenarioRunner::run_scheme(config_for("s-arp", AttackKind::kNone), *sarp);
    EXPECT_GT(r1.arp_bytes, r0.arp_bytes);
}

TEST(CrossSchemeTest, ArpwatchFalsePositivesWhereActiveProbeStaysQuiet) {
    // The paper's key detection trade-off, reproduced end to end.
    ScenarioConfig cfg = config_for("arpwatch", AttackKind::kNone);
    cfg.churn.nic_swap = true;
    auto watch = detect::make_scheme("arpwatch");
    const auto rw = ScenarioRunner::run_scheme(cfg, *watch);
    auto probe = detect::make_scheme("active-probe");
    const auto rp = ScenarioRunner::run_scheme(cfg, *probe);
    EXPECT_GE(rw.alerts.false_positives, 1u);
    EXPECT_EQ(rp.alerts.false_positives, 0u);
}

// ---------------------------------------------------------------------------
// Conservation and robustness properties
// ---------------------------------------------------------------------------

class ConservationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConservationTest, LedgerInvariantsHoldAcrossSeedsAndAttacks) {
    for (auto attack : {AttackKind::kNone, AttackKind::kMitm, AttackKind::kDosBlackhole,
                        AttackKind::kReplyRace, AttackKind::kHijackOffline}) {
        auto scheme = detect::make_scheme("none");
        ScenarioConfig cfg = config_for("none", attack, GetParam());
        const auto r = ScenarioRunner::run_scheme(cfg, *scheme);
        // No window can deliver or intercept more than was sent.
        EXPECT_LE(r.benign_window.delivered, r.benign_window.sent);
        EXPECT_LE(r.attack_window.delivered, r.attack_window.sent + 5);  // in-flight slack
        EXPECT_LE(r.victim_flow_attack_window.sent, r.attack_window.sent);
        // Frame counters are self-consistent.
        EXPECT_EQ(r.total_frames, r.arp_frames + (r.total_frames - r.arp_frames));
        EXPECT_GE(r.total_bytes, r.arp_bytes);
        // Alert classification is a partition.
        EXPECT_EQ(r.alerts.true_positives + r.alerts.false_positives, r.raw_alerts.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationTest, ::testing::Values(1, 7, 23, 99));

TEST(RobustnessTest, ArpSurvivesLossyLinks) {
    // 2% frame loss: ARP's retransmissions keep resolution working; UDP
    // (no retries) loses roughly the loss rate.
    core::ScenarioConfig cfg;
    cfg.seed = 13;
    cfg.host_count = 4;
    cfg.attack = AttackKind::kNone;
    cfg.duration = Duration::seconds(30);
    cfg.attack_start = Duration::seconds(10);
    cfg.attack_stop = Duration::seconds(25);
    cfg.link_loss = 0.02;
    auto scheme = detect::make_scheme("none");
    const auto r = ScenarioRunner::run_scheme(cfg, *scheme);
    EXPECT_GT(r.benign_window.delivery_ratio(), 0.90);
    EXPECT_GT(r.attack_window.delivery_ratio(), 0.90);
    ASSERT_GT(r.resolution_latency_us.count(), 0u);
}

TEST(RobustnessTest, SArpSurvivesLossyLinks) {
    core::ScenarioConfig cfg;
    cfg.seed = 13;
    cfg.host_count = 4;
    cfg.attack = AttackKind::kNone;
    cfg.duration = Duration::seconds(30);
    cfg.attack_start = Duration::seconds(10);
    cfg.attack_stop = Duration::seconds(25);
    cfg.link_loss = 0.02;
    auto scheme = detect::make_scheme("s-arp");
    const auto r = ScenarioRunner::run_scheme(cfg, *scheme);
    // Lost key-fetches and signed replies are retried via the ARP engine.
    EXPECT_GT(r.attack_window.delivery_ratio(), 0.85);
}

}  // namespace
}  // namespace arpsec

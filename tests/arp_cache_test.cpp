#include <gtest/gtest.h>

#include "arp/cache.hpp"
#include "arp/policy.hpp"

namespace arpsec::arp {
namespace {

using common::Duration;
using common::SimTime;
using wire::Ipv4Address;
using wire::MacAddress;

const Ipv4Address kIp{192, 168, 1, 20};
const MacAddress kMacA = MacAddress::local(0xA);
const MacAddress kMacB = MacAddress::local(0xB);

SimTime at(std::int64_t seconds) { return SimTime::zero() + Duration::seconds(seconds); }

// ---------------------------------------------------------------------------
// Basic cache mechanics
// ---------------------------------------------------------------------------

TEST(ArpCacheTest, MissOnEmpty) {
    ArpCache cache(CachePolicy::linux26());
    EXPECT_FALSE(cache.lookup(kIp, at(0)).has_value());
    EXPECT_EQ(cache.stats().lookups, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(ArpCacheTest, SolicitedReplyCreatesAndHits) {
    ArpCache cache(CachePolicy::linux26());
    const auto out = cache.offer(kIp, kMacA, UpdateSource::kSolicitedReply, at(0));
    EXPECT_TRUE(out.accepted);
    EXPECT_TRUE(out.created);
    EXPECT_EQ(cache.lookup(kIp, at(1)), kMacA);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ArpCacheTest, EntryExpiresAfterTtl) {
    CachePolicy p = CachePolicy::linux26();
    p.entry_ttl = Duration::seconds(60);
    ArpCache cache(p);
    cache.offer(kIp, kMacA, UpdateSource::kSolicitedReply, at(0));
    EXPECT_TRUE(cache.lookup(kIp, at(59)).has_value());
    EXPECT_FALSE(cache.lookup(kIp, at(61)).has_value());
    EXPECT_EQ(cache.stats().expirations, 1u);
}

TEST(ArpCacheTest, RefreshExtendsLifetime) {
    ArpCache cache(CachePolicy::linux26());
    cache.offer(kIp, kMacA, UpdateSource::kSolicitedReply, at(0));
    cache.offer(kIp, kMacA, UpdateSource::kRequest, at(50));  // refresh
    EXPECT_TRUE(cache.lookup(kIp, at(100)).has_value());      // 50 + 60 > 100
}

TEST(ArpCacheTest, StaticEntryNeverExpiresOrYields) {
    ArpCache cache(CachePolicy::windows_xp());
    cache.set_static(kIp, kMacA, at(0));
    EXPECT_EQ(cache.lookup(kIp, at(100'000)), kMacA);
    const auto out = cache.offer(kIp, kMacB, UpdateSource::kSolicitedReply, at(1));
    EXPECT_FALSE(out.accepted);
    EXPECT_STREQ(out.reject_reason, "static entry");
    EXPECT_EQ(cache.lookup(kIp, at(2)), kMacA);
}

TEST(ArpCacheTest, ForceBypassesPolicyButNotStatic) {
    ArpCache cache(CachePolicy::strict());
    cache.force(kIp, kMacA, at(0));
    EXPECT_EQ(cache.lookup(kIp, at(1)), kMacA);
    cache.set_static(kIp, kMacB, at(2));
    cache.force(kIp, kMacA, at(3));
    EXPECT_EQ(cache.lookup(kIp, at(4)), kMacB);  // static wins
}

TEST(ArpCacheTest, EvictRemovesDynamicOnly) {
    ArpCache cache(CachePolicy::linux26());
    cache.offer(kIp, kMacA, UpdateSource::kSolicitedReply, at(0));
    cache.evict(kIp);
    EXPECT_FALSE(cache.lookup(kIp, at(1)).has_value());
    cache.set_static(kIp, kMacB, at(2));
    cache.evict(kIp);
    EXPECT_TRUE(cache.lookup(kIp, at(3)).has_value());
}

TEST(ArpCacheTest, PurgeExpiredSweeps) {
    ArpCache cache(CachePolicy::linux26());
    for (std::uint8_t i = 0; i < 10; ++i) {
        cache.offer(Ipv4Address{10, 0, 0, i}, MacAddress::local(i),
                    UpdateSource::kSolicitedReply, at(0));
    }
    EXPECT_EQ(cache.size(), 10u);
    EXPECT_EQ(cache.purge_expired(at(100)), 10u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ArpCacheTest, SnapshotListsEntries) {
    ArpCache cache(CachePolicy::linux26());
    cache.offer(kIp, kMacA, UpdateSource::kSolicitedReply, at(0));
    cache.set_static(Ipv4Address{10, 0, 0, 1}, kMacB, at(0));
    const auto snap = cache.snapshot();
    EXPECT_EQ(snap.size(), 2u);
}

TEST(ArpCacheTest, CapacityEvictsLeastRecentlyConfirmed) {
    CachePolicy p = CachePolicy::windows_xp();
    p.max_entries = 4;
    ArpCache cache(p);
    for (std::uint8_t i = 0; i < 4; ++i) {
        cache.offer(Ipv4Address{10, 0, 0, i}, MacAddress::local(i),
                    UpdateSource::kSolicitedReply, at(i));
    }
    // Refresh entry 0 so entry 1 becomes the oldest.
    cache.offer(Ipv4Address{10, 0, 0, 0}, MacAddress::local(0), UpdateSource::kRequest, at(10));
    // A fifth entry evicts the least recently confirmed (entry 1).
    EXPECT_TRUE(cache
                    .offer(Ipv4Address{10, 0, 0, 99}, MacAddress::local(99),
                           UpdateSource::kSolicitedReply, at(11))
                    .accepted);
    EXPECT_EQ(cache.size(), 4u);
    EXPECT_FALSE(cache.peek(Ipv4Address{10, 0, 0, 1}).has_value());
    EXPECT_TRUE(cache.peek(Ipv4Address{10, 0, 0, 0}).has_value());
    EXPECT_EQ(cache.stats().capacity_evictions, 1u);
}

TEST(ArpCacheTest, CapacityNeverEvictsStaticEntries) {
    CachePolicy p = CachePolicy::windows_xp();
    p.max_entries = 2;
    ArpCache cache(p);
    cache.set_static(Ipv4Address{10, 0, 0, 1}, kMacA, at(0));
    cache.set_static(Ipv4Address{10, 0, 0, 2}, kMacB, at(0));
    const auto out = cache.offer(Ipv4Address{10, 0, 0, 3}, MacAddress::local(3),
                                 UpdateSource::kSolicitedReply, at(1));
    EXPECT_FALSE(out.accepted);
    EXPECT_STREQ(out.reject_reason, "table full of static entries");
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ArpCacheTest, UnlimitedWhenMaxEntriesZero) {
    CachePolicy p = CachePolicy::windows_xp();
    p.max_entries = 0;
    ArpCache cache(p);
    for (std::uint32_t i = 0; i < 5000; ++i) {
        cache.offer(Ipv4Address{i}, MacAddress::local(i), UpdateSource::kSolicitedReply,
                    at(0));
    }
    EXPECT_EQ(cache.size(), 5000u);
    EXPECT_EQ(cache.stats().capacity_evictions, 0u);
}

// ---------------------------------------------------------------------------
// Policy differences (the acceptance rules behind table T1)
// ---------------------------------------------------------------------------

TEST(PolicyTest, LinuxIgnoresUnsolicitedCreateButUpdates) {
    ArpCache cache(CachePolicy::linux26());
    // Creation from an unsolicited reply is refused...
    EXPECT_FALSE(cache.offer(kIp, kMacA, UpdateSource::kUnsolicitedReply, at(0)).accepted);
    // ...but once an entry exists, an unsolicited reply overwrites it.
    cache.offer(kIp, kMacA, UpdateSource::kSolicitedReply, at(1));
    const auto out = cache.offer(kIp, kMacB, UpdateSource::kUnsolicitedReply, at(2));
    EXPECT_TRUE(out.accepted);
    EXPECT_TRUE(out.overwrote);
    EXPECT_EQ(out.previous_mac, kMacA);
}

TEST(PolicyTest, WindowsAcceptsUnsolicitedCreate) {
    ArpCache cache(CachePolicy::windows_xp());
    EXPECT_TRUE(cache.offer(kIp, kMacA, UpdateSource::kUnsolicitedReply, at(0)).accepted);
    EXPECT_TRUE(cache.offer(kIp, kMacB, UpdateSource::kGratuitousReply, at(1)).accepted);
}

TEST(PolicyTest, FreeBsdIgnoresUnsolicitedEntirely) {
    ArpCache cache(CachePolicy::freebsd5());
    EXPECT_FALSE(cache.offer(kIp, kMacA, UpdateSource::kUnsolicitedReply, at(0)).accepted);
    cache.offer(kIp, kMacA, UpdateSource::kSolicitedReply, at(1));
    EXPECT_FALSE(cache.offer(kIp, kMacB, UpdateSource::kUnsolicitedReply, at(2)).accepted);
    EXPECT_FALSE(cache.offer(kIp, kMacB, UpdateSource::kGratuitousReply, at(3)).accepted);
    EXPECT_EQ(cache.lookup(kIp, at(4)), kMacA);
}

TEST(PolicyTest, SolarisRefreshGuardBlocksFreshOverwrite) {
    ArpCache cache(CachePolicy::solaris9());
    cache.offer(kIp, kMacA, UpdateSource::kSolicitedReply, at(0));
    // Within the 30s guard window the overwrite is refused...
    const auto early = cache.offer(kIp, kMacB, UpdateSource::kUnsolicitedReply, at(10));
    EXPECT_FALSE(early.accepted);
    EXPECT_STREQ(early.reject_reason, "entry too fresh to overwrite");
    // ...after the guard has elapsed (but before TTL) it is accepted.
    const auto late = cache.offer(kIp, kMacB, UpdateSource::kUnsolicitedReply, at(40));
    EXPECT_TRUE(late.accepted);
    EXPECT_TRUE(late.overwrote);
}

TEST(PolicyTest, SolarisGuardDoesNotBlockSameMacRefresh) {
    ArpCache cache(CachePolicy::solaris9());
    cache.offer(kIp, kMacA, UpdateSource::kSolicitedReply, at(0));
    EXPECT_TRUE(cache.offer(kIp, kMacA, UpdateSource::kUnsolicitedReply, at(5)).accepted);
}

TEST(PolicyTest, StrictOnlyAcceptsSolicited) {
    ArpCache cache(CachePolicy::strict());
    EXPECT_FALSE(cache.offer(kIp, kMacA, UpdateSource::kRequest, at(0)).accepted);
    EXPECT_FALSE(cache.offer(kIp, kMacA, UpdateSource::kGratuitousRequest, at(0)).accepted);
    EXPECT_TRUE(cache.offer(kIp, kMacA, UpdateSource::kSolicitedReply, at(0)).accepted);
}

TEST(PolicyTest, AllProfilesHaveDistinctNames) {
    const auto profiles = CachePolicy::all_profiles();
    EXPECT_EQ(profiles.size(), 5u);
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        for (std::size_t j = i + 1; j < profiles.size(); ++j) {
            EXPECT_NE(profiles[i].name, profiles[j].name);
        }
    }
}

// Parameterized invariants that must hold for every profile.
class PolicyInvariantTest : public ::testing::TestWithParam<CachePolicy> {};

TEST_P(PolicyInvariantTest, SolicitedReplyAlwaysUsable) {
    // Every stack must be able to complete its own resolutions.
    EXPECT_TRUE(GetParam().allows_create(UpdateSource::kSolicitedReply));
}

TEST_P(PolicyInvariantTest, StaticAlwaysAllowed) {
    EXPECT_TRUE(GetParam().allows_create(UpdateSource::kStatic));
    EXPECT_TRUE(GetParam().allows_update(UpdateSource::kStatic));
}

TEST_P(PolicyInvariantTest, AcceptedOfferIsImmediatelyVisible) {
    ArpCache cache(GetParam());
    for (const auto src :
         {UpdateSource::kSolicitedReply, UpdateSource::kUnsolicitedReply, UpdateSource::kRequest,
          UpdateSource::kGratuitousRequest, UpdateSource::kGratuitousReply}) {
        ArpCache fresh(GetParam());
        const auto out = fresh.offer(kIp, kMacA, src, at(0));
        if (out.accepted) {
            EXPECT_EQ(fresh.lookup(kIp, at(0)), kMacA) << to_string(src);
        } else {
            EXPECT_FALSE(fresh.lookup(kIp, at(0)).has_value()) << to_string(src);
        }
    }
}

TEST_P(PolicyInvariantTest, RejectionsNeverMutate) {
    ArpCache cache(GetParam());
    cache.offer(kIp, kMacA, UpdateSource::kSolicitedReply, at(0));
    const auto before = cache.peek(kIp);
    for (const auto src :
         {UpdateSource::kUnsolicitedReply, UpdateSource::kRequest,
          UpdateSource::kGratuitousRequest, UpdateSource::kGratuitousReply}) {
        const auto out = cache.offer(kIp, kMacB, src, at(1));
        if (!out.accepted && before) {
            const auto after = cache.peek(kIp);
            ASSERT_TRUE(after.has_value());
            EXPECT_EQ(after->mac, before->mac) << to_string(src);
        }
        // Restore for the next iteration.
        cache.force(kIp, kMacA, at(0));
    }
}

TEST_P(PolicyInvariantTest, StatsAreConsistent) {
    ArpCache cache(GetParam());
    for (int i = 0; i < 20; ++i) {
        cache.offer(kIp, i % 2 == 0 ? kMacA : kMacB,
                    i % 3 == 0 ? UpdateSource::kSolicitedReply : UpdateSource::kUnsolicitedReply,
                    at(i));
    }
    const auto& s = cache.stats();
    EXPECT_EQ(s.offers, 20u);
    EXPECT_EQ(s.accepted + s.rejected_by_policy, s.offers);
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, PolicyInvariantTest,
                         ::testing::ValuesIn(CachePolicy::all_profiles()),
                         [](const auto& param_info) {
                             std::string name = param_info.param.name;
                             for (char& c : name) {
                                 if (c == '-' || c == '.') c = '_';
                             }
                             return name;
                         });

}  // namespace
}  // namespace arpsec::arp

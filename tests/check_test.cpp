// Tests for the deterministic simulation checker (src/check): seed-stable
// scenario generation, artifact round-trips, planted-bug self-tests, and
// byte-identical reports across fan-out job counts.

#include <gtest/gtest.h>

#include "check/checker.hpp"
#include "check/harness.hpp"
#include "check/oracle.hpp"
#include "check/planted.hpp"
#include "check/scenario.hpp"
#include "check/scenario_gen.hpp"
#include "check/shrinker.hpp"
#include "common/rng.hpp"
#include "detect/registry.hpp"

namespace arpsec::check {
namespace {

using common::Duration;

// ---------------------------------------------------------------------------
// Seed stability goldens. These values are pinned forever: recorded
// arpsec.check-artifact.v1 repros replay through ScenarioGen's stream
// assignment, so a change that shifts any of them silently invalidates
// every artifact ever written. Update them only with a format-version bump.

TEST(SeedStability, RngForkStreamsArePinned) {
    common::Rng root(2026);
    auto topo = root.fork(ScenarioGen::kTopologyStream);
    auto sched = root.fork(ScenarioGen::kScheduleStream);
    EXPECT_EQ(topo.next_u64(), 0x4e67f7b34b3f6606ULL);
    EXPECT_EQ(sched.next_u64(), 0x08772ace6ce7b40cULL);
}

TEST(SeedStability, ScenarioDigestsArePinned) {
    const ScenarioGen gen({});
    struct Golden {
        std::uint64_t seed;
        std::uint64_t digest;
        std::size_t events;
        std::size_t hosts;
        bool dhcp;
    };
    const Golden goldens[] = {
        {1, 0xcd49447be6632f0aULL, 6, 8, true},
        {7, 0xbb3857ad75c1b7deULL, 5, 6, false},
        {42, 0xb5edea01b06cb622ULL, 14, 4, true},
        {31337, 0x858b806fa71ced46ULL, 12, 4, true},
    };
    for (const Golden& g : goldens) {
        const CheckScenario s = gen.generate(g.seed);
        EXPECT_EQ(s.digest(), g.digest) << "seed " << g.seed;
        EXPECT_EQ(s.events.size(), g.events) << "seed " << g.seed;
        EXPECT_EQ(s.host_count, g.hosts) << "seed " << g.seed;
        EXPECT_EQ(s.dhcp, g.dhcp) << "seed " << g.seed;
    }
}

TEST(SeedStability, GenerateIsAPureFunctionOfTheSeed) {
    const ScenarioGen gen({});
    for (std::uint64_t seed : {3ULL, 1000ULL, 0xDEADBEEFULL}) {
        const CheckScenario a = gen.generate(seed);
        const CheckScenario b = gen.generate(seed);
        EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
        EXPECT_EQ(a.digest(), b.digest());
    }
    EXPECT_NE(gen.generate(3).digest(), gen.generate(4).digest());
}

// ---------------------------------------------------------------------------
// Scenario serialization.

TEST(Scenario, InjectedEventJsonRoundTrip) {
    InjectedEvent e;
    e.at = Duration::millis(137);
    e.kind = InjectKind::kReplayLegit;
    e.target = 3;
    e.spoofed = 5;
    e.claim_attacker_mac = false;
    e.consistent_l2 = false;
    e.aux = 0xFEEDULL;
    const auto back = InjectedEvent::from_json(e.to_json());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->at.count(), e.at.count());
    EXPECT_EQ(back->kind, e.kind);
    EXPECT_EQ(back->target, e.target);
    EXPECT_EQ(back->spoofed, e.spoofed);
    EXPECT_EQ(back->claim_attacker_mac, e.claim_attacker_mac);
    EXPECT_EQ(back->consistent_l2, e.consistent_l2);
    EXPECT_EQ(back->aux, e.aux);
}

TEST(Scenario, InjectKindNamesRoundTrip) {
    for (InjectKind k : {InjectKind::kForgedReply, InjectKind::kForgedRequest,
                         InjectKind::kGratuitousRequest, InjectKind::kGratuitousReply,
                         InjectKind::kReplayLegit, InjectKind::kBenignTraffic}) {
        const auto back = inject_kind_from_string(to_string(k));
        ASSERT_TRUE(back.has_value()) << to_string(k);
        EXPECT_EQ(*back, k);
    }
    EXPECT_FALSE(inject_kind_from_string("no-such-kind").has_value());
}

TEST(Scenario, CheckScenarioJsonRoundTripPreservesDigest) {
    const ScenarioGen gen({});
    const CheckScenario s = gen.generate(42);
    const auto back = CheckScenario::from_json(s.to_json());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->to_json().dump(), s.to_json().dump());
    EXPECT_EQ(back->digest(), s.digest());
    EXPECT_EQ(back->events.size(), s.events.size());
}

TEST(Scenario, FromJsonRejectsGarbage) {
    EXPECT_FALSE(CheckScenario::from_json(telemetry::Json::array()).has_value());
    telemetry::Json j = telemetry::Json::object();
    j["seed"] = std::string("not-a-number");
    EXPECT_FALSE(CheckScenario::from_json(j).has_value());
}

// ---------------------------------------------------------------------------
// Planted-bug self-test: the checker must find the suppressed-alert fault,
// shrink the schedule, and emit an artifact that replays to the same
// violation.

TEST(PlantedBug, CheckerFindsShrinksAndReplays) {
    CheckOptions opts;
    opts.first_seed = 1;  // seed 1 is a known-failing seed for the planted bug
    opts.seeds = 1;
    opts.jobs = 1;
    opts.plant_bug = true;
    const CheckReport report = run_check(opts);
    ASSERT_EQ(report.results.size(), 1u);
    const SeedResult& r = report.results[0];
    EXPECT_EQ(r.scheme, kPlantedSchemeName);
    ASSERT_TRUE(r.failed);
    ASSERT_FALSE(r.violations.empty());
    EXPECT_EQ(r.violations.front().oracle, "detection-silent-poison");
    // The shrinker reached a strictly smaller, still-failing schedule.
    EXPECT_LT(r.minimal.events.size(), r.original_events);
    EXPECT_GE(r.minimal.events.size(), 1u);

    // The emitted artifact replays to the same oracle violation.
    const std::string artifact = r.artifact().dump(2);
    const auto replay = replay_artifact(artifact, /*planted=*/true);
    ASSERT_TRUE(replay.ok()) << replay.error();
    ASSERT_FALSE(replay.value().outcome.violations.empty());
    EXPECT_EQ(replay.value().outcome.violations.front().oracle, "detection-silent-poison");

    // Without the planted scheme registered the artifact is rejected, not
    // silently replayed against a different catalog.
    const auto rejected = replay_artifact(artifact, /*planted=*/false);
    EXPECT_FALSE(rejected.ok());
}

TEST(PlantedBug, RegistrationIsIdempotent) {
    detect::Registry registry;
    EXPECT_EQ(plant_bug(registry), kPlantedSchemeName);
    EXPECT_EQ(plant_bug(registry), kPlantedSchemeName);
    EXPECT_TRUE(registry.contains(kPlantedSchemeName));
    // The decorator reports the wrapped scheme's traits verbatim, so the
    // oracles judge it exactly as they would judge the real arpwatch.
    const auto planted = registry.make(kPlantedSchemeName);
    const auto real = registry.make("arpwatch");
    ASSERT_NE(planted, nullptr);
    ASSERT_NE(real, nullptr);
    EXPECT_EQ(planted->traits().detects, real->traits().detects);
    EXPECT_EQ(planted->traits().vantage, real->traits().vantage);
    EXPECT_EQ(planted->traits().best_effort, real->traits().best_effort);
}

TEST(Replay, RejectsMalformedArtifacts) {
    EXPECT_FALSE(replay_artifact("{not json", false).ok());
    EXPECT_FALSE(replay_artifact("[]", false).ok());
    telemetry::Json j = telemetry::Json::object();
    j["format"] = std::string("some.other.format.v9");
    EXPECT_FALSE(replay_artifact(j.dump(), false).ok());
}

// ---------------------------------------------------------------------------
// Deterministic fan-out: the report text must not depend on the job count.

TEST(Determinism, ReportIsByteIdenticalAcrossJobCounts) {
    CheckOptions opts;
    opts.first_seed = 1;
    opts.seeds = 6;
    opts.shrink = false;  // keep the budget small; shrinking is determinism-
                          // covered by the planted-bug test above
    opts.jobs = 1;
    const std::string one = run_check(opts).text();
    opts.jobs = 4;
    const std::string four = run_check(opts).text();
    EXPECT_EQ(one, four);
}

// ---------------------------------------------------------------------------
// Harness + oracles on a hand-built scenario: the baseline (no scheme, no
// events) run passes every oracle, and the conservation/telemetry oracles
// accept a normal traffic mix.

TEST(Harness, QuietBaselinePassesAllOracles) {
    const detect::Registry registry;
    const auto oracles = default_oracles();
    const Harness harness(registry, oracles);
    CheckScenario s;
    s.seed = 5;
    s.scheme = "none";
    s.host_count = 3;
    s.protected_hosts = 3;
    InjectedEvent benign;
    benign.at = Duration::millis(50);
    benign.kind = InjectKind::kBenignTraffic;
    benign.target = 0;
    benign.aux = 1;
    s.events.push_back(benign);
    const RunOutcome out = harness.run(s);
    EXPECT_TRUE(out.passed()) << (out.violations.empty()
                                      ? "?"
                                      : out.violations.front().detail);
    EXPECT_GT(out.frames, 0u);
}

TEST(Harness, UnknownSchemeThrows) {
    const detect::Registry registry;
    const auto oracles = default_oracles();
    const Harness harness(registry, oracles);
    CheckScenario s;
    s.scheme = "no-such-scheme";
    EXPECT_THROW((void)harness.run(s), std::runtime_error);
}

TEST(Shrinker, MinimizesThePlantedFailure) {
    detect::Registry registry;
    const std::string planted = plant_bug(registry);
    GenOptions gopts;
    gopts.schemes = {planted};
    const ScenarioGen gen(gopts);
    const auto oracles = default_oracles();
    const Harness harness(registry, oracles);
    const CheckScenario failing = gen.generate(1);
    const RunOutcome out = harness.run(failing);
    ASSERT_FALSE(out.passed());
    const Shrinker shrinker(harness, {64});
    const ShrinkResult s = shrinker.shrink(failing, out.violations.front().oracle);
    EXPECT_LT(s.minimal.events.size(), failing.events.size());
    EXPECT_EQ(s.removed, failing.events.size() - s.minimal.events.size());
    EXPECT_GT(s.runs, 0u);
    ASSERT_FALSE(s.violations.empty());
    EXPECT_EQ(s.violations.front().oracle, out.violations.front().oracle);
    // 1-minimality: removing any single remaining event loses the failure.
    for (std::size_t i = 0; i < s.minimal.events.size(); ++i) {
        CheckScenario probe = s.minimal;
        probe.events.erase(probe.events.begin() + static_cast<std::ptrdiff_t>(i));
        EXPECT_TRUE(harness.run(probe).passed()) << "event " << i << " is redundant";
    }
}

}  // namespace
}  // namespace arpsec::check

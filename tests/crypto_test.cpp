#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "crypto/cost_model.hpp"
#include "crypto/hmac.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"

namespace arpsec::crypto {
namespace {

std::vector<std::uint8_t> bytes(std::string_view s) {
    return {s.begin(), s.end()};
}

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4 test vectors)
// ---------------------------------------------------------------------------

TEST(Sha256Test, EmptyString) {
    EXPECT_EQ(to_hex(Sha256::hash("")),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
    EXPECT_EQ(to_hex(Sha256::hash("abc")),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
    EXPECT_EQ(to_hex(Sha256::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
    Sha256 h;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) h.update(chunk);
    EXPECT_EQ(to_hex(h.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
    Sha256 h;
    h.update("hello ");
    h.update("wor");
    h.update("ld");
    EXPECT_EQ(h.finish(), Sha256::hash("hello world"));
}

TEST(Sha256Test, BoundarySizesMatchSpec) {
    // 55/56/64-byte messages straddle the padding boundary.
    for (std::size_t n : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
        const std::string msg(n, 'x');
        Sha256 incr;
        for (char c : msg) incr.update(std::string_view{&c, 1});
        EXPECT_EQ(incr.finish(), Sha256::hash(msg)) << "length " << n;
    }
}

TEST(Sha256Test, ResetStartsFresh) {
    Sha256 h;
    h.update("garbage");
    h.reset();
    h.update("abc");
    EXPECT_EQ(to_hex(h.finish()),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, DigestPrefix) {
    const Digest d = Sha256::hash("abc");
    EXPECT_EQ(digest_prefix_u64(d), 0xba7816bf8f01cfeaULL);
}

// ---------------------------------------------------------------------------
// HMAC-SHA256 (RFC 4231)
// ---------------------------------------------------------------------------

TEST(HmacTest, Rfc4231Case1) {
    const auto key = std::vector<std::uint8_t>(20, 0x0b);
    EXPECT_EQ(common::to_hex(hmac_sha256(key, bytes("Hi There"))),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
    EXPECT_EQ(common::to_hex(hmac_sha256(bytes("Jefe"),
                                         bytes("what do ya want for nothing?"))),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
    const auto key = std::vector<std::uint8_t>(20, 0xaa);
    const auto msg = std::vector<std::uint8_t>(50, 0xdd);
    EXPECT_EQ(common::to_hex(hmac_sha256(key, msg)),
              "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231LongKey) {
    const auto key = std::vector<std::uint8_t>(131, 0xaa);
    EXPECT_EQ(common::to_hex(hmac_sha256(
                  key, bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
              "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DigestEqual) {
    const Digest a = Sha256::hash("x");
    Digest b = a;
    EXPECT_TRUE(digest_equal(a, b));
    b[31] ^= 1;
    EXPECT_FALSE(digest_equal(a, b));
}

// ---------------------------------------------------------------------------
// Primality / group construction
// ---------------------------------------------------------------------------

TEST(PrimalityTest, SmallNumbers) {
    EXPECT_FALSE(is_prime_u64(0));
    EXPECT_FALSE(is_prime_u64(1));
    EXPECT_TRUE(is_prime_u64(2));
    EXPECT_TRUE(is_prime_u64(3));
    EXPECT_FALSE(is_prime_u64(4));
    EXPECT_TRUE(is_prime_u64(97));
    EXPECT_FALSE(is_prime_u64(91));  // 7*13
}

TEST(PrimalityTest, LargeKnownValues) {
    EXPECT_TRUE(is_prime_u64((1ULL << 61) - 1));   // Mersenne prime
    EXPECT_FALSE(is_prime_u64((1ULL << 62) - 1));
    EXPECT_TRUE(is_prime_u64(0xFFFFFFFFFFFFFFC5ULL));  // largest 64-bit prime
    // Strong pseudoprime to several small bases.
    EXPECT_FALSE(is_prime_u64(3215031751ULL));
}

TEST(SchnorrGroupTest, ParametersSelfConsistent) {
    const auto& g = SchnorrGroup::standard();
    EXPECT_TRUE(is_prime_u64(g.p()));
    EXPECT_TRUE(is_prime_u64(g.q()));
    EXPECT_EQ((g.p() - 1) % g.q(), 0u);
    EXPECT_NE(g.g(), 1u);
    EXPECT_EQ(g.pow_mod_p(g.g(), g.q()), 1u);  // generator has order q
}

// ---------------------------------------------------------------------------
// Schnorr signatures
// ---------------------------------------------------------------------------

TEST(SchnorrTest, SignVerifyRoundTrip) {
    const KeyPair kp = KeyPair::derive(12345);
    const auto msg = bytes("the gateway 192.168.1.1 is at 02:00:00:00:00:01");
    const Signature sig = kp.sign(msg);
    EXPECT_TRUE(kp.public_key().verify(msg, sig));
}

TEST(SchnorrTest, TamperedMessageRejected) {
    const KeyPair kp = KeyPair::derive(12345);
    const auto msg = bytes("binding A");
    const Signature sig = kp.sign(msg);
    EXPECT_FALSE(kp.public_key().verify(bytes("binding B"), sig));
}

TEST(SchnorrTest, TamperedSignatureRejected) {
    const KeyPair kp = KeyPair::derive(99);
    const auto msg = bytes("msg");
    Signature sig = kp.sign(msg);
    sig.s ^= 1;
    EXPECT_FALSE(kp.public_key().verify(msg, sig));
    Signature sig2 = kp.sign(msg);
    sig2.e ^= 1;
    EXPECT_FALSE(kp.public_key().verify(msg, sig2));
}

TEST(SchnorrTest, WrongKeyRejected) {
    const KeyPair alice = KeyPair::derive(1);
    const KeyPair bob = KeyPair::derive(2);
    const auto msg = bytes("claim");
    EXPECT_FALSE(bob.public_key().verify(msg, alice.sign(msg)));
}

TEST(SchnorrTest, DeterministicDerivation) {
    EXPECT_EQ(KeyPair::derive(7).public_key(), KeyPair::derive(7).public_key());
    EXPECT_NE(KeyPair::derive(7).public_key(), KeyPair::derive(8).public_key());
}

TEST(SchnorrTest, ZeroSignatureNeverVerifies) {
    const KeyPair kp = KeyPair::derive(3);
    EXPECT_FALSE(kp.public_key().verify(bytes("m"), Signature{}));
    EXPECT_FALSE(PublicKey{}.verify(bytes("m"), kp.sign(bytes("m"))));
}

TEST(SchnorrTest, SerializationRoundTrip) {
    const KeyPair kp = KeyPair::derive(31337);
    const auto msg = bytes("serialize me");
    const Signature sig = kp.sign(msg);
    const Signature back = Signature::deserialize(sig.serialize());
    EXPECT_EQ(back, sig);
    const PublicKey pk = PublicKey::deserialize(kp.public_key().serialize());
    EXPECT_EQ(pk, kp.public_key());
    EXPECT_TRUE(pk.verify(msg, back));
}

class SchnorrPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchnorrPropertyTest, ManyMessagesVerifyAndCrossFail) {
    const KeyPair kp = KeyPair::derive(GetParam());
    const KeyPair other = KeyPair::derive(GetParam() + 1000);
    for (int i = 0; i < 50; ++i) {
        const auto msg = bytes("message #" + std::to_string(i));
        const Signature sig = kp.sign(msg);
        EXPECT_TRUE(kp.public_key().verify(msg, sig));
        EXPECT_FALSE(other.public_key().verify(msg, sig));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchnorrPropertyTest, ::testing::Values(1, 17, 9000, 424242));

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

TEST(CostModelTest, FreeIsZero) {
    const CostModel free = CostModel::free();
    EXPECT_EQ(free.sign.count(), 0);
    EXPECT_EQ(free.verify.count(), 0);
}

TEST(CostModelTest, ScalingIsLinear) {
    const CostModel base;
    const CostModel doubled = base.scaled(2.0);
    EXPECT_EQ(doubled.sign.count(), base.sign.count() * 2);
    EXPECT_EQ(doubled.verify.count(), base.verify.count() * 2);
}

TEST(CostModelTest, OpCountersAccumulate) {
    OpCounters a{1, 2, 3, 4};
    const OpCounters b{10, 20, 30, 40};
    a += b;
    EXPECT_EQ(a.signs, 11u);
    EXPECT_EQ(a.verifies, 22u);
    EXPECT_EQ(a.total(), 11u + 22u + 33u + 44u);
}

}  // namespace
}  // namespace arpsec::crypto

// Tests for the bounded SPSC ring (common/ring.hpp): FIFO order, the
// capacity/full/empty boundary conditions the pipeline's backpressure rides
// on, index wraparound, move-only payloads, and a producer/consumer stress
// run that the TSan CI job executes with real threads (spawned through
// exp::run_indexed — the sanctioned thread entry point, so this file stays
// clean under the no-threads-in-sim lint rule).

#include "common/ring.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/executor.hpp"

namespace arpsec::common {
namespace {

TEST(SpscRingTest, CapacityIsAtLeastRequested) {
    for (std::size_t req = 1; req <= 64; ++req) {
        SpscRing<int> ring{req};
        EXPECT_GE(ring.capacity(), req) << "requested " << req;
    }
    // Power-of-two storage with one sacrificial slot: asking for 8 rounds
    // the backing array to 16 and yields 15 usable slots.
    EXPECT_EQ(SpscRing<int>{8}.capacity(), 15u);
    EXPECT_EQ(SpscRing<int>{3}.capacity(), 3u);
}

TEST(SpscRingTest, StartsEmpty) {
    SpscRing<int> ring{4};
    EXPECT_TRUE(ring.empty());
    EXPECT_FALSE(ring.full());
    EXPECT_EQ(ring.size(), 0u);
    int out = -1;
    EXPECT_FALSE(ring.try_pop(out));
    EXPECT_EQ(out, -1);  // pop must leave `out` untouched on failure
}

TEST(SpscRingTest, FifoOrder) {
    SpscRing<int> ring{8};
    for (int v = 0; v < 5; ++v) ASSERT_TRUE(ring.try_push(v));
    for (int v = 0; v < 5; ++v) {
        int out = -1;
        ASSERT_TRUE(ring.try_pop(out));
        EXPECT_EQ(out, v);
    }
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, FullRejectsPushUntilPopped) {
    SpscRing<int> ring{2};  // rounds to 4 slots -> 3 usable
    const std::size_t cap = ring.capacity();
    for (std::size_t i = 0; i < cap; ++i) {
        ASSERT_TRUE(ring.try_push(static_cast<int>(i))) << "push " << i;
    }
    EXPECT_TRUE(ring.full());
    EXPECT_EQ(ring.size(), cap);
    EXPECT_FALSE(ring.try_push(99));  // bounded: the full ring is backpressure
    int out = -1;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, 0);
    EXPECT_FALSE(ring.full());
    EXPECT_TRUE(ring.try_push(99));  // one pop frees exactly one slot
    EXPECT_TRUE(ring.full());
}

TEST(SpscRingTest, DrainingReportsEmpty) {
    SpscRing<int> ring{4};
    ASSERT_TRUE(ring.try_push(7));
    int out = 0;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_TRUE(ring.empty());
    EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRingTest, WraparoundPreservesFifo) {
    // A tiny ring cycled far past its capacity exercises every head/tail
    // mask combination; order must survive the wraps.
    SpscRing<std::uint32_t> ring{2};
    std::uint32_t next_pop = 0;
    std::uint32_t next_push = 0;
    for (int cycle = 0; cycle < 1000; ++cycle) {
        while (ring.try_push(std::uint32_t{next_push})) ++next_push;
        std::uint32_t out = 0;
        while (ring.try_pop(out)) {
            ASSERT_EQ(out, next_pop);
            ++next_pop;
        }
    }
    EXPECT_EQ(next_pop, next_push);
    EXPECT_GT(next_pop, 2000u);
}

TEST(SpscRingTest, CarriesMoveOnlyPayloads) {
    SpscRing<std::unique_ptr<int>> ring{4};
    ASSERT_TRUE(ring.try_push(std::make_unique<int>(42)));
    std::unique_ptr<int> out;
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, 42);
}

TEST(SpscRingTest, CopyPushLeavesSourceIntact) {
    SpscRing<std::vector<int>> ring{4};
    const std::vector<int> item{1, 2, 3};
    ASSERT_TRUE(ring.try_push(item));
    EXPECT_EQ(item.size(), 3u);
    std::vector<int> out;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, item);
}

// One real producer thread vs one real consumer thread across a deliberately
// tiny ring, so both the full-ring and empty-ring spins run constantly. The
// consumer asserts the exact sequence 0,1,2,... — any lost, duplicated, or
// reordered item fails; any unsynchronized slot access trips the TSan CI
// job. Threads come from exp::run_indexed: index 0 produces, index 1
// consumes, and jobs=2 guarantees they overlap.
TEST(SpscRingTest, ProducerConsumerStressKeepsSequence) {
    constexpr std::uint32_t kItems = 200000;
    SpscRing<std::uint32_t> ring{4};
    std::vector<std::string> errors = exp::run_indexed(2, 2, [&ring](std::size_t role) {
        if (role == 0) {
            for (std::uint32_t v = 0; v < kItems; ++v) {
                while (!ring.try_push(std::uint32_t{v})) exp::yield_thread();
            }
        } else {
            for (std::uint32_t expected = 0; expected < kItems; ++expected) {
                std::uint32_t got = 0;
                while (!ring.try_pop(got)) exp::yield_thread();
                if (got != expected) {
                    throw std::runtime_error("ring out of order at " + std::to_string(expected));
                }
            }
        }
    });
    EXPECT_EQ(errors[0], "");
    EXPECT_EQ(errors[1], "");
    EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace arpsec::common

#include <gtest/gtest.h>

#include <set>

#include "common/expected.hpp"
#include "common/hex.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"

namespace arpsec::common {
namespace {

// ---------------------------------------------------------------------------
// Duration / SimTime
// ---------------------------------------------------------------------------

TEST(DurationTest, FactoryUnitsConvert) {
    EXPECT_EQ(Duration::nanos(7).count(), 7);
    EXPECT_EQ(Duration::micros(3).count(), 3'000);
    EXPECT_EQ(Duration::millis(2).count(), 2'000'000);
    EXPECT_EQ(Duration::seconds(1).count(), 1'000'000'000);
}

TEST(DurationTest, Arithmetic) {
    const Duration a = Duration::millis(5);
    const Duration b = Duration::millis(3);
    EXPECT_EQ((a + b).count(), Duration::millis(8).count());
    EXPECT_EQ((a - b).count(), Duration::millis(2).count());
    EXPECT_EQ((a * 4).count(), Duration::millis(20).count());
    EXPECT_EQ((a / 5).count(), Duration::millis(1).count());
}

TEST(DurationTest, Comparisons) {
    EXPECT_LT(Duration::micros(999), Duration::millis(1));
    EXPECT_EQ(Duration::seconds(1), Duration::millis(1000));
    EXPECT_GT(Duration::zero(), Duration::nanos(-5));
}

TEST(DurationTest, ConversionsToFloating) {
    EXPECT_DOUBLE_EQ(Duration::millis(1500).to_seconds(), 1.5);
    EXPECT_DOUBLE_EQ(Duration::micros(250).to_millis(), 0.25);
    EXPECT_DOUBLE_EQ(Duration::nanos(1500).to_micros(), 1.5);
}

TEST(DurationTest, ToStringPicksNaturalUnit) {
    EXPECT_EQ(Duration::seconds(3).to_string(), "3s");
    EXPECT_EQ(Duration::millis(250).to_string(), "250ms");
    EXPECT_EQ(Duration::micros(17).to_string(), "17us");
    EXPECT_EQ(Duration::nanos(999).to_string(), "999ns");
}

TEST(SimTimeTest, AdvancesByDuration) {
    SimTime t;
    t += Duration::seconds(2);
    EXPECT_EQ(t.nanos(), 2'000'000'000);
    const SimTime u = t + Duration::millis(500);
    EXPECT_EQ((u - t).count(), Duration::millis(500).count());
    EXPECT_LT(t, u);
}

TEST(DurationTest, ToStringFractionalValues) {
    // Exactly divisible values use the integral unit...
    EXPECT_EQ(Duration::nanos(1'500'000'000).to_string(), "1500ms");
    // ...anything else prints fractionally at its natural magnitude.
    EXPECT_EQ(Duration::nanos(1'500'000'001).to_string(), "1.500s");
    EXPECT_EQ(Duration::nanos(2'340'500).to_string(), "2.34ms");
    EXPECT_EQ(Duration::nanos(19'600).to_string(), "19.60us");
    EXPECT_EQ(Duration::nanos(42).to_string(), "42ns");
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
    Rng root(7);
    Rng a = root.fork(1);
    Rng b = root.fork(2);
    Rng a2 = Rng(7).fork(1);
    // Same (seed, stream) reproduces; different streams diverge.
    EXPECT_EQ(a.next_u64(), a2.next_u64());
    EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(RngTest, NextBelowIsInRange) {
    Rng rng(99);
    for (int i = 0; i < 10'000; ++i) {
        EXPECT_LT(rng.next_below(17), 17u);
    }
}

TEST(RngTest, NextBelowCoversAllResidues) {
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInInclusiveBounds) {
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = rng.next_in(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(RngTest, NextDoubleInUnitInterval) {
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.next_double();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(RngTest, ChanceExtremes) {
    Rng rng(17);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(RngTest, ChanceRoughlyCalibrated) {
    Rng rng(19);
    int hits = 0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) {
        if (rng.chance(0.25)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
    Rng rng(23);
    const Duration mean = Duration::millis(10);
    double acc = 0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) acc += static_cast<double>(rng.next_exponential(mean).count());
    EXPECT_NEAR(acc / n, static_cast<double>(mean.count()),
                0.05 * static_cast<double>(mean.count()));
}

// ---------------------------------------------------------------------------
// Hex
// ---------------------------------------------------------------------------

TEST(HexTest, RoundTrip) {
    const std::vector<std::uint8_t> data = {0x00, 0x01, 0xAB, 0xFF, 0x7E};
    const std::string hex = to_hex(data);
    EXPECT_EQ(hex, "0001abff7e");
    EXPECT_EQ(from_hex(hex), data);
}

TEST(HexTest, ParsesUppercase) {
    EXPECT_EQ(from_hex("DEADBEEF"), (std::vector<std::uint8_t>{0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(HexTest, RejectsMalformed) {
    EXPECT_TRUE(from_hex("abc").empty());   // odd length
    EXPECT_TRUE(from_hex("zz").empty());    // bad digit
}

TEST(HexTest, HexdumpShowsOffsetsAndAscii) {
    std::vector<std::uint8_t> data(20, 0x41);  // 'A'
    const std::string dump = hexdump(data);
    EXPECT_NE(dump.find("000000"), std::string::npos);
    EXPECT_NE(dump.find("AAAA"), std::string::npos);
    EXPECT_NE(dump.find("000010"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Expected
// ---------------------------------------------------------------------------

TEST(ExpectedTest, HoldsValueOrError) {
    Expected<int> ok = 42;
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.value(), 42);
    EXPECT_EQ(*ok, 42);

    const auto bad = Expected<int>::failure("nope");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.error(), "nope");
}

TEST(ExpectedTest, ArrowAccessesMembers) {
    struct P {
        int x = 7;
    };
    Expected<P> e = P{};
    EXPECT_EQ(e->x, 7);
}

TEST(ExpectedTest, MutableAccessWritesThrough) {
    struct P {
        int x = 7;
    };
    Expected<P> e = P{};
    e->x = 8;
    EXPECT_EQ(e->x, 8);
    (*e).x = 9;
    EXPECT_EQ(e.value().x, 9);
}

TEST(ExpectedTest, RvalueAccessMoves) {
    Expected<std::string> e = std::string{"payload"};
    const std::string moved = *std::move(e);
    EXPECT_EQ(moved, "payload");

    auto make_err = [] { return Expected<int>::failure("gone"); };
    const std::string err = make_err().error();
    EXPECT_EQ(err, "gone");
}

// ---------------------------------------------------------------------------
// Log
// ---------------------------------------------------------------------------

TEST(LogTest, LevelGatesOutput) {
    const LogLevel before = Log::level();
    Log::set_level(LogLevel::kError);
    EXPECT_FALSE(Log::enabled(LogLevel::kDebug));
    EXPECT_TRUE(Log::enabled(LogLevel::kError));
    Log::set_level(LogLevel::kOff);
    EXPECT_FALSE(Log::enabled(LogLevel::kError));
    Log::set_level(before);
}

TEST(LogTest, WriteFormatsLine) {
    const std::string path = ::testing::TempDir() + "/arpsec_log_test.txt";
    std::FILE* f = std::fopen(path.c_str(), "w+");
    ASSERT_NE(f, nullptr);
    const LogLevel before = Log::level();
    Log::set_level(LogLevel::kInfo);
    Log::set_sink(f);
    Log::write(LogLevel::kWarn, SimTime{1'500'000'000}, "switch", "cam full");
    Log::set_sink(nullptr);
    Log::set_level(before);
    std::fflush(f);
    std::rewind(f);
    char buf[256] = {};
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    std::fclose(f);
    std::remove(path.c_str());
    const std::string line = buf;
    EXPECT_NE(line.find("WARN"), std::string::npos);
    EXPECT_NE(line.find("switch"), std::string::npos);
    EXPECT_NE(line.find("cam full"), std::string::npos);
    EXPECT_NE(line.find("1.5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Summary
// ---------------------------------------------------------------------------

TEST(SummaryTest, EmptyIsSafe) {
    Summary s;
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.median(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SummaryTest, BasicStatistics) {
    Summary s;
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(SummaryTest, Percentiles) {
    Summary s;
    for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
}

// percentile() caches its sorted copy; adds and merges must invalidate it so
// interleaved add/query sequences stay correct.
TEST(SummaryTest, PercentileCacheInvalidatedByAddAndMerge) {
    Summary s;
    s.add(10.0);
    s.add(20.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 20.0);

    s.add(5.0);  // arrives out of order after a cached sort
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 5.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 20.0);

    Summary other;
    other.add(100.0);
    s.merge(other);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
}

TEST(SummaryTest, MergeCombinesSamples) {
    Summary a;
    Summary b;
    a.add(1.0);
    b.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

}  // namespace
}  // namespace arpsec::common

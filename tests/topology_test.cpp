// Multi-switch topologies: two access switches joined by an uplink. These
// tests validate L2 forwarding across the fabric and reproduce the
// *partial deployment* caveats of the switch- and monitor-based schemes:
// protection on the core switch does not reach attacks that stay local to
// an unmanaged edge.

#include <gtest/gtest.h>

#include "attack/attacker.hpp"
#include "detect/arpwatch.hpp"
#include "detect/monitor.hpp"
#include "detect/switch_schemes.hpp"
#include "host/apps.hpp"
#include "host/host.hpp"
#include "l2/switch.hpp"
#include "sim/network.hpp"

namespace arpsec {
namespace {

using common::Duration;
using common::SimTime;
using host::Host;
using host::HostConfig;
using wire::Ipv4Address;
using wire::MacAddress;

/// Two switches: A (core, hosts a0/a1) -- uplink -- B (edge, hosts b0/b1
/// and the attacker).
struct TwoSwitchLan {
    explicit TwoSwitchLan(std::uint64_t seed = 1) : net(seed) {
        sw_a = &net.emplace_node<l2::Switch>("core", 6);
        sw_b = &net.emplace_node<l2::Switch>("edge", 6);
        // Uplink: port 5 on each side.
        net.connect({sw_a->id(), 5}, {sw_b->id(), 5});

        a0 = add_host(*sw_a, 0, "a0", 1, Ipv4Address{192, 168, 1, 10});
        a1 = add_host(*sw_a, 1, "a1", 2, Ipv4Address{192, 168, 1, 11});
        b0 = add_host(*sw_b, 0, "b0", 3, Ipv4Address{192, 168, 1, 20});
        b1 = add_host(*sw_b, 1, "b1", 4, Ipv4Address{192, 168, 1, 21});

        attack::Attacker::Config acfg;
        acfg.mac = MacAddress::local(0x666);
        attacker = &net.emplace_node<attack::Attacker>(acfg);
        net.connect({attacker->id(), 0}, {sw_b->id(), 2});
    }

    Host* add_host(l2::Switch& sw, sim::PortId port, const std::string& name,
                   std::uint64_t mac_id, Ipv4Address ip) {
        HostConfig cfg;
        cfg.name = name;
        cfg.mac = MacAddress::local(mac_id);
        cfg.static_ip = ip;
        Host& h = net.emplace_node<Host>(cfg);
        net.connect({h.id(), 0}, {sw.id(), port});
        return &h;
    }

    void run_to(std::int64_t seconds) {
        if (!started) {
            net.start_all();
            started = true;
        }
        net.scheduler().run_until(SimTime::zero() + Duration::seconds(seconds));
    }

    sim::Network net;
    l2::Switch* sw_a;
    l2::Switch* sw_b;
    Host* a0;
    Host* a1;
    Host* b0;
    Host* b1;
    attack::Attacker* attacker;
    bool started = false;
};

TEST(TwoSwitchTest, CrossSwitchResolutionAndTraffic) {
    TwoSwitchLan lan;
    lan.run_to(1);
    std::optional<MacAddress> resolved;
    lan.a0->resolve(Ipv4Address{192, 168, 1, 20}, [&](auto mac) { resolved = mac; });
    lan.run_to(2);
    EXPECT_EQ(resolved, lan.b0->mac());

    host::DeliveryLedger ledger;
    host::UdpSinkApp sink(*lan.b0, 7000, &ledger);
    host::TrafficApp traffic(*lan.a0, ledger,
                             {{1, Ipv4Address{192, 168, 1, 20}, 7000, Duration::millis(100)}});
    lan.run_to(10);
    EXPECT_GT(ledger.sent(), 50u);
    EXPECT_GT(ledger.delivery_ratio(), 0.95);
    // Both switches learned the remote stations through the uplink.
    EXPECT_TRUE(lan.sw_a->cam().size() >= 3);
    EXPECT_TRUE(lan.sw_b->cam().size() >= 3);
}

TEST(TwoSwitchTest, UnicastStaysOffOtherSegmentOnceLearned) {
    TwoSwitchLan lan;
    lan.run_to(1);
    // Prime CAM tables with bidirectional traffic.
    lan.a0->resolve(Ipv4Address{192, 168, 1, 11}, [](auto) {});
    lan.run_to(2);
    const auto edge_frames_before = lan.sw_b->forward_stats().received;
    // a0 -> a1 is local to the core switch now.
    lan.a0->send_udp(Ipv4Address{192, 168, 1, 11}, 1, 2, {1});
    lan.run_to(3);
    EXPECT_EQ(lan.sw_b->forward_stats().received, edge_frames_before);
}

TEST(TwoSwitchTest, PoisoningCrossesTheUplink) {
    // A victim on the core switch is reachable from an edge attacker: the
    // broadcast domain is the attack surface, not the switch.
    TwoSwitchLan lan;
    lan.run_to(1);
    lan.a0->resolve(Ipv4Address{192, 168, 1, 20}, [](auto) {});
    lan.run_to(2);
    lan.attacker->start_poison({Ipv4Address{192, 168, 1, 10}, lan.a0->mac(),
                                Ipv4Address{192, 168, 1, 20}, lan.attacker->mac(),
                                attack::PoisonVector::kUnsolicitedReply, Duration::zero()});
    lan.run_to(3);
    const auto entry = lan.a0->arp_cache().peek(Ipv4Address{192, 168, 1, 20});
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->mac, lan.attacker->mac());
}

TEST(TwoSwitchTest, DaiOnCoreOnlyMissesEdgeLocalPoisoning) {
    // Partial deployment: DAI protects the core switch, the edge switch is
    // unmanaged. Poisoning an edge host about another edge host never
    // crosses the core, so the protection never sees it.
    TwoSwitchLan lan;
    l2::ArpInspectionConfig dai;
    dai.enabled = true;
    dai.err_disable_on_rate = false;
    lan.sw_a->enable_dhcp_snooping({});
    lan.sw_a->enable_arp_inspection(dai);
    lan.sw_a->add_static_binding(Ipv4Address{192, 168, 1, 10}, lan.a0->mac(),
                                 l2::Switch::kAnyPort);
    lan.sw_a->add_static_binding(Ipv4Address{192, 168, 1, 11}, lan.a1->mac(),
                                 l2::Switch::kAnyPort);
    lan.sw_a->add_static_binding(Ipv4Address{192, 168, 1, 20}, lan.b0->mac(),
                                 l2::Switch::kAnyPort);
    lan.sw_a->add_static_binding(Ipv4Address{192, 168, 1, 21}, lan.b1->mac(),
                                 l2::Switch::kAnyPort);

    lan.run_to(1);
    // Prime b0's cache with the true binding of b1.
    lan.b0->resolve(Ipv4Address{192, 168, 1, 21}, [](auto) {});
    lan.run_to(2);

    // Edge-local poisoning (victim b0, spoofed b1) stays on the edge switch.
    lan.attacker->start_poison({Ipv4Address{192, 168, 1, 20}, lan.b0->mac(),
                                Ipv4Address{192, 168, 1, 21}, lan.attacker->mac(),
                                attack::PoisonVector::kUnsolicitedReply, Duration::zero()});
    lan.run_to(3);
    const auto entry = lan.b0->arp_cache().peek(Ipv4Address{192, 168, 1, 21});
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->mac, lan.attacker->mac());  // poisoned despite "deploying DAI"

    // The same forgery aimed at a *core* host is stopped at the core's
    // uplink port.
    lan.attacker->start_poison({Ipv4Address{192, 168, 1, 10}, lan.a0->mac(),
                                Ipv4Address{192, 168, 1, 21}, lan.attacker->mac(),
                                attack::PoisonVector::kUnsolicitedReply, Duration::zero()});
    lan.run_to(4);
    const auto core_entry = lan.a0->arp_cache().peek(Ipv4Address{192, 168, 1, 21});
    EXPECT_TRUE(!core_entry.has_value() || core_entry->mac != lan.attacker->mac());
    bool dai_dropped = false;
    for (const auto& ev : lan.sw_a->events()) {
        if (ev.kind == l2::SwitchEventKind::kDaiDrop) dai_dropped = true;
    }
    EXPECT_TRUE(dai_dropped);
}

TEST(TwoSwitchTest, CoreMirrorMonitorHasEdgeBlindSpot) {
    // A monitor on the core switch's SPAN port never sees edge-local
    // traffic: arpwatch deployed "centrally" misses edge-local poisoning.
    TwoSwitchLan lan;
    auto& monitor =
        lan.net.emplace_node<detect::MonitorNode>("monitor", MacAddress::local(0x999));
    lan.net.connect({monitor.id(), 0}, {lan.sw_a->id(), 4});
    lan.sw_a->set_mirror_port(4);

    detect::AlertSink alerts;
    detect::ArpwatchScheme arpwatch;
    detect::DeploymentContext ctx;
    ctx.net = &lan.net;
    ctx.fabric = lan.sw_a;
    ctx.alerts = &alerts;
    arpwatch.deploy(ctx);
    arpwatch.attach_monitor(monitor);

    lan.run_to(1);
    lan.b0->resolve(Ipv4Address{192, 168, 1, 21}, [](auto) {});
    lan.run_to(2);
    const auto alerts_before = alerts.count();

    // Edge-local poisoning: unicast to b0 stays on the edge switch once
    // CAM tables are warm, so the core monitor sees nothing.
    lan.attacker->start_poison({Ipv4Address{192, 168, 1, 20}, lan.b0->mac(),
                                Ipv4Address{192, 168, 1, 21}, lan.attacker->mac(),
                                attack::PoisonVector::kUnsolicitedReply, Duration::zero()});
    lan.run_to(3);
    EXPECT_EQ(alerts.count(), alerts_before);  // blind spot

    // Poisoning a core host crosses the uplink and is spotted.
    lan.attacker->start_poison({Ipv4Address{192, 168, 1, 10}, lan.a0->mac(),
                                Ipv4Address{192, 168, 1, 21}, lan.attacker->mac(),
                                attack::PoisonVector::kUnsolicitedReply, Duration::zero()});
    lan.run_to(4);
    EXPECT_GT(alerts.count(), alerts_before);
}

TEST(TwoSwitchTest, FloodingPropagatesThroughUplink) {
    TwoSwitchLan lan;
    lan.run_to(1);
    lan.attacker->start_mac_flood(3000, 20'000.0);
    lan.run_to(3);
    // The random sources are learned by both switches (flooded frames have
    // random unicast destinations, which are unknown and hence flooded
    // across the uplink too).
    EXPECT_TRUE(lan.sw_b->cam().full());
    EXPECT_TRUE(lan.sw_a->cam().full());
}

}  // namespace
}  // namespace arpsec

// Tests for the sweep engine (src/exp): the deterministic parallel executor,
// grid enumeration, replicate aggregation math, the byte-identity guarantee
// across worker counts, and failure isolation (a throwing point must not
// take the sweep down).

#include "exp/executor.hpp"
#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "core/scenario.hpp"

namespace arpsec::exp {
namespace {

// ---------------------------------------------------------------------------
// executor
// ---------------------------------------------------------------------------

TEST(ExecutorTest, InlineAndThreadedRunsAgree) {
    const auto square = [](std::size_t i) { return i * i; };
    const auto serial = map_indexed<std::size_t>(64, 1, square);
    const auto parallel = map_indexed<std::size_t>(64, 4, square);
    ASSERT_EQ(serial.size(), 64u);
    ASSERT_EQ(parallel.size(), 64u);
    for (std::size_t i = 0; i < 64; ++i) {
        EXPECT_FALSE(serial[i].failed);
        EXPECT_EQ(serial[i].value, i * i);
        EXPECT_EQ(parallel[i].value, serial[i].value);
    }
}

TEST(ExecutorTest, ExceptionsAreCapturedPerIndex) {
    const auto errors = run_indexed(5, 3, [](std::size_t i) {
        if (i == 2) throw std::runtime_error("boom 2");
    });
    ASSERT_EQ(errors.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        if (i == 2) {
            EXPECT_EQ(errors[i], "boom 2");
        } else {
            EXPECT_TRUE(errors[i].empty()) << "index " << i;
        }
    }
}

TEST(ExecutorTest, MapCasesKeepsCaseOrder) {
    const std::vector<std::string> cases = {"a", "b", "c"};
    const auto outs =
        map_cases<std::string>(cases, 2, [](const std::string& c) { return c + "!"; });
    ASSERT_EQ(outs.size(), 3u);
    EXPECT_EQ(outs[0].value, "a!");
    EXPECT_EQ(outs[1].value, "b!");
    EXPECT_EQ(outs[2].value, "c!");
}

TEST(ExecutorTest, CrossIsRowMajor) {
    const auto grid = cross<int, char>({1, 2}, {'x', 'y', 'z'});
    ASSERT_EQ(grid.size(), 6u);
    EXPECT_EQ(grid[0], (std::pair<int, char>{1, 'x'}));
    EXPECT_EQ(grid[2], (std::pair<int, char>{1, 'z'}));
    EXPECT_EQ(grid[3], (std::pair<int, char>{2, 'x'}));
    EXPECT_EQ(grid[5], (std::pair<int, char>{2, 'z'}));
}

// ---------------------------------------------------------------------------
// enumeration
// ---------------------------------------------------------------------------

TEST(SweepSpecTest, EnumeratesSchemesAxesSeedsInOrder) {
    SweepSpec spec;
    spec.name = "order";
    spec.schemes = {"a", "b"};
    spec.axes = {{"x", {"1", "2"}}, {"y", {"p", "q", "r"}}};
    spec.seeds = {10, 20};

    EXPECT_EQ(spec.points_per_scheme(), 2u * 3u * 2u);
    EXPECT_EQ(spec.point_count(), 24u);

    const auto points = spec.enumerate();
    ASSERT_EQ(points.size(), 24u);
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].index, i);
    }
    // Seeds vary fastest, then the last axis, then the first, then schemes.
    EXPECT_EQ(points[0].scheme, "a");
    EXPECT_EQ(points[0].at("x"), "1");
    EXPECT_EQ(points[0].at("y"), "p");
    EXPECT_EQ(points[0].seed, 10u);
    EXPECT_EQ(points[0].replicate, 0u);

    EXPECT_EQ(points[1].seed, 20u);
    EXPECT_EQ(points[1].replicate, 1u);
    EXPECT_EQ(points[1].at("y"), "p");

    EXPECT_EQ(points[2].at("y"), "q");
    EXPECT_EQ(points[2].seed, 10u);

    EXPECT_EQ(points[6].at("x"), "2");
    EXPECT_EQ(points[6].at("y"), "p");

    EXPECT_EQ(points[12].scheme, "b");
    EXPECT_EQ(points[12].at("x"), "1");
    EXPECT_EQ(points[12].at("y"), "p");
    EXPECT_EQ(points[12].seed, 10u);
}

TEST(SweepSpecTest, EmptySchemeAndSeedListsFallBackToOnePass) {
    SweepSpec spec;
    spec.name = "minimal";
    spec.schemes = {};
    spec.seeds = {};
    EXPECT_EQ(spec.point_count(), 1u);
    const auto points = spec.enumerate();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].scheme, "");
    EXPECT_EQ(points[0].seed, 1u);
}

TEST(SweepSpecTest, PointAxisAccessorsParseAndThrow) {
    SweepSpec spec;
    spec.axes = {{"ratio", {"0.5"}}, {"hosts", {"16"}}};
    const auto points = spec.enumerate();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].at("hosts"), "16");
    EXPECT_EQ(points[0].at_int("hosts"), 16);
    EXPECT_DOUBLE_EQ(points[0].at_double("ratio"), 0.5);
    EXPECT_THROW((void)points[0].at("nope"), std::out_of_range);
}

// ---------------------------------------------------------------------------
// scenario sweeps
// ---------------------------------------------------------------------------

core::ScenarioConfig tiny_config(const Point& p, std::size_t hosts = 2) {
    core::ScenarioConfig cfg;
    cfg.name = "exp-test";
    cfg.seed = p.seed;
    cfg.host_count = hosts;
    cfg.attack = core::AttackKind::kMitm;
    cfg.duration = common::Duration::seconds(8);
    cfg.attack_start = common::Duration::seconds(2);
    cfg.attack_stop = common::Duration::seconds(6);
    return cfg;
}

TEST(SweepRunTest, AggregatesReplicatesWithSummaryMath) {
    SweepSpec spec;
    spec.name = "agg";
    spec.schemes = {"none"};
    spec.seeds = {1, 2, 3};
    spec.configure = [](const Point& p) { return tiny_config(p); };

    const auto outcome = run_sweep(spec, {.jobs = 1});
    ASSERT_EQ(outcome.points.size(), 3u);
    EXPECT_EQ(outcome.failures(), 0u);
    ASSERT_EQ(outcome.aggregates.size(), 1u);

    const Aggregate& agg = outcome.aggregate_at("none", {});
    EXPECT_EQ(agg.replicates, 3u);

    // The aggregate's Summary must match the per-point results it claims to
    // summarize: recompute the mean by hand.
    const common::Summary* events = agg.measure("events_executed");
    ASSERT_NE(events, nullptr);
    EXPECT_EQ(events->count(), 3u);
    double total = 0.0;
    for (std::size_t r = 0; r < 3; ++r) {
        total += static_cast<double>(outcome.at("none", {}, r).result.events_executed);
    }
    EXPECT_DOUBLE_EQ(events->mean(), total / 3.0);

    const common::Summary* succeeded = agg.measure("attack_succeeded");
    ASSERT_NE(succeeded, nullptr);
    EXPECT_GE(succeeded->mean(), 0.0);
    EXPECT_LE(succeeded->mean(), 1.0);
    EXPECT_EQ(agg.measure("definitely-not-a-measure"), nullptr);
}

TEST(SweepRunTest, ArtifactIsByteIdenticalAcrossJobCounts) {
    SweepSpec spec;
    spec.name = "determinism";
    spec.schemes = {"none", "arpwatch"};
    spec.axes = {{"hosts", {"2", "3"}}};
    spec.seeds = {1, 2};
    spec.configure = [](const Point& p) {
        return tiny_config(p, static_cast<std::size_t>(p.at_int("hosts")));
    };

    const auto serial = run_sweep(spec, {.jobs = 1});
    const auto parallel = run_sweep(spec, {.jobs = 4});
    ASSERT_EQ(serial.points.size(), 8u);
    EXPECT_EQ(serial.failures(), 0u);
    EXPECT_EQ(parallel.failures(), 0u);

    SweepArtifact a{"exp_test"};
    a.add(serial);
    SweepArtifact b{"exp_test"};
    b.add(parallel);
    EXPECT_EQ(a.to_json().dump(2), b.to_json().dump(2));
}

TEST(SweepRunTest, ThrowingPointIsIsolatedAndSweepCompletes) {
    SweepSpec spec;
    spec.name = "partial-failure";
    spec.schemes = {"none"};
    spec.seeds = {1, 2, 3};
    spec.configure = [](const Point& p) {
        if (p.seed == 2) throw std::runtime_error("configure rejected seed 2");
        return tiny_config(p);
    };

    const auto outcome = run_sweep(spec, {.jobs = 2});
    ASSERT_EQ(outcome.points.size(), 3u);
    EXPECT_EQ(outcome.failures(), 1u);

    const PointRun& bad = outcome.at("none", {}, 1);
    EXPECT_TRUE(bad.failed);
    EXPECT_EQ(bad.error, "configure rejected seed 2");
    EXPECT_FALSE(outcome.at("none", {}, 0).failed);
    EXPECT_FALSE(outcome.at("none", {}, 2).failed);

    // Aggregates only count the survivors.
    const Aggregate& agg = outcome.aggregate_at("none", {});
    EXPECT_EQ(agg.replicates, 2u);
    const common::Summary* events = agg.measure("events_executed");
    ASSERT_NE(events, nullptr);
    EXPECT_EQ(events->count(), 2u);
}

TEST(SweepRunTest, UnknownSchemeFailsEveryPointButReturns) {
    SweepSpec spec;
    spec.name = "unknown-scheme";
    spec.schemes = {"no-such-scheme"};
    spec.seeds = {1, 2};
    spec.configure = [](const Point& p) { return tiny_config(p); };

    const auto outcome = run_sweep(spec, {.jobs = 2});
    ASSERT_EQ(outcome.points.size(), 2u);
    EXPECT_EQ(outcome.failures(), 2u);
    for (const auto& pr : outcome.points) {
        EXPECT_TRUE(pr.failed);
        EXPECT_FALSE(pr.error.empty());
    }
    EXPECT_EQ(outcome.aggregate_at("no-such-scheme", {}).replicates, 0u);
}

// ---------------------------------------------------------------------------
// artifact envelope
// ---------------------------------------------------------------------------

TEST(SweepArtifactTest, EnvelopeShapeRoundTrips) {
    SweepSpec spec;
    spec.name = "envelope";
    spec.schemes = {"none"};
    spec.configure = [](const Point& p) { return tiny_config(p); };
    const auto outcome = run_sweep(spec);

    SweepArtifact artifact{"exp_test"};
    artifact.set_meta("attack", telemetry::Json{"mitm"});
    artifact.add(outcome);
    EXPECT_EQ(artifact.sweep_count(), 1u);

    const auto parsed = telemetry::Json::parse(artifact.to_json().dump(2));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("schema")->as_string(), SweepArtifact::kSchema);
    EXPECT_EQ(parsed->find("producer")->as_string(), "exp_test");
    EXPECT_EQ(parsed->find("meta")->find("attack")->as_string(), "mitm");

    const auto* sweeps = parsed->find("sweeps");
    ASSERT_NE(sweeps, nullptr);
    ASSERT_EQ(sweeps->size(), 1u);
    const auto& entry = sweeps->at(0);
    EXPECT_EQ(entry.find("spec")->find("name")->as_string(), "envelope");
    EXPECT_EQ(entry.find("points")->size(), 1u);
    EXPECT_EQ(entry.find("aggregates")->size(), 1u);
}

}  // namespace
}  // namespace arpsec::exp
